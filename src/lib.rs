//! # No Root Store Left Behind (`nrslb`)
//!
//! Umbrella crate for the `nrslb` workspace, a from-scratch Rust
//! reproduction of *"No Root Store Left Behind"* (Larisch et al.,
//! HotNets '23). It re-exports every sub-crate so examples, integration
//! tests and downstream users can depend on a single crate.
//!
//! The paper proposes two mechanisms for bringing *precise*, *timely*
//! root-certificate trust decisions to every TLS root store in the Web PKI:
//!
//! * **General Certificate Constraints (GCCs)** — small stratified-Datalog
//!   programs attached to individual root certificates (by SHA-256 hash)
//!   that decide, per candidate chain and usage, whether the chain may be
//!   accepted. See [`core`] and [`datalog`].
//! * **Root-Store Feeds (RSFs)** — signed sequences of root-store snapshots
//!   (certificate additions/removals *and* GCCs) that primary operators
//!   publish and derivative stores poll. See [`rsf`].
//!
//! Quickstart:
//!
//! ```
//! use nrslb::core::{Validator, ValidationMode, Usage};
//! use nrslb::rootstore::RootStore;
//! use nrslb::x509::testutil::simple_chain;
//!
//! // Build a tiny synthetic PKI: root -> intermediate -> leaf.
//! let pki = simple_chain("example.com");
//! let mut store = RootStore::new("quickstart");
//! store.add_trusted(pki.root.clone());
//!
//! let validator = Validator::new(store, ValidationMode::UserAgent);
//! let outcome = validator
//!     .validate(&pki.leaf, &[pki.intermediate.clone()], Usage::Tls, pki.now)
//!     .expect("validation should not error");
//! assert!(outcome.accepted());
//! ```

#![warn(missing_docs)]

pub use nrslb_core as core;
pub use nrslb_crypto as crypto;
pub use nrslb_ctlog as ctlog;
pub use nrslb_datalog as datalog;
pub use nrslb_der as der;
pub use nrslb_incidents as incidents;
pub use nrslb_preemptive as preemptive;
pub use nrslb_revocation as revocation;
pub use nrslb_rootstore as rootstore;
pub use nrslb_rsf as rsf;
pub use nrslb_sim as sim;
pub use nrslb_tls as tls;
pub use nrslb_x509 as x509;
