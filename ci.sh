#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
# Run from the repo root. Fails on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings denied, deprecation allowlisted)"
# `-A deprecated`: the workspace deliberately documents the deprecated
# `TrustDaemon::spawn*` / `DaemonConnection` forwards (kept for one
# release as byte-identical shims over `DaemonBuilder`); their rustdoc
# must not fail the gate that exists to catch *accidental* warnings.
RUSTDOCFLAGS="-D warnings -A deprecated" cargo doc --workspace --no-deps --quiet

echo "==> cargo test"
cargo test --workspace -q

echo "==> observability crate tests"
cargo test -p nrslb-obs -q

echo "==> text-exposition smoke (registry render + daemon scrape)"
# e15 hard-asserts the required metric families are present in a live
# daemon scrape and that every exposition line parses; the small scale
# keeps the overhead measurement short (its numbers are recorded from
# full-scale runs in EXPERIMENTS.md, not here).
NRSLB_SCALE=30 cargo run --release -q -p nrslb-bench --bin e15_observability

echo "==> verdict-cache equivalence + 16-thread stress tests"
cargo test -p nrslb-core --test verdict_cache -q

echo "==> daemon throughput smoke (release, bounded, asserted)"
# Bounded e16 run: hard-asserts the sharded cache does not lose to the
# single-lock ablation at 8 clients, the warm signature-memo path is
# >= 2x cold, and batching is not slower than single requests. The
# committed BENCH_e16.json records full-scale numbers; the smoke writes
# its report to a scratch path so CI never clobbers them.
NRSLB_E16_ASSERT=1 NRSLB_SCALE=12 NRSLB_JSON="$(mktemp)" \
    cargo run --release -q -p nrslb-bench --bin e16_throughput

echo "==> allocation-budget smoke (release, bounded, asserted)"
# Bounded e17 run: hard-asserts the warm verdict path (held session
# re-evaluating through its scratch arena) stays under a fixed gross
# allocation bound per verdict — the interned core's zero-allocation
# claim, observed at the allocator. Report goes to a scratch path so
# CI never clobbers the committed BENCH_e17.json.
NRSLB_E17_ASSERT=1 NRSLB_SCALE=12 NRSLB_JSON="$(mktemp)" \
    cargo run --release -q -p nrslb-bench --bin e17_alloc_throughput

echo "==> reactor connection-scaling smoke (release, bounded, asserted)"
# Bounded e18 run: the reactor engine must hold 1k concurrent keep-alive
# connections (every one proving liveness with a correct round trip)
# and its 8-driver warm throughput must not lose to the PR6
# thread-per-connection engine measured back-to-back in the same
# process (single-core floor 0.85, multi-core floor 1.0). Full-scale
# numbers (10k-connection axis) live in the committed BENCH_e18.json;
# the smoke writes to a scratch path.
NRSLB_E18_ASSERT=1 NRSLB_E18_MAX_CONNS=1024 NRSLB_JSON="$(mktemp)" \
    cargo run --release -q -p nrslb-bench --bin e18_connections

echo "==> engine parity + reactor torture tests"
cargo test -p nrslb-core --test daemon_parity --test reactor_torture -q

echo "==> feed-server parity + keep-alive torture tests"
cargo test -p nrslb-rsf --test feed_parity --test feed_torture -q

echo "==> feed distribution-node smoke (release, bounded, asserted)"
# Bounded e21 run: the reactor-backed distribution node must hold 1k
# keep-alive subscriber connections (each proving liveness with a
# correct idle re-poll), beat the thread-per-connection feed server on
# warm re-poll throughput, serve re-polls inline on the event loop
# (inline counter > 0), and the fused inline cost guard must hold the
# 8-client warm daemon reactor/thread-pool ratio at >= 0.95 single-core
# (>= 1.0 multi-core). Full-scale numbers (10k-connection axis) live in
# the committed BENCH_e21.json; the smoke writes to a scratch path.
NRSLB_E21_ASSERT=1 NRSLB_E21_MAX_CONNS=1024 NRSLB_JSON="$(mktemp)" \
    cargo run --release -q -p nrslb-bench --bin e21_feed_node

echo "==> differential oracle smoke (fixed seed)"
# Bounded run: >=1,000 cross-path (chain, GCC, usage) checks PLUS
# >=1,000 incremental-vs-scratch Datalog maintenance checks (the
# apply_delta oracle arm, both policies); exits non-zero and prints the
# failing NRSLB_SIM_SEED on any disagreement, with the JSON repro
# dumped under reports/.
NRSLB_SIM_SEED=0xd1ff NRSLB_SCALE=120 \
    cargo run --release -q -p nrslb-bench --bin e14_differential

echo "==> incremental-maintenance proptests (counting + DRed vs scratch)"
cargo test -p nrslb-datalog --test incremental_props -q

echo "==> taint-keyed verdict invalidation tests"
cargo test -p nrslb-core --test taint_invalidation -q

echo "==> incremental maintenance smoke (release, bounded, asserted)"
# Bounded e19 run: hard-asserts the taint-keyed serving arm delivers
# >= 2x the full-clear arm's verdicts/s under per-round publisher
# deltas, and that apply_delta does not lose to from-scratch
# re-evaluation at the Datalog layer. The committed BENCH_e19.json
# records full-scale numbers; the smoke writes to a scratch path.
NRSLB_E19_ASSERT=1 NRSLB_SCALE=12 NRSLB_JSON="$(mktemp)" \
    cargo run --release -q -p nrslb-bench --bin e19_incremental

echo "==> Shamir field-axiom + roundtrip proptests"
cargo test -p nrslb-crypto --test shamir_field --test shamir_roundtrip -q

echo "==> quorum adversarial + wire proptests"
cargo test -p nrslb-rsf --test quorum_adversarial --test proptest_quorum_wire -q

echo "==> compromised-minority quorum smoke (release, bounded, asserted)"
# Bounded e20 run: an attacker holding k-1 of the quorum's signers
# stages >= 200 forged-checkpoint presentations through the ecosystem
# sim — zero may be accepted, and the failing NRSLB_SIM_SEED is printed
# on violation. Also hard-asserts the quorum arm's warm (idle re-poll)
# sync path stays within 5% of the single-signer ablation. Full-scale
# numbers live in the committed BENCH_e20.json; the smoke writes to a
# scratch path.
NRSLB_E20_ASSERT=1 NRSLB_SCALE=12 NRSLB_JSON="$(mktemp)" \
    cargo run --release -q -p nrslb-bench --bin e20_quorum

echo "==> CI green"
