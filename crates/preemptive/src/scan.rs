//! Constraint-prevalence scanning: the measurement behind the paper's
//! §5.1 numbers.
//!
//! Works the way a real CT measurement does: issuer relationships are
//! reconstructed by *subject/issuer name matching* over the certificate
//! sets, not taken from generator ground truth.

use nrslb_x509::Certificate;
use std::collections::{BTreeSet, HashMap};

/// The §5.1 table: how many CAs carry which pre-emptive constraints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintPrevalence {
    /// Total roots scanned (paper: 140).
    pub n_roots: usize,
    /// Roots with name constraints (paper: 0).
    pub roots_name_constrained: usize,
    /// Roots with a path-length constraint (paper: 5).
    pub roots_path_len: usize,
    /// Total intermediates scanned (paper: 776).
    pub n_intermediates: usize,
    /// Intermediates with a path-length constraint (paper: 701).
    pub ints_path_len: usize,
    /// Intermediates with name constraints (paper: 31).
    pub ints_name_constrained: usize,
    /// Roots included in at least one chain where an intermediate has a
    /// name constraint (paper: 6).
    pub roots_with_nc_chain: usize,
}

impl ConstraintPrevalence {
    /// The numbers the paper reports for July/August 2022, for
    /// comparison in EXPERIMENTS.md.
    pub fn paper_reported() -> ConstraintPrevalence {
        ConstraintPrevalence {
            n_roots: 140,
            roots_name_constrained: 0,
            roots_path_len: 5,
            n_intermediates: 776,
            ints_path_len: 701,
            ints_name_constrained: 31,
            roots_with_nc_chain: 6,
        }
    }
}

impl std::fmt::Display for ConstraintPrevalence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "roots: {} total, {} name-constrained, {} path-length-constrained",
            self.n_roots, self.roots_name_constrained, self.roots_path_len
        )?;
        writeln!(
            f,
            "intermediates: {} total, {} path-length-constrained, {} name-constrained",
            self.n_intermediates, self.ints_path_len, self.ints_name_constrained
        )?;
        write!(
            f,
            "roots in >=1 chain with a name-constrained intermediate: {}",
            self.roots_with_nc_chain
        )
    }
}

/// Scan roots and intermediates for constraint usage.
pub fn scan_constraints(
    roots: &[Certificate],
    intermediates: &[Certificate],
) -> ConstraintPrevalence {
    let mut out = ConstraintPrevalence {
        n_roots: roots.len(),
        n_intermediates: intermediates.len(),
        ..Default::default()
    };
    for root in roots {
        if root.extensions().name_constraints.is_some() {
            out.roots_name_constrained += 1;
        }
        if root.path_len().is_some() {
            out.roots_path_len += 1;
        }
    }
    // Issuer resolution by name, as a measurement over CT data would do.
    let root_by_subject: HashMap<String, Vec<usize>> = {
        let mut m: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, root) in roots.iter().enumerate() {
            m.entry(root.subject().to_string()).or_default().push(i);
        }
        m
    };
    let mut nc_chain_roots: BTreeSet<usize> = BTreeSet::new();
    for int in intermediates {
        if int.path_len().is_some() {
            out.ints_path_len += 1;
        }
        if int.extensions().name_constraints.is_some() {
            out.ints_name_constrained += 1;
            if let Some(parents) = root_by_subject.get(&int.issuer().to_string()) {
                nc_chain_roots.extend(parents.iter().copied());
            }
        }
    }
    out.roots_with_nc_chain = nc_chain_roots.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_ctlog::{Corpus, CorpusConfig};

    #[test]
    fn scan_rederives_generator_calibration() {
        let config = CorpusConfig::small(42);
        let corpus = Corpus::generate(config.clone());
        let got = scan_constraints(&corpus.roots, &corpus.intermediates);
        assert_eq!(got.n_roots, config.n_roots);
        assert_eq!(
            got.roots_name_constrained,
            config.roots_with_name_constraints
        );
        assert_eq!(got.roots_path_len, config.roots_with_path_len);
        assert_eq!(got.n_intermediates, config.n_intermediates);
        assert_eq!(got.ints_path_len, config.ints_with_path_len);
        assert_eq!(got.ints_name_constrained, config.ints_with_name_constraints);
        assert_eq!(got.roots_with_nc_chain, config.roots_with_nc_chain);
    }

    #[test]
    fn empty_scan() {
        let got = scan_constraints(&[], &[]);
        assert_eq!(got, ConstraintPrevalence::default());
    }

    #[test]
    fn display_renders() {
        let s = ConstraintPrevalence::paper_reported().to_string();
        assert!(s.contains("140"));
        assert!(s.contains("776"));
        assert!(s.contains("701"));
    }
}
