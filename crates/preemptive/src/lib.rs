//! # `nrslb-preemptive` — pre-emptive constraints: scope inference, CAge
//! and generated GCCs
//!
//! Section 5 of the paper argues that browsers should constrain CA power
//! *before* compromise, by inferring each CA's **scope of issuance** from
//! Certificate Transparency and compiling it into a GCC. This crate
//! implements that pipeline plus the CAge baseline it extends:
//!
//! * [`scan`] — the constraint-prevalence measurement (the paper's §5.1
//!   numbers: how many roots/intermediates use name or path-length
//!   constraints), re-derived by scanning certificates.
//! * [`scope`] — scope-of-issuance inference: per-CA TLD sets, EKUs, key
//!   usages, maximum lifetimes and EV use, from a set of observed leaves.
//! * [`cage`] — the CAge baseline (Kasten et al., FC '13): *names only* —
//!   reject a leaf whose TLD the CA has never issued for.
//! * [`gccgen`] — pre-emptive GCC generation over **all** fields
//!   (Listing 3's shape), the paper's advance over CAge, plus bimodal
//!   split detection (§5.2's "splitting CA certificate responsibility").

#![warn(missing_docs)]

pub mod cage;
pub mod gccgen;
pub mod scan;
pub mod scope;

pub use cage::CageModel;
pub use gccgen::{generate_cage_gcc, generate_preemptive_gcc, suggest_split};
pub use scan::{scan_constraints, ConstraintPrevalence};
pub use scope::{infer_scopes, scope_of, IssuanceScope, ScopeMap};
