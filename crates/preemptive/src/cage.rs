//! The CAge baseline (Kasten, Wustrow, Halderman — FC '13): constrain
//! each CA to the set of TLDs it has historically issued for; a
//! certificate for a never-before-seen TLD is rejected (or flagged).
//!
//! CAge is *names only*; the paper's pre-emptive GCCs extend the idea to
//! every certificate field (see [`crate::gccgen`]).

use crate::scope::ScopeMap;
use nrslb_x509::Certificate;
use std::collections::{BTreeMap, BTreeSet};

/// A trained CAge model: per-CA allowed TLD sets.
#[derive(Clone, Debug, Default)]
pub struct CageModel {
    /// Allowed TLDs per issuer DN (display form).
    pub allowed: BTreeMap<String, BTreeSet<String>>,
}

impl CageModel {
    /// Train from inferred scopes (the CT-log pass).
    pub fn train(scopes: &ScopeMap) -> CageModel {
        CageModel {
            allowed: scopes
                .iter()
                .map(|(ca, scope)| (ca.clone(), scope.tlds.clone()))
                .collect(),
        }
    }

    /// Would CAge accept this leaf? Returns `false` when the leaf's
    /// issuer is unknown or any SAN's TLD is outside the trained set.
    pub fn accepts(&self, leaf: &Certificate) -> bool {
        let Some(allowed) = self.allowed.get(&leaf.issuer().to_string()) else {
            return false;
        };
        leaf.dns_names().iter().all(|san| {
            nrslb_x509::name::tld(san)
                .map(|tld| allowed.contains(&tld))
                .unwrap_or(false)
        })
    }

    /// Number of CAs in the model.
    pub fn len(&self) -> usize {
        self.allowed.len()
    }

    /// True when no CA was trained.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::infer_scopes;
    use nrslb_ctlog::{Corpus, CorpusConfig};
    use nrslb_x509::{CertificateBuilder, DistinguishedName};

    #[test]
    fn accepts_training_data() {
        let corpus = Corpus::generate(CorpusConfig::small(21));
        let model = CageModel::train(&infer_scopes(&corpus.leaves));
        for leaf in &corpus.leaves {
            assert!(model.accepts(leaf));
        }
    }

    #[test]
    fn rejects_novel_tld() {
        let corpus = Corpus::generate(CorpusConfig::small(22));
        let model = CageModel::train(&infer_scopes(&corpus.leaves));
        let issuer = corpus.intermediates[corpus.leaf_issuer[0]]
            .subject()
            .clone();
        let attack = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("bank.neverseen"))
            .dns_names(&["bank.neverseen"])
            .validity_window(0, 86_400)
            .build_unsigned(issuer)
            .unwrap();
        assert!(!model.accepts(&attack));
    }

    #[test]
    fn rejects_unknown_issuer() {
        let model = CageModel::default();
        let leaf = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("x.com"))
            .dns_names(&["x.com"])
            .validity_window(0, 1)
            .build_unsigned(DistinguishedName::common_name("Unknown CA"))
            .unwrap();
        assert!(!model.accepts(&leaf));
        assert!(model.is_empty());
    }

    #[test]
    fn cage_misses_non_name_fields() {
        // The limitation the paper calls out: CAge cannot catch a
        // mis-issued cert whose *names* are in scope but whose other
        // fields (here: an absurd lifetime) are not.
        let corpus = Corpus::generate(CorpusConfig::small(23));
        let scopes = infer_scopes(&corpus.leaves);
        let model = CageModel::train(&scopes);
        let victim_ca = corpus.leaf_issuer[0];
        let issuer = corpus.intermediates[victim_ca].subject().clone();
        let in_scope_tld = &corpus.tlds[corpus.int_scopes[victim_ca][0]];
        let sneaky = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("sneaky"))
            .dns_names(&[&format!("sneaky.{in_scope_tld}")])
            .validity_window(0, 20 * 365 * 86_400) // 20-year lifetime
            .build_unsigned(issuer)
            .unwrap();
        assert!(model.accepts(&sneaky), "CAge accepts: names in scope");
        // The full scope check catches it.
        let scope = &scopes[&sneaky.issuer().to_string()];
        assert!(!scope.contains(&sneaky), "full scope rejects: lifetime");
    }
}
