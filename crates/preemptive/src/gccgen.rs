//! Generating pre-emptive GCCs from inferred issuance scopes —
//! Listing 3 generalized: "browsers and/or root stores \[should\]
//! pre-emptively construct, for each root, a GCC that limits that root's
//! scope of issuance, i.e., the names, lifetimes, key usages, and other
//! fields that it may issue certificates for" (§5.2).

use crate::scope::IssuanceScope;
use nrslb_crypto::sha256::Digest;
use nrslb_rootstore::{Gcc, GccMetadata};
use std::fmt::Write;

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Generate a full pre-emptive GCC for the CA scope, attached to the
/// root `target`. The constraint rejects any chain whose leaf exceeds
/// the observed scope in *any* dimension: TLDs, EKU, key usage,
/// lifetime, or EV use.
pub fn generate_preemptive_gcc(
    name: &str,
    target: Digest,
    scope: &IssuanceScope,
    created_at: i64,
) -> Result<Gcc, nrslb_datalog::DatalogError> {
    let mut src = String::new();
    writeln!(src, "% Pre-emptive scope-of-issuance constraint.").unwrap();
    for tld in &scope.tlds {
        writeln!(src, "allowedTld({}).", quote(tld)).unwrap();
    }
    for eku in &scope.ekus {
        writeln!(src, "allowedEku({}).", quote(eku)).unwrap();
    }
    for ku in &scope.key_usages {
        writeln!(src, "allowedKu({}).", quote(ku)).unwrap();
    }
    writeln!(src, "maxLifetime({}).", scope.max_lifetime).unwrap();
    writeln!(
        src,
        "bad(Chain) :- leaf(Chain, C), sanTld(C, T), \\+allowedTld(T)."
    )
    .unwrap();
    writeln!(
        src,
        "bad(Chain) :- leaf(Chain, C), extendedKeyUsage(C, P), \\+allowedEku(P)."
    )
    .unwrap();
    writeln!(
        src,
        "bad(Chain) :- leaf(Chain, C), keyUsage(C, U), \\+allowedKu(U)."
    )
    .unwrap();
    writeln!(
        src,
        "bad(Chain) :- leaf(Chain, C), notBefore(C, NB), notAfter(C, NA), \
         L = NA - NB, maxLifetime(M), L > M."
    )
    .unwrap();
    if !scope.ev_seen {
        writeln!(src, "bad(Chain) :- leaf(Chain, C), EV(C).").unwrap();
    }
    // The scope constrains *what* may be issued, not the usage context;
    // valid/2 holds for both usages whenever nothing is out of scope.
    writeln!(src, "valid(Chain, \"TLS\") :- chain(Chain), \\+bad(Chain).").unwrap();
    writeln!(
        src,
        "valid(Chain, \"S/MIME\") :- chain(Chain), \\+bad(Chain)."
    )
    .unwrap();

    Gcc::parse(
        name,
        target,
        &src,
        GccMetadata {
            justification: format!(
                "Pre-emptive constraint inferred from {} observed leaves",
                scope.leaf_count
            ),
            discussion_url: String::new(),
            created_at,
        },
    )
}

/// Generate the CAge-equivalent GCC: TLD constraints only (the baseline
/// the paper compares against).
pub fn generate_cage_gcc(
    name: &str,
    target: Digest,
    scope: &IssuanceScope,
    created_at: i64,
) -> Result<Gcc, nrslb_datalog::DatalogError> {
    let mut src = String::new();
    writeln!(src, "% CAge-style constraint: names only.").unwrap();
    for tld in &scope.tlds {
        writeln!(src, "allowedTld({}).", quote(tld)).unwrap();
    }
    writeln!(
        src,
        "bad(Chain) :- leaf(Chain, C), sanTld(C, T), \\+allowedTld(T)."
    )
    .unwrap();
    writeln!(src, "valid(Chain, \"TLS\") :- chain(Chain), \\+bad(Chain).").unwrap();
    writeln!(
        src,
        "valid(Chain, \"S/MIME\") :- chain(Chain), \\+bad(Chain)."
    )
    .unwrap();
    Gcc::parse(
        name,
        target,
        &src,
        GccMetadata {
            justification: "CAge baseline: inferred TLD scope".into(),
            discussion_url: String::new(),
            created_at,
        },
    )
}

/// Bimodal-scope detection (§5.2): if a CA's issuance volume splits into
/// two disjoint TLD groups, each carrying at least `min_share` of its
/// leaves, suggest splitting the CA into two constrained certificates.
///
/// The heuristic greedily partitions TLDs by descending volume into two
/// buckets (largest-first into the emptier bucket), then checks both
/// buckets carry enough share.
pub fn suggest_split(scope: &IssuanceScope, min_share: f64) -> Option<(Vec<String>, Vec<String>)> {
    if scope.tlds.len() < 2 || scope.leaf_count == 0 {
        return None;
    }
    let mut by_volume: Vec<(&String, usize)> =
        scope.tld_counts.iter().map(|(t, &c)| (t, c)).collect();
    by_volume.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    type Bucket<'a> = Vec<(&'a String, usize)>;
    let (mut a, mut b): (Bucket, Bucket) = (vec![], vec![]);
    for (tld, count) in by_volume {
        let a_total: usize = a.iter().map(|x| x.1).sum();
        let b_total: usize = b.iter().map(|x| x.1).sum();
        if a_total <= b_total {
            a.push((tld, count));
        } else {
            b.push((tld, count));
        }
    }
    let total = scope.leaf_count as f64;
    let a_share = a.iter().map(|x| x.1).sum::<usize>() as f64 / total;
    let b_share = b.iter().map(|x| x.1).sum::<usize>() as f64 / total;
    if a_share >= min_share && b_share >= min_share {
        Some((
            a.into_iter().map(|(t, _)| t.clone()).collect(),
            b.into_iter().map(|(t, _)| t.clone()).collect(),
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::infer_scopes;
    use nrslb_core::{evaluate_gcc, Usage};
    use nrslb_ctlog::{Corpus, CorpusConfig};
    use nrslb_x509::{CertificateBuilder, DistinguishedName};

    fn corpus_and_scope() -> (Corpus, usize, IssuanceScope) {
        let corpus = Corpus::generate(CorpusConfig::small(31));
        let scopes = infer_scopes(&corpus.leaves);
        // Pick the busiest intermediate.
        let ca = *corpus
            .leaf_issuer
            .iter()
            .max_by_key(|&&ca| corpus.leaf_issuer.iter().filter(|&&x| x == ca).count())
            .unwrap();
        let scope = scopes[&corpus.intermediates[ca].subject().to_string()].clone();
        (corpus, ca, scope)
    }

    #[test]
    fn generated_gcc_accepts_in_scope_chains() {
        let (corpus, ca, scope) = corpus_and_scope();
        let root = corpus.int_issuer[ca];
        let gcc =
            generate_preemptive_gcc("preemptive", corpus.roots[root].fingerprint(), &scope, 0)
                .unwrap();
        let mut checked = 0;
        for (i, &issuer) in corpus.leaf_issuer.iter().enumerate() {
            if issuer != ca || checked >= 25 {
                continue;
            }
            checked += 1;
            let chain = corpus.chain_for_leaf(i);
            assert!(
                evaluate_gcc(&gcc, &chain, Usage::Tls).unwrap(),
                "in-scope leaf {i} rejected"
            );
        }
        assert!(checked > 0);
    }

    #[test]
    fn generated_gcc_rejects_out_of_scope_chain() {
        let (corpus, ca, scope) = corpus_and_scope();
        let root_idx = corpus.int_issuer[ca];
        let root = &corpus.roots[root_idx];
        let gcc = generate_preemptive_gcc("preemptive", root.fingerprint(), &scope, 0).unwrap();
        // Mis-issuance: a leaf for a TLD this CA never served.
        let evil = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("bank.evil"))
            .dns_names(&["bank.neverseen"])
            .validity_window(0, 86_400)
            .build_unsigned(corpus.intermediates[ca].subject().clone())
            .unwrap();
        let chain = vec![evil, corpus.intermediates[ca].clone(), root.clone()];
        assert!(!evaluate_gcc(&gcc, &chain, Usage::Tls).unwrap());
    }

    #[test]
    fn preemptive_catches_lifetime_cage_does_not() {
        let (corpus, ca, scope) = corpus_and_scope();
        let root_idx = corpus.int_issuer[ca];
        let root = &corpus.roots[root_idx];
        let preemptive = generate_preemptive_gcc("pre", root.fingerprint(), &scope, 0).unwrap();
        let cage = generate_cage_gcc("cage", root.fingerprint(), &scope, 0).unwrap();
        // In-scope TLD, absurd lifetime.
        let in_tld = scope.tlds.iter().next().unwrap().clone();
        let sneaky = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("sneaky"))
            .dns_names(&[&format!("sneaky.{in_tld}")])
            .validity_window(0, 20 * 365 * 86_400)
            .key_usage(nrslb_x509::KeyUsage::DIGITAL_SIGNATURE)
            .extended_key_usage(nrslb_x509::ExtendedKeyUsage::server_auth())
            .build_unsigned(corpus.intermediates[ca].subject().clone())
            .unwrap();
        let chain = vec![sneaky, corpus.intermediates[ca].clone(), root.clone()];
        assert!(evaluate_gcc(&cage, &chain, Usage::Tls).unwrap());
        assert!(!evaluate_gcc(&preemptive, &chain, Usage::Tls).unwrap());
    }

    #[test]
    fn split_detection_bimodal() {
        let mut scope = IssuanceScope {
            leaf_count: 100,
            ..Default::default()
        };
        scope.tlds.insert("com".into());
        scope.tlds.insert("gov".into());
        scope.tld_counts.insert("com".into(), 55);
        scope.tld_counts.insert("gov".into(), 45);
        let (a, b) = suggest_split(&scope, 0.3).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn split_not_suggested_for_unimodal() {
        let mut scope = IssuanceScope {
            leaf_count: 100,
            ..Default::default()
        };
        for (tld, n) in [("com", 95), ("net", 3), ("org", 2)] {
            scope.tlds.insert(tld.into());
            scope.tld_counts.insert(tld.into(), n);
        }
        assert!(suggest_split(&scope, 0.3).is_none());
        // Single-TLD CA: nothing to split.
        let mut single = IssuanceScope {
            leaf_count: 10,
            ..Default::default()
        };
        single.tlds.insert("fr".into());
        single.tld_counts.insert("fr".into(), 10);
        assert!(suggest_split(&single, 0.1).is_none());
    }

    #[test]
    fn gcc_source_quotes_special_chars() {
        let mut scope = IssuanceScope::default();
        scope.tlds.insert("we\"ird".into());
        scope.max_lifetime = 1;
        let gcc = generate_preemptive_gcc("q", Digest::ZERO, &scope, 0).unwrap();
        assert!(gcc.source().contains("\\\""));
    }
}
