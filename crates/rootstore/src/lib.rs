//! # `nrslb-rootstore` — root certificate stores with programmable trust
//!
//! The paper's central observation (§2.2) is that primary root stores are
//! no longer mere collections of certificates: each root carries
//! *certificate-specific policy* — systematic date/usage constraints, EV
//! allowances, and ad-hoc partial distrust hard-coded into NSS/Firefox.
//! Derivative stores (Debian, Android...) can only mirror the certificate
//! *set*, losing the policy. This crate models the store itself:
//!
//! * [`RootStore`] — a named, versioned store with a **trusted** set and an
//!   explicitly **distrusted** set (the paper's *negative inclusion*, §4);
//! * [`Gcc`] — a General Certificate Constraint: a checked stratified-
//!   Datalog program attached to a root by SHA-256 fingerprint (§3);
//! * [`TrustRecord`] — per-root systematic constraints (date/usage pairs,
//!   EV allowance) mirroring NSS's two systematic mechanisms, plus the
//!   list of attached GCCs; and
//! * [`TrustRecord::systematic_gcc`] — compiles the systematic constraints
//!   into a GCC, demonstrating the paper's claim that "all of the
//!   systematic constraints that Mozilla places on root certificates can
//!   be expressed using GCCs".
//!
//! Evaluation of GCCs during chain validation lives in `nrslb-core`.

#![warn(missing_docs)]

pub mod gcc;
pub mod store;

pub use gcc::{Gcc, GccMetadata};
pub use store::{RootStore, TrustRecord, TrustStatus};

use std::fmt;

/// Certificate usage contexts, as in the paper's `valid(Chain, Usage)`
/// query: TLS server authentication or S/MIME email protection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Usage {
    /// TLS server authentication.
    Tls,
    /// S/MIME (email protection).
    SMime,
}

impl Usage {
    /// The string form used inside Datalog programs (`"TLS"`, `"S/MIME"`),
    /// matching the paper's listings.
    pub fn as_datalog(&self) -> &'static str {
        match self {
            Usage::Tls => "TLS",
            Usage::SMime => "S/MIME",
        }
    }

    /// Both usages.
    pub const ALL: [Usage; 2] = [Usage::Tls, Usage::SMime];
}

impl fmt::Display for Usage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_datalog())
    }
}

/// Errors from root-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The referenced root is not in the trusted set.
    UnknownRoot(String),
    /// A GCC failed its checks (parse, safety or stratification).
    BadGcc(nrslb_datalog::DatalogError),
    /// Attempted to trust an explicitly distrusted certificate.
    Distrusted(String),
    /// The certificate is not a CA certificate.
    NotACa(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownRoot(fp) => write!(f, "root {fp} is not in the trusted set"),
            StoreError::BadGcc(e) => write!(f, "invalid GCC: {e}"),
            StoreError::Distrusted(fp) => {
                write!(f, "certificate {fp} is explicitly distrusted")
            }
            StoreError::NotACa(fp) => write!(f, "certificate {fp} is not a CA certificate"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<nrslb_datalog::DatalogError> for StoreError {
    fn from(e: nrslb_datalog::DatalogError) -> Self {
        StoreError::BadGcc(e)
    }
}
