//! The root store: trusted + explicitly-distrusted certificate sets with
//! per-root policy.

use crate::gcc::{Gcc, GccMetadata};
use crate::{StoreError, Usage};
use nrslb_crypto::sha256::Digest;
use nrslb_x509::{Certificate, DistinguishedName};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Trust status of a certificate with respect to a store.
///
/// The three-way distinction implements the paper's *negative inclusion*
/// (§4): an explicitly removed root is `Distrusted`, which is different
/// from one that was simply never added (`Unknown`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrustStatus {
    /// In the trusted set.
    Trusted,
    /// Explicitly distrusted (negative inclusion).
    Distrusted,
    /// Not mentioned by the store at all.
    Unknown,
}

/// Per-root trust policy: the certificate plus NSS-style systematic
/// constraints and any attached GCCs.
#[derive(Clone, Debug)]
pub struct TrustRecord {
    /// The root certificate.
    pub cert: Certificate,
    /// Last notBefore date for which leaves under this root are accepted
    /// for TLS (NSS's date/usage pair), if constrained.
    pub tls_distrust_after: Option<i64>,
    /// Last notBefore date for S/MIME acceptance, if constrained.
    pub smime_distrust_after: Option<i64>,
    /// May this root issue EV certificates? (Firefox's EV bit.)
    pub ev_allowed: bool,
    /// Attached General Certificate Constraints.
    pub gccs: Vec<Gcc>,
}

impl TrustRecord {
    fn new(cert: Certificate) -> TrustRecord {
        TrustRecord {
            cert,
            tls_distrust_after: None,
            smime_distrust_after: None,
            ev_allowed: true,
            gccs: Vec::new(),
        }
    }

    /// Does this record carry any partial-distrust policy (anything a
    /// plain certificate collection could not express)?
    pub fn has_policy(&self) -> bool {
        self.tls_distrust_after.is_some()
            || self.smime_distrust_after.is_some()
            || !self.ev_allowed
            || !self.gccs.is_empty()
    }

    /// Compile the *systematic* constraints (date/usage pairs and the EV
    /// bit) into an equivalent GCC, as the paper proposes: "Mozilla could
    /// write a similar GCC for every root in NSS that has a date/usage
    /// constraint" (§3, Listing 1).
    ///
    /// Returns `None` when the record has no systematic constraints (the
    /// all-permissive GCC is pointless to attach).
    pub fn systematic_gcc(&self) -> Option<Gcc> {
        if self.tls_distrust_after.is_none()
            && self.smime_distrust_after.is_none()
            && self.ev_allowed
        {
            return None;
        }
        let mut src = String::new();
        // TLS rule.
        match (self.tls_distrust_after, self.ev_allowed) {
            (Some(t), true) => {
                src.push_str(&format!(
                    "valid(Chain, \"TLS\") :- leaf(Chain, Cert), notBefore(Cert, NB), NB < {t}.\n"
                ));
            }
            (Some(t), false) => {
                src.push_str(&format!(
                    "valid(Chain, \"TLS\") :- leaf(Chain, Cert), \\+EV(Cert), notBefore(Cert, NB), NB < {t}.\n"
                ));
            }
            (None, true) => {
                src.push_str("valid(Chain, \"TLS\") :- leaf(Chain, _).\n");
            }
            (None, false) => {
                src.push_str("valid(Chain, \"TLS\") :- leaf(Chain, Cert), \\+EV(Cert).\n");
            }
        }
        // S/MIME rule (EV is TLS-only policy in Firefox, so no EV check).
        match self.smime_distrust_after {
            Some(t) => src.push_str(&format!(
                "valid(Chain, \"S/MIME\") :- leaf(Chain, Cert), notBefore(Cert, NB), NB < {t}.\n"
            )),
            None => src.push_str("valid(Chain, \"S/MIME\") :- leaf(Chain, _).\n"),
        }
        let gcc = Gcc::parse(
            &format!("systematic:{}", self.cert.fingerprint().short()),
            self.cert.fingerprint(),
            &src,
            GccMetadata {
                justification: "Compiled from NSS-style systematic date/usage constraints".into(),
                ..Default::default()
            },
        )
        .expect("generated systematic GCC is well-formed");
        Some(gcc)
    }
}

/// A named, versioned root certificate store.
///
/// Stores are value types: cloning yields an independent snapshot, which
/// is how the feed layer (`nrslb-rsf`) captures store states.
///
/// Records (and with them the attached GCCs) are indexed by root
/// fingerprint in a hash map, so the per-validation lookups
/// ([`RootStore::record`], [`RootStore::gccs_for`],
/// [`RootStore::usage_permitted`]) are O(1). A sorted fingerprint set is
/// maintained alongside so iteration — which feed serialization depends
/// on for byte-stable snapshots — stays deterministic.
#[derive(Clone, Debug)]
pub struct RootStore {
    name: String,
    version: u64,
    trusted: HashMap<Digest, TrustRecord>,
    order: BTreeSet<Digest>,              // sorted view of `trusted`'s keys
    distrusted: BTreeMap<Digest, String>, // fingerprint -> justification
}

impl RootStore {
    /// Create an empty store.
    pub fn new(name: impl Into<String>) -> RootStore {
        RootStore {
            name: name.into(),
            version: 0,
            trusted: HashMap::new(),
            order: BTreeSet::new(),
            distrusted: BTreeMap::new(),
        }
    }

    /// The store's name (e.g. `"nss"`, `"debian"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonic version; bumped on every mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of trusted roots.
    pub fn len(&self) -> usize {
        self.trusted.len()
    }

    /// True when no roots are trusted.
    pub fn is_empty(&self) -> bool {
        self.trusted.is_empty()
    }

    /// Add a root to the trusted set. Re-adding refreshes nothing and
    /// returns `Ok(false)`; adding an explicitly distrusted root fails.
    pub fn add_trusted(&mut self, cert: Certificate) -> Result<bool, StoreError> {
        let fp = cert.fingerprint();
        if self.distrusted.contains_key(&fp) {
            return Err(StoreError::Distrusted(fp.to_hex()));
        }
        if !cert.is_ca() {
            return Err(StoreError::NotACa(fp.to_hex()));
        }
        if self.trusted.contains_key(&fp) {
            return Ok(false);
        }
        self.trusted.insert(fp, TrustRecord::new(cert));
        self.order.insert(fp);
        self.version += 1;
        Ok(true)
    }

    /// Force-add a trusted root even if it was distrusted (models
    /// derivative stores overriding their primary, like Amazon Linux
    /// re-adding 16 NSS-removed roots). Clears the distrust mark.
    pub fn add_trusted_overriding(&mut self, cert: Certificate) -> Result<bool, StoreError> {
        let fp = cert.fingerprint();
        self.distrusted.remove(&fp);
        if !cert.is_ca() {
            return Err(StoreError::NotACa(fp.to_hex()));
        }
        if self.trusted.contains_key(&fp) {
            return Ok(false);
        }
        self.trusted.insert(fp, TrustRecord::new(cert));
        self.order.insert(fp);
        self.version += 1;
        Ok(true)
    }

    /// Remove a root *without* marking it distrusted (it becomes
    /// `Unknown`, as if never added).
    pub fn remove(&mut self, fp: &Digest) -> bool {
        let removed = self.trusted.remove(fp).is_some();
        if removed {
            self.order.remove(fp);
            self.version += 1;
        }
        removed
    }

    /// Explicitly distrust a certificate (negative inclusion): removes it
    /// from the trusted set and records the distrust with a justification.
    pub fn distrust(&mut self, fp: Digest, justification: impl Into<String>) {
        self.trusted.remove(&fp);
        self.order.remove(&fp);
        self.distrusted.insert(fp, justification.into());
        self.version += 1;
    }

    /// Trust status of a fingerprint.
    pub fn status(&self, fp: &Digest) -> TrustStatus {
        if self.trusted.contains_key(fp) {
            TrustStatus::Trusted
        } else if self.distrusted.contains_key(fp) {
            TrustStatus::Distrusted
        } else {
            TrustStatus::Unknown
        }
    }

    /// The trust record for a fingerprint, if trusted.
    pub fn record(&self, fp: &Digest) -> Option<&TrustRecord> {
        self.trusted.get(fp)
    }

    /// Mutable access to a trust record (to set systematic constraints).
    pub fn record_mut(&mut self, fp: &Digest) -> Option<&mut TrustRecord> {
        let rec = self.trusted.get_mut(fp);
        if rec.is_some() {
            self.version += 1;
        }
        rec
    }

    /// Attach a GCC to its target root.
    pub fn attach_gcc(&mut self, gcc: Gcc) -> Result<(), StoreError> {
        let target = gcc.target();
        let record = self
            .trusted
            .get_mut(&target)
            .ok_or_else(|| StoreError::UnknownRoot(target.to_hex()))?;
        if !record.gccs.contains(&gcc) {
            record.gccs.push(gcc);
            self.version += 1;
        }
        Ok(())
    }

    /// Remove a GCC (by target + content hash). Returns whether anything
    /// was removed.
    pub fn detach_gcc(&mut self, target: &Digest, source_hash: &Digest) -> bool {
        let Some(record) = self.trusted.get_mut(target) else {
            return false;
        };
        let before = record.gccs.len();
        record.gccs.retain(|g| g.source_hash() != *source_hash);
        let removed = record.gccs.len() != before;
        if removed {
            self.version += 1;
        }
        removed
    }

    /// GCCs attached to a root (empty if none or unknown). O(1) in the
    /// number of trusted roots; called once per candidate chain during
    /// validation.
    pub fn gccs_for(&self, fp: &Digest) -> &[Gcc] {
        self.trusted
            .get(fp)
            .map(|r| r.gccs.as_slice())
            .unwrap_or(&[])
    }

    /// Iterate over trusted records in fingerprint order (deterministic,
    /// so snapshots serialize byte-identically).
    pub fn iter(&self) -> impl Iterator<Item = (&Digest, &TrustRecord)> {
        self.order.iter().map(|fp| (fp, &self.trusted[fp]))
    }

    /// Iterate over explicitly distrusted fingerprints with justifications.
    pub fn iter_distrusted(&self) -> impl Iterator<Item = (&Digest, &str)> {
        self.distrusted.iter().map(|(d, j)| (d, j.as_str()))
    }

    /// Trusted roots whose subject matches `name` (used during chain
    /// building to find candidate trust anchors). Returned in fingerprint
    /// order so chain building is deterministic.
    pub fn roots_by_subject(&self, name: &DistinguishedName) -> Vec<&Certificate> {
        self.iter()
            .filter(|(_, r)| r.cert.subject() == name)
            .map(|(_, r)| &r.cert)
            .collect()
    }

    /// Does the record for `fp` permit `usage` for a leaf with the given
    /// notBefore? Implements NSS's systematic date/usage constraints.
    pub fn usage_permitted(&self, fp: &Digest, usage: Usage, leaf_not_before: i64) -> bool {
        let Some(rec) = self.trusted.get(fp) else {
            return false;
        };
        let cutoff = match usage {
            Usage::Tls => rec.tls_distrust_after,
            Usage::SMime => rec.smime_distrust_after,
        };
        match cutoff {
            Some(t) => leaf_not_before < t,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_x509::testutil::simple_chain;

    #[test]
    fn add_remove_distrust_lifecycle() {
        let pki = simple_chain("store.example");
        let fp = pki.root.fingerprint();
        let mut store = RootStore::new("test");
        assert_eq!(store.status(&fp), TrustStatus::Unknown);

        assert!(store.add_trusted(pki.root.clone()).unwrap());
        assert!(!store.add_trusted(pki.root.clone()).unwrap()); // idempotent
        assert_eq!(store.status(&fp), TrustStatus::Trusted);
        assert_eq!(store.len(), 1);

        store.distrust(fp, "incident");
        assert_eq!(store.status(&fp), TrustStatus::Distrusted);
        assert_eq!(store.len(), 0);

        // Re-adding a distrusted root fails...
        assert!(matches!(
            store.add_trusted(pki.root.clone()),
            Err(StoreError::Distrusted(_))
        ));
        // ...unless overridden (the Amazon Linux behaviour).
        assert!(store.add_trusted_overriding(pki.root.clone()).unwrap());
        assert_eq!(store.status(&fp), TrustStatus::Trusted);
    }

    #[test]
    fn leaves_are_rejected() {
        let pki = simple_chain("leafstore.example");
        let mut store = RootStore::new("test");
        assert!(matches!(
            store.add_trusted(pki.leaf.clone()),
            Err(StoreError::NotACa(_))
        ));
    }

    #[test]
    fn version_bumps_on_mutation() {
        let pki = simple_chain("version.example");
        let mut store = RootStore::new("test");
        assert_eq!(store.version(), 0);
        store.add_trusted(pki.root.clone()).unwrap();
        assert_eq!(store.version(), 1);
        store.distrust(pki.intermediate.fingerprint(), "x");
        assert_eq!(store.version(), 2);
    }

    #[test]
    fn gcc_attachment() {
        let pki = simple_chain("gcc.example");
        let fp = pki.root.fingerprint();
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();

        let gcc = Gcc::parse(
            "test-gcc",
            fp,
            "valid(Chain, U) :- chainUsage(Chain, U).",
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc.clone()).unwrap();
        assert_eq!(store.gccs_for(&fp).len(), 1);
        // Duplicate attachment is a no-op.
        store.attach_gcc(gcc.clone()).unwrap();
        assert_eq!(store.gccs_for(&fp).len(), 1);
        // Detach.
        assert!(store.detach_gcc(&fp, &gcc.source_hash()));
        assert!(store.gccs_for(&fp).is_empty());

        // Attaching to an unknown root fails.
        let other = gcc.retarget(Digest([9u8; 32]));
        assert!(matches!(
            store.attach_gcc(other),
            Err(StoreError::UnknownRoot(_))
        ));
    }

    #[test]
    fn systematic_constraints() {
        let pki = simple_chain("sys.example");
        let fp = pki.root.fingerprint();
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        store.record_mut(&fp).unwrap().tls_distrust_after = Some(1_000);

        assert!(store.usage_permitted(&fp, Usage::Tls, 999));
        assert!(!store.usage_permitted(&fp, Usage::Tls, 1_000));
        assert!(store.usage_permitted(&fp, Usage::SMime, 2_000)); // unconstrained
        assert!(!store.usage_permitted(&Digest([0; 32]), Usage::Tls, 0)); // unknown root
    }

    #[test]
    fn systematic_gcc_generation() {
        let pki = simple_chain("sysgcc.example");
        let fp = pki.root.fingerprint();
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();

        // Unconstrained record: no GCC to generate.
        assert!(store.record(&fp).unwrap().systematic_gcc().is_none());

        {
            let rec = store.record_mut(&fp).unwrap();
            rec.tls_distrust_after = Some(1_669_784_400);
            rec.smime_distrust_after = Some(1_669_784_400);
            rec.ev_allowed = false;
        }
        let gcc = store.record(&fp).unwrap().systematic_gcc().unwrap();
        assert_eq!(gcc.target(), fp);
        // The generated source mirrors Listing 1's shape.
        assert!(gcc.source().contains("\\+EV(Cert)"));
        assert!(gcc.source().contains("1669784400"));
    }

    #[test]
    fn roots_by_subject() {
        let pki = simple_chain("subject.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        let found = store.roots_by_subject(pki.root.subject());
        assert_eq!(found.len(), 1);
        assert!(store.roots_by_subject(pki.leaf.subject()).is_empty());
    }

    #[test]
    fn iteration_is_fingerprint_ordered() {
        // Insertion order must not leak into iteration order: feeds
        // serialize snapshots byte-identically from it.
        let a = simple_chain("iter-a.example");
        let b = simple_chain("iter-b.example");
        let c = simple_chain("iter-c.example");
        let mut store = RootStore::new("test");
        for pki in [&b, &c, &a] {
            store.add_trusted(pki.root.clone()).unwrap();
        }
        let fps: Vec<Digest> = store.iter().map(|(fp, _)| *fp).collect();
        let mut sorted = fps.clone();
        sorted.sort();
        assert_eq!(fps, sorted);
        assert_eq!(fps.len(), 3);

        // Removal keeps the sorted view in sync.
        store.remove(&b.root.fingerprint());
        assert_eq!(store.iter().count(), 2);
        store.distrust(c.root.fingerprint(), "incident");
        assert_eq!(store.iter().count(), 1);
        assert_eq!(store.iter().next().unwrap().0, &a.root.fingerprint());
    }

    #[test]
    fn has_policy_detection() {
        let pki = simple_chain("policy.example");
        let fp = pki.root.fingerprint();
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        assert!(!store.record(&fp).unwrap().has_policy());
        store.record_mut(&fp).unwrap().ev_allowed = false;
        assert!(store.record(&fp).unwrap().has_policy());
    }
}
