//! General Certificate Constraints: checked Datalog programs attached to
//! root certificates by SHA-256 fingerprint (paper §3).

use nrslb_crypto::sha256::{sha256, Digest};
use nrslb_datalog::{CompiledProgram, Engine, Program};
use std::fmt;
use std::sync::Arc;

/// Provenance and justification for a GCC, mirroring the paper's proposal
/// that RSF snapshots carry "justifications of particular decisions and
/// links to public discussions".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GccMetadata {
    /// Human-readable summary ("Partial distrust of Symantec roots").
    pub justification: String,
    /// Link to the public discussion (Bugzilla, dev-security-policy...).
    pub discussion_url: String,
    /// Unix timestamp when the constraint was authored.
    pub created_at: i64,
}

/// A General Certificate Constraint.
///
/// A GCC is a stratified Datalog program that must define the `valid/2`
/// predicate; during chain validation the query `valid(Chain, Usage)?` is
/// posed against the program plus the chain's fact representation, and the
/// chain is rejected if the query fails (paper §3). Construction performs
/// the full battery of static checks (parse, range restriction,
/// stratification), so a stored GCC is always executable.
#[derive(Clone)]
pub struct Gcc {
    inner: Arc<GccInner>,
}

struct GccInner {
    name: Arc<str>,
    target: Digest,
    source: String,
    compiled: Arc<CompiledProgram>,
    engine: Engine,
    source_hash: Digest,
    metadata: GccMetadata,
}

impl fmt::Debug for Gcc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Gcc(\"{}\" on {}, {} rules)",
            self.inner.name,
            self.inner.target.short(),
            self.inner.compiled.program().rules.len()
        )
    }
}

impl PartialEq for Gcc {
    fn eq(&self, other: &Self) -> bool {
        self.inner.target == other.inner.target && self.inner.source_hash == other.inner.source_hash
    }
}

impl Eq for Gcc {}

/// The predicate every GCC must define.
pub const VALID_PREDICATE: &str = "valid";

/// Replace `valid(Chain, V)` heads whose usage variable `V` is not bound
/// by the body with one rule per usage in the closed domain.
fn expand_usage_wildcards(program: &mut Program) {
    use nrslb_datalog::ast::{BodyItem, Term};
    let mut out = Vec::with_capacity(program.rules.len());
    for rule in program.rules.drain(..) {
        let expand = match (&*rule.head.pred == VALID_PREDICATE, rule.head.args.get(1)) {
            (true, Some(Term::Var(v))) => {
                // Unbound iff the variable never appears in the body.
                !rule.body.iter().any(|item| match item {
                    BodyItem::Pos(l) | BodyItem::Neg(l) => {
                        l.args.iter().any(|a| matches!(a, Term::Var(x) if x == v))
                    }
                    BodyItem::Cmp(lhs, _, rhs) => {
                        let mut vars = Vec::new();
                        lhs.vars(&mut vars);
                        rhs.vars(&mut vars);
                        vars.iter().any(|x| x == v)
                    }
                    BodyItem::Assign(target, expr) => {
                        let mut vars = Vec::new();
                        expr.vars(&mut vars);
                        target == v || vars.iter().any(|x| x == v)
                    }
                })
            }
            _ => false,
        };
        if expand {
            for usage in [crate::Usage::Tls, crate::Usage::SMime] {
                let mut clone = rule.clone();
                clone.head.args[1] = Term::str(usage.as_datalog());
                out.push(clone);
            }
        } else {
            out.push(rule);
        }
    }
    program.rules = out;
}

impl Gcc {
    /// Parse and check a GCC from Datalog source, attaching it to the root
    /// with fingerprint `target`.
    ///
    /// The paper's Listing 2 writes `valid(Chain, _) :- ...` to mean
    /// "valid for *any* usage"; a bare wildcard in a head position
    /// violates range restriction, so the GCC dialect expands such a
    /// rule over the closed usage domain (`"TLS"`, `"S/MIME"`) before
    /// checking.
    ///
    /// ```
    /// use nrslb_crypto::sha256::Digest;
    /// use nrslb_rootstore::{Gcc, GccMetadata};
    ///
    /// let target = Digest::ZERO; // normally a root's fingerprint
    /// let gcc = Gcc::parse(
    ///     "wosign-style",
    ///     target,
    ///     "cutoff(1477008000).\nvalid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff(T), NB < T.",
    ///     GccMetadata::default(),
    /// )
    /// .unwrap();
    /// assert_eq!(gcc.program().rules.len(), 3); // fact + wildcard expanded twice
    ///
    /// // Unsafe or unstratifiable programs are rejected at parse time.
    /// assert!(Gcc::parse("bad", target, "valid(C, U) :- \\+q(C, U).", GccMetadata::default()).is_err());
    /// ```
    pub fn parse(
        name: &str,
        target: Digest,
        source: &str,
        metadata: GccMetadata,
    ) -> Result<Gcc, nrslb_datalog::DatalogError> {
        let mut program = Program::parse(source)?;
        expand_usage_wildcards(&mut program);
        // Compilation runs the safety + stratification checks once; the
        // compiled program is kept (and shared by every clone/retarget of
        // this GCC) so evaluation never re-checks or re-stratifies, no
        // matter how many chains it is run against (§3.1).
        let compiled = Arc::new(CompiledProgram::compile(&program)?);
        if !program
            .rules
            .iter()
            .any(|r| &*r.head.pred == VALID_PREDICATE && r.head.args.len() == 2)
        {
            return Err(nrslb_datalog::DatalogError::Parse {
                offset: 0,
                message: format!("GCC must define {VALID_PREDICATE}/2"),
            });
        }
        Ok(Gcc {
            inner: Arc::new(GccInner {
                name: Arc::from(name),
                target,
                source_hash: sha256(source.as_bytes()),
                source: source.to_string(),
                engine: Engine::from_compiled(Arc::clone(&compiled)),
                compiled,
                metadata,
            }),
        })
    }

    /// The constraint's display name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The display name as a shared `Arc<str>` — verdicts clone this
    /// refcount instead of copying the string per evaluation.
    pub fn name_shared(&self) -> &Arc<str> {
        &self.inner.name
    }

    /// Fingerprint of the root certificate this GCC is attached to.
    pub fn target(&self) -> Digest {
        self.inner.target
    }

    /// The Datalog source text (what RSFs distribute).
    pub fn source(&self) -> &str {
        &self.inner.source
    }

    /// SHA-256 of the source text; identifies the GCC's content.
    pub fn source_hash(&self) -> Digest {
        self.inner.source_hash
    }

    /// The checked program.
    pub fn program(&self) -> &Program {
        self.inner.compiled.program()
    }

    /// The pre-stratified compiled program (compiled once at parse time),
    /// ready for shared-base evaluation against an `Arc<Database>`.
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.inner.compiled
    }

    /// The checked, ready-to-run engine (a thin wrapper over
    /// [`Gcc::compiled`]).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Provenance metadata.
    pub fn metadata(&self) -> &GccMetadata {
        &self.inner.metadata
    }

    /// Re-target the same program at a different root (common when one
    /// incident covers several roots, e.g. the four Symantec brands).
    ///
    /// The compiled program is shared, not recompiled: all retargets of
    /// one GCC evaluate through the same [`CompiledProgram`].
    pub fn retarget(&self, target: Digest) -> Gcc {
        Gcc {
            inner: Arc::new(GccInner {
                name: Arc::clone(&self.inner.name),
                target,
                source: self.inner.source.clone(),
                compiled: Arc::clone(&self.inner.compiled),
                engine: self.inner.engine.clone(),
                source_hash: self.inner.source_hash,
                metadata: self.inner.metadata.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING_1: &str = r#"
        nov30th2022(1669784400).
        valid(Chain, "S/MIME") :-
          leaf(Chain, Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
        valid(Chain, "TLS") :-
          leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
    "#;

    fn digest(tag: u8) -> Digest {
        Digest([tag; 32])
    }

    #[test]
    fn parses_listing_1() {
        let gcc = Gcc::parse("trustcor", digest(1), LISTING_1, GccMetadata::default()).unwrap();
        assert_eq!(gcc.name(), "trustcor");
        assert_eq!(gcc.target(), digest(1));
        assert_eq!(gcc.program().rules.len(), 3);
    }

    #[test]
    fn requires_valid_predicate() {
        let err = Gcc::parse("empty", digest(2), "p(1).", GccMetadata::default()).unwrap_err();
        assert!(err.to_string().contains("valid/2"));
    }

    #[test]
    fn rejects_unsafe_programs() {
        let err = Gcc::parse(
            "unsafe",
            digest(3),
            r#"valid(Chain, "TLS") :- leaf(Chain, C), \+revoked(X)."#,
            GccMetadata::default(),
        )
        .unwrap_err();
        assert!(matches!(err, nrslb_datalog::DatalogError::Unsafe { .. }));
    }

    #[test]
    fn usage_wildcard_head_expands_over_domain() {
        // The paper's Listing 2 shape: valid(Chain, _) means both usages.
        let gcc = Gcc::parse(
            "wildcard",
            digest(7),
            "valid(Chain, _) :- leaf(Chain, _).",
            GccMetadata::default(),
        )
        .unwrap();
        let heads: Vec<String> = gcc
            .program()
            .rules
            .iter()
            .map(|r| r.head.args[1].to_string())
            .collect();
        assert_eq!(heads, vec!["\"TLS\"", "\"S/MIME\""]);
        // A *bound* usage variable is left alone.
        let gcc = Gcc::parse(
            "bound",
            digest(8),
            "valid(Chain, U) :- requested(Chain, U).",
            GccMetadata::default(),
        )
        .unwrap();
        assert_eq!(gcc.program().rules.len(), 1);
    }

    #[test]
    fn rejects_unstratifiable_programs() {
        let err = Gcc::parse(
            "cyclic",
            digest(4),
            "valid(C, U) :- chain(C, U), \\+valid(C, U).",
            GccMetadata::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            nrslb_datalog::DatalogError::NotStratifiable { .. }
        ));
    }

    #[test]
    fn equality_is_content_and_target() {
        let a = Gcc::parse("a", digest(5), LISTING_1, GccMetadata::default()).unwrap();
        let b = Gcc::parse("b", digest(5), LISTING_1, GccMetadata::default()).unwrap();
        assert_eq!(a, b); // name/metadata do not affect identity
        let c = a.retarget(digest(6));
        assert_ne!(a, c);
        assert_eq!(c.target(), digest(6));
        assert_eq!(c.source(), a.source());
    }

    #[test]
    fn retarget_shares_the_compiled_program() {
        let a = Gcc::parse("a", digest(5), LISTING_1, GccMetadata::default()).unwrap();
        let c = a.retarget(digest(6));
        assert!(Arc::ptr_eq(a.compiled(), c.compiled()));
        assert!(Arc::ptr_eq(a.engine().compiled(), c.engine().compiled()));
    }
}
