//! An exact revocation list in OneCRL's shape.
//!
//! OneCRL entries identify certificates either by subject/public-key
//! (here: SHA-256 fingerprint) or by (issuer, serial) pair; both forms
//! are supported, with justification strings kept alongside, mirroring
//! the public audit trail the real list carries.

use crate::RevocationChecker;
use nrslb_crypto::sha256::Digest;
use nrslb_x509::Certificate;
use std::collections::BTreeMap;

/// An exact revocation list.
#[derive(Clone, Debug, Default)]
pub struct OneCrl {
    by_fingerprint: BTreeMap<Digest, String>,
    by_issuer_serial: BTreeMap<(String, i128), String>,
}

impl OneCrl {
    /// An empty list.
    pub fn new() -> OneCrl {
        OneCrl::default()
    }

    /// Revoke a certificate by fingerprint.
    pub fn revoke_fingerprint(&mut self, fp: Digest, justification: impl Into<String>) {
        self.by_fingerprint.insert(fp, justification.into());
    }

    /// Revoke by (issuer DN display form, serial) — the form used when
    /// the certificate itself was never collected.
    pub fn revoke_issuer_serial(
        &mut self,
        issuer: &str,
        serial: i128,
        justification: impl Into<String>,
    ) {
        self.by_issuer_serial
            .insert((issuer.to_string(), serial), justification.into());
    }

    /// Convenience: revoke a certificate in hand (records both forms).
    pub fn revoke_cert(&mut self, cert: &Certificate, justification: impl Into<String>) {
        let j = justification.into();
        self.revoke_fingerprint(cert.fingerprint(), j.clone());
        self.revoke_issuer_serial(&cert.issuer().to_string(), cert.serial(), j);
    }

    /// Number of entries (both forms counted).
    pub fn len(&self) -> usize {
        self.by_fingerprint.len() + self.by_issuer_serial.len()
    }

    /// True when nothing is revoked.
    pub fn is_empty(&self) -> bool {
        self.by_fingerprint.is_empty() && self.by_issuer_serial.is_empty()
    }

    /// The justification recorded for `cert`, if it is revoked.
    pub fn justification(&self, cert: &Certificate) -> Option<&str> {
        self.by_fingerprint
            .get(&cert.fingerprint())
            .or_else(|| {
                self.by_issuer_serial
                    .get(&(cert.issuer().to_string(), cert.serial()))
            })
            .map(|s| s.as_str())
    }
}

impl RevocationChecker for OneCrl {
    fn is_revoked(&self, cert: &Certificate) -> bool {
        self.justification(cert).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_x509::testutil::simple_chain;

    #[test]
    fn revocation_by_fingerprint() {
        let pki = simple_chain("onecrl.example");
        let mut list = OneCrl::new();
        assert!(!list.is_revoked(&pki.intermediate));
        list.revoke_fingerprint(pki.intermediate.fingerprint(), "MITM incident");
        assert!(list.is_revoked(&pki.intermediate));
        assert!(!list.is_revoked(&pki.leaf));
        assert_eq!(list.justification(&pki.intermediate), Some("MITM incident"));
    }

    #[test]
    fn revocation_by_issuer_serial() {
        let pki = simple_chain("onecrl2.example");
        let mut list = OneCrl::new();
        list.revoke_issuer_serial(
            &pki.leaf.issuer().to_string(),
            pki.leaf.serial(),
            "backdated",
        );
        assert!(list.is_revoked(&pki.leaf));
        // Same serial under a different issuer is untouched.
        let other = simple_chain("other.example");
        assert!(!list.is_revoked(&other.leaf));
    }

    #[test]
    fn revoke_cert_covers_both_forms() {
        let pki = simple_chain("onecrl3.example");
        let mut list = OneCrl::new();
        list.revoke_cert(&pki.leaf, "both");
        assert_eq!(list.len(), 2);
        assert!(list.is_revoked(&pki.leaf));
    }
}
