//! # `nrslb-revocation` — certificate revocation substrate
//!
//! The paper leans on the revocation mechanisms primaries already push
//! outside software updates: Mozilla's **OneCRL** and Chrome's
//! **CRLSet** (intermediate/leaf revocation lists), and cites **CRLite**
//! (Larisch et al., S&P '17) — "a scalable system for pushing all TLS
//! revocations to all browsers" built on Bloom-filter cascades. It also
//! argues (§4) that RSF *negative inclusion* subsumes **root**
//! revocation; this crate supplies the sub-root layers:
//!
//! * [`onecrl`] — an exact revocation list keyed the two ways OneCRL
//!   entries are: by certificate fingerprint, or by (issuer DN, serial);
//! * [`cascade`] — a CRLite-style Bloom-filter cascade: given the closed
//!   universe of known certificates (which CT provides), a compact
//!   structure with *zero* false positives and negatives.
//!
//! `nrslb-core`'s validator consumes either through the
//! [`RevocationChecker`] trait; incidents use it for the parts of §2.2
//! that were revocations rather than constraints (the MCS intermediate,
//! WoSign's backdated leaves).

#![warn(missing_docs)]

pub mod cascade;
pub mod onecrl;

pub use cascade::CrliteCascade;
pub use onecrl::OneCrl;

use nrslb_x509::Certificate;

/// Anything that can answer "is this certificate revoked?".
pub trait RevocationChecker: Send + Sync {
    /// Is `cert` revoked?
    fn is_revoked(&self, cert: &Certificate) -> bool;
}

impl<T: RevocationChecker + ?Sized> RevocationChecker for &T {
    fn is_revoked(&self, cert: &Certificate) -> bool {
        (**self).is_revoked(cert)
    }
}

impl<T: RevocationChecker + ?Sized> RevocationChecker for std::sync::Arc<T> {
    fn is_revoked(&self, cert: &Certificate) -> bool {
        (**self).is_revoked(cert)
    }
}
