//! A CRLite-style Bloom-filter cascade.
//!
//! CRLite's observation: with Certificate Transparency, the universe of
//! *known* certificates is closed, so a Bloom filter's false positives
//! can be corrected by a second filter built over exactly those false
//! positives, and so on — a cascade with **exact** membership for every
//! certificate in the universe, at a fraction of the size of an explicit
//! list.
//!
//! Levels alternate: level 0 holds the revoked set; level 1 holds the
//! valid certificates that level 0 falsely matched; level 2 holds the
//! revoked certificates level 1 falsely matched; ... A lookup walks
//! levels until one misses; the parity of the last matching level gives
//! the answer.

use crate::RevocationChecker;
use nrslb_crypto::sha256::{sha256_concat, Digest};
use nrslb_x509::Certificate;

/// One Bloom filter level.
#[derive(Clone, Debug)]
struct Level {
    bits: Vec<u64>,
    n_bits: u64,
    n_hashes: u32,
}

impl Level {
    fn build(keys: &[Digest], level_idx: u32, bits_per_key: usize) -> Level {
        let n_bits = (keys.len().max(1) * bits_per_key).next_power_of_two() as u64;
        let n_hashes = 3;
        let mut level = Level {
            bits: vec![0u64; (n_bits as usize).div_ceil(64)],
            n_bits,
            n_hashes,
        };
        for key in keys {
            for i in 0..n_hashes {
                let bit = level.bit_index(key, level_idx, i);
                level.bits[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        level
    }

    fn bit_index(&self, key: &Digest, level_idx: u32, hash_idx: u32) -> u64 {
        // Domain-separated per level and hash function.
        let digest = sha256_concat(&[
            b"crlite",
            &level_idx.to_be_bytes(),
            &hash_idx.to_be_bytes(),
            key.as_bytes(),
        ]);
        let mut val = [0u8; 8];
        val.copy_from_slice(&digest.as_bytes()[..8]);
        u64::from_be_bytes(val) % self.n_bits
    }

    fn contains(&self, key: &Digest, level_idx: u32) -> bool {
        (0..self.n_hashes).all(|i| {
            let bit = self.bit_index(key, level_idx, i);
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// A built cascade. Exact for every certificate in the build universe;
/// certificates outside the universe must not be queried (CRLite
/// guarantees this via CT: unlogged certificates are rejected upstream).
#[derive(Clone, Debug)]
pub struct CrliteCascade {
    levels: Vec<Level>,
}

impl CrliteCascade {
    /// Build a cascade over a closed universe. `revoked` and `valid`
    /// must be disjoint; together they are the universe.
    pub fn build(revoked: &[Digest], valid: &[Digest]) -> CrliteCascade {
        let mut levels = Vec::new();
        // include: keys the current level must match;
        // exclude: keys it must (eventually) not match.
        let mut include: Vec<Digest> = revoked.to_vec();
        let mut exclude: Vec<Digest> = valid.to_vec();
        let mut level_idx = 0u32;
        while !include.is_empty() {
            let level = Level::build(&include, level_idx, 16);
            // False positives among the excluded set become the next
            // level's include set.
            let fps: Vec<Digest> = exclude
                .iter()
                .filter(|k| level.contains(k, level_idx))
                .copied()
                .collect();
            levels.push(level);
            exclude = include;
            include = fps;
            level_idx += 1;
            assert!(level_idx < 64, "cascade failed to converge");
        }
        CrliteCascade { levels }
    }

    /// Build from certificates.
    pub fn build_from_certs(revoked: &[Certificate], valid: &[Certificate]) -> CrliteCascade {
        let r: Vec<Digest> = revoked.iter().map(|c| c.fingerprint()).collect();
        let v: Vec<Digest> = valid.iter().map(|c| c.fingerprint()).collect();
        CrliteCascade::build(&r, &v)
    }

    /// Is `key` in the revoked set? Exact within the build universe.
    pub fn contains(&self, key: &Digest) -> bool {
        let mut last_match = None;
        for (i, level) in self.levels.iter().enumerate() {
            if level.contains(key, i as u32) {
                last_match = Some(i);
            } else {
                break;
            }
        }
        // Matched through an even number of levels -> revoked.
        matches!(last_match, Some(i) if i % 2 == 0)
    }

    /// Number of cascade levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total filter size in bytes (the quantity CRLite optimizes).
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(Level::size_bytes).sum()
    }
}

impl RevocationChecker for CrliteCascade {
    fn is_revoked(&self, cert: &Certificate) -> bool {
        self.contains(&cert.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digests(tag: u8, n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| sha256_concat(&[&[tag], &(i as u64).to_be_bytes()]))
            .collect()
    }

    #[test]
    fn exact_over_universe() {
        let revoked = digests(1, 500);
        let valid = digests(2, 5_000);
        let cascade = CrliteCascade::build(&revoked, &valid);
        for k in &revoked {
            assert!(cascade.contains(k), "revoked key missing");
        }
        for k in &valid {
            assert!(!cascade.contains(k), "valid key falsely revoked");
        }
    }

    #[test]
    fn empty_revocation_set() {
        let cascade = CrliteCascade::build(&[], &digests(3, 100));
        assert_eq!(cascade.depth(), 0);
        for k in digests(3, 100) {
            assert!(!cascade.contains(&k));
        }
    }

    #[test]
    fn everything_revoked() {
        let revoked = digests(4, 64);
        let cascade = CrliteCascade::build(&revoked, &[]);
        for k in &revoked {
            assert!(cascade.contains(k));
        }
    }

    #[test]
    fn cascade_is_smaller_than_explicit_list_at_scale() {
        // CRLite's pitch: the cascade beats shipping 32-byte hashes.
        let revoked = digests(5, 2_000);
        let valid = digests(6, 40_000);
        let cascade = CrliteCascade::build(&revoked, &valid);
        let explicit = revoked.len() * 32;
        assert!(
            cascade.size_bytes() < explicit,
            "cascade {} bytes >= explicit list {} bytes",
            cascade.size_bytes(),
            explicit
        );
    }

    #[test]
    fn cascade_depth_is_shallow() {
        let revoked = digests(7, 1_000);
        let valid = digests(8, 10_000);
        let cascade = CrliteCascade::build(&revoked, &valid);
        assert!(cascade.depth() <= 8, "depth {}", cascade.depth());
    }
}
