//! The miniature ecosystem: one primary, N heterogeneous subscribers,
//! an evolving store, all driven by virtual time.
//!
//! An [`Ecosystem`] wires together a [`SimClock`], a
//! seeded [`Scheduler`], a
//! [`ChainGenerator`]-minted root pool, one
//! [`FeedPublisher`] and a fleet of [`Subscriber`]s — each with its own
//! [`SyncPolicy`], poll cadence and per-channel [`FaultInjector`]. Each
//! [`Ecosystem::step`] pops the next scheduled event, advances the
//! shared clock to its instant and executes it: the primary evolves
//! (distrusts, re-adds, attaches GCC templates) and publishes; a
//! subscriber polls through its lossy channel; or — when configured — a
//! forged split-view is presented to a victim subscriber, which must
//! quarantine. Every action appends one line to an event trace, the
//! raw material for the differential oracle's repro dumps.

use crate::chaingen::{ChainGenConfig, ChainGenerator, SampleChain};
use crate::schedule::{Scheduler, SimClock};
use nrslb_crypto::sha256;
use nrslb_crypto::Digest;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_rsf::signing::MessageKind;
use nrslb_rsf::{
    CoordinatorKey, Delta, FaultInjector, FaultPlan, FeedKey, FeedPublisher, FeedTrust,
    QuorumAuthority, QuorumConfig, Subscriber, SyncPolicy, SyncState, TransparencyLog,
};
use rand::prelude::*;

/// One-time-signature tree height for simulated quorum signer keys:
/// 256 signatures per signer per epoch covers every witnessed
/// checkpoint plus a 100-attempt forgery barrage with margin, while
/// keeping quorum key generation cheap enough for debug-build tests.
const SIM_SIGNER_HEIGHT: u8 = 8;

/// One subscriber's knobs: how often it polls, how lossy its channel
/// is, and how patient its retry/staleness policy is.
#[derive(Clone, Debug)]
pub struct SubscriberSpec {
    /// Store name (also the trace label).
    pub name: String,
    /// Seconds between scheduled polls.
    pub poll_interval_secs: i64,
    /// Per-frame probability of each transport fault mode.
    pub fault_rate: f64,
    /// Retry budget per poll.
    pub max_attempts: u32,
    /// Staleness bound for served stores.
    pub staleness_bound_secs: i64,
}

impl SubscriberSpec {
    /// A sensible default spec under `name`.
    pub fn named(name: &str) -> SubscriberSpec {
        SubscriberSpec {
            name: name.to_string(),
            poll_interval_secs: 3_600,
            fault_rate: 0.0,
            max_attempts: 6,
            staleness_bound_secs: 86_400,
        }
    }

    /// Builder-style: set the poll interval.
    pub fn polling_every(mut self, secs: i64) -> SubscriberSpec {
        self.poll_interval_secs = secs;
        self
    }

    /// Builder-style: set the channel fault rate.
    pub fn with_fault_rate(mut self, rate: f64) -> SubscriberSpec {
        self.fault_rate = rate;
        self
    }

    /// Builder-style: set the staleness bound.
    pub fn with_staleness_bound(mut self, secs: i64) -> SubscriberSpec {
        self.staleness_bound_secs = secs;
        self
    }
}

/// Configuration of a whole simulated ecosystem.
#[derive(Clone, Debug)]
pub struct EcosystemConfig {
    /// Master seed: drives store evolution, channel faults, jitter and
    /// the chain generator (via derived sub-seeds).
    pub seed: u64,
    /// Virtual start time (unix-like seconds).
    pub epoch_secs: i64,
    /// Seconds between primary publish cycles.
    pub publish_interval_secs: i64,
    /// Every Nth publish is a full snapshot followed by delta pruning,
    /// forcing snapshot fallbacks on laggards.
    pub snapshot_every: u64,
    /// Probability a publish cycle distrusts a currently-trusted root.
    pub distrust_probability: f64,
    /// Probability a publish cycle re-adds a distrusted root
    /// (override), modelling derivative churn.
    pub readd_probability: f64,
    /// Probability a publish cycle attaches a fresh GCC template.
    pub gcc_attach_probability: f64,
    /// GCC templates attached to every pool root *before* the first
    /// publish (capped at 4 per root). Zero means all coverage comes
    /// from evolution; the differential bench pre-seeds coverage so its
    /// check floor is reached without waiting for attach events.
    pub initial_gccs_per_root: usize,
    /// The subscriber fleet.
    pub subscribers: Vec<SubscriberSpec>,
    /// When set, a forged split-view is presented to subscriber 0 at
    /// this absolute virtual time (it must quarantine).
    pub split_view_attack_at_secs: Option<i64>,
    /// When set, the feed is governed by a k-of-n quorum instead of the
    /// single coordinator (checkpoints are witnessed; subscribers pin
    /// the signer set).
    pub quorum: Option<QuorumConfig>,
    /// When set (quorum feeds only), a share-rotation ceremony runs at
    /// this absolute virtual time and flows through the feed.
    pub rotate_at_secs: Option<i64>,
    /// When set (quorum feeds only), a compromised minority of `k-1`
    /// signers stages forged checkpoints at this virtual time; every
    /// presentation must be rejected ([`Ecosystem::forged_accepted`]).
    pub minority_attack: Option<MinorityAttack>,
    /// PKI sizing for the chain generator (its seed is overridden with
    /// one derived from `seed`).
    pub chains: ChainGenConfig,
}

/// Parameters of the compromised-minority scenario: an attacker holding
/// `k-1` signers' keys and shares (rebuilt from the deterministic
/// derivation, mirroring how the split-view attack rebuilds the feed
/// key) stages forged checkpoints against both a pinned fleet member
/// and a fresh bootstrapping victim.
#[derive(Clone, Copy, Debug)]
pub struct MinorityAttack {
    /// Absolute virtual time of the attack.
    pub at_secs: i64,
    /// Forged-checkpoint presentations to stage (each counted in
    /// [`Ecosystem::forged_attempts`]).
    pub attempts: u32,
}

impl Default for EcosystemConfig {
    fn default() -> EcosystemConfig {
        EcosystemConfig {
            seed: 0xec0_515,
            epoch_secs: nrslb_x509::testutil::T0,
            publish_interval_secs: 1_800,
            snapshot_every: 5,
            distrust_probability: 0.2,
            readd_probability: 0.15,
            gcc_attach_probability: 0.6,
            initial_gccs_per_root: 0,
            subscribers: vec![
                SubscriberSpec::named("mirror").polling_every(1_800),
                SubscriberSpec::named("laggard")
                    .polling_every(7_200)
                    .with_fault_rate(0.3),
                SubscriberSpec::named("flaky")
                    .polling_every(3_600)
                    .with_fault_rate(0.6)
                    .with_staleness_bound(7_200),
            ],
            split_view_attack_at_secs: None,
            quorum: None,
            rotate_at_secs: None,
            minority_attack: None,
            chains: ChainGenConfig::default(),
        }
    }
}

/// The scheduled event kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EcoEvent {
    /// A primary publish cycle (evolve + publish).
    Evolve,
    /// Subscriber `i` polls its channel.
    Poll(usize),
    /// The split-view attack against subscriber 0.
    Attack,
    /// A quorum share-rotation ceremony on the primary.
    Rotate,
    /// The compromised-minority forged-checkpoint barrage.
    MinorityAttack,
}

struct SubscriberSlot {
    subscriber: Subscriber,
    injector: FaultInjector,
    spec: SubscriberSpec,
}

/// The wired-up simulation (see module docs).
pub struct Ecosystem {
    config: EcosystemConfig,
    clock: SimClock,
    scheduler: Scheduler<EcoEvent>,
    rng: StdRng,
    truth: RootStore,
    publisher: FeedPublisher,
    feed_seed: [u8; 32],
    coordinator_seed: [u8; 32],
    quorum_seed: [u8; 32],
    trust: FeedTrust,
    slots: Vec<SubscriberSlot>,
    generator: ChainGenerator,
    /// Ordered pool-root fingerprints — seeded choices must never
    /// iterate the store's hash map.
    pool: Vec<Digest>,
    trace: Vec<String>,
    publishes: u64,
    gccs_attached: u64,
    attack_done: bool,
    forged_attempts: u64,
    forged_accepted: u64,
    minority_attack_done: bool,
}

impl Ecosystem {
    /// Build the PKI, the primary, the fleet, and the initial schedule.
    pub fn new(config: &EcosystemConfig) -> Ecosystem {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let clock = SimClock::starting_at(config.epoch_secs);
        let mut gen_config = config.chains;
        gen_config.seed = config.seed ^ 0xc4a1_97e5;
        let generator = ChainGenerator::new(&gen_config, config.epoch_secs);

        let mut coordinator_seed = [0u8; 32];
        rng.fill(&mut coordinator_seed);
        let mut feed_seed = [0u8; 32];
        rng.fill(&mut feed_seed);
        let mut quorum_seed = [0u8; 32];
        rng.fill(&mut quorum_seed);

        let mut truth = RootStore::new("primary");
        let mut pool = Vec::new();
        for root in generator.trusted_roots() {
            pool.push(root.fingerprint());
            truth.add_trusted(root).expect("pool root");
        }
        let mut gccs_attached = 0u64;
        for fp in &pool {
            for _ in 0..config.initial_gccs_per_root.min(4) {
                let gcc = gcc_template(gccs_attached, *fp, config.epoch_secs);
                truth.attach_gcc(gcc).expect("initial GCC");
                gccs_attached += 1;
            }
        }
        let (publisher, trust) = match config.quorum {
            Some(qc) => {
                let authority = QuorumAuthority::from_seed(quorum_seed, qc, SIM_SIGNER_HEIGHT)
                    .expect("quorum authority");
                let trust = FeedTrust::quorum(authority.trust());
                let feed_key =
                    FeedKey::new_quorum(feed_seed, 12, &authority).expect("quorum feed key");
                let publisher = FeedPublisher::new_quorum(
                    "primary",
                    feed_key,
                    authority,
                    &truth,
                    config.epoch_secs,
                )
                .expect("publisher");
                (publisher, trust)
            }
            None => {
                let coordinator =
                    CoordinatorKey::from_seed(coordinator_seed, 4).expect("coordinator key");
                let feed_key = FeedKey::new(feed_seed, 12, &coordinator).expect("feed key");
                let trust = FeedTrust::single(coordinator.public());
                let publisher = FeedPublisher::new("primary", feed_key, &truth, config.epoch_secs)
                    .expect("publisher");
                (publisher, trust)
            }
        };

        let mut scheduler = Scheduler::new();
        scheduler.schedule_at_secs(
            config.epoch_secs + config.publish_interval_secs,
            EcoEvent::Evolve,
        );
        let mut slots = Vec::with_capacity(config.subscribers.len());
        for (i, spec) in config.subscribers.iter().enumerate() {
            let subscriber = Subscriber::builder(&spec.name, trust.clone())
                .policy(SyncPolicy {
                    max_attempts: spec.max_attempts,
                    base_backoff_ms: 50,
                    max_backoff_ms: 5_000,
                    staleness_bound_secs: spec.staleness_bound_secs,
                    jitter_seed: config.seed ^ (i as u64),
                    ..SyncPolicy::default()
                })
                .clock(clock.handle())
                .build();
            let injector = FaultInjector::new(FaultPlan::lossy(
                spec.fault_rate,
                config.seed ^ 0x1f1f ^ ((i as u64) << 8),
            ));
            // Stagger first polls by a second each so same-instant ties
            // never depend on fleet ordering quirks.
            scheduler.schedule_at_secs(config.epoch_secs + 1 + i as i64, EcoEvent::Poll(i));
            slots.push(SubscriberSlot {
                subscriber,
                injector,
                spec: spec.clone(),
            });
        }
        if let Some(at) = config.split_view_attack_at_secs {
            scheduler.schedule_at_secs(at, EcoEvent::Attack);
        }
        if config.quorum.is_some() {
            if let Some(at) = config.rotate_at_secs {
                scheduler.schedule_at_secs(at, EcoEvent::Rotate);
            }
            if let Some(attack) = config.minority_attack {
                scheduler.schedule_at_secs(attack.at_secs, EcoEvent::MinorityAttack);
            }
        }

        Ecosystem {
            config: config.clone(),
            clock,
            scheduler,
            rng,
            truth,
            publisher,
            feed_seed,
            coordinator_seed,
            quorum_seed,
            trust,
            slots,
            generator,
            pool,
            trace: Vec::new(),
            publishes: 0,
            gccs_attached,
            attack_done: false,
            forged_attempts: 0,
            forged_accepted: 0,
            minority_attack_done: false,
        }
    }

    /// The shared simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> i64 {
        self.clock.now_secs()
    }

    /// The primary's (ground-truth) store.
    pub fn truth(&self) -> &RootStore {
        &self.truth
    }

    /// The primary's feed sequence.
    pub fn publisher_sequence(&self) -> u64 {
        self.publisher.sequence()
    }

    /// Number of subscribers in the fleet.
    pub fn subscriber_count(&self) -> usize {
        self.slots.len()
    }

    /// Subscriber `i`'s sync engine (read-only).
    pub fn subscriber(&self, i: usize) -> &Subscriber {
        &self.slots[i].subscriber
    }

    /// Subscriber `i`'s spec.
    pub fn subscriber_spec(&self, i: usize) -> &SubscriberSpec {
        &self.slots[i].spec
    }

    /// GCC templates attached to the truth store so far.
    pub fn gccs_attached(&self) -> u64 {
        self.gccs_attached
    }

    /// True once the configured split-view attack has been delivered.
    pub fn attack_done(&self) -> bool {
        self.attack_done
    }

    /// Forged-checkpoint presentations staged by the compromised
    /// minority so far.
    pub fn forged_attempts(&self) -> u64 {
        self.forged_attempts
    }

    /// Forged-checkpoint presentations a subscriber ACCEPTED — any
    /// non-zero value is a soundness violation of the quorum scheme.
    pub fn forged_accepted(&self) -> u64 {
        self.forged_accepted
    }

    /// True once the configured compromised-minority attack has run.
    pub fn minority_attack_done(&self) -> bool {
        self.minority_attack_done
    }

    /// The full event trace (one line per executed event).
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// The most recent `n` trace lines (for bounded repro dumps).
    pub fn recent_trace(&self, n: usize) -> Vec<String> {
        let start = self.trace.len().saturating_sub(n);
        self.trace[start..].to_vec()
    }

    /// Draw the next sample chain at the current virtual instant.
    pub fn next_sample(&mut self) -> SampleChain {
        let now = self.clock.now_secs();
        self.generator.next_sample(now)
    }

    /// Pop and execute the next scheduled event, advancing the clock to
    /// its instant. Returns the executed event, or `None` if the
    /// schedule ever drained (recurring events make that unreachable in
    /// practice).
    pub fn step(&mut self) -> Option<EcoEvent> {
        let (at_millis, event) = self.scheduler.pop()?;
        self.clock.advance_to_millis(at_millis);
        match event {
            EcoEvent::Evolve => self.evolve(),
            EcoEvent::Poll(i) => self.poll(i),
            EcoEvent::Attack => self.attack_split_view(0),
            EcoEvent::Rotate => self.rotate_quorum(),
            EcoEvent::MinorityAttack => self.attack_minority(),
        }
        Some(event)
    }

    fn evolve(&mut self) {
        let now = self.clock.now_secs();
        let mut actions = Vec::new();
        if self.rng.gen_bool(self.config.distrust_probability) {
            let idx = self.rng.gen_range(0usize..self.pool.len());
            let fp = self.pool[idx];
            if self.truth.record(&fp).is_some() {
                self.truth
                    .distrust(fp, format!("simulated incident at t={now}"));
                actions.push(format!("distrust root#{idx}"));
            }
        }
        if self.rng.gen_bool(self.config.readd_probability) {
            let idx = self.rng.gen_range(0usize..self.pool.len());
            let fp = self.pool[idx];
            if self.truth.record(&fp).is_none() {
                let cert = self
                    .generator
                    .trusted_roots()
                    .into_iter()
                    .find(|c| c.fingerprint() == fp)
                    .expect("pool cert");
                if self.truth.add_trusted_overriding(cert).is_ok() {
                    actions.push(format!("re-add root#{idx}"));
                }
            }
        }
        if self.rng.gen_bool(self.config.gcc_attach_probability) {
            let idx = self.rng.gen_range(0usize..self.pool.len());
            let fp = self.pool[idx];
            if self.truth.record(&fp).is_some() && self.truth.gccs_for(&fp).len() < 4 {
                let gcc = self.next_gcc_template(fp, now);
                let name = gcc.name().to_string();
                if self.truth.attach_gcc(gcc).is_ok() {
                    self.gccs_attached += 1;
                    actions.push(format!("attach {name} to root#{idx}"));
                }
            }
        }
        self.publishes += 1;
        self.publisher.publish(&self.truth, now).expect("publish");
        if self.publishes.is_multiple_of(self.config.snapshot_every) {
            // Re-baseline on a snapshot and drop old deltas so laggards
            // must exercise the snapshot-fallback path.
            self.publisher.publish_snapshot(now).expect("snapshot");
            self.publisher.prune();
            actions.push("snapshot+prune".to_string());
        }
        self.trace.push(format!(
            "t={now} evolve seq={} [{}]",
            self.publisher.sequence(),
            actions.join(", ")
        ));
        self.scheduler
            .schedule_at_secs(now + self.config.publish_interval_secs, EcoEvent::Evolve);
    }

    fn poll(&mut self, i: usize) {
        let slot = &mut self.slots[i];
        let outcome = slot
            .subscriber
            .sync_resilient_now(&mut self.publisher, &mut slot.injector);
        let now = self.clock.now_secs();
        let line = match outcome {
            Ok(r) => format!(
                "t={now} poll {} seq={} attempts={}",
                slot.spec.name, r.report.sequence, r.attempts
            ),
            Err(e) => format!("t={now} poll {} failed: {e}", slot.spec.name),
        };
        self.trace.push(line);
        self.scheduler
            .schedule_at_secs(now + slot.spec.poll_interval_secs, EcoEvent::Poll(i));
    }

    /// Present a forged, history-rewriting feed to subscriber `victim`
    /// — correctly signed (the feed key is "compromised": same seed,
    /// fresh one-time-signature state) over a rebuilt transparency log.
    /// The subscriber must detect the split view and quarantine.
    fn attack_split_view(&mut self, victim: usize) {
        let now = self.clock.now_secs();
        let pinned_size = match self.slots[victim].subscriber.pinned_checkpoint() {
            Some(c) => c.size,
            None => {
                // Never synced: nothing pinned to fork from yet; retry
                // after the victim's next poll.
                let retry = now + self.slots[victim].spec.poll_interval_secs + 1;
                self.trace
                    .push(format!("t={now} attack deferred (victim unpinned)"));
                self.scheduler.schedule_at_secs(retry, EcoEvent::Attack);
                return;
            }
        };
        let coordinator =
            CoordinatorKey::from_seed(self.coordinator_seed, 4).expect("coordinator key");
        let fork_key = FeedKey::new(self.feed_seed, 12, &coordinator).expect("fork key");
        let mut forked_log = TransparencyLog::new();
        let mut evil = RootStore::new("primary");
        evil.distrust(sha256::sha256(b"attacker rewrite"), "attacker");
        let filler = Delta::between(&RootStore::new("primary"), &self.truth, 0, 1, now);
        let forged_filler = fork_key
            .sign(MessageKind::Delta, &filler.encode())
            .expect("sign filler");
        for _ in 0..=pinned_size {
            forked_log.append(&forged_filler);
        }
        let slot = &mut self.slots[victim];
        let next = Delta::between(
            slot.subscriber.store(),
            &evil,
            slot.subscriber.sequence(),
            slot.subscriber.sequence() + 1,
            now,
        );
        let forged_next = fork_key
            .sign(MessageKind::Delta, &next.encode())
            .expect("sign forged delta");
        forked_log.append(&forged_next);
        let forged_ckpt = forked_log.checkpoint(&fork_key).expect("forged checkpoint");
        let forged_proof = forked_log.prove_consistency(pinned_size, forked_log.len());
        let result = slot
            .subscriber
            .poll(vec![forged_next], forged_ckpt, forged_proof, now);
        let quarantined = matches!(slot.subscriber.state(), SyncState::Quarantined { .. });
        self.attack_done = true;
        self.trace.push(format!(
            "t={now} attack on {}: poll_err={:?} quarantined={quarantined}",
            slot.spec.name,
            result.err().map(|e| e.to_string())
        ));
    }

    /// Run the scheduled share-rotation ceremony: the quorum recovers
    /// its master from k shares, derives the next signer set, and the
    /// outgoing quorum approves the hand-off through the transparency
    /// log (subscribers pick the event up on their next poll).
    fn rotate_quorum(&mut self) {
        let now = self.clock.now_secs();
        let epoch = match self.publisher.rotate(now) {
            Ok(event) => event.to_epoch,
            Err(e) => {
                self.trace.push(format!("t={now} rotate failed: {e}"));
                return;
            }
        };
        self.trace
            .push(format!("t={now} rotate quorum epoch={epoch}"));
    }

    /// Stage the compromised-minority barrage: an attacker holding
    /// `k-1` signers' keys and the feed seed (rebuilt from the
    /// deterministic derivation, like the split-view fork key) presents
    /// forged checkpoints to a fresh bootstrapping victim and to pinned
    /// fleet member 0. Forgery strategies cycle per attempt:
    /// an honest-but-sub-quorum witness, a missing witness, and a
    /// bitmap padded to `k` with a rogue-key partial. Every
    /// presentation must be rejected with a retryable signature error —
    /// never accepted, and never a quarantine of the honest fleet.
    fn attack_minority(&mut self) {
        let now = self.clock.now_secs();
        let Some(attack) = self.config.minority_attack else {
            return;
        };
        let Some(qc) = self.config.quorum else {
            self.minority_attack_done = true;
            self.trace.push(format!(
                "t={now} minority attack skipped (single-signer feed)"
            ));
            return;
        };
        // The compromised minority: fresh one-time-signature state for
        // the k-1 leaked signer keys, at the genesis epoch they were
        // leaked in.
        let compromised = QuorumAuthority::from_seed(self.quorum_seed, qc, SIM_SIGNER_HEIGHT)
            .expect("compromised minority");
        let minority: Vec<u8> = (0..qc.k - 1).collect();
        let mut rogue =
            nrslb_crypto::hbs::Keypair::from_seed(*sha256::sha256(b"rogue signer").as_bytes(), 8)
                .expect("rogue signer");
        // The attacker replays the real feed's (public) quorum
        // endorsement, so the checkpoint witness is the only line of
        // defense being exercised.
        let honest_endorsement = self
            .publisher
            .fetch(0)
            .first()
            .expect("published message")
            .endorsement
            .clone();
        let coordinator =
            CoordinatorKey::from_seed(self.coordinator_seed, 4).expect("coordinator key");
        let fork_key = FeedKey::new(self.feed_seed, 12, &coordinator).expect("fork key");
        let mut evil = RootStore::new("primary");
        evil.distrust(sha256::sha256(b"minority rewrite"), "attacker");
        let delta = Delta::between(&RootStore::new("primary"), &evil, 0, 1, now);
        let mut forged_msg = fork_key
            .sign(MessageKind::Delta, &delta.encode())
            .expect("sign forged delta");
        forged_msg.endorsement = honest_endorsement;
        let mut forked_log = TransparencyLog::new();
        forked_log.append(&forged_msg);
        let base_ckpt = forked_log.checkpoint(&fork_key).expect("forged checkpoint");
        let mut rejections: Vec<String> = Vec::new();
        for j in 0..attack.attempts {
            // Vary the witnessed bytes per attempt so every forgery
            // carries fresh partial signatures.
            let mut witnessed = base_ckpt.encode();
            witnessed.extend_from_slice(&j.to_le_bytes());
            let witness = match j % 3 {
                0 => Some(
                    compromised
                        .sign_with(&minority, &witnessed)
                        .expect("minority partials"),
                ),
                1 => None,
                _ => {
                    let mut qs = compromised
                        .sign_with(&minority, &witnessed)
                        .expect("minority partials");
                    qs.bitmap |= 1 << (qc.k - 1);
                    qs.partials
                        .push(rogue.sign(&witnessed).expect("rogue partial"));
                    Some(qs)
                }
            };
            let mut forged_ckpt = base_ckpt.clone();
            forged_ckpt.witness = witness;
            // A fresh bootstrapping victim: nothing pinned yet, so the
            // quorum witness is its only protection.
            let mut fresh = Subscriber::builder("fresh-victim", self.trust.clone())
                .clock(self.clock.handle())
                .build();
            self.forged_attempts += 1;
            match fresh.poll(vec![forged_msg.clone()], forged_ckpt.clone(), None, now) {
                Ok(_) => self.forged_accepted += 1,
                Err(e) => {
                    if rejections.len() < 3 {
                        rejections.push(e.to_string());
                    }
                }
            }
            // The pinned fleet member: must reject retryably, not
            // quarantine (the witness check fires before any
            // split-view history check).
            self.forged_attempts += 1;
            match self.slots[0]
                .subscriber
                .poll(vec![forged_msg.clone()], forged_ckpt, None, now)
            {
                Ok(_) => self.forged_accepted += 1,
                Err(e) => {
                    if rejections.len() < 3 {
                        rejections.push(e.to_string());
                    }
                }
            }
        }
        self.minority_attack_done = true;
        let quarantined = matches!(
            self.slots[0].subscriber.state(),
            SyncState::Quarantined { .. }
        );
        self.trace.push(format!(
            "t={now} minority attack: attempts={} accepted={} fleet_quarantined={quarantined} rejections={:?}",
            self.forged_attempts, self.forged_accepted, rejections
        ));
    }

    /// The next GCC template, parameterized by the current instant so
    /// successive attachments have distinct sources.
    fn next_gcc_template(&mut self, target: Digest, now: i64) -> Gcc {
        gcc_template(self.gccs_attached, target, now)
    }
}

/// The `n`th GCC template in a fixed 4-cycle of behaviourally distinct
/// constraints, targeted at `target` and stamped with `now` so
/// successive attachments have distinct sources.
fn gcc_template(n: u64, target: Digest, now: i64) -> Gcc {
    let (name, source) = match n % 4 {
        0 => (
            format!("cutoff-{n}"),
            format!(
                "cutoff({now}).\nvalid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff(T), NB < T."
            ),
        ),
        1 => (
            format!("no-ev-tls-{n}"),
            concat!(
                "valid(Chain, \"TLS\") :- leaf(Chain, C), \\+EV(C).\n",
                "valid(Chain, \"S/MIME\") :- leaf(Chain, _)."
            )
            .to_string(),
        ),
        2 => (
            format!("example-tld-{n}"),
            concat!(
                "valid(Chain, \"TLS\") :- leaf(Chain, C), sanTld(C, \"example\").\n",
                "valid(Chain, \"S/MIME\") :- chain(Chain)."
            )
            .to_string(),
        ),
        _ => (
            format!("accept-all-{n}"),
            "valid(Chain, _) :- chain(Chain).".to_string(),
        ),
    };
    Gcc::parse(
        &name,
        target,
        &source,
        GccMetadata {
            justification: format!("simulated constraint {n}"),
            discussion_url: String::new(),
            created_at: now,
        },
    )
    .expect("template GCC parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drained(config: &EcosystemConfig, steps: usize) -> (Ecosystem, Vec<String>) {
        let mut eco = Ecosystem::new(config);
        for _ in 0..steps {
            eco.step();
        }
        let trace = eco.trace().to_vec();
        (eco, trace)
    }

    #[test]
    fn same_seed_same_trace() {
        let config = EcosystemConfig::default();
        let (_, a) = drained(&config, 120);
        let (_, b) = drained(&config, 120);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seed_different_trace() {
        let mut other = EcosystemConfig::default();
        other.seed ^= 1;
        let (_, a) = drained(&EcosystemConfig::default(), 120);
        let (_, b) = drained(&other, 120);
        assert_ne!(a, b);
    }

    #[test]
    fn faultless_subscriber_tracks_the_primary() {
        let config = EcosystemConfig {
            subscribers: vec![SubscriberSpec::named("mirror").polling_every(1_800)],
            ..EcosystemConfig::default()
        };
        let mut eco = Ecosystem::new(&config);
        for _ in 0..60 {
            eco.step();
        }
        // The mirror polls as often as the primary publishes, with no
        // channel faults: step to its next poll and it must be current.
        while !matches!(eco.step(), Some(EcoEvent::Poll(0))) {}
        assert_eq!(eco.subscriber(0).sequence(), eco.publisher_sequence());
        assert!(matches!(eco.subscriber(0).state(), SyncState::Live));
        assert!(eco.gccs_attached() > 0, "evolution must attach GCCs");
    }

    fn quorum_config() -> EcosystemConfig {
        EcosystemConfig {
            subscribers: vec![
                SubscriberSpec::named("mirror").polling_every(1_800),
                SubscriberSpec::named("laggard").polling_every(14_400),
            ],
            quorum: Some(QuorumConfig { k: 2, n: 3 }),
            ..EcosystemConfig::default()
        }
    }

    #[test]
    fn quorum_feed_converges_like_single_signer() {
        let config = quorum_config();
        let mut eco = Ecosystem::new(&config);
        for _ in 0..60 {
            eco.step();
        }
        while !matches!(eco.step(), Some(EcoEvent::Poll(0))) {}
        assert_eq!(eco.subscriber(0).sequence(), eco.publisher_sequence());
        assert!(matches!(eco.subscriber(0).state(), SyncState::Live));
    }

    #[test]
    fn rotation_flows_through_the_fleet() {
        let mut config = quorum_config();
        config.rotate_at_secs = Some(config.epoch_secs + 4 * 3_600);
        let mut eco = Ecosystem::new(&config);
        for _ in 0..200 {
            eco.step();
        }
        assert!(
            eco.trace()
                .iter()
                .any(|l| l.contains("rotate quorum epoch=2")),
            "rotation never ran: {:?}",
            eco.recent_trace(10)
        );
        // Both fleet members keep tracking the primary across the
        // rotation, and their pinned trust advanced to the new epoch.
        while !matches!(eco.step(), Some(EcoEvent::Poll(0))) {}
        assert_eq!(eco.subscriber(0).sequence(), eco.publisher_sequence());
        for i in 0..eco.subscriber_count() {
            match eco.subscriber(i).trust() {
                FeedTrust::Quorum(quorum) => assert_eq!(quorum.epoch, 2),
                other => panic!("expected quorum trust, got {other:?}"),
            }
        }
    }

    #[test]
    fn compromised_minority_never_forges_a_checkpoint() {
        let mut config = quorum_config();
        config.minority_attack = Some(MinorityAttack {
            at_secs: config.epoch_secs + 6 * 3_600,
            attempts: 30,
        });
        let mut eco = Ecosystem::new(&config);
        for _ in 0..400 {
            eco.step();
            if eco.minority_attack_done() {
                break;
            }
        }
        assert!(eco.minority_attack_done(), "minority attack never fired");
        assert_eq!(eco.forged_attempts(), 60);
        assert_eq!(
            eco.forged_accepted(),
            0,
            "a sub-quorum forgery was accepted: {:?}",
            eco.recent_trace(5)
        );
        // The forgeries are retryable signature failures, not split
        // views: the honest fleet keeps converging afterwards.
        assert!(
            !matches!(eco.subscriber(0).state(), SyncState::Quarantined { .. }),
            "honest fleet member quarantined by a rejected forgery"
        );
        while !matches!(eco.step(), Some(EcoEvent::Poll(0))) {}
        assert_eq!(eco.subscriber(0).sequence(), eco.publisher_sequence());
        assert!(matches!(eco.subscriber(0).state(), SyncState::Live));
    }

    #[test]
    fn split_view_attack_quarantines_the_victim() {
        let mut config = EcosystemConfig::default();
        config.split_view_attack_at_secs = Some(config.epoch_secs + 8 * 3_600);
        let mut eco = Ecosystem::new(&config);
        for _ in 0..400 {
            eco.step();
            if eco.attack_done() {
                break;
            }
        }
        assert!(eco.attack_done(), "attack event never fired");
        assert!(
            matches!(eco.subscriber(0).state(), SyncState::Quarantined { .. }),
            "victim must quarantine on a split view, got {:?}",
            eco.subscriber(0).state()
        );
    }
}
