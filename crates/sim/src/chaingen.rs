//! Seeded generation and mutation of X.509 chains — the input stream
//! of the differential harness.
//!
//! A [`ChainGenerator`] mints a small deterministic PKI (a few roots,
//! each with an unconstrained and a name-constrained intermediate, plus
//! one *rogue* root no store trusts) and then produces an endless,
//! seed-reproducible stream of [`SampleChain`]s: mostly well-formed
//! chains, interleaved with every mutation the validator is supposed to
//! reject — expired and not-yet-valid leaves, wrong EKUs, SANs outside
//! a name-constraint scope, flipped DER bits, dropped or foreign
//! intermediates, and chains anchored at the untrusted rogue root.
//!
//! Every serial number is drawn from the generator's own counter (the
//! builder's process-global default would make output depend on test
//! ordering), and every CA seed is derived from the run seed, so the
//! same seed reproduces the same certificates byte for byte.

use nrslb_x509::extensions::{ExtendedKeyUsage, NameConstraints};
use nrslb_x509::name::DistinguishedName;
use nrslb_x509::{oids, CaKey, Certificate, CertificateBuilder};
use rand::prelude::*;
use std::sync::Arc;

/// How the deterministic PKI is sized.
#[derive(Clone, Copy, Debug)]
pub struct ChainGenConfig {
    /// Seed for every random decision (and, derived, every CA key).
    pub seed: u64,
    /// Trusted roots to mint.
    pub roots: usize,
    /// Intermediates per root (the second one, when present, is
    /// name-constrained to the root's DNS scope).
    pub intermediates_per_root: usize,
}

impl Default for ChainGenConfig {
    fn default() -> ChainGenConfig {
        ChainGenConfig {
            seed: 0xc4a1,
            roots: 3,
            intermediates_per_root: 2,
        }
    }
}

/// The ways a sample chain can deviate from a well-formed one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainMutation {
    /// Well-formed: in-validity leaf with serverAuth EKU.
    Pristine,
    /// Leaf validity window ended before `now`.
    ExpiredLeaf,
    /// Leaf validity window starts after `now`.
    NotYetValidLeaf,
    /// Leaf EKU asserts only emailProtection (wrong for TLS).
    WrongEku,
    /// Well-formed leaf additionally asserting the CA/B EV policy.
    EvLeaf,
    /// Leaf under the name-constrained intermediate with a SAN outside
    /// the permitted subtree.
    OutOfScopeSan,
    /// One random bit of the leaf's DER flipped (usually a signature or
    /// field corruption; falls back to pristine when no flip re-parses).
    BitFlippedLeaf,
    /// The intermediate is missing from the presented chain.
    DroppedIntermediate,
    /// The presented intermediate belongs to a different root.
    ForeignIntermediate,
    /// The chain anchors at the rogue root no store trusts.
    UntrustedRoot,
}

impl ChainMutation {
    /// Short label for traces and repro dumps.
    pub fn label(&self) -> &'static str {
        match self {
            ChainMutation::Pristine => "pristine",
            ChainMutation::ExpiredLeaf => "expired-leaf",
            ChainMutation::NotYetValidLeaf => "not-yet-valid-leaf",
            ChainMutation::WrongEku => "wrong-eku",
            ChainMutation::EvLeaf => "ev-leaf",
            ChainMutation::OutOfScopeSan => "out-of-scope-san",
            ChainMutation::BitFlippedLeaf => "bit-flipped-leaf",
            ChainMutation::DroppedIntermediate => "dropped-intermediate",
            ChainMutation::ForeignIntermediate => "foreign-intermediate",
            ChainMutation::UntrustedRoot => "untrusted-root",
        }
    }
}

struct IntermediateAuthority {
    cert: Certificate,
    key: Arc<CaKey>,
    /// DNS subtree this intermediate is name-constrained to, if any.
    scope: Option<String>,
}

struct RootAuthority {
    cert: Certificate,
    intermediates: Vec<IntermediateAuthority>,
}

/// One generated-and-possibly-mutated chain, ready for validation.
#[derive(Clone, Debug)]
pub struct SampleChain {
    /// The presented chain, leaf first, anchor last.
    pub chain: Vec<Certificate>,
    /// The hostname the leaf was minted for (pre-mutation).
    pub hostname: String,
    /// Which mutation was applied.
    pub mutation: ChainMutation,
    /// Index of the anchoring root in the generator's trusted pool
    /// (`None` for the rogue root).
    pub root_index: Option<usize>,
}

impl SampleChain {
    /// The intermediate pool to hand the validator (everything between
    /// leaf and anchor, plus the anchor itself — harmless, since
    /// anchors are matched against the store).
    pub fn intermediates(&self) -> &[Certificate] {
        &self.chain[1..]
    }

    /// The leaf under test.
    pub fn leaf(&self) -> &Certificate {
        &self.chain[0]
    }
}

/// The seeded chain fuzzer.
pub struct ChainGenerator {
    rng: StdRng,
    roots: Vec<RootAuthority>,
    rogue: RootAuthority,
    serial: i128,
    minted: u64,
}

impl ChainGenerator {
    /// Mint the PKI for `config` (a few hundred milliseconds of
    /// hash-based keygen) and prime the sample stream.
    ///
    /// `epoch` anchors every CA validity window: CAs are valid from
    /// `epoch - 1y` to `epoch + 30y`, so any simulation instant within
    /// a few simulated years of `epoch` sees live CAs.
    pub fn new(config: &ChainGenConfig, epoch: i64) -> ChainGenerator {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut serial = 1i128;
        let mut roots = Vec::with_capacity(config.roots);
        for r in 0..config.roots.max(1) {
            roots.push(Self::mint_root(
                &mut rng,
                &mut serial,
                r,
                false,
                config,
                epoch,
            ));
        }
        let rogue = Self::mint_root(&mut rng, &mut serial, usize::MAX, true, config, epoch);
        ChainGenerator {
            rng,
            roots,
            rogue,
            serial,
            minted: 0,
        }
    }

    fn mint_root(
        rng: &mut StdRng,
        serial: &mut i128,
        index: usize,
        rogue: bool,
        config: &ChainGenConfig,
        epoch: i64,
    ) -> RootAuthority {
        let label = if rogue {
            "Rogue Root".to_string()
        } else {
            format!("Sim Root {index}")
        };
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        let key = CaKey::from_seed(DistinguishedName::ca(&label, "NRSLB Sim", "US"), seed, 5)
            .expect("root key");
        let not_before = epoch - 365 * 86_400;
        let not_after = epoch + 30 * 365 * 86_400;
        let cert = CertificateBuilder::new()
            .serial(next_serial(serial))
            .subject(key.name().clone())
            .subject_key(key.public())
            .validity_window(not_before, not_after)
            .ca(None)
            .build_self_signed(&key)
            .expect("root cert");
        let n_ints = if rogue {
            1
        } else {
            config.intermediates_per_root.max(1)
        };
        let mut intermediates = Vec::with_capacity(n_ints);
        for i in 0..n_ints {
            // The second intermediate of each trusted root is
            // name-constrained, so NC rejection paths get exercised.
            let scope = (!rogue && i == 1).then(|| format!("r{index}.example"));
            let mut int_seed = [0u8; 32];
            rng.fill(&mut int_seed);
            let int_label = if rogue {
                "Rogue Intermediate".to_string()
            } else {
                format!("Sim Intermediate {index}-{i}")
            };
            let int_key = CaKey::from_seed(
                DistinguishedName::ca(&int_label, "NRSLB Sim", "US"),
                int_seed,
                10,
            )
            .expect("intermediate key");
            let mut builder = CertificateBuilder::new()
                .serial(next_serial(serial))
                .subject(int_key.name().clone())
                .subject_key(int_key.public())
                .validity_window(not_before, not_after)
                .ca(Some(0));
            if let Some(s) = &scope {
                builder = builder.name_constraints(NameConstraints::permit(&[s]));
            }
            let int_cert = builder.build_signed_by(&key).expect("intermediate cert");
            intermediates.push(IntermediateAuthority {
                cert: int_cert,
                key: Arc::new(int_key),
                scope,
            });
        }
        RootAuthority {
            cert,
            intermediates,
        }
    }

    /// The trusted root pool (what a primary store should contain).
    /// Excludes the rogue root by construction.
    pub fn trusted_roots(&self) -> Vec<Certificate> {
        self.roots.iter().map(|r| r.cert.clone()).collect()
    }

    /// Leaves minted so far (each costs one intermediate signature).
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Draw the next sample: a seeded choice of root, intermediate and
    /// mutation, with a freshly minted leaf valid (or deliberately
    /// invalid) at `now`.
    pub fn next_sample(&mut self, now: i64) -> SampleChain {
        let mutation = match self.rng.gen_range(0u32..100) {
            0..=39 => ChainMutation::Pristine,
            40..=46 => ChainMutation::ExpiredLeaf,
            47..=53 => ChainMutation::NotYetValidLeaf,
            54..=60 => ChainMutation::WrongEku,
            61..=67 => ChainMutation::EvLeaf,
            68..=74 => ChainMutation::OutOfScopeSan,
            75..=81 => ChainMutation::BitFlippedLeaf,
            82..=87 => ChainMutation::DroppedIntermediate,
            88..=93 => ChainMutation::ForeignIntermediate,
            _ => ChainMutation::UntrustedRoot,
        };
        self.sample_with(mutation, now)
    }

    /// Draw a sample with a forced mutation (targeted tests).
    pub fn sample_with(&mut self, mutation: ChainMutation, now: i64) -> SampleChain {
        let root_idx = self.rng.gen_range(0usize..self.roots.len());
        let (root_index, root_is_rogue) = match mutation {
            ChainMutation::UntrustedRoot => (None, true),
            _ => (Some(root_idx), false),
        };
        let n_ints = if root_is_rogue {
            self.rogue.intermediates.len()
        } else {
            self.roots[root_idx].intermediates.len()
        };
        let mut int_idx = self.rng.gen_range(0usize..n_ints);
        if mutation == ChainMutation::OutOfScopeSan && !root_is_rogue {
            // Must go through the constrained intermediate to violate
            // its scope (index 1 when present, else fall back).
            int_idx = 1.min(n_ints - 1);
        }
        let authority = if root_is_rogue {
            &self.rogue
        } else {
            &self.roots[root_idx]
        };
        let intermediate = &authority.intermediates[int_idx];

        let host_n = self.minted;
        let hostname = match (&intermediate.scope, mutation) {
            (Some(_), ChainMutation::OutOfScopeSan) => format!("h{host_n}.outside.test"),
            (Some(scope), _) => format!("h{host_n}.{scope}"),
            (None, _) => format!("h{host_n}.site{root_idx}.test"),
        };

        let (not_before, not_after) = match mutation {
            ChainMutation::ExpiredLeaf => (now - 2 * 365 * 86_400, now - 86_400),
            ChainMutation::NotYetValidLeaf => (now + 86_400, now + 365 * 86_400),
            _ => (now - 30 * 86_400, now + 90 * 86_400),
        };
        let eku = match mutation {
            ChainMutation::WrongEku => ExtendedKeyUsage(vec![oids::kp_email_protection()]),
            _ => ExtendedKeyUsage(vec![oids::kp_server_auth(), oids::kp_email_protection()]),
        };
        let mut builder = CertificateBuilder::new()
            .serial(next_serial(&mut self.serial))
            .subject(DistinguishedName::common_name(&hostname))
            .dns_names(&[&hostname])
            .validity_window(not_before, not_after)
            .extended_key_usage(eku);
        if mutation == ChainMutation::EvLeaf {
            builder = builder.ev();
        }
        let mut leaf = builder
            .build_signed_by(&intermediate.key)
            .expect("leaf cert");
        // End the borrows of the authority pool before mutating self
        // again (flip_bit drives the shared rng).
        let intermediate_cert = intermediate.cert.clone();
        let authority_cert = authority.cert.clone();
        self.minted += 1;

        let mut applied = mutation;
        if mutation == ChainMutation::BitFlippedLeaf {
            match self.flip_bit(&leaf) {
                Some(flipped) => leaf = flipped,
                // No flip re-parsed: keep the intact leaf and record it.
                None => applied = ChainMutation::Pristine,
            }
        }

        let chain = match mutation {
            ChainMutation::DroppedIntermediate => vec![leaf, authority_cert],
            ChainMutation::ForeignIntermediate => {
                let other_idx = (root_idx + 1) % self.roots.len();
                let other = &self.roots[other_idx];
                let foreign = other.intermediates[0].cert.clone();
                vec![leaf, foreign, other.cert.clone()]
            }
            _ => vec![leaf, intermediate_cert, authority_cert],
        };
        SampleChain {
            chain,
            hostname,
            mutation: applied,
            root_index,
        }
    }

    /// Flip one random bit of `leaf`'s DER and re-parse; up to 16
    /// seeded attempts before giving up.
    fn flip_bit(&mut self, leaf: &Certificate) -> Option<Certificate> {
        let der = leaf.to_der();
        for _ in 0..16 {
            let byte = self.rng.gen_range(0usize..der.len());
            let bit = self.rng.gen_range(0u32..8);
            let mut mutated = der.to_vec();
            mutated[byte] ^= 1 << bit;
            if let Ok(cert) = Certificate::from_der(&mutated) {
                return Some(cert);
            }
        }
        None
    }
}

fn next_serial(serial: &mut i128) -> i128 {
    let s = *serial;
    *serial += 1;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_x509::testutil::T0;

    #[test]
    fn same_seed_same_chains() {
        let config = ChainGenConfig {
            roots: 2,
            intermediates_per_root: 2,
            ..Default::default()
        };
        let mut a = ChainGenerator::new(&config, T0);
        let mut b = ChainGenerator::new(&config, T0);
        for _ in 0..20 {
            let sa = a.next_sample(T0);
            let sb = b.next_sample(T0);
            assert_eq!(sa.mutation, sb.mutation);
            assert_eq!(sa.chain.len(), sb.chain.len());
            for (ca, cb) in sa.chain.iter().zip(&sb.chain) {
                assert_eq!(ca.to_der(), cb.to_der());
            }
        }
    }

    #[test]
    fn mutations_shape_the_chain_as_advertised() {
        let config = ChainGenConfig::default();
        let mut g = ChainGenerator::new(&config, T0);
        let dropped = g.sample_with(ChainMutation::DroppedIntermediate, T0);
        assert_eq!(dropped.chain.len(), 2);
        let expired = g.sample_with(ChainMutation::ExpiredLeaf, T0);
        assert!(expired.leaf().validity().not_after < T0);
        let rogue = g.sample_with(ChainMutation::UntrustedRoot, T0);
        assert_eq!(rogue.root_index, None);
        let trusted = g.trusted_roots();
        assert!(!trusted
            .iter()
            .any(|r| r.fingerprint() == rogue.chain.last().unwrap().fingerprint()));
    }

    #[test]
    fn out_of_scope_san_violates_the_constrained_intermediate() {
        let config = ChainGenConfig::default();
        let mut g = ChainGenerator::new(&config, T0);
        let s = g.sample_with(ChainMutation::OutOfScopeSan, T0);
        assert!(s.hostname.ends_with(".outside.test"));
        let nc = s.chain[1]
            .extensions()
            .name_constraints
            .clone()
            .expect("constrained intermediate");
        assert!(!nc.allows(&s.hostname, nrslb_x509::name::DotSemantics::Rfc5280));
    }
}
