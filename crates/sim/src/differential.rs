//! The differential validation oracle.
//!
//! Drives an [`Ecosystem`] and, between events, draws
//! generated-and-mutated chains and validates each `(chain, GCC,
//! usage)` sample along every independent path the codebase offers:
//!
//! 1. **Compiled vs naive Datalog** — the semi-naive compiled plan
//!    against the reference naive-iteration engine, per GCC per usage.
//! 2. **Cached vs cold sessions** — [`ValidationSession`] verdicts via
//!    a shared [`VerdictCache`] (including a guaranteed hit on the
//!    second pass) against cache-free evaluation.
//! 3. **Primary vs every subscriber store** — the full [`Validator`]
//!    outcome against the ground-truth store versus each replica,
//!    divergence excused only when the replica is visibly not in sync
//!    (behind, quarantined, or stale at the virtual instant).
//! 4. **In-process vs platform execution** — on a strided subset of
//!    samples, the same validation with GCC evaluation delegated to a
//!    live trust daemon over IPC (keep-alive client; respawns
//!    alternate `Engine::Reactor` / `Engine::ThreadPool`, so the
//!    reactor's fused inline cache-hit path is cross-checked too);
//!    the two deployment modes must agree outcome-for-outcome.
//! 5. **Incremental vs scratch Datalog maintenance** — after every
//!    ecosystem event, the truth store's fact-level delta is applied
//!    one fact at a time to persistent incrementally-maintained
//!    databases (one per [`MaintenancePolicy`]) via
//!    `CompiledProgram::apply_delta`, and each resulting state must be
//!    byte-identical in canonical form to a from-scratch evaluation of
//!    the same base.
//!
//! Any disagreement is recorded with a minimized repro — the seed, the
//! recent event trace and the DER chain, serialized to
//! `reports/differential-seed<seed>-sample<i>.json` — and
//! [`DifferentialOutcome::assert_agreement`] panics with a
//! `NRSLB_SIM_SEED=<seed>` line so the exact run replays locally.
//!
//! Setting [`DifferentialConfig::ignore_quarantine`] disables the
//! quarantine/staleness excuse; the negative test uses it to prove the
//! oracle actually catches a replica that silently serves a stale view.

use crate::chaingen::SampleChain;
use crate::ecosystem::{Ecosystem, EcosystemConfig};
use nrslb_core::daemon::{ephemeral_socket_path, DaemonClient, Engine, TrustDaemon};
use nrslb_core::{ValidationMode, ValidationSession, Validator, VerdictCache};
use nrslb_datalog::{
    delta_fact, CompiledProgram, Database, IncrementalState, LayeredDatabase, MaintenancePolicy,
    Program, Val,
};
use nrslb_rootstore::{RootStore, Usage};
use nrslb_rsf::{Staleness, SyncState};
use serde::Serialize;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Oracle run configuration.
#[derive(Clone, Debug)]
pub struct DifferentialConfig {
    /// Master seed (also the ecosystem seed). Override from the
    /// environment with [`seed_from_env`].
    pub seed: u64,
    /// Keep stepping until at least this many `(chain, GCC, usage)`
    /// compiled-vs-naive checks have run.
    pub min_gcc_checks: u64,
    /// Keep stepping until at least this many incremental-vs-scratch
    /// Datalog maintenance checks have run (each applied fact on each
    /// policy arm is one check).
    pub min_delta_checks: u64,
    /// Ecosystem events to execute (more run if `min_gcc_checks` has
    /// not been reached when they are spent).
    pub max_events: u64,
    /// Chains drawn and cross-checked after each event.
    pub samples_per_event: u32,
    /// GCC templates pre-attached to every pool root before the first
    /// publish, so compiled-vs-naive checks accumulate from the first
    /// sample instead of waiting for evolution to attach coverage.
    pub initial_gccs_per_root: usize,
    /// Deliberate oracle fault: treat quarantined/stale replicas as if
    /// they were in sync, so their divergence becomes a disagreement.
    pub ignore_quarantine: bool,
    /// Where disagreement repros are dumped; `None` disables dumping.
    pub report_dir: Option<PathBuf>,
}

impl Default for DifferentialConfig {
    fn default() -> DifferentialConfig {
        DifferentialConfig {
            seed: 0xd1ff,
            min_gcc_checks: 1_000,
            min_delta_checks: 1_000,
            max_events: 260,
            samples_per_event: 2,
            initial_gccs_per_root: 2,
            ignore_quarantine: false,
            report_dir: Some(PathBuf::from("reports")),
        }
    }
}

/// Read the run seed from `NRSLB_SIM_SEED` (decimal or `0x…` hex),
/// falling back to `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("NRSLB_SIM_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = if let Some(hex) = raw.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                raw.parse().ok()
            };
            parsed.unwrap_or(default)
        }
        Err(_) => default,
    }
}

/// One recorded oracle disagreement, with everything needed to replay
/// it: the seed, the sample index (the generator is deterministic, so
/// `(seed, sample_index)` regenerates the exact chain), the DER chain
/// itself, and the recent event trace.
#[derive(Clone, Debug, Serialize)]
pub struct Disagreement {
    /// Which two paths disagreed (e.g. `compiled-vs-naive`).
    pub kind: String,
    /// Human-oriented detail (verdicts on each side).
    pub detail: String,
    /// The usage under test (`TLS` / `S/MIME`).
    pub usage: String,
    /// The mutation the chain generator applied.
    pub mutation: String,
    /// The presented chain, leaf first, hex-encoded DER per cert.
    pub chain_der_hex: Vec<String>,
    /// GCC name, when a specific GCC was implicated.
    pub gcc_name: Option<String>,
    /// GCC source, when a specific GCC was implicated.
    pub gcc_source: Option<String>,
    /// The run seed (replay with `NRSLB_SIM_SEED=<seed>`).
    pub seed: u64,
    /// Index of the offending sample in draw order.
    pub sample_index: u64,
    /// The last few ecosystem events before the disagreement.
    pub recent_trace: Vec<String>,
}

/// Aggregate result of a differential run.
#[derive(Clone, Debug, Serialize)]
pub struct DifferentialOutcome {
    /// The seed the run used.
    pub seed: u64,
    /// Ecosystem events executed.
    pub events: u64,
    /// Chains drawn and cross-checked.
    pub samples: u64,
    /// Compiled-vs-naive `(chain, GCC, usage)` checks.
    pub gcc_checks: u64,
    /// Cached-vs-cold session comparisons.
    pub cache_checks: u64,
    /// Primary-vs-replica store comparisons.
    pub store_checks: u64,
    /// In-process-vs-daemon deployment-mode comparisons.
    pub daemon_checks: u64,
    /// Incremental-vs-scratch Datalog maintenance checks (per applied
    /// fact, per policy arm).
    pub delta_checks: u64,
    /// Replica divergences excused by visible staleness/quarantine.
    pub excused_divergences: u64,
    /// Oracle disagreements (must be empty on a healthy build).
    pub disagreements: Vec<Disagreement>,
    /// Repro files written for the disagreements.
    pub report_paths: Vec<String>,
}

impl DifferentialOutcome {
    /// Panic with a replayable message unless every path agreed.
    pub fn assert_agreement(&self) {
        if self.disagreements.is_empty() {
            return;
        }
        let first = &self.disagreements[0];
        panic!(
            "oracle disagreement: {} of {} checks diverged; first: [{}] {} \
             (mutation={}, usage={}); replay with NRSLB_SIM_SEED={} ; repros: {:?}",
            self.disagreements.len(),
            self.gcc_checks
                + self.cache_checks
                + self.store_checks
                + self.daemon_checks
                + self.delta_checks,
            first.kind,
            first.detail,
            first.mutation,
            first.usage,
            self.seed,
            self.report_paths,
        );
    }
}

/// Every how many samples the daemon-backed deployment-mode check runs
/// (each truth-store change forces a daemon respawn, so the arm is
/// strided to bound its cost).
const DAEMON_CHECK_STRIDE: u64 = 8;

/// The fixed program maintained incrementally over truth-store facts:
/// a counting-eligible stratum (`governed`), a negation (`bare`), and a
/// recursive stratum (`reach` over the sorted-fingerprint `succ`
/// chain) so root/GCC churn exercises both the counting and the DRed
/// maintenance paths.
const DELTA_PROGRAM: &str = "governed(R) :- root(R), gcc(R, _).\n\
     bare(R) :- root(R), \\+governed(R).\n\
     reach(R) :- governed(R).\n\
     reach(B) :- reach(A), succ(A, B).\n";

/// One EDB fact in the [`DELTA_PROGRAM`] fact space: predicate name
/// plus string arguments, pre-interning.
type StoreFact = (&'static str, Vec<String>);

/// Project the truth store into the EDB fact space of
/// [`DELTA_PROGRAM`]: one `root` fact per trusted fingerprint, one
/// `gcc` fact per attachment, `distrusted` markers, and a `succ` chain
/// over the sorted fingerprints (so adding or removing one root
/// rewires two edges — a genuinely recursive delta).
fn store_facts(store: &RootStore) -> BTreeSet<StoreFact> {
    let mut facts = BTreeSet::new();
    let mut fps: Vec<String> = Vec::new();
    for (fp, _) in store.iter() {
        let hex = fp.to_hex();
        for gcc in store.gccs_for(fp) {
            facts.insert(("gcc", vec![hex.clone(), gcc.source_hash().to_hex()]));
        }
        fps.push(hex.clone());
        facts.insert(("root", vec![hex]));
    }
    fps.sort();
    for pair in fps.windows(2) {
        facts.insert(("succ", vec![pair[0].clone(), pair[1].clone()]));
    }
    for (fp, _) in store.iter_distrusted() {
        facts.insert(("distrusted", vec![fp.to_hex()]));
    }
    facts
}

/// One persistent incrementally-maintained database (satellite arm of
/// the oracle): same program, one of the two maintenance policies.
struct DeltaArm {
    label: &'static str,
    db: LayeredDatabase,
    state: IncrementalState,
}

impl DeltaArm {
    fn new(label: &'static str, policy: MaintenancePolicy) -> DeltaArm {
        DeltaArm {
            label,
            db: LayeredDatabase::new(Arc::new(Database::new())),
            state: IncrementalState::new(policy),
        }
    }
}

struct Oracle<'a> {
    config: &'a DifferentialConfig,
    cache: VerdictCache,
    /// Cached clone of the truth store, refreshed on version change.
    truth: RootStore,
    truth_version: u64,
    /// A live trust daemon serving the truth store at `.0`'s version,
    /// plus a keep-alive client to it; respawned when truth moves.
    daemon: Option<(u64, TrustDaemon, Arc<DaemonClient>)>,
    /// The compiled [`DELTA_PROGRAM`] plus one persistent arm per
    /// maintenance policy, and the fact image the arms were last
    /// brought up to date with.
    delta_program: CompiledProgram,
    delta_arms: Vec<DeltaArm>,
    delta_facts: BTreeSet<StoreFact>,
    outcome: DifferentialOutcome,
}

impl<'a> Oracle<'a> {
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        eco: &Ecosystem,
        sample: &SampleChain,
        usage: Usage,
        sample_index: u64,
        kind: &str,
        detail: String,
        gcc: Option<(&str, &str)>,
    ) {
        let disagreement = Disagreement {
            kind: kind.to_string(),
            detail,
            usage: usage.as_datalog().to_string(),
            mutation: sample.mutation.label().to_string(),
            chain_der_hex: sample
                .chain
                .iter()
                .map(|c| nrslb_crypto::hex::encode(c.to_der()))
                .collect(),
            gcc_name: gcc.map(|(n, _)| n.to_string()),
            gcc_source: gcc.map(|(_, s)| s.to_string()),
            seed: self.config.seed,
            sample_index,
            recent_trace: eco.recent_trace(8),
        };
        self.dump(disagreement);
    }

    /// Serialize a disagreement repro to the report directory (when
    /// configured) and append it to the outcome. The file name carries
    /// the seed, the sample (or event) index, and the disagreement
    /// ordinal, so repros never clobber one another.
    fn dump(&mut self, disagreement: Disagreement) {
        if let Some(dir) = &self.config.report_dir {
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join(format!(
                    "differential-seed{}-sample{}-d{}.json",
                    self.config.seed,
                    disagreement.sample_index,
                    self.outcome.disagreements.len(),
                ));
                if let Ok(json) = serde_json::to_string_pretty(&disagreement) {
                    if std::fs::write(&path, json).is_ok() {
                        self.outcome.report_paths.push(path.display().to_string());
                    }
                }
            }
        }
        self.outcome.disagreements.push(disagreement);
    }

    /// Path 5: incremental vs scratch Datalog maintenance. Applies the
    /// truth store's fact-level delta one fact at a time to every
    /// persistent policy arm; after each application the arm's derived
    /// overlay must be byte-identical (canonical form) to a
    /// from-scratch evaluation over the same post-delta base.
    fn check_incremental(&mut self, eco: &Ecosystem) {
        let next = store_facts(eco.truth());
        let mut steps: Vec<(Vec<StoreFact>, Vec<StoreFact>)> = Vec::new();
        for fact in next.difference(&self.delta_facts) {
            steps.push((vec![fact.clone()], Vec::new()));
        }
        for fact in self.delta_facts.difference(&next) {
            steps.push((Vec::new(), vec![fact.clone()]));
        }
        // A trailing no-op step: quiet events must not perturb the
        // maintained state either.
        steps.push((Vec::new(), Vec::new()));

        let to_interned = |facts: &[StoreFact]| {
            facts
                .iter()
                .map(|(pred, args)| {
                    delta_fact(pred, &args.iter().map(Val::str).collect::<Vec<_>>())
                })
                .collect::<Vec<_>>()
        };

        let mut failures: Vec<(String, String)> = Vec::new();
        for arm in &mut self.delta_arms {
            for (added, removed) in &steps {
                self.outcome.delta_checks += 1;
                let applied = self.delta_program.apply_delta(
                    &mut arm.db,
                    &mut arm.state,
                    &to_interned(added),
                    &to_interned(removed),
                );
                if let Err(err) = applied {
                    failures.push((
                        format!("incremental-vs-scratch[{}]", arm.label),
                        format!("apply_delta failed: {err} (step +{added:?} -{removed:?})"),
                    ));
                    continue;
                }
                let scratch = match self.delta_program.evaluate(Arc::new(arm.db.base().clone())) {
                    Ok(scratch) => scratch,
                    Err(err) => {
                        failures.push((
                            format!("incremental-vs-scratch[{}]", arm.label),
                            format!("scratch evaluation failed: {err}"),
                        ));
                        continue;
                    }
                };
                let incremental_text = arm.db.overlay().to_sorted_fact_text();
                let scratch_text = scratch.overlay().to_sorted_fact_text();
                if incremental_text != scratch_text {
                    failures.push((
                        format!("incremental-vs-scratch[{}]", arm.label),
                        format!(
                            "derived state diverged after +{added:?} -{removed:?}\n\
                             incremental:\n{incremental_text}\nscratch:\n{scratch_text}"
                        ),
                    ));
                }
            }
        }
        self.delta_facts = next;

        let event_index = self.outcome.events;
        for (kind, detail) in failures {
            self.dump(Disagreement {
                kind,
                detail,
                usage: "*".to_string(),
                mutation: "ecosystem-delta".to_string(),
                chain_der_hex: Vec::new(),
                gcc_name: None,
                gcc_source: None,
                seed: self.config.seed,
                sample_index: event_index,
                recent_trace: eco.recent_trace(8),
            });
        }
    }

    /// A keep-alive client to a daemon serving the *current* truth
    /// store, respawning the daemon if truth moved since last time.
    /// Respawns alternate engines by truth version (deterministic), so
    /// the deployment-mode arm continuously cross-checks the reactor —
    /// including its fused inline cache-hit path, which warm repeats
    /// of a sampled chain exercise — against the thread pool.
    fn daemon_client(&mut self) -> Option<Arc<DaemonClient>> {
        if let Some((version, _, client)) = &self.daemon {
            if *version == self.truth_version {
                return Some(Arc::clone(client));
            }
        }
        let engine = if self.truth_version.is_multiple_of(2) {
            Engine::Reactor
        } else {
            Engine::ThreadPool
        };
        let daemon = TrustDaemon::builder()
            .socket(ephemeral_socket_path("sim-diff"))
            .workers(2)
            .engine(engine)
            .spawn(self.truth.clone())
            .ok()?;
        let client = Arc::new(daemon.keep_alive_client());
        self.daemon = Some((self.truth_version, daemon, Arc::clone(&client)));
        Some(client)
    }

    fn check_sample(&mut self, eco: &Ecosystem, sample: &SampleChain, sample_index: u64) {
        let now = eco.now_secs();
        if eco.truth().version() != self.truth_version {
            self.truth = eco.truth().clone();
            self.truth_version = self.truth.version();
        }
        let session = ValidationSession::new(&sample.chain);
        let anchor_fp = sample.chain.last().expect("non-empty chain").fingerprint();
        let gccs = self.truth.gccs_for(&anchor_fp).to_vec();

        for usage in Usage::ALL {
            // Path 1: compiled vs naive Datalog, per GCC — and the
            // interned engine against the string-path reference
            // evaluator, which shares no interning, indexing, or
            // scratch machinery with it.
            for gcc in &gccs {
                let compiled = session.evaluate_gcc(gcc, usage);
                let naive = session.evaluate_gcc_naive(gcc, usage);
                self.outcome.gcc_checks += 1;
                match (&compiled, &naive) {
                    (Ok(c), Ok(n)) if c == n => {}
                    _ => self.record(
                        eco,
                        sample,
                        usage,
                        sample_index,
                        "compiled-vs-naive",
                        format!("compiled={compiled:?} naive={naive:?}"),
                        Some((gcc.name(), gcc.source())),
                    ),
                }
                let string_ref = session.evaluate_gcc_string(gcc, usage);
                self.outcome.gcc_checks += 1;
                match (&compiled, &string_ref) {
                    (Ok(c), Ok(s)) if c == s => {}
                    _ => self.record(
                        eco,
                        sample,
                        usage,
                        sample_index,
                        "interned-vs-string",
                        format!("interned={compiled:?} string={string_ref:?}"),
                        Some((gcc.name(), gcc.source())),
                    ),
                }
            }

            // Path 2: cached vs cold sessions. Two cached passes so the
            // second is guaranteed to serve from the cache.
            if !gccs.is_empty() {
                let warm = session.evaluate_gccs_cached(&gccs, usage, Some(&self.cache));
                let hit = session.evaluate_gccs_cached(&gccs, usage, Some(&self.cache));
                let cold = session.evaluate_gccs(&gccs, usage);
                self.outcome.cache_checks += 1;
                let verdicts = |r: &Result<Vec<nrslb_core::GccVerdict>, _>| -> Option<Vec<bool>> {
                    r.as_ref()
                        .ok()
                        .map(|v| v.iter().map(|g| g.accepted).collect())
                };
                if verdicts(&warm) != verdicts(&cold) || verdicts(&hit) != verdicts(&cold) {
                    self.record(
                        eco,
                        sample,
                        usage,
                        sample_index,
                        "cached-vs-cold",
                        format!("warm={warm:?} hit={hit:?} cold={cold:?}"),
                        None,
                    );
                }
            }

            // Path 3: the full validator against the primary store —
            // with and without a verdict cache — and against every
            // replica store.
            let primary = Validator::new(self.truth.clone(), ValidationMode::UserAgent);
            let accepted = primary
                .validate(sample.leaf(), sample.intermediates(), usage, now)
                .map(|o| o.accepted())
                .unwrap_or(false);
            let cached_validator = Validator::new(self.truth.clone(), ValidationMode::UserAgent)
                .with_verdict_cache(Arc::new(VerdictCache::new(64)));
            let accepted_cached = cached_validator
                .validate(sample.leaf(), sample.intermediates(), usage, now)
                .map(|o| o.accepted())
                .unwrap_or(false);
            self.outcome.store_checks += 1;
            if accepted != accepted_cached {
                self.record(
                    eco,
                    sample,
                    usage,
                    sample_index,
                    "validator-cache",
                    format!("uncached={accepted} cached={accepted_cached}"),
                    None,
                );
            }

            // Path 4: platform execution — the same validation with
            // GCC evaluation delegated to a live trust daemon over
            // IPC. Strided: each truth change forces a respawn.
            if sample_index.is_multiple_of(DAEMON_CHECK_STRIDE) {
                if let Some(client) = self.daemon_client() {
                    let platform =
                        Validator::new(self.truth.clone(), ValidationMode::Platform(client));
                    let accepted_daemon = platform
                        .validate(sample.leaf(), sample.intermediates(), usage, now)
                        .map(|o| o.accepted())
                        .unwrap_or(false);
                    self.outcome.daemon_checks += 1;
                    if accepted_daemon != accepted {
                        self.record(
                            eco,
                            sample,
                            usage,
                            sample_index,
                            "in-process-vs-daemon",
                            format!("user_agent={accepted} daemon={accepted_daemon}"),
                            None,
                        );
                    }
                }
            }

            for i in 0..eco.subscriber_count() {
                let sub = eco.subscriber(i);
                let in_sync = matches!(sub.state(), SyncState::Live)
                    && sub.sequence() == eco.publisher_sequence()
                    && matches!(sub.staleness(now), Staleness::Fresh { .. });
                let replica = Validator::new(sub.store().clone(), ValidationMode::UserAgent);
                let replica_accepted = replica
                    .validate(sample.leaf(), sample.intermediates(), usage, now)
                    .map(|o| o.accepted())
                    .unwrap_or(false);
                self.outcome.store_checks += 1;
                if replica_accepted == accepted {
                    continue;
                }
                if in_sync {
                    self.record(
                        eco,
                        sample,
                        usage,
                        sample_index,
                        "primary-vs-replica",
                        format!(
                            "replica {} accepted={replica_accepted} primary={accepted}",
                            eco.subscriber_spec(i).name
                        ),
                        None,
                    );
                } else if self.config.ignore_quarantine {
                    // The deliberate fault: the excuse is disabled, so
                    // the stale replica's divergence surfaces.
                    self.record(
                        eco,
                        sample,
                        usage,
                        sample_index,
                        "quarantined-replica",
                        format!(
                            "replica {} ({:?}, {:?}) accepted={replica_accepted} \
                             primary={accepted}",
                            eco.subscriber_spec(i).name,
                            sub.state(),
                            sub.staleness(now)
                        ),
                        None,
                    );
                } else {
                    // Visibly behind/quarantined/stale: the divergence
                    // is the *announced* kind, excused by the engine's
                    // own verdict.
                    self.outcome.excused_divergences += 1;
                }
            }
        }
    }
}

/// Run the differential oracle (see module docs) and return the
/// aggregate outcome. Deterministic: same config, same outcome.
pub fn run_differential(config: &DifferentialConfig) -> DifferentialOutcome {
    let mut eco_config = EcosystemConfig::default();
    eco_config.seed = config.seed;
    eco_config.initial_gccs_per_root = config.initial_gccs_per_root;
    // Always stage the split-view attack: the quarantine-excuse logic
    // must be exercised (or, with `ignore_quarantine`, violated) in
    // every run.
    eco_config.split_view_attack_at_secs = Some(eco_config.epoch_secs + 6 * 3_600);
    let mut eco = Ecosystem::new(&eco_config);

    let delta_program = CompiledProgram::compile(
        &Program::parse(DELTA_PROGRAM).expect("delta oracle program parses"),
    )
    .expect("delta oracle program compiles");

    let mut oracle = Oracle {
        config,
        cache: VerdictCache::new(8_192),
        truth: eco.truth().clone(),
        truth_version: eco.truth().version(),
        daemon: None,
        delta_program,
        delta_arms: vec![
            DeltaArm::new("counting", MaintenancePolicy::Auto),
            DeltaArm::new("dred", MaintenancePolicy::ForceDRed),
        ],
        delta_facts: BTreeSet::new(),
        outcome: DifferentialOutcome {
            seed: config.seed,
            events: 0,
            samples: 0,
            gcc_checks: 0,
            cache_checks: 0,
            store_checks: 0,
            daemon_checks: 0,
            delta_checks: 0,
            excused_divergences: 0,
            disagreements: Vec::new(),
            report_paths: Vec::new(),
        },
    };
    // The pre-step truth store is the arms' baseline: its whole fact
    // image arrives as the first (large) delta.
    oracle.check_incremental(&eco);

    // Hard ceiling so a mis-sized config terminates regardless of the
    // min_gcc_checks / min_delta_checks targets.
    let ceiling = config.max_events.saturating_mul(4).max(config.max_events);
    while oracle.outcome.events < config.max_events
        || ((oracle.outcome.gcc_checks < config.min_gcc_checks
            || oracle.outcome.delta_checks < config.min_delta_checks)
            && oracle.outcome.events < ceiling)
    {
        if eco.step().is_none() {
            break;
        }
        oracle.outcome.events += 1;
        oracle.check_incremental(&eco);
        for _ in 0..config.samples_per_event {
            let sample = eco.next_sample();
            let index = oracle.outcome.samples;
            oracle.outcome.samples += 1;
            oracle.check_sample(&eco, &sample, index);
        }
    }
    oracle.outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DifferentialConfig {
        DifferentialConfig {
            min_gcc_checks: 120,
            min_delta_checks: 120,
            max_events: 60,
            report_dir: None,
            ..DifferentialConfig::default()
        }
    }

    #[test]
    fn healthy_build_has_no_disagreements() {
        let outcome = run_differential(&quick_config());
        assert!(
            outcome.gcc_checks >= 120,
            "got {} checks",
            outcome.gcc_checks
        );
        assert!(outcome.samples > 0);
        assert!(outcome.daemon_checks > 0, "daemon arm never ran");
        assert!(
            outcome.delta_checks >= 120,
            "incremental arm ran only {} checks",
            outcome.delta_checks
        );
        outcome.assert_agreement();
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_differential(&quick_config());
        let b = run_differential(&quick_config());
        assert_eq!(a.gcc_checks, b.gcc_checks);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.store_checks, b.store_checks);
        assert_eq!(a.daemon_checks, b.daemon_checks);
        assert_eq!(a.delta_checks, b.delta_checks);
        assert_eq!(a.excused_divergences, b.excused_divergences);
        assert_eq!(a.disagreements.len(), b.disagreements.len());
    }

    #[test]
    #[should_panic(expected = "oracle disagreement")]
    fn ignoring_quarantine_evidence_is_caught() {
        let config = DifferentialConfig {
            ignore_quarantine: true,
            min_gcc_checks: 400,
            min_delta_checks: 120,
            max_events: 320,
            report_dir: None,
            ..DifferentialConfig::default()
        };
        let outcome = run_differential(&config);
        // The quarantined victim keeps serving its pre-attack view
        // while the primary evolves; with the excuse disabled the
        // divergence must surface.
        outcome.assert_agreement();
    }
}
