//! Deterministic simulation time: a shared virtual clock and a seeded
//! event scheduler.
//!
//! Everything in the ecosystem simulation happens *at* a virtual
//! instant: publishes, subscriber polls, attacks. A [`SimClock`] is a
//! cheaply-cloneable handle onto one shared
//! [`VirtualClock`], so the scheduler, the
//! ecosystem and every injected `Subscriber` observe the same time and
//! "sleeping" (retry backoff) advances it instead of blocking. The
//! [`Scheduler`] is a plain binary heap ordered by `(time, insertion
//! sequence)` — ties break by insertion order, never by hash order or
//! thread scheduling, so a run is a pure function of its seed.

use nrslb_rsf::{Clock, VirtualClock};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A shared deterministic clock driving one simulation.
#[derive(Clone, Debug)]
pub struct SimClock {
    inner: Arc<VirtualClock>,
}

impl SimClock {
    /// A clock starting at `start_secs` (unix-like seconds).
    pub fn starting_at(start_secs: i64) -> SimClock {
        SimClock {
            inner: VirtualClock::shared(start_secs),
        }
    }

    /// Current virtual time in milliseconds.
    pub fn now_millis(&self) -> i64 {
        self.inner.now_millis()
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> i64 {
        self.inner.now_secs()
    }

    /// Jump forward to an absolute instant (never rewinds — backoff
    /// sleeps may already have advanced past a scheduled event's time).
    pub fn advance_to_millis(&self, millis: i64) {
        self.inner.set_millis(millis);
    }

    /// The shared clock as an injectable [`Clock`] trait object, for
    /// `SubscriberBuilder::clock`.
    pub fn handle(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.inner) as Arc<dyn Clock>
    }
}

struct Entry<E> {
    at_millis: i64,
    seq: u64,
    event: E,
}

// The heap is a max-heap; reverse the ordering so the *earliest*
// (time, seq) pops first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_millis == other.at_millis && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at_millis, other.seq).cmp(&(self.at_millis, self.seq))
    }
}

/// A deterministic discrete-event queue: events pop in `(time,
/// insertion order)` — same schedule in, same trace out, always.
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty schedule.
    pub fn new() -> Scheduler<E> {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Enqueue `event` at an absolute virtual time in milliseconds.
    pub fn schedule_at_millis(&mut self, at_millis: i64, event: E) {
        self.seq += 1;
        self.heap.push(Entry {
            at_millis,
            seq: self.seq,
            event,
        });
    }

    /// Enqueue `event` at an absolute virtual time in seconds.
    pub fn schedule_at_secs(&mut self, at_secs: i64, event: E) {
        self.schedule_at_millis(at_secs.saturating_mul(1_000), event);
    }

    /// The virtual time (milliseconds) of the next event, if any.
    pub fn peek_millis(&self) -> Option<i64> {
        self.heap.peek().map(|e| e.at_millis)
    }

    /// Pop the next event with its scheduled time.
    pub fn pop(&mut self) -> Option<(i64, E)> {
        self.heap.pop().map(|e| (e.at_millis, e.event))
    }

    /// Events still queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_insertion_order() {
        let mut s = Scheduler::new();
        s.schedule_at_secs(10, "late");
        s.schedule_at_secs(5, "early-a");
        s.schedule_at_secs(5, "early-b");
        s.schedule_at_secs(1, "first");
        let order: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["first", "early-a", "early-b", "late"]);
    }

    #[test]
    fn sim_clock_is_shared_across_clones() {
        let clock = SimClock::starting_at(100);
        let other = clock.clone();
        clock.advance_to_millis(250_000);
        assert_eq!(other.now_secs(), 250);
        // Sleeping through the trait handle advances the same clock.
        other.handle().sleep_ms(1_000);
        assert_eq!(clock.now_secs(), 251);
    }
}
