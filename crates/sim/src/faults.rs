//! The **sync-resilience** experiment (E13): does an RSF subscriber
//! behind a lossy channel still converge to the publisher's exact
//! store?
//!
//! A primary store evolves (one distrust incident per change); every
//! round the publisher signs a delta and the subscriber runs
//! [`Subscriber::sync_resilient`] through a [`FaultInjector`] that
//! drops, delays, duplicates, truncates and bit-flips frames at a
//! configurable rate. The outcome reports convergence (byte-identical
//! snapshots of truth vs replica), the retry effort the policy spent,
//! and the engine's own [`SyncCounters`] — the experimental backing for
//! DESIGN.md §4's claim that the sync state machine degrades gracefully
//! instead of wedging.

use nrslb_crypto::sha256::sha256;
use nrslb_rootstore::RootStore;
use nrslb_rsf::{
    CoordinatorKey, FaultInjector, FaultPlan, FeedKey, FeedPublisher, FeedTrust, Snapshot,
    Subscriber, SyncCounters, SyncPolicy,
};

/// Configuration for one resilience run.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Per-frame probability of each fault mode (drop, delay,
    /// duplicate, truncate, bit-flip applied independently).
    pub fault_rate: f64,
    /// Publish/sync rounds to simulate.
    pub rounds: usize,
    /// Store changes (distrust incidents) per round.
    pub changes_per_round: usize,
    /// Retry budget per round.
    pub max_attempts: u32,
    /// Seed for the fault injector and backoff jitter.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            fault_rate: 0.3,
            rounds: 20,
            changes_per_round: 2,
            max_attempts: 8,
            seed: 0xe13,
        }
    }
}

/// What one resilience run produced.
#[derive(Clone, Copy, Debug)]
pub struct FaultOutcome {
    /// The configured per-mode fault probability.
    pub fault_rate: f64,
    /// The seed the run used (jitter; the injector derives from it) —
    /// recorded so a benchmark report is replayable.
    pub seed: u64,
    /// The fault injector's exact plan seed, as reported by the
    /// injector itself.
    pub plan_seed: u64,
    /// Rounds simulated.
    pub rounds: usize,
    /// Rounds where the subscriber reached the publisher's sequence
    /// within the retry budget.
    pub converged_rounds: usize,
    /// Whether the final replica is byte-identical to the truth store
    /// (canonical snapshot encodings compared).
    pub converged: bool,
    /// Sync attempts spent across all rounds.
    pub attempts: u32,
    /// Total backoff the policy scheduled, in milliseconds.
    pub backoff_ms_total: u64,
    /// The subscriber's own counters at the end of the run.
    pub counters: SyncCounters,
}

/// Canonical bytes of a store (sequence/name/timestamp pinned so only
/// the *content* differs).
fn canonical(store: &RootStore) -> Vec<u8> {
    Snapshot::capture("compare", 0, 0, store).encode()
}

/// Run the resilience experiment: evolve a primary store for
/// `config.rounds` rounds and sync a subscriber through a channel with
/// `config.fault_rate` faults after each round.
pub fn run_fault_simulation(config: &FaultConfig) -> FaultOutcome {
    let coordinator = CoordinatorKey::from_seed([0xa1; 32], 4).expect("coordinator key");
    let key = FeedKey::new([0xa2; 32], 12, &coordinator).expect("feed key");
    let trust = FeedTrust::single(coordinator.public());
    let mut truth = RootStore::new("primary");
    let mut publisher = FeedPublisher::new("primary", key, &truth, 0).expect("publisher");
    let mut subscriber = Subscriber::builder("derivative", trust)
        .policy(SyncPolicy {
            max_attempts: config.max_attempts,
            base_backoff_ms: 1,
            max_backoff_ms: 64,
            jitter_seed: config.seed,
            ..SyncPolicy::default()
        })
        .build();
    let mut injector = FaultInjector::new(FaultPlan::lossy(config.fault_rate, config.seed ^ 0x5a));

    let mut converged_rounds = 0usize;
    let mut attempts = 0u32;
    let mut backoff_ms_total = 0u64;
    for round in 0..config.rounds {
        let t = round as i64 * 3_600;
        for change in 0..config.changes_per_round {
            let incident = sha256(format!("incident-{round}-{change}").as_bytes());
            truth.distrust(incident, format!("simulated incident r{round}c{change}"));
        }
        publisher.publish(&truth, t).expect("publish");
        if let Ok(report) = subscriber.sync_resilient(&mut publisher, &mut injector, t) {
            converged_rounds += 1;
            attempts += report.attempts;
            backoff_ms_total += report.backoff_ms_total;
        } else {
            attempts += config.max_attempts;
        }
    }
    // The publisher has stopped evolving, but a subscriber keeps its
    // polling schedule — rounds whose retry budget ran out are repaired
    // by later polls. Bound the tail so a pathological fault rate (1.0)
    // still terminates.
    let mut extra = 0usize;
    while subscriber.sequence() != publisher.sequence() && extra < config.rounds {
        extra += 1;
        let t = (config.rounds + extra) as i64 * 3_600;
        if let Ok(report) = subscriber.sync_resilient(&mut publisher, &mut injector, t) {
            attempts += report.attempts;
            backoff_ms_total += report.backoff_ms_total;
        } else {
            attempts += config.max_attempts;
        }
    }
    FaultOutcome {
        fault_rate: config.fault_rate,
        seed: config.seed,
        plan_seed: injector.plan().seed,
        rounds: config.rounds,
        converged_rounds,
        converged: canonical(&truth) == canonical(subscriber.store()),
        attempts,
        backoff_ms_total,
        counters: subscriber.counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_converges_every_round() {
        let out = run_fault_simulation(&FaultConfig {
            fault_rate: 0.0,
            rounds: 5,
            ..Default::default()
        });
        assert!(out.converged);
        assert_eq!(out.converged_rounds, 5);
        assert_eq!(out.counters.retries, 0);
        assert_eq!(out.counters.quarantines, 0);
    }

    #[test]
    fn lossy_channel_converges_with_retries() {
        let out = run_fault_simulation(&FaultConfig::default());
        assert!(out.converged, "30% faults must not prevent convergence");
        assert!(
            out.counters.retries > 0,
            "a 30% fault rate should force at least one retry: {:?}",
            out.counters
        );
        assert!(out.counters.messages_rejected > 0, "{:?}", out.counters);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_fault_simulation(&FaultConfig::default());
        let b = run_fault_simulation(&FaultConfig::default());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.backoff_ms_total, b.backoff_ms_total);
    }
}
