//! Partial-distrust fidelity (E4): the Debian dilemma, quantified over a
//! population of Symantec-era chains.

use nrslb_incidents::catalog::symantec;
use nrslb_incidents::matrix::{evaluate_scenario, DerivativeStrategy, ScenarioStats};

/// Population sizing for the fidelity experiment.
#[derive(Clone, Copy, Debug)]
pub struct FidelityConfig {
    /// Legitimate leaves issued before the 2016-06-01 cutoff.
    pub n_old_leaves: usize,
    /// Legitimate post-cutoff leaves via the exempt (Apple) intermediate.
    pub n_exempt_leaves: usize,
    /// Post-cutoff leaves via ordinary intermediates (what the primary
    /// rejects — treated as the attack/mis-issuance class).
    pub n_new_leaves: usize,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig {
            n_old_leaves: 120,
            n_exempt_leaves: 40,
            n_new_leaves: 80,
        }
    }
}

/// Results for one strategy.
#[derive(Clone, Debug)]
pub struct StrategyOutcome {
    /// The strategy.
    pub strategy: DerivativeStrategy,
    /// Raw counts.
    pub stats: ScenarioStats,
    /// Fraction of legitimate chains wrongly rejected (DoS rate).
    pub wrongly_rejected: f64,
    /// Fraction of attack chains wrongly accepted (vulnerability rate).
    pub wrongly_accepted: f64,
}

/// Results across all three strategies.
#[derive(Clone, Debug)]
pub struct FidelityOutcome {
    /// Configuration used.
    pub config: FidelityConfig,
    /// One row per strategy.
    pub per_strategy: Vec<StrategyOutcome>,
}

/// Run the experiment.
pub fn run_fidelity(config: FidelityConfig) -> FidelityOutcome {
    let scenario = symantec::scenario_sized(
        config.n_old_leaves,
        config.n_exempt_leaves,
        config.n_new_leaves,
    );
    let mut per_strategy = Vec::new();
    for strategy in [
        DerivativeStrategy::BinaryKeep,
        DerivativeStrategy::BinaryRemove,
        DerivativeStrategy::Gcc,
    ] {
        let stats = evaluate_scenario(&scenario, strategy);
        per_strategy.push(StrategyOutcome {
            strategy,
            stats,
            wrongly_rejected: 1.0
                - stats.legitimate_accepted as f64 / stats.legitimate_total.max(1) as f64,
            wrongly_accepted: stats.attacks_accepted as f64 / stats.attacks_total.max(1) as f64,
        });
    }
    FidelityOutcome {
        config,
        per_strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_shape_matches_paper_argument() {
        let out = run_fidelity(FidelityConfig {
            n_old_leaves: 20,
            n_exempt_leaves: 8,
            n_new_leaves: 12,
        });
        let keep = &out.per_strategy[0];
        let remove = &out.per_strategy[1];
        let gcc = &out.per_strategy[2];

        // Binary keep: fully vulnerable, no DoS.
        assert_eq!(keep.wrongly_accepted, 1.0);
        assert_eq!(keep.wrongly_rejected, 0.0);
        // Binary remove: no vulnerability, full DoS.
        assert_eq!(remove.wrongly_accepted, 0.0);
        assert_eq!(remove.wrongly_rejected, 1.0);
        // GCC: matches the primary exactly.
        assert_eq!(gcc.wrongly_accepted, 0.0);
        assert_eq!(gcc.wrongly_rejected, 0.0);
    }
}
