//! Ecosystem exposure: combine per-derivative propagation windows with a
//! client-population mix into "what fraction of clients still accept the
//! attack chain N days after the incident?" — the aggregate stake of the
//! paper's §4 argument.

use crate::lag::{DerivativeOutcome, LagConfig, LagOutcome};

/// A client-population mix: derivative name → share of clients (shares
/// should sum to ~1.0).
pub type PopulationMix = Vec<(String, f64)>;

/// A rough client mix over the derivative profiles of
/// [`crate::lag::ma_et_al_profiles`]: mobile dominates, manually-mirrored
/// server distributions follow, a small slice subscribes to feeds.
pub fn default_population() -> PopulationMix {
    vec![
        ("android".into(), 0.40),
        ("debian".into(), 0.12),
        ("ubuntu".into(), 0.13),
        ("amazon-linux".into(), 0.10),
        ("alpine".into(), 0.05),
        ("nodejs".into(), 0.10),
        ("rsf-hourly".into(), 0.08),
        ("rsf-daily".into(), 0.02),
    ]
}

/// One point of the exposure curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExposurePoint {
    /// Days since the distrust event.
    pub days_after_incident: u32,
    /// Fraction of clients still accepting the attack chain.
    pub exposed_share: f64,
}

/// Compute the exposure curve from a lag simulation's windows.
///
/// A derivative's clients are exposed for exactly its vulnerability
/// window (windows are contiguous from the event — the store flips once),
/// so the curve is the population-weighted survival function of the
/// window distribution.
pub fn exposure_curve(
    outcome: &LagOutcome,
    population: &PopulationMix,
    config: &LagConfig,
    sample_days: &[u32],
) -> Vec<ExposurePoint> {
    let window_of = |name: &str| -> Option<f64> {
        outcome
            .per_derivative
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.vulnerability_window_days)
    };
    let horizon_after = config.horizon_days.saturating_sub(config.distrust_day);
    sample_days
        .iter()
        .filter(|&&d| d <= horizon_after)
        .map(|&d| {
            let exposed: f64 = population
                .iter()
                .filter_map(|(name, share)| {
                    window_of(name).map(|w| if (d as f64) < w { *share } else { 0.0 })
                })
                .sum();
            ExposurePoint {
                days_after_incident: d,
                exposed_share: exposed,
            }
        })
        .collect()
}

/// Population-weighted mean vulnerability window, in days.
pub fn mean_window(outcome: &LagOutcome, population: &PopulationMix) -> f64 {
    let mut total_share = 0.0;
    let mut acc = 0.0;
    for (name, share) in population {
        if let Some(d) = outcome.per_derivative.iter().find(|d| &d.name == name) {
            acc += share * d.vulnerability_window_days;
            total_share += share;
        }
    }
    if total_share > 0.0 {
        acc / total_share
    } else {
        0.0
    }
}

/// Replace every manual derivative's policy outcome with the RSF-hourly
/// one (the counterfactual "everyone subscribes" world of the paper's
/// proposal). Panics if no `rsf-hourly` row exists.
pub fn counterfactual_all_rsf(outcome: &LagOutcome) -> LagOutcome {
    let rsf = outcome
        .per_derivative
        .iter()
        .find(|d| d.name == "rsf-hourly")
        .expect("rsf-hourly row present")
        .clone();
    LagOutcome {
        per_derivative: outcome
            .per_derivative
            .iter()
            .map(|d| DerivativeOutcome {
                name: d.name.clone(),
                vulnerability_window_days: rsf.vulnerability_window_days,
                incompatibility_window_days: rsf.incompatibility_window_days,
                feed_bytes: rsf.feed_bytes,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lag::{DerivativeProfile, UpdatePolicy};

    fn outcome() -> (LagOutcome, LagConfig) {
        let config = LagConfig {
            horizon_days: 100,
            distrust_day: 10,
            addition_day: 10,
            derivatives: vec![
                DerivativeProfile {
                    name: "slow".into(),
                    policy: UpdatePolicy::Manual { lag_days: 50 },
                },
                DerivativeProfile {
                    name: "fast".into(),
                    policy: UpdatePolicy::Manual { lag_days: 5 },
                },
                DerivativeProfile {
                    name: "rsf-hourly".into(),
                    policy: UpdatePolicy::Rsf {
                        poll_interval_hours: 1,
                    },
                },
            ],
        };
        (crate::lag::run_lag_simulation(&config), config)
    }

    #[test]
    fn curve_decreases_as_windows_elapse() {
        let (outcome, config) = outcome();
        let pop: PopulationMix = vec![
            ("slow".into(), 0.5),
            ("fast".into(), 0.3),
            ("rsf-hourly".into(), 0.2),
        ];
        let curve = exposure_curve(&outcome, &pop, &config, &[0, 1, 6, 60]);
        // Day 0: everyone with a nonzero window is exposed (rsf window is
        // sub-day but >0 at day 0 only if window > 0; hourly window ≈
        // 0.014 days > 0).
        assert!(curve[0].exposed_share >= 0.8, "{curve:?}");
        // Day 1: only manual derivatives remain exposed.
        assert!((curve[1].exposed_share - 0.8).abs() < 1e-9, "{curve:?}");
        // Day 6: fast (5-day lag) has recovered.
        assert!((curve[2].exposed_share - 0.5).abs() < 1e-9, "{curve:?}");
        // Day 60: everyone recovered.
        assert_eq!(curve[3].exposed_share, 0.0);
    }

    #[test]
    fn mean_window_weighted() {
        let (outcome, _) = outcome();
        let pop: PopulationMix = vec![("slow".into(), 0.5), ("fast".into(), 0.5)];
        let mean = mean_window(&outcome, &pop);
        assert!((mean - 27.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn counterfactual_zeroes_windows() {
        let (outcome, _) = outcome();
        let cf = counterfactual_all_rsf(&outcome);
        for d in &cf.per_derivative {
            assert!(d.vulnerability_window_days < 0.1, "{d:?}");
        }
    }
}
