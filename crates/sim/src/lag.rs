//! The staleness simulation: manual mirroring vs RSF polling.

use nrslb_core::{Usage, ValidationMode, Validator};
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust, Subscriber};
use nrslb_x509::builder::{CaKey, CertificateBuilder};
use nrslb_x509::{Certificate, DistinguishedName};

/// Seconds per simulated day.
pub const DAY: i64 = 86_400;

/// How a derivative tracks its primary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Manual mirroring: the derivative applies the primary's state from
    /// `lag_days` ago (release-cycle mirroring, Ma et al.'s finding).
    Manual {
        /// Mirroring lag in days.
        lag_days: u32,
    },
    /// RSF subscription: poll the feed every `poll_interval_hours`.
    Rsf {
        /// Polling interval in hours (the paper proposes hourly).
        poll_interval_hours: u32,
    },
}

/// A derivative store profile.
#[derive(Clone, Debug)]
pub struct DerivativeProfile {
    /// Display name (`"debian"`, `"android"`, ...).
    pub name: String,
    /// Tracking policy.
    pub policy: UpdatePolicy,
}

/// Derivative profiles parameterised with the staleness the paper quotes
/// from Ma et al. (IMC '21): no derivative matches NSS's schedule;
/// Android is "always several months behind"; Amazon Linux averages
/// "more than four substantial versions" (NSS ships roughly every 10
/// weeks, so ≈ 280 days).
pub fn ma_et_al_profiles() -> Vec<DerivativeProfile> {
    vec![
        DerivativeProfile {
            name: "debian".into(),
            policy: UpdatePolicy::Manual { lag_days: 90 },
        },
        DerivativeProfile {
            name: "ubuntu".into(),
            policy: UpdatePolicy::Manual { lag_days: 60 },
        },
        DerivativeProfile {
            name: "android".into(),
            policy: UpdatePolicy::Manual { lag_days: 150 },
        },
        DerivativeProfile {
            name: "amazon-linux".into(),
            policy: UpdatePolicy::Manual { lag_days: 280 },
        },
        DerivativeProfile {
            name: "alpine".into(),
            policy: UpdatePolicy::Manual { lag_days: 45 },
        },
        DerivativeProfile {
            name: "nodejs".into(),
            policy: UpdatePolicy::Manual { lag_days: 120 },
        },
        DerivativeProfile {
            name: "rsf-hourly".into(),
            policy: UpdatePolicy::Rsf {
                poll_interval_hours: 1,
            },
        },
        DerivativeProfile {
            name: "rsf-daily".into(),
            policy: UpdatePolicy::Rsf {
                poll_interval_hours: 24,
            },
        },
    ]
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct LagConfig {
    /// Simulated horizon in days.
    pub horizon_days: u32,
    /// Day the primary partially distrusts the incident root (attaches a
    /// GCC blocking newly issued leaves).
    pub distrust_day: u32,
    /// Day the primary adds a brand-new root.
    pub addition_day: u32,
    /// Derivatives to simulate.
    pub derivatives: Vec<DerivativeProfile>,
}

impl Default for LagConfig {
    fn default() -> Self {
        LagConfig {
            horizon_days: 365,
            distrust_day: 30,
            addition_day: 30,
            derivatives: ma_et_al_profiles(),
        }
    }
}

/// Per-derivative results.
#[derive(Clone, Debug, PartialEq)]
pub struct DerivativeOutcome {
    /// The derivative's name.
    pub name: String,
    /// Days (after the distrust event) during which the derivative's
    /// clients still accepted the attack chain.
    pub vulnerability_window_days: f64,
    /// Days (after the addition event) during which the derivative's
    /// clients rejected the new root's legitimate chain.
    pub incompatibility_window_days: f64,
    /// Bytes fetched over the feed (0 for manual mirroring).
    pub feed_bytes: usize,
}

/// Full simulation results.
#[derive(Clone, Debug)]
pub struct LagOutcome {
    /// One row per derivative.
    pub per_derivative: Vec<DerivativeOutcome>,
}

struct World {
    /// Primary store state by day (index = day).
    primary_by_day: Vec<RootStore>,
    /// Attack chain: post-incident leaf under the distrusted root.
    attack_leaf: Certificate,
    attack_pool: Vec<Certificate>,
    /// Legitimate chain under the newly added root.
    new_leaf: Certificate,
    new_pool: Vec<Certificate>,
}

fn build_world(config: &LagConfig) -> World {
    let distrust_t = config.distrust_day as i64 * DAY;

    // Root A: stable background root (keeps stores non-trivial).
    let a_key = CaKey::generate_for_tests("Lag Stable Root", 0x80);
    let a_root = CertificateBuilder::new()
        .validity_window(0, 4_000_000_000)
        .ca(None)
        .build_self_signed(&a_key)
        .unwrap();
    // Root B: the incident root.
    let b_key = CaKey::generate_for_tests("Lag Incident Root", 0x81);
    let b_root = CertificateBuilder::new()
        .validity_window(0, 4_000_000_000)
        .ca(None)
        .build_self_signed(&b_key)
        .unwrap();
    // Root C: added later.
    let c_key = CaKey::generate_for_tests("Lag New Root", 0x82);
    let c_root = CertificateBuilder::new()
        .validity_window(0, 4_000_000_000)
        .ca(None)
        .build_self_signed(&c_key)
        .unwrap();

    // The attack: a leaf mis-issued under B *after* the incident.
    let attack_leaf = CertificateBuilder::new()
        .subject(DistinguishedName::common_name("bank.example"))
        .dns_names(&["bank.example"])
        .validity_window(distrust_t, 4_000_000_000)
        .build_signed_by(&b_key)
        .unwrap();
    // The new root's legitimate leaf.
    let new_leaf = CertificateBuilder::new()
        .subject(DistinguishedName::common_name("fresh.example"))
        .dns_names(&["fresh.example"])
        .validity_window(0, 4_000_000_000)
        .build_signed_by(&c_key)
        .unwrap();

    // The GCC the primary attaches on distrust day: WoSign-style, only
    // leaves issued before the incident remain valid.
    let gcc = Gcc::parse(
        "lag-incident-response",
        b_root.fingerprint(),
        &format!("cutoff({distrust_t}).\nvalid(Chain, _) :- leaf(Chain, C), notBefore(C, NB), cutoff(T), NB < T."),
        GccMetadata {
            justification: "distrust newly issued certificates after incident".into(),
            ..Default::default()
        },
    )
    .unwrap();

    // Primary state per day.
    let mut primary_by_day = Vec::with_capacity(config.horizon_days as usize);
    let mut current = RootStore::new("nss");
    current.add_trusted(a_root).unwrap();
    current.add_trusted(b_root.clone()).unwrap();
    for day in 0..config.horizon_days {
        if day == config.distrust_day {
            current.attach_gcc(gcc.clone()).unwrap();
        }
        if day == config.addition_day {
            current.add_trusted(c_root.clone()).unwrap();
        }
        primary_by_day.push(current.clone());
    }

    World {
        primary_by_day,
        attack_leaf,
        attack_pool: Vec::new(),
        new_leaf,
        new_pool: Vec::new(),
    }
}

/// Length of the intersection of `[a0, a1)` and `[b0, b1)`.
fn overlap(a0: i64, a1: i64, b0: i64, b1: i64) -> i64 {
    (a1.min(b1) - a0.max(b0)).max(0)
}

fn accepts(store: &RootStore, leaf: &Certificate, pool: &[Certificate], at: i64) -> bool {
    Validator::new(store.clone(), ValidationMode::UserAgent)
        .validate(leaf, pool, Usage::Tls, at)
        .expect("validation machinery")
        .accepted()
}

/// Run the simulation.
pub fn run_lag_simulation(config: &LagConfig) -> LagOutcome {
    let world = build_world(config);
    let horizon = config.horizon_days;

    // RSF infrastructure shared by all RSF derivatives.
    let coordinator = CoordinatorKey::from_seed([0x90; 32], 6).expect("coordinator key");
    let trust = FeedTrust::single(coordinator.public());
    let feed_key = FeedKey::new([0x91; 32], 10, &coordinator).expect("feed key");
    let mut publisher =
        FeedPublisher::new("nss", feed_key, &world.primary_by_day[0], 0).expect("feed bootstrap");

    let mut per_derivative = Vec::new();
    for profile in &config.derivatives {
        match profile.policy {
            UpdatePolicy::Manual { lag_days } => {
                let mut vuln = 0u32;
                let mut incompat = 0u32;
                for day in 0..horizon {
                    let seen_day = day.saturating_sub(lag_days);
                    let store = &world.primary_by_day[seen_day as usize];
                    let t = day as i64 * DAY + DAY / 2;
                    if day >= config.distrust_day
                        && accepts(store, &world.attack_leaf, &world.attack_pool, t)
                    {
                        vuln += 1;
                    }
                    if day >= config.addition_day
                        && !accepts(store, &world.new_leaf, &world.new_pool, t)
                    {
                        incompat += 1;
                    }
                }
                per_derivative.push(DerivativeOutcome {
                    name: profile.name.clone(),
                    vulnerability_window_days: vuln as f64,
                    incompatibility_window_days: incompat as f64,
                    feed_bytes: 0,
                });
            }
            UpdatePolicy::Rsf {
                poll_interval_hours,
            } => {
                // Event-driven: the subscriber's store only changes at
                // poll times, so windows are computed exactly from the
                // inter-poll intervals. Polls are phase-offset from the
                // publisher's (day-aligned) events, as real schedules
                // would be.
                let mut subscriber = Subscriber::builder(&profile.name, trust.clone()).build();
                let poll_interval = poll_interval_hours as i64 * 3600;
                let phase = poll_interval / 3;
                let distrust_t = config.distrust_day as i64 * DAY;
                let addition_t = config.addition_day as i64 * DAY;
                let horizon_t = horizon as i64 * DAY;

                let mut vuln_secs = 0i64;
                let mut incompat_secs = 0i64;
                let mut feed_bytes = 0usize;
                // Acceptance of the two probe chains under the current
                // subscriber store (re-evaluated only after changes).
                let mut attack_ok = false;
                let mut new_ok = false;
                let mut published_day: i64 = -1;
                let mut t = 0i64;
                while t < horizon_t {
                    // Publisher state catches up to the current day.
                    let day = (t / DAY).min(horizon as i64 - 1);
                    while published_day < day {
                        published_day += 1;
                        publisher
                            .publish(
                                &world.primary_by_day[published_day as usize],
                                published_day * DAY,
                            )
                            .expect("publish");
                    }
                    let report = subscriber.sync(&mut publisher, t).expect("sync");
                    feed_bytes += report.bytes_transferred;
                    if report.deltas_applied > 0 || report.snapshot_applied || t == 0 {
                        attack_ok = accepts(
                            subscriber.store(),
                            &world.attack_leaf,
                            &world.attack_pool,
                            (t + 1).max(distrust_t + 1),
                        );
                        new_ok = accepts(
                            subscriber.store(),
                            &world.new_leaf,
                            &world.new_pool,
                            (t + 1).max(addition_t + 1),
                        );
                    }
                    // The store now holds until the next poll.
                    let next = if t == 0 { phase } else { t + poll_interval };
                    let interval_end = next.min(horizon_t);
                    if attack_ok {
                        vuln_secs += overlap(t, interval_end, distrust_t, horizon_t);
                    }
                    if !new_ok {
                        incompat_secs += overlap(t, interval_end, addition_t, horizon_t);
                    }
                    t = next;
                }
                per_derivative.push(DerivativeOutcome {
                    name: profile.name.clone(),
                    vulnerability_window_days: vuln_secs as f64 / DAY as f64,
                    incompatibility_window_days: incompat_secs as f64 / DAY as f64,
                    feed_bytes,
                });
            }
        }
    }
    LagOutcome { per_derivative }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(derivatives: Vec<DerivativeProfile>) -> LagConfig {
        LagConfig {
            horizon_days: 60,
            distrust_day: 10,
            addition_day: 10,
            derivatives,
        }
    }

    #[test]
    fn manual_windows_equal_lag() {
        let config = quick_config(vec![
            DerivativeProfile {
                name: "lag-20".into(),
                policy: UpdatePolicy::Manual { lag_days: 20 },
            },
            DerivativeProfile {
                name: "lag-0".into(),
                policy: UpdatePolicy::Manual { lag_days: 0 },
            },
        ]);
        let out = run_lag_simulation(&config);
        let lag20 = &out.per_derivative[0];
        assert_eq!(lag20.vulnerability_window_days, 20.0);
        assert_eq!(lag20.incompatibility_window_days, 20.0);
        let lag0 = &out.per_derivative[1];
        assert_eq!(lag0.vulnerability_window_days, 0.0);
        assert_eq!(lag0.incompatibility_window_days, 0.0);
    }

    #[test]
    fn rsf_hourly_window_under_a_day() {
        let config = quick_config(vec![DerivativeProfile {
            name: "rsf".into(),
            policy: UpdatePolicy::Rsf {
                poll_interval_hours: 1,
            },
        }]);
        let out = run_lag_simulation(&config);
        let rsf = &out.per_derivative[0];
        assert!(
            rsf.vulnerability_window_days < 1.0,
            "vuln window {} days",
            rsf.vulnerability_window_days
        );
        assert!(rsf.incompatibility_window_days < 1.0);
        assert!(rsf.feed_bytes > 0);
    }

    #[test]
    fn lag_cut_by_rsf_orders_of_magnitude() {
        let config = quick_config(vec![
            DerivativeProfile {
                name: "manual".into(),
                policy: UpdatePolicy::Manual { lag_days: 40 },
            },
            DerivativeProfile {
                name: "rsf".into(),
                policy: UpdatePolicy::Rsf {
                    poll_interval_hours: 1,
                },
            },
        ]);
        let out = run_lag_simulation(&config);
        let manual = &out.per_derivative[0];
        let rsf = &out.per_derivative[1];
        assert!(manual.vulnerability_window_days >= 30.0);
        assert!(rsf.vulnerability_window_days * 100.0 < manual.vulnerability_window_days);
    }
}
