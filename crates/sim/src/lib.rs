//! # `nrslb-sim` — ecosystem simulation: lag windows and distrust fidelity
//!
//! Two simulations quantify the paper's motivating problems:
//!
//! * [`lag`] — the **staleness** experiment (E5, paper §4): a primary
//!   store evolves over a simulated year (a root distrust with a GCC, a
//!   root addition); derivative stores track it either by *manual
//!   mirroring with lag* (parameterised with the Ma et al. staleness
//!   figures the paper quotes) or by *RSF polling*. The simulation
//!   measures each derivative's **vulnerability window** (days its
//!   clients still accept the distrusted root's post-incident chains) and
//!   **incompatibility window** (days its clients reject the newly added
//!   root's chains).
//! * [`exposure`] — population-weighted **ecosystem exposure**: how many
//!   clients remain attackable N days after an incident, under today's
//!   mix vs the all-RSF counterfactual (E11).
//! * [`faults`] — the **sync-resilience** experiment (E13): a subscriber
//!   syncing through a channel that drops, delays, duplicates, truncates
//!   and bit-flips frames must still converge byte-identically to the
//!   publisher's store, with the retry effort reported.
//! * [`fidelity`] — the **partial-distrust fidelity** experiment (E4,
//!   paper §2.3): over a sized Symantec population, compare the three
//!   derivative strategies (keep / remove / GCC) and report mis-accepted
//!   and wrongly-rejected fractions — the Debian dilemma, quantified.
//!
//! A second family of modules forms the **deterministic simulation
//! harness** (E14): a seed-reproducible miniature ecosystem whose every
//! validation is cross-checked along independent code paths.
//!
//! * [`schedule`] — the virtual clock ([`SimClock`]) and the seeded
//!   discrete-event [`Scheduler`]; ties break by insertion order so a
//!   run is a pure function of its seed.
//! * [`chaingen`] — a deterministic X.509 chain fuzzer: a small PKI
//!   minted from the seed, plus a catalogue of
//!   [`ChainMutation`]s (expiry, wrong EKU, bit flips, dropped or
//!   foreign intermediates, untrusted anchors).
//! * [`ecosystem`] — one primary publishing RSF snapshots/deltas
//!   through per-subscriber `FaultInjector`s to a fleet of heterogeneous
//!   [`Subscriber`](nrslb_rsf::Subscriber)s, with optional split-view
//!   attack injection.
//! * [`differential`] — the oracle: compiled-vs-naive Datalog,
//!   cached-vs-cold sessions, primary-vs-replica stores; disagreements
//!   dump seed + trace + DER repros and fail the run.

#![warn(missing_docs)]

pub mod chaingen;
pub mod differential;
pub mod ecosystem;
pub mod exposure;
pub mod faults;
pub mod fidelity;
pub mod lag;
pub mod schedule;

pub use chaingen::{ChainGenConfig, ChainGenerator, ChainMutation, SampleChain};
pub use differential::{
    run_differential, seed_from_env, DifferentialConfig, DifferentialOutcome, Disagreement,
};
pub use ecosystem::{EcoEvent, Ecosystem, EcosystemConfig, MinorityAttack, SubscriberSpec};
pub use exposure::{
    counterfactual_all_rsf, default_population, exposure_curve, mean_window, ExposurePoint,
    PopulationMix,
};
pub use faults::{run_fault_simulation, FaultConfig, FaultOutcome};
pub use fidelity::{run_fidelity, FidelityConfig, FidelityOutcome, StrategyOutcome};
pub use lag::{
    ma_et_al_profiles, run_lag_simulation, DerivativeOutcome, DerivativeProfile, LagConfig,
    LagOutcome, UpdatePolicy,
};
pub use schedule::{Scheduler, SimClock};
