//! # `nrslb-sim` — ecosystem simulation: lag windows and distrust fidelity
//!
//! Two simulations quantify the paper's motivating problems:
//!
//! * [`lag`] — the **staleness** experiment (E5, paper §4): a primary
//!   store evolves over a simulated year (a root distrust with a GCC, a
//!   root addition); derivative stores track it either by *manual
//!   mirroring with lag* (parameterised with the Ma et al. staleness
//!   figures the paper quotes) or by *RSF polling*. The simulation
//!   measures each derivative's **vulnerability window** (days its
//!   clients still accept the distrusted root's post-incident chains) and
//!   **incompatibility window** (days its clients reject the newly added
//!   root's chains).
//! * [`exposure`] — population-weighted **ecosystem exposure**: how many
//!   clients remain attackable N days after an incident, under today's
//!   mix vs the all-RSF counterfactual (E11).
//! * [`faults`] — the **sync-resilience** experiment (E13): a subscriber
//!   syncing through a channel that drops, delays, duplicates, truncates
//!   and bit-flips frames must still converge byte-identically to the
//!   publisher's store, with the retry effort reported.
//! * [`fidelity`] — the **partial-distrust fidelity** experiment (E4,
//!   paper §2.3): over a sized Symantec population, compare the three
//!   derivative strategies (keep / remove / GCC) and report mis-accepted
//!   and wrongly-rejected fractions — the Debian dilemma, quantified.

#![warn(missing_docs)]

pub mod exposure;
pub mod faults;
pub mod fidelity;
pub mod lag;

pub use exposure::{
    counterfactual_all_rsf, default_population, exposure_curve, mean_window, ExposurePoint,
    PopulationMix,
};
pub use faults::{run_fault_simulation, FaultConfig, FaultOutcome};
pub use fidelity::{run_fidelity, FidelityConfig, FidelityOutcome, StrategyOutcome};
pub use lag::{
    ma_et_al_profiles, run_lag_simulation, DerivativeOutcome, DerivativeProfile, LagConfig,
    LagOutcome, UpdatePolicy,
};
