//! Minimal `--flag value` argument parsing (no external crates).

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed arguments: positional words plus `--key value` options.
#[derive(Debug, Default)]
pub struct Opts {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    options: BTreeMap<String, String>,
}

impl Opts {
    /// Parse from an argument iterator (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Opts, CliError> {
        let mut out = Opts::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--{key} needs a value")))?;
                if out.options.insert(key.to_string(), value).is_some() {
                    return Err(CliError::Usage(format!("--{key} given twice")));
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// Required option.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError::Usage(format!("--{key} is required")))
    }

    /// Optional option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Optional with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, CliError> {
        Opts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positional_and_options() {
        let opts = parse(&["store", "new", "--out", "x.rsf", "--name", "mine"]).unwrap();
        assert_eq!(opts.positional, vec!["store", "new"]);
        assert_eq!(opts.require("out").unwrap(), "x.rsf");
        assert_eq!(opts.get_or("name", "d"), "mine");
        assert_eq!(opts.get_or("missing", "d"), "d");
        assert!(opts.require("missing").is_err());
    }

    #[test]
    fn rejects_missing_value_and_duplicates() {
        assert!(parse(&["--out"]).is_err());
        assert!(parse(&["--out", "a", "--out", "b"]).is_err());
    }
}
