//! The `nrslb` binary: thin wrapper over [`nrslb_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = nrslb_cli::run(args, &mut stdout) {
        eprintln!("nrslb: {e}");
        std::process::exit(1);
    }
}
