//! Command implementations. Each command writes human output to the
//! provided writer so tests can capture it.

use crate::opts::Opts;
use crate::CliError;
use nrslb_core::{facts, Usage, ValidationMode, Validator};
use nrslb_crypto::sha256::Digest;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_rsf::Snapshot;
use nrslb_x509::Certificate;
use std::io::Write;

/// Dispatch a full argument vector (without the program name).
pub fn run(args: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let opts = Opts::parse(args)?;
    let words: Vec<&str> = opts.positional.iter().map(|s| s.as_str()).collect();
    match words.as_slice() {
        ["store", "new"] => store_new(&opts, out),
        ["store", "show"] => store_show(&opts, out),
        ["store", "add-root"] => store_add_root(&opts, out),
        ["store", "distrust"] => store_distrust(&opts, out),
        ["store", "attach-gcc"] => store_attach_gcc(&opts, out),
        ["gcc", "check"] => gcc_check(&opts, out),
        ["gcc", "explain"] => gcc_explain(&opts, out),
        ["validate"] => validate(&opts, out),
        ["convert"] => convert(&opts, out),
        ["daemon"] => daemon(&opts, out),
        ["demo", "make-pki"] => demo_make_pki(&opts, out),
        ["demo", "incidents"] => demo_incidents(out),
        ["demo", "quorum"] => demo_quorum(&opts, out),
        [] => Err(CliError::Usage(
            "expected a command; see crate docs (store/gcc/validate/convert/daemon/demo)".into(),
        )),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn read(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(path).map_err(|e| CliError::Io(path.into(), e))
}

fn read_str(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(path.into(), e))
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, bytes).map_err(|e| CliError::Io(path.into(), e))
}

/// Load a store file (RSF snapshot encoding).
pub fn load_store(path: &str) -> Result<RootStore, CliError> {
    let bytes = read(path)?;
    let snap = Snapshot::decode(&bytes).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    snap.materialize(&snap.feed.clone())
        .map_err(|e| CliError::Invalid(format!("{path}: {e}")))
}

/// Save a store file.
pub fn save_store(path: &str, store: &RootStore) -> Result<(), CliError> {
    let snap = Snapshot::capture(store.name(), store.version(), 0, store);
    write_file(path, &snap.encode())
}

/// Load one certificate from a DER or PEM file (sniffed by content).
fn load_cert(path: &str) -> Result<Certificate, CliError> {
    let bytes = read(path)?;
    if bytes.starts_with(b"-----BEGIN") {
        let text = String::from_utf8(bytes)
            .map_err(|_| CliError::Invalid(format!("{path}: non-utf8 PEM")))?;
        nrslb_x509::pem::decode(&text).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
    } else {
        Certificate::from_der(&bytes).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
    }
}

fn load_chain(spec: &str) -> Result<Vec<Certificate>, CliError> {
    let mut chain = Vec::new();
    for path in spec.split(',') {
        chain.push(load_cert(path)?);
    }
    if chain.is_empty() {
        return Err(CliError::Usage("--chain needs at least one file".into()));
    }
    Ok(chain)
}

fn parse_fingerprint(hex: &str) -> Result<Digest, CliError> {
    Digest::from_hex(hex).map_err(|_| CliError::Invalid(format!("bad fingerprint {hex:?}")))
}

fn parse_usage(s: &str) -> Result<Usage, CliError> {
    match s {
        "TLS" | "tls" => Ok(Usage::Tls),
        "S/MIME" | "smime" | "s/mime" => Ok(Usage::SMime),
        other => Err(CliError::Usage(format!("unknown usage {other:?}"))),
    }
}

fn store_new(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let path = opts.require("out")?;
    let store = RootStore::new(opts.get_or("name", "local"));
    save_store(path, &store)?;
    writeln!(out, "created empty store {path}").ok();
    Ok(())
}

fn store_show(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let store = load_store(opts.require("store")?)?;
    writeln!(
        out,
        "store {:?}, {} trusted root(s)",
        store.name(),
        store.len()
    )
    .ok();
    for (fp, rec) in store.iter() {
        writeln!(out, "  trusted {} {}", fp.to_hex(), rec.cert.subject()).ok();
        if let Some(t) = rec.tls_distrust_after {
            writeln!(out, "    tls-distrust-after {t}").ok();
        }
        if let Some(t) = rec.smime_distrust_after {
            writeln!(out, "    smime-distrust-after {t}").ok();
        }
        if !rec.ev_allowed {
            writeln!(out, "    ev-disallowed").ok();
        }
        for gcc in &rec.gccs {
            writeln!(
                out,
                "    gcc {:?} ({} rules) {}",
                gcc.name(),
                gcc.program().rules.len(),
                gcc.metadata().justification
            )
            .ok();
        }
    }
    for (fp, why) in store.iter_distrusted() {
        writeln!(out, "  distrusted {} ({why})", fp.to_hex()).ok();
    }
    Ok(())
}

fn store_add_root(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let path = opts.require("store")?;
    let mut store = load_store(path)?;
    let cert = load_cert(opts.require("cert")?)?;
    let fp = cert.fingerprint();
    store
        .add_trusted(cert)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    save_store(path, &store)?;
    writeln!(out, "added root {}", fp.to_hex()).ok();
    Ok(())
}

fn store_distrust(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let path = opts.require("store")?;
    let mut store = load_store(path)?;
    let fp = parse_fingerprint(opts.require("fingerprint")?)?;
    store.distrust(fp, opts.get_or("why", "operator decision"));
    save_store(path, &store)?;
    writeln!(out, "distrusted {}", fp.to_hex()).ok();
    Ok(())
}

fn store_attach_gcc(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let path = opts.require("store")?;
    let mut store = load_store(path)?;
    let fp = parse_fingerprint(opts.require("fingerprint")?)?;
    let source = read_str(opts.require("gcc")?)?;
    let gcc = Gcc::parse(
        opts.get_or("name", "unnamed"),
        fp,
        &source,
        GccMetadata {
            justification: opts.get_or("why", "").to_string(),
            ..Default::default()
        },
    )
    .map_err(|e| CliError::Invalid(format!("GCC rejected: {e}")))?;
    store
        .attach_gcc(gcc)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    save_store(path, &store)?;
    writeln!(out, "attached GCC to {}", fp.to_hex()).ok();
    Ok(())
}

fn gcc_check(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let source = read_str(opts.require("gcc")?)?;
    match Gcc::parse("check", Digest::ZERO, &source, GccMetadata::default()) {
        Ok(gcc) => {
            writeln!(
                out,
                "ok: {} rules, defines valid/2, safe and stratifiable",
                gcc.program().rules.len()
            )
            .ok();
            Ok(())
        }
        Err(e) => Err(CliError::Invalid(format!("GCC rejected: {e}"))),
    }
}

fn gcc_explain(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let source = read_str(opts.require("gcc")?)?;
    let chain = load_chain(opts.require("chain")?)?;
    let usage = parse_usage(opts.get_or("usage", "TLS"))?;
    let gcc = Gcc::parse("explain", Digest::ZERO, &source, GccMetadata::default())
        .map_err(|e| CliError::Invalid(format!("GCC rejected: {e}")))?;
    match nrslb_core::gcc_eval::explain_gcc(&gcc, &chain, usage)
        .map_err(|e| CliError::Invalid(e.to_string()))?
    {
        Some(derivation) => {
            writeln!(out, "GCC ACCEPTS the chain for {usage}; derivation:").ok();
            write!(out, "{}", derivation.render()).ok();
        }
        None => {
            writeln!(
                out,
                "GCC REJECTS the chain for {usage}: no derivation of valid/2 exists"
            )
            .ok();
        }
    }
    Ok(())
}

fn validate(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let store = load_store(opts.require("store")?)?;
    let chain = load_chain(opts.require("chain")?)?;
    let usage = parse_usage(opts.get_or("usage", "TLS"))?;
    let now: i64 = opts
        .get_or("time", "0")
        .parse()
        .map_err(|_| CliError::Usage("--time must be an integer".into()))?;
    let mode = match opts.get_or("mode", "ua") {
        "ua" | "user-agent" => ValidationMode::UserAgent,
        "hammurabi" => ValidationMode::Hammurabi,
        other => return Err(CliError::Usage(format!("unknown mode {other:?}"))),
    };
    let validator = Validator::new(store, mode);
    let outcome = match opts.get("host") {
        Some(host) => validator.validate_for_host(&chain[0], &chain[1..], host, now),
        None => validator.validate(&chain[0], &chain[1..], usage, now),
    }
    .map_err(|e| CliError::Invalid(e.to_string()))?;
    if let Some(accepted) = &outcome.accepted_chain {
        writeln!(
            out,
            "ACCEPTED via {} certificate chain (ev_granted={})",
            accepted.chain.len(),
            accepted.ev_granted
        )
        .ok();
        for (i, cert) in accepted.chain.iter().enumerate() {
            writeln!(
                out,
                "  [{i}] {} {}",
                cert.fingerprint().short(),
                cert.subject()
            )
            .ok();
        }
    } else {
        writeln!(
            out,
            "REJECTED: {}",
            outcome.final_reason().expect("rejected")
        )
        .ok();
        for attempt in &outcome.attempts {
            if let Err(reason) = &attempt.result {
                writeln!(
                    out,
                    "  candidate of {} certs: {reason}",
                    attempt.chain.len()
                )
                .ok();
            }
        }
        return Err(CliError::Invalid("chain rejected".into()));
    }
    Ok(())
}

fn convert(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let chain = load_chain(opts.require("chain")?)?;
    let db = facts::chain_facts(&chain);
    write!(out, "{}", db.to_fact_text()).ok();
    Ok(())
}

fn daemon(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let store = load_store(opts.require("store")?)?;
    let socket = opts.require("socket")?;
    let engine = match opts.get_or("engine", "reactor") {
        "reactor" => nrslb_core::daemon::Engine::Reactor,
        "thread-pool" => nrslb_core::daemon::Engine::ThreadPool,
        other => {
            return Err(CliError::Usage(format!(
                "unknown engine {other:?} (expected reactor or thread-pool)"
            )))
        }
    };
    let daemon = nrslb_core::daemon::TrustDaemon::builder()
        .socket(socket)
        .engine(engine)
        .spawn(store)
        .map_err(|e| CliError::Io(socket.into(), e))?;
    writeln!(
        out,
        "trust daemon listening on {socket} ({engine:?} engine, ctrl-c to stop)"
    )
    .ok();
    // Serve until killed (the handle's Drop cleans up the socket).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
        let _ = &daemon;
    }
}

fn demo_make_pki(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = opts.require("dir")?;
    std::fs::create_dir_all(dir).map_err(|e| CliError::Io(dir.into(), e))?;
    let host = opts.get_or("host", "demo.example");
    let pki = nrslb_x509::testutil::simple_chain(host);
    let p = |name: &str| format!("{}/{name}", dir.trim_end_matches('/'));
    write_file(&p("leaf.der"), pki.leaf.to_der())?;
    write_file(&p("intermediate.der"), pki.intermediate.to_der())?;
    write_file(&p("root.der"), pki.root.to_der())?;
    write_file(
        &p("leaf.pem"),
        nrslb_x509::pem::encode(&pki.leaf).as_bytes(),
    )?;
    write_file(
        &p("chain.pem"),
        format!(
            "{}{}{}",
            nrslb_x509::pem::encode(&pki.leaf),
            nrslb_x509::pem::encode(&pki.intermediate),
            nrslb_x509::pem::encode(&pki.root)
        )
        .as_bytes(),
    )?;
    let mut store = RootStore::new("demo");
    store
        .add_trusted(pki.root.clone())
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    save_store(&p("store.rsf"), &store)?;
    writeln!(
        out,
        "wrote leaf.der intermediate.der root.der store.rsf under {dir}\n\
         validate with: nrslb validate --store {dir}/store.rsf \
         --chain {dir}/leaf.der,{dir}/intermediate.der --host {host} --time {}",
        pki.now
    )
    .ok();
    Ok(())
}

fn demo_incidents(out: &mut dyn Write) -> Result<(), CliError> {
    use nrslb_incidents::{all_incidents, evaluate_scenario, DerivativeStrategy};
    writeln!(
        out,
        "{:<12} {:<15} {:>11} {:>6} {:>9}",
        "incident", "strategy", "vulnerable", "DoS", "matches"
    )
    .ok();
    for spec in all_incidents() {
        let scenario = (spec.build)();
        for strategy in [
            DerivativeStrategy::BinaryKeep,
            DerivativeStrategy::BinaryRemove,
            DerivativeStrategy::Gcc,
        ] {
            let stats = evaluate_scenario(&scenario, strategy);
            writeln!(
                out,
                "{:<12} {:<15} {:>11} {:>6} {:>9}",
                spec.id,
                strategy.to_string(),
                stats.vulnerable(),
                stats.denial_of_service(),
                stats.matches_primary()
            )
            .ok();
        }
    }
    Ok(())
}

/// A guided tour of the k-of-n coordinating body: share issuance,
/// sub-quorum recovery refusal, a quorum-witnessed feed checkpoint, a
/// compromised-minority forgery rejected live, and a share-rotation
/// ceremony flowing through the feed like any other mutation.
fn demo_quorum(opts: &Opts, out: &mut dyn Write) -> Result<(), CliError> {
    use nrslb_crypto::shamir;
    use nrslb_rsf::{FeedKey, FeedPublisher, FeedTrust, QuorumAuthority, QuorumConfig, Subscriber};

    let parse = |key: &str, default: &str| -> Result<u8, CliError> {
        opts.get_or(key, default)
            .parse::<u8>()
            .map_err(|_| CliError::Usage(format!("--{key} must be a small integer")))
    };
    let k = parse("k", "2")?;
    let n = parse("n", "3")?;
    if k == 0 || k > n || n > 8 {
        return Err(CliError::Usage(format!(
            "the demo needs 1 <= k <= n <= 8, got k={k} n={n}"
        )));
    }
    let config = QuorumConfig { k, n };
    let invalid = |e: nrslb_rsf::RsfError| CliError::Invalid(e.to_string());

    writeln!(out, "quorum demo: {k}-of-{n} coordinating body").ok();
    let authority = QuorumAuthority::from_seed([0x42; 32], config, 6).map_err(invalid)?;
    for id in 0..n {
        let share = authority
            .share(id)
            .ok_or_else(|| CliError::Invalid(format!("no share for signer {id}")))?;
        writeln!(
            out,
            "  signer {id}: holds share index {} ({} body bytes)",
            share.index,
            share.body.len()
        )
        .ok();
    }
    if k > 1 {
        let minority_shares: Vec<shamir::Share> =
            (0..k - 1).filter_map(|id| authority.share(id)).collect();
        match shamir::recover(&minority_shares, k) {
            Err(e) => writeln!(out, "  {} shares alone: {e}", k - 1).ok(),
            Ok(_) => return Err(CliError::Invalid("sub-quorum recovery succeeded".into())),
        };
    }

    let mut truth = RootStore::new("primary");
    truth
        .add_trusted(nrslb_x509::testutil::simple_chain("quorum.example").root)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let trust = FeedTrust::quorum(authority.trust());
    let key = FeedKey::new_quorum([0x43; 32], 8, &authority).map_err(invalid)?;
    let mut publisher =
        FeedPublisher::new_quorum("primary", key, authority, &truth, 0).map_err(invalid)?;
    let mut subscriber = Subscriber::builder("derivative", trust).build();
    subscriber.sync(&mut publisher, 10).map_err(invalid)?;
    writeln!(
        out,
        "  honest sync: subscriber at sequence {}",
        subscriber.sequence()
    )
    .ok();

    // A compromised minority (k-1 signers) re-witnesses a checkpoint
    // over a doctored feed; the subscriber must refuse it and stay
    // un-quarantined (the forgery is retryable, not a split view).
    truth.distrust(
        nrslb_crypto::sha256::sha256(b"demo incident"),
        "demo incident",
    );
    publisher.publish(&truth, 20).map_err(invalid)?;
    let messages: Vec<_> = publisher
        .fetch(subscriber.sequence())
        .into_iter()
        .cloned()
        .collect();
    let mut forged = publisher.checkpoint().map_err(invalid)?;
    let minority = QuorumAuthority::from_seed([0x42; 32], config, 6).map_err(invalid)?;
    let ids: Vec<u8> = (0..k - 1).collect();
    forged.witness = if ids.is_empty() {
        None
    } else {
        Some(
            minority
                .sign_with(&ids, &forged.encode())
                .map_err(invalid)?,
        )
    };
    match subscriber.poll(messages, forged, None, 20) {
        Err(e) => writeln!(out, "  {}-signer forgery: rejected ({e})", k - 1).ok(),
        Ok(_) => return Err(CliError::Invalid("forged checkpoint accepted".into())),
    };
    subscriber.sync(&mut publisher, 30).map_err(invalid)?;
    writeln!(
        out,
        "  recovery sync: subscriber at sequence {}",
        subscriber.sequence()
    )
    .ok();

    let event = publisher.rotate(40).map_err(invalid)?.clone();
    subscriber.sync(&mut publisher, 50).map_err(invalid)?;
    writeln!(
        out,
        "  rotation ceremony: epoch {} -> {}, applied by subscriber ({} total)",
        event.from_epoch,
        event.to_epoch,
        subscriber.counters().rotations_applied
    )
    .ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(args: &[&str]) -> Result<String, CliError> {
        let mut out = Vec::new();
        run(args.iter().map(|s| s.to_string()).collect(), &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn tmpdir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("nrslb-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn store_lifecycle() {
        let dir = tmpdir("lifecycle");
        let store_path = format!("{dir}/store.rsf");
        run_cmd(&["store", "new", "--out", &store_path, "--name", "mystore"]).unwrap();

        // Make certs to add.
        run_cmd(&["demo", "make-pki", "--dir", &dir, "--host", "cli.example"]).unwrap();
        let output = run_cmd(&[
            "store",
            "add-root",
            "--store",
            &store_path,
            "--cert",
            &format!("{dir}/root.der"),
        ])
        .unwrap();
        assert!(output.contains("added root"));

        let shown = run_cmd(&["store", "show", "--store", &store_path]).unwrap();
        assert!(shown.contains("1 trusted root"));
        assert!(shown.contains("cli.example Root CA"));
    }

    #[test]
    fn gcc_check_accepts_and_rejects() {
        let dir = tmpdir("gcc");
        let good = format!("{dir}/good.dl");
        std::fs::write(&good, "valid(Chain, _) :- leaf(Chain, _).").unwrap();
        let out = run_cmd(&["gcc", "check", "--gcc", &good]).unwrap();
        assert!(out.contains("ok:"));

        let bad = format!("{dir}/bad.dl");
        std::fs::write(&bad, "valid(C, U) :- q(C, U), \\+r(X).").unwrap();
        let err = run_cmd(&["gcc", "check", "--gcc", &bad]).unwrap_err();
        assert!(err.to_string().contains("GCC rejected"));
    }

    #[test]
    fn validate_and_convert_end_to_end() {
        let dir = tmpdir("validate");
        run_cmd(&["demo", "make-pki", "--dir", &dir, "--host", "v.example"]).unwrap();
        let store = format!("{dir}/store.rsf");
        let chain = format!("{dir}/leaf.der,{dir}/intermediate.der");
        let now = nrslb_x509::testutil::T0.to_string();

        let out = run_cmd(&[
            "validate",
            "--store",
            &store,
            "--chain",
            &chain,
            "--host",
            "v.example",
            "--time",
            &now,
        ])
        .unwrap();
        assert!(out.contains("ACCEPTED"), "{out}");

        // Hammurabi mode agrees.
        let out = run_cmd(&[
            "validate",
            "--store",
            &store,
            "--chain",
            &chain,
            "--time",
            &now,
            "--mode",
            "hammurabi",
        ])
        .unwrap();
        assert!(out.contains("ACCEPTED"));

        // Wrong host is rejected with a reason.
        let err = run_cmd(&[
            "validate",
            "--store",
            &store,
            "--chain",
            &chain,
            "--host",
            "evil.example",
            "--time",
            &now,
        ])
        .unwrap_err();
        assert!(err.to_string().contains("rejected"));

        // Conversion prints facts including the leaf SAN.
        let out = run_cmd(&["convert", "--chain", &chain]).unwrap();
        assert!(out.contains("san("));
        assert!(out.contains("v.example"));
        assert!(out.contains("signs("));
    }

    #[test]
    fn attach_gcc_flows_into_validation() {
        let dir = tmpdir("attach");
        run_cmd(&["demo", "make-pki", "--dir", &dir, "--host", "g.example"]).unwrap();
        let store = format!("{dir}/store.rsf");
        let chain = format!("{dir}/leaf.der,{dir}/intermediate.der");
        let now = nrslb_x509::testutil::T0.to_string();

        // Find the root fingerprint from store show output.
        let shown = run_cmd(&["store", "show", "--store", &store]).unwrap();
        let fp = shown
            .lines()
            .find(|l| l.trim_start().starts_with("trusted "))
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .to_string();

        let deny = format!("{dir}/deny.dl");
        std::fs::write(&deny, r#"valid(Chain, "never") :- leaf(Chain, _)."#).unwrap();
        run_cmd(&[
            "store",
            "attach-gcc",
            "--store",
            &store,
            "--fingerprint",
            &fp,
            "--gcc",
            &deny,
            "--name",
            "deny-all",
        ])
        .unwrap();

        let err = run_cmd(&[
            "validate", "--store", &store, "--chain", &chain, "--time", &now,
        ])
        .unwrap_err();
        assert!(err.to_string().contains("rejected"));
    }

    #[test]
    fn distrust_blocks_validation() {
        let dir = tmpdir("distrust");
        run_cmd(&["demo", "make-pki", "--dir", &dir, "--host", "d.example"]).unwrap();
        let store = format!("{dir}/store.rsf");
        let shown = run_cmd(&["store", "show", "--store", &store]).unwrap();
        let fp = shown
            .lines()
            .find(|l| l.trim_start().starts_with("trusted "))
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .to_string();
        run_cmd(&[
            "store",
            "distrust",
            "--store",
            &store,
            "--fingerprint",
            &fp,
            "--why",
            "test",
        ])
        .unwrap();
        let shown = run_cmd(&["store", "show", "--store", &store]).unwrap();
        assert!(shown.contains("distrusted"));
        let chain = format!("{dir}/leaf.der,{dir}/intermediate.der");
        let err = run_cmd(&[
            "validate",
            "--store",
            &store,
            "--chain",
            &chain,
            "--time",
            &nrslb_x509::testutil::T0.to_string(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("rejected"));
    }

    #[test]
    fn incident_demo_prints_matrix() {
        let out = run_cmd(&["demo", "incidents"]).unwrap();
        assert!(out.contains("symantec"));
        assert!(out.contains("trustcor"));
        assert_eq!(out.matches("gcc").count(), 7);
    }

    #[test]
    fn quorum_demo_walks_the_happy_and_forged_paths() {
        let out = run_cmd(&["demo", "quorum"]).unwrap();
        assert!(out.contains("2-of-3 coordinating body"), "{out}");
        assert!(out.contains("1 shares alone"), "{out}");
        assert!(out.contains("1-signer forgery: rejected"), "{out}");
        assert!(out.contains("rotation ceremony: epoch 1 -> 2"), "{out}");

        let out = run_cmd(&["demo", "quorum", "--k", "3", "--n", "4"]).unwrap();
        assert!(out.contains("3-of-4 coordinating body"), "{out}");
        assert!(out.contains("2-signer forgery: rejected"), "{out}");

        assert!(run_cmd(&["demo", "quorum", "--k", "5", "--n", "3"]).is_err());
        assert!(run_cmd(&["demo", "quorum", "--k", "0"]).is_err());
    }

    #[test]
    fn pem_files_accepted() {
        let dir = tmpdir("pem");
        run_cmd(&["demo", "make-pki", "--dir", &dir, "--host", "p.example"]).unwrap();
        let store = format!("{dir}/store.rsf");
        // Validate using the PEM leaf + DER intermediate, mixed.
        let chain = format!("{dir}/leaf.pem,{dir}/intermediate.der");
        let out = run_cmd(&[
            "validate",
            "--store",
            &store,
            "--chain",
            &chain,
            "--host",
            "p.example",
            "--time",
            &nrslb_x509::testutil::T0.to_string(),
        ])
        .unwrap();
        assert!(out.contains("ACCEPTED"), "{out}");
    }

    #[test]
    fn gcc_explain_prints_derivation() {
        let dir = tmpdir("explain");
        run_cmd(&["demo", "make-pki", "--dir", &dir, "--host", "e.example"]).unwrap();
        let gcc = format!("{dir}/policy.dl");
        std::fs::write(&gcc, "valid(Chain, _) :- leaf(Chain, C), \\+EV(C).").unwrap();
        let chain = format!("{dir}/leaf.der,{dir}/intermediate.der,{dir}/root.der");
        let out = run_cmd(&["gcc", "explain", "--gcc", &gcc, "--chain", &chain]).unwrap();
        assert!(out.contains("ACCEPTS"), "{out}");
        assert!(out.contains("leaf("), "{out}");
        assert!(out.contains("[absent]"), "{out}");
    }

    #[test]
    fn usage_errors() {
        assert!(run_cmd(&[]).is_err());
        assert!(run_cmd(&["bogus"]).is_err());
        assert!(run_cmd(&["store", "new"]).is_err()); // missing --out
        assert!(run_cmd(&["validate", "--store", "/nonexistent", "--chain", "x"]).is_err());
    }
}
