//! # `nrslb-cli` — the `nrslb` command-line tool
//!
//! Operator tooling over the workspace's libraries. Store files on disk
//! use the RSF snapshot encoding (`RSF1-SNAP`), so a store file *is* a
//! feed snapshot — the same bytes a publisher would sign.
//!
//! ```text
//! nrslb store new  --out store.rsf [--name NAME]
//! nrslb store show --store store.rsf
//! nrslb store add-root --store store.rsf --cert root.der
//! nrslb store distrust --store store.rsf --fingerprint HEX --why TEXT
//! nrslb store attach-gcc --store store.rsf --fingerprint HEX --gcc file.dl --name NAME
//! nrslb gcc check --gcc file.dl
//! nrslb validate --store store.rsf --chain leaf.der,int.der[,...] \
//!                [--usage TLS|S/MIME] [--host NAME] [--time UNIX] [--mode ua|hammurabi]
//! nrslb convert --chain leaf.der,int.der,root.der     # chain -> Datalog facts
//! nrslb daemon --store store.rsf --socket PATH [--engine reactor|thread-pool]
//! nrslb demo make-pki --dir DIR                       # demo certs + store
//! nrslb demo incidents                                # the E9 matrix
//! nrslb demo quorum [--k K --n N]                     # k-of-n feed signing tour
//! ```
//!
//! The command implementations live in this library so integration tests
//! drive them directly; `main.rs` is a thin wrapper.

#![warn(missing_docs)]

pub mod commands;
pub mod opts;

pub use commands::run;

use std::fmt;

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// I/O problem with a named file.
    Io(String, std::io::Error),
    /// A library layer rejected the input.
    Invalid(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage: {msg}"),
            CliError::Io(path, e) => write!(f, "{path}: {e}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}
