//! # `nrslb-tls` — a TLS-shaped handshake driving GCC-aware validation
//!
//! The paper's mechanisms live inside *TLS user-agents*: "Before
//! finalizing a TLS connection to a given server, user-agents validate
//! the server's X.509 certificate chain" (§1), and §3.1's deployment
//! options are all about where, during that validation, GCCs execute.
//! This crate makes the user-agent concrete: a sans-IO handshake state
//! machine (in the smoltcp tradition — the caller owns the transport and
//! the clock) whose certificate step is `nrslb-core`'s validator, in any
//! of the three deployment modes, with optional revocation checking.
//!
//! ## The handshake
//!
//! A deliberately TLS-1.3-shaped *authentication* protocol — this is a
//! policy reproduction, not a confidentiality layer, so there is no
//! record encryption (see DESIGN.md §2):
//!
//! ```text
//! C -> S   ClientHello        { client_random, server_name }
//! S -> C   ServerHello        { server_random }
//! S -> C   CertificateMsg     { chain (DER, leaf first) }
//! S -> C   CertificateVerify  { hash-based signature over the transcript }
//! S -> C   Finished           { HMAC(master_secret, transcript) }
//! C -> S   Finished           { HMAC(master_secret, transcript) }
//! ```
//!
//! The client accepts iff the chain validates for the requested
//! hostname (expiry, signatures, constraints, systematic store policy,
//! revocation **and all GCCs attached to the candidate root**), the
//! `CertificateVerify` signature proves possession of the leaf key over
//! the session transcript, and both `Finished` MACs bind the transcript.
//!
//! ```
//! use nrslb_core::ValidationMode;
//! use nrslb_rootstore::RootStore;
//! use nrslb_tls::{Client, ClientConfig, Server, ServerIdentity};
//! use nrslb_x509::builder::CaKey;
//!
//! let ca = CaKey::generate_for_tests("Handshake Root", 0x99);
//! let (identity, root) = ServerIdentity::issue_under_test_root("site.example", &ca);
//! let mut store = RootStore::new("client");
//! store.add_trusted(root).unwrap();
//!
//! let mut server = Server::new(identity);
//! let mut client = Client::new(
//!     ClientConfig::new(store, ValidationMode::UserAgent, 1_000),
//!     "site.example",
//!     [7u8; 32],
//! );
//! let hello = client.start();
//! let flight = server.respond(&hello, [9u8; 32]).unwrap();
//! let finished = client.process_server_flight(&flight).unwrap();
//! server.finish(&finished).unwrap();
//! assert_eq!(client.session().unwrap(), server.session().unwrap());
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod message;
pub mod server;
#[cfg(test)]
mod tests;
pub mod transcript;

pub use client::{Client, ClientConfig};
pub use message::{ClientHello, Finished, Message, ServerFlight};
pub use server::{Server, ServerIdentity};

use std::fmt;

/// Handshake failure reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// The presented chain failed certificate validation.
    CertificateRejected(String),
    /// The `CertificateVerify` signature did not verify under the leaf key.
    BadCertificateVerify,
    /// A `Finished` MAC did not match the transcript.
    BadFinished,
    /// A message arrived out of order or malformed.
    Protocol(&'static str),
    /// The validator itself failed (engine error, daemon down...).
    Validator(String),
    /// The server's signing key is exhausted (stateful hash-based keys).
    KeyExhausted,
}

impl fmt::Display for TlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsError::CertificateRejected(why) => write!(f, "certificate rejected: {why}"),
            TlsError::BadCertificateVerify => write!(f, "CertificateVerify failed"),
            TlsError::BadFinished => write!(f, "Finished MAC mismatch"),
            TlsError::Protocol(what) => write!(f, "protocol violation: {what}"),
            TlsError::Validator(why) => write!(f, "validator error: {why}"),
            TlsError::KeyExhausted => write!(f, "server signing key exhausted"),
        }
    }
}

impl std::error::Error for TlsError {}

/// The established session: both sides derive the same value on success.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Session {
    /// `SHA-256("nrslb-master" || client_random || server_random || transcript)`.
    pub master_secret: nrslb_crypto::Digest,
}
