//! The server side: an identity (chain + leaf signing key) and the
//! single-flight responder.

use crate::message::{ClientHello, Finished, ServerFlight};
use crate::transcript::{
    certificate_transcript, certificate_verify_payload, finished_mac, master_secret,
};
use crate::{Session, TlsError};
use nrslb_crypto::hbs::Keypair;
use nrslb_x509::builder::{CaKey, CertificateBuilder};
use nrslb_x509::extensions::{ExtendedKeyUsage, KeyUsage};
use nrslb_x509::{Certificate, DistinguishedName};
use std::sync::Mutex;

/// A server identity: its chain (leaf first, **excluding** the root —
/// servers send intermediates, clients hold roots) plus the leaf's
/// private key.
pub struct ServerIdentity {
    chain: Vec<Certificate>,
    key: Mutex<Keypair>,
}

impl ServerIdentity {
    /// Wrap an existing chain and leaf key.
    pub fn new(chain: Vec<Certificate>, key: Keypair) -> ServerIdentity {
        ServerIdentity {
            chain,
            key: Mutex::new(key),
        }
    }

    /// Issue a fresh identity for `hostname` directly under a test root
    /// CA; returns the identity and the root certificate to trust.
    ///
    /// The leaf key supports 2^10 handshakes (hash-based keys are
    /// stateful; every `CertificateVerify` consumes a one-time leaf).
    pub fn issue_under_test_root(hostname: &str, ca: &CaKey) -> (ServerIdentity, Certificate) {
        let root = CertificateBuilder::new()
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .key_usage(KeyUsage::KEY_CERT_SIGN)
            .build_self_signed(ca)
            .expect("root construction");
        let mut seed = *nrslb_crypto::sha256(hostname.as_bytes()).as_bytes();
        seed[0] ^= 0x5a;
        let leaf_key = Keypair::from_seed(seed, 10).expect("leaf key");
        let leaf = CertificateBuilder::new()
            .subject(DistinguishedName::common_name(hostname))
            .dns_names(&[hostname])
            .subject_key(leaf_key.public())
            .validity_window(0, 4_000_000_000)
            .key_usage(KeyUsage::DIGITAL_SIGNATURE)
            .extended_key_usage(ExtendedKeyUsage::server_auth())
            .build_signed_by(ca)
            .expect("leaf construction");
        (ServerIdentity::new(vec![leaf], leaf_key), root)
    }

    /// The chain this identity presents (leaf first).
    pub fn chain(&self) -> &[Certificate] {
        &self.chain
    }
}

/// Server handshake state.
enum State {
    AwaitHello,
    AwaitFinished {
        session: Session,
        transcript: nrslb_crypto::Digest,
    },
    Connected(Session),
    Failed,
}

/// The server endpoint.
pub struct Server {
    identity: ServerIdentity,
    state: State,
}

impl Server {
    /// A server ready for one handshake (re-usable after completion).
    pub fn new(identity: ServerIdentity) -> Server {
        Server {
            identity,
            state: State::AwaitHello,
        }
    }

    /// Respond to a `ClientHello` with the full server flight.
    /// `server_random` is caller-provided (sans-IO: no ambient RNG).
    pub fn respond(
        &mut self,
        hello: &ClientHello,
        server_random: [u8; 32],
    ) -> Result<ServerFlight, TlsError> {
        let ders: Vec<Vec<u8>> = self
            .identity
            .chain
            .iter()
            .map(|c| c.to_der().to_vec())
            .collect();
        let transcript = certificate_transcript(hello, &server_random, &ders);
        let signature = self
            .identity
            .key
            .lock()
            .unwrap()
            .sign(&certificate_verify_payload(&transcript))
            .map_err(|_| TlsError::KeyExhausted)?;
        let session = master_secret(hello, &server_random, &transcript);
        let finished = Finished {
            verify_data: finished_mac(&session, b"server finished", &transcript),
        };
        self.state = State::AwaitFinished {
            session,
            transcript,
        };
        Ok(ServerFlight {
            server_random,
            chain: self.identity.chain.clone(),
            certificate_verify: signature,
            finished,
        })
    }

    /// Consume the client's `Finished`; on success the session is
    /// established.
    pub fn finish(&mut self, client_finished: &Finished) -> Result<Session, TlsError> {
        let State::AwaitFinished {
            session,
            transcript,
        } = &self.state
        else {
            return Err(TlsError::Protocol("Finished before ClientHello"));
        };
        let expected = finished_mac(session, b"client finished", transcript);
        if expected != client_finished.verify_data {
            self.state = State::Failed;
            return Err(TlsError::BadFinished);
        }
        let session = *session;
        self.state = State::Connected(session);
        Ok(session)
    }

    /// The established session, if the handshake completed.
    pub fn session(&self) -> Option<Session> {
        match self.state {
            State::Connected(s) => Some(s),
            _ => None,
        }
    }
}
