//! The client (user-agent) side: where the paper's validation hook
//! actually runs.

use crate::message::{ClientHello, Finished, ServerFlight};
use crate::transcript::{
    certificate_verify_payload, finished_mac, flight_transcript, master_secret,
};
use crate::{Session, TlsError};
use nrslb_core::{ValidationMode, Validator};
use nrslb_revocation::RevocationChecker;
use nrslb_rootstore::RootStore;
use std::sync::Arc;

/// The revocation-checker handle threaded into the validator.
pub type RevocationArc = Arc<dyn RevocationChecker>;

/// Client configuration: the root store, the GCC deployment mode, the
/// validation time and optional revocation.
pub struct ClientConfig {
    store: RootStore,
    mode: ValidationMode,
    now: i64,
    revocation: Option<RevocationArc>,
}

impl ClientConfig {
    /// Configure a client.
    pub fn new(store: RootStore, mode: ValidationMode, now: i64) -> ClientConfig {
        ClientConfig {
            store,
            mode,
            now,
            revocation: None,
        }
    }

    /// Attach a revocation checker.
    pub fn with_revocation(mut self, checker: RevocationArc) -> ClientConfig {
        self.revocation = Some(checker);
        self
    }

    fn validator(&self) -> Validator {
        let v = Validator::new(self.store.clone(), self.mode.clone());
        match &self.revocation {
            Some(r) => v.with_revocation(r.clone()),
            None => v,
        }
    }
}

enum State {
    Start,
    AwaitFlight(ClientHello),
    Connected(Session),
    Failed,
}

/// The client endpoint.
pub struct Client {
    config: ClientConfig,
    hostname: String,
    client_random: [u8; 32],
    state: State,
}

impl Client {
    /// A client intending to reach `hostname`. `client_random` is
    /// caller-provided (sans-IO).
    pub fn new(config: ClientConfig, hostname: &str, client_random: [u8; 32]) -> Client {
        Client {
            config,
            hostname: hostname.to_string(),
            client_random,
            state: State::Start,
        }
    }

    /// Produce the `ClientHello`.
    pub fn start(&mut self) -> ClientHello {
        let hello = ClientHello {
            client_random: self.client_random,
            server_name: self.hostname.clone(),
        };
        self.state = State::AwaitFlight(hello.clone());
        hello
    }

    /// Process the server's flight: **this is where the paper's
    /// machinery runs** — chain building, standard checks, systematic
    /// store constraints, revocation and every GCC attached to the
    /// candidate root.
    pub fn process_server_flight(&mut self, flight: &ServerFlight) -> Result<Finished, TlsError> {
        let State::AwaitFlight(hello) = &self.state else {
            return Err(TlsError::Protocol("flight before ClientHello"));
        };
        let hello = hello.clone();
        let fail = |s: &mut State, e: TlsError| {
            *s = State::Failed;
            Err(e)
        };
        let Some(leaf) = flight.chain.first() else {
            return fail(&mut self.state, TlsError::Protocol("empty chain"));
        };

        // Certificate validation with the GCC hook (§3.1).
        let validator = self.config.validator();
        let outcome = validator
            .validate_for_host(leaf, &flight.chain[1..], &self.hostname, self.config.now)
            .map_err(|e| TlsError::Validator(e.to_string()))?;
        let Some(accepted) = outcome.accepted_chain else {
            let why = outcome
                .final_reason()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "no reason recorded".into());
            return fail(&mut self.state, TlsError::CertificateRejected(why));
        };

        // Proof of key possession over the transcript.
        let transcript = flight_transcript(&hello, flight);
        let payload = certificate_verify_payload(&transcript);
        if nrslb_crypto::hbs::verify(
            &accepted.chain[0].public_key(),
            &payload,
            &flight.certificate_verify,
        )
        .is_err()
        {
            return fail(&mut self.state, TlsError::BadCertificateVerify);
        }

        // Key schedule + server Finished.
        let session = master_secret(&hello, &flight.server_random, &transcript);
        let expected = finished_mac(&session, b"server finished", &transcript);
        if expected != flight.finished.verify_data {
            return fail(&mut self.state, TlsError::BadFinished);
        }

        let client_finished = Finished {
            verify_data: finished_mac(&session, b"client finished", &transcript),
        };
        self.state = State::Connected(session);
        Ok(client_finished)
    }

    /// The established session, if the handshake completed.
    pub fn session(&self) -> Option<Session> {
        match self.state {
            State::Connected(s) => Some(s),
            _ => None,
        }
    }
}
