//! Handshake tests: success paths, every tamper point, and the paper's
//! policy mechanisms biting at the TLS layer.

use crate::message::Message;
use crate::{Client, ClientConfig, Server, ServerIdentity, TlsError};
use nrslb_core::{ValidationMode, Validator};
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_x509::builder::CaKey;

fn setup(hostname: &str, tag: u8) -> (Server, RootStore) {
    let ca = CaKey::generate_for_tests(&format!("TLS Root {tag}"), tag);
    let (identity, root) = ServerIdentity::issue_under_test_root(hostname, &ca);
    let mut store = RootStore::new("client");
    store.add_trusted(root).unwrap();
    (Server::new(identity), store)
}

fn mk_client(store: RootStore, hostname: &str) -> Client {
    Client::new(
        ClientConfig::new(store, ValidationMode::UserAgent, 1_000),
        hostname,
        [0x11; 32],
    )
}

#[test]
fn successful_handshake_agrees_on_session() {
    let (mut server, store) = setup("ok.example", 0xa0);
    let mut client = mk_client(store, "ok.example");
    let hello = client.start();
    let flight = server.respond(&hello, [0x22; 32]).unwrap();
    let finished = client.process_server_flight(&flight).unwrap();
    let server_session = server.finish(&finished).unwrap();
    assert_eq!(client.session().unwrap(), server_session);
}

#[test]
fn hostname_mismatch_rejected() {
    let (mut server, store) = setup("real.example", 0xa1);
    let mut client = mk_client(store, "other.example");
    let hello = client.start();
    let flight = server.respond(&hello, [0x22; 32]).unwrap();
    let err = client.process_server_flight(&flight).unwrap_err();
    assert!(matches!(err, TlsError::CertificateRejected(_)), "{err}");
    assert!(client.session().is_none());
}

#[test]
fn untrusted_root_rejected() {
    let (mut server, _their_store) = setup("stranger.example", 0xa2);
    let mut client = mk_client(RootStore::new("empty"), "stranger.example");
    let hello = client.start();
    let flight = server.respond(&hello, [0x22; 32]).unwrap();
    let err = client.process_server_flight(&flight).unwrap_err();
    assert!(matches!(err, TlsError::CertificateRejected(why) if why.contains("no chain")));
}

#[test]
fn gcc_policy_bites_at_handshake_time() {
    // A GCC that rejects everything: even a perfectly good chain fails
    // the handshake — partial distrust enforced by the user-agent.
    let (mut server, mut store) = setup("gcc.example", 0xa3);
    let root_fp = *store.iter().next().unwrap().0;
    store
        .attach_gcc(
            Gcc::parse(
                "deny-all",
                root_fp,
                r#"valid(Chain, "never") :- leaf(Chain, _)."#,
                GccMetadata::default(),
            )
            .unwrap(),
        )
        .unwrap();
    let mut client = mk_client(store, "gcc.example");
    let hello = client.start();
    let flight = server.respond(&hello, [0x22; 32]).unwrap();
    let err = client.process_server_flight(&flight).unwrap_err();
    assert!(
        matches!(&err, TlsError::CertificateRejected(why) if why.contains("deny-all")),
        "{err}"
    );
}

#[test]
fn mitm_with_leaf_key_substitution_fails_certificate_verify() {
    // The attacker relays the honest chain but cannot sign the
    // transcript with the leaf's key: substitute a signature from a
    // different key.
    let (mut server, store) = setup("mitm.example", 0xa4);
    let mut client = mk_client(store, "mitm.example");
    let hello = client.start();
    let mut flight = server.respond(&hello, [0x22; 32]).unwrap();
    let mut mallory = nrslb_crypto::Keypair::from_seed([0x66; 32], 2).unwrap();
    flight.certificate_verify = mallory.sign(b"anything").unwrap();
    let err = client.process_server_flight(&flight).unwrap_err();
    assert_eq!(err, TlsError::BadCertificateVerify);
}

#[test]
fn transcript_tamper_detected() {
    // Change the server random after signing: the signature no longer
    // covers the transcript the client computes.
    let (mut server, store) = setup("tamper.example", 0xa5);
    let mut client = mk_client(store, "tamper.example");
    let hello = client.start();
    let mut flight = server.respond(&hello, [0x22; 32]).unwrap();
    flight.server_random[0] ^= 1;
    let err = client.process_server_flight(&flight).unwrap_err();
    assert_eq!(err, TlsError::BadCertificateVerify);
}

#[test]
fn finished_tamper_detected() {
    let (mut server, store) = setup("fin.example", 0xa6);
    let mut client = mk_client(store.clone(), "fin.example");
    let hello = client.start();
    let mut flight = server.respond(&hello, [0x22; 32]).unwrap();
    flight.finished.verify_data[5] ^= 1;
    let err = client.process_server_flight(&flight).unwrap_err();
    assert_eq!(err, TlsError::BadFinished);

    // And the server rejects a tampered client Finished.
    let (mut server, store) = setup("fin2.example", 0xa7);
    let mut client2 = mk_client(store, "fin2.example");
    let hello = client2.start();
    let flight = server.respond(&hello, [0x22; 32]).unwrap();
    let mut finished = client2.process_server_flight(&flight).unwrap();
    finished.verify_data[0] ^= 1;
    assert_eq!(server.finish(&finished).unwrap_err(), TlsError::BadFinished);
}

#[test]
fn byte_level_roundtrip_through_messages() {
    // Run the whole handshake through Message::to_bytes/from_bytes, as a
    // real transport would.
    let (mut server, store) = setup("bytes.example", 0xa8);
    let mut client = mk_client(store, "bytes.example");
    let hello = client.start();
    let hello_bytes = Message::ClientHello(hello).to_bytes();
    let Message::ClientHello(hello) = Message::from_bytes(&hello_bytes).unwrap() else {
        panic!()
    };
    let flight = server.respond(&hello, [0x22; 32]).unwrap();
    let flight_bytes = Message::ServerFlight(Box::new(flight)).to_bytes();
    let Message::ServerFlight(flight) = Message::from_bytes(&flight_bytes).unwrap() else {
        panic!()
    };
    let finished = client.process_server_flight(&flight).unwrap();
    let fin_bytes = Message::ClientFinished(finished).to_bytes();
    let Message::ClientFinished(finished) = Message::from_bytes(&fin_bytes).unwrap() else {
        panic!()
    };
    server.finish(&finished).unwrap();
    assert_eq!(client.session(), server.session());
}

#[test]
fn revoked_leaf_fails_handshake() {
    use nrslb_revocation::OneCrl;
    let (mut server, store) = setup("revoked.example", 0xa9);
    let mut onecrl = OneCrl::new();
    onecrl.revoke_fingerprint(
        server
            .respond(
                &crate::message::ClientHello {
                    client_random: [0; 32],
                    server_name: "revoked.example".into(),
                },
                [0; 32],
            )
            .unwrap()
            .chain[0]
            .fingerprint(),
        "leaked key",
    );

    let config = ClientConfig::new(store, ValidationMode::UserAgent, 1_000)
        .with_revocation(std::sync::Arc::new(onecrl));
    let mut client = Client::new(config, "revoked.example", [0x11; 32]);
    let hello = client.start();
    let flight = server.respond(&hello, [0x22; 32]).unwrap();
    let err = client.process_server_flight(&flight).unwrap_err();
    assert!(matches!(err, TlsError::CertificateRejected(why) if why.contains("revoked")));
}

#[test]
fn hammurabi_mode_client_handshakes_identically() {
    let (mut server, store) = setup("ham.example", 0xaa);
    for mode in [ValidationMode::UserAgent, ValidationMode::Hammurabi] {
        let mut client = Client::new(
            ClientConfig::new(store.clone(), mode, 1_000),
            "ham.example",
            [0x11; 32],
        );
        let hello = client.start();
        let flight = server.respond(&hello, [0x22; 32]).unwrap();
        client.process_server_flight(&flight).unwrap();
        assert!(client.session().is_some());
    }
}

#[test]
fn out_of_order_messages_rejected() {
    let (mut server, store) = setup("order.example", 0xab);
    // Client Finished before hello.
    assert!(matches!(
        server.finish(&crate::message::Finished {
            verify_data: [0; 32]
        }),
        Err(TlsError::Protocol(_))
    ));
    // Client processing a flight before starting.
    let mut c = mk_client(store, "order.example");
    let hello = crate::message::ClientHello {
        client_random: [1; 32],
        server_name: "order.example".into(),
    };
    let flight = server.respond(&hello, [2; 32]).unwrap();
    assert!(matches!(
        c.process_server_flight(&flight),
        Err(TlsError::Protocol(_))
    ));
}

#[test]
fn validator_sees_exactly_what_the_client_enforces() {
    // Cross-check: a chain the bare validator rejects is also rejected
    // in the handshake, with the same reason class.
    let (mut server, store) = setup("cross.example", 0xac);
    let hello = crate::message::ClientHello {
        client_random: [1; 32],
        server_name: "cross.example".into(),
    };
    let flight = server.respond(&hello, [2; 32]).unwrap();
    let validator = Validator::new(store, ValidationMode::UserAgent);
    let outcome = validator
        .validate_for_host(&flight.chain[0], &flight.chain[1..], "cross.example", 1_000)
        .unwrap();
    assert!(outcome.accepted());
}
