//! Handshake messages and their byte encodings.
//!
//! Encodings exist so tests can exercise tampering at the byte level;
//! the in-memory structs are what the state machines exchange.

use crate::TlsError;
use nrslb_crypto::hbs::Signature;
use nrslb_x509::Certificate;

/// `ClientHello`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientHello {
    /// Client nonce.
    pub client_random: [u8; 32],
    /// Requested server name (SNI).
    pub server_name: String,
}

/// `Finished` (either direction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finished {
    /// `HMAC(master_secret, label || transcript_hash)`.
    pub verify_data: [u8; 32],
}

/// The server's single flight: hello, certificate chain, proof of key
/// possession, and its `Finished`.
#[derive(Clone, Debug)]
pub struct ServerFlight {
    /// Server nonce.
    pub server_random: [u8; 32],
    /// The certificate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// Hash-based signature over the transcript through the certificate
    /// message.
    pub certificate_verify: Signature,
    /// Server `Finished`.
    pub finished: Finished,
}

/// Any handshake message (for byte-level encode/decode in tests and
/// transports).
#[derive(Clone, Debug)]
pub enum Message {
    /// Client hello.
    ClientHello(ClientHello),
    /// Server flight.
    ServerFlight(Box<ServerFlight>),
    /// Client finished.
    ClientFinished(Finished),
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn get_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], TlsError> {
    if input.len() < 4 {
        return Err(TlsError::Protocol("truncated length"));
    }
    let len = u32::from_le_bytes(input[..4].try_into().unwrap()) as usize;
    if len > 1 << 24 || input.len() < 4 + len {
        return Err(TlsError::Protocol("truncated body"));
    }
    let out = &input[4..4 + len];
    *input = &input[4 + len..];
    Ok(out)
}

fn get_array<const N: usize>(input: &mut &[u8]) -> Result<[u8; N], TlsError> {
    if input.len() < N {
        return Err(TlsError::Protocol("truncated array"));
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&input[..N]);
    *input = &input[N..];
    Ok(out)
}

impl Message {
    /// Serialize to bytes (length-prefixed fields, 1-byte tag).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::ClientHello(ch) => {
                out.push(1);
                out.extend_from_slice(&ch.client_random);
                put_bytes(&mut out, ch.server_name.as_bytes());
            }
            Message::ServerFlight(f) => {
                out.push(2);
                out.extend_from_slice(&f.server_random);
                out.extend_from_slice(&(f.chain.len() as u32).to_le_bytes());
                for cert in &f.chain {
                    put_bytes(&mut out, cert.to_der());
                }
                put_bytes(&mut out, &f.certificate_verify.to_bytes());
                out.extend_from_slice(&f.finished.verify_data);
            }
            Message::ClientFinished(fin) => {
                out.push(3);
                out.extend_from_slice(&fin.verify_data);
            }
        }
        out
    }

    /// Parse from the output of [`Message::to_bytes`].
    pub fn from_bytes(mut input: &[u8]) -> Result<Message, TlsError> {
        let input = &mut input;
        let tag = get_array::<1>(input)?[0];
        let msg = match tag {
            1 => {
                let client_random = get_array::<32>(input)?;
                let name = get_bytes(input)?;
                let server_name = std::str::from_utf8(name)
                    .map_err(|_| TlsError::Protocol("non-utf8 server name"))?
                    .to_string();
                Message::ClientHello(ClientHello {
                    client_random,
                    server_name,
                })
            }
            2 => {
                let server_random = get_array::<32>(input)?;
                let n = u32::from_le_bytes(get_array::<4>(input)?) as usize;
                if n > 64 {
                    return Err(TlsError::Protocol("chain too long"));
                }
                let mut chain = Vec::with_capacity(n);
                for _ in 0..n {
                    let der = get_bytes(input)?;
                    chain.push(
                        Certificate::from_der(der)
                            .map_err(|_| TlsError::Protocol("bad certificate DER"))?,
                    );
                }
                let sig_bytes = get_bytes(input)?;
                let certificate_verify = nrslb_crypto::hbs::Signature::from_bytes(sig_bytes)
                    .map_err(|_| TlsError::Protocol("bad signature encoding"))?;
                let verify_data = get_array::<32>(input)?;
                Message::ServerFlight(Box::new(ServerFlight {
                    server_random,
                    chain,
                    certificate_verify,
                    finished: Finished { verify_data },
                }))
            }
            3 => Message::ClientFinished(Finished {
                verify_data: get_array::<32>(input)?,
            }),
            _ => return Err(TlsError::Protocol("unknown message tag")),
        };
        if !input.is_empty() {
            return Err(TlsError::Protocol("trailing bytes"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_x509::testutil::simple_chain;

    #[test]
    fn client_hello_roundtrip() {
        let ch = ClientHello {
            client_random: [7; 32],
            server_name: "example.com".into(),
        };
        let bytes = Message::ClientHello(ch.clone()).to_bytes();
        match Message::from_bytes(&bytes).unwrap() {
            Message::ClientHello(back) => assert_eq!(back, ch),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn server_flight_roundtrip() {
        let pki = simple_chain("flight.example");
        let mut kp = nrslb_crypto::Keypair::from_seed([1; 32], 2).unwrap();
        let sig = kp.sign(b"transcript").unwrap();
        let flight = ServerFlight {
            server_random: [9; 32],
            chain: vec![pki.leaf.clone(), pki.intermediate.clone(), pki.root.clone()],
            certificate_verify: sig,
            finished: Finished {
                verify_data: [3; 32],
            },
        };
        let bytes = Message::ServerFlight(Box::new(flight.clone())).to_bytes();
        match Message::from_bytes(&bytes).unwrap() {
            Message::ServerFlight(back) => {
                assert_eq!(back.server_random, flight.server_random);
                assert_eq!(back.chain, flight.chain);
                assert_eq!(back.certificate_verify, flight.certificate_verify);
                assert_eq!(back.finished, flight.finished);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(Message::from_bytes(&[]).is_err());
        assert!(Message::from_bytes(&[9]).is_err());
        let mut bytes = Message::ClientFinished(Finished {
            verify_data: [0; 32],
        })
        .to_bytes();
        bytes.push(0); // trailing
        assert!(Message::from_bytes(&bytes).is_err());
        bytes.truncate(10); // truncated
        assert!(Message::from_bytes(&bytes).is_err());
    }
}
