//! Transcript hashing and key-schedule helpers shared by both ends.

use crate::message::{ClientHello, ServerFlight};
use crate::Session;
use nrslb_crypto::hmac::hmac_sha256;
use nrslb_crypto::{Digest, Sha256};

/// Hash of the handshake through the certificate message — what
/// `CertificateVerify` signs.
pub fn certificate_transcript(
    hello: &ClientHello,
    server_random: &[u8; 32],
    chain_der: &[Vec<u8>],
) -> Digest {
    let mut h = Sha256::new();
    h.update(b"nrslb-tls-transcript-v1");
    h.update(hello.client_random);
    h.update(hello.server_name.as_bytes());
    h.update(*server_random);
    for der in chain_der {
        h.update((der.len() as u64).to_be_bytes());
        h.update(der);
    }
    h.finalize()
}

/// The signing context for `CertificateVerify` (domain-separated from
/// every other use of the leaf key).
pub fn certificate_verify_payload(transcript: &Digest) -> Vec<u8> {
    let mut out = b"nrslb-tls-certificate-verify:".to_vec();
    out.extend_from_slice(transcript.as_bytes());
    out
}

/// Master secret: binds both nonces and the certificate transcript.
pub fn master_secret(
    hello: &ClientHello,
    flight_random: &[u8; 32],
    transcript: &Digest,
) -> Session {
    let mut h = Sha256::new();
    h.update(b"nrslb-master");
    h.update(hello.client_random);
    h.update(*flight_random);
    h.update(transcript.as_bytes());
    Session {
        master_secret: h.finalize(),
    }
}

/// `Finished` MAC for one side.
pub fn finished_mac(session: &Session, label: &[u8], transcript: &Digest) -> [u8; 32] {
    let mut msg = label.to_vec();
    msg.extend_from_slice(transcript.as_bytes());
    *hmac_sha256(session.master_secret.as_bytes(), &msg).as_bytes()
}

/// Convenience: the transcript for a whole server flight.
pub fn flight_transcript(hello: &ClientHello, flight: &ServerFlight) -> Digest {
    let ders: Vec<Vec<u8>> = flight.chain.iter().map(|c| c.to_der().to_vec()).collect();
    certificate_transcript(hello, &flight.server_random, &ders)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello() -> ClientHello {
        ClientHello {
            client_random: [1; 32],
            server_name: "t.example".into(),
        }
    }

    #[test]
    fn transcript_binds_every_input() {
        let base = certificate_transcript(&hello(), &[2; 32], &[vec![0xde, 0xad]]);
        let mut h2 = hello();
        h2.client_random[0] ^= 1;
        assert_ne!(
            base,
            certificate_transcript(&h2, &[2; 32], &[vec![0xde, 0xad]])
        );
        let mut h3 = hello();
        h3.server_name = "u.example".into();
        assert_ne!(
            base,
            certificate_transcript(&h3, &[2; 32], &[vec![0xde, 0xad]])
        );
        assert_ne!(
            base,
            certificate_transcript(&hello(), &[3; 32], &[vec![0xde, 0xad]])
        );
        assert_ne!(
            base,
            certificate_transcript(&hello(), &[2; 32], &[vec![0xde, 0xae]])
        );
        assert_ne!(
            base,
            certificate_transcript(&hello(), &[2; 32], &[vec![0xde], vec![0xad]]),
            "chain framing is length-prefixed"
        );
    }

    #[test]
    fn finished_labels_differ() {
        let t = certificate_transcript(&hello(), &[2; 32], &[]);
        let session = master_secret(&hello(), &[2; 32], &t);
        assert_ne!(
            finished_mac(&session, b"server", &t),
            finished_mac(&session, b"client", &t)
        );
    }
}
