//! Targeted taint-keyed invalidation of the verdict cache (ISSUE 8): a
//! delta touching root R must evict exactly the cached verdicts whose
//! taint set includes R — asserted as exact survivor/evictee sets
//! across shards — an empty taint must evict nothing, and a full taint
//! (the snapshot-fallback case) must clear everything through the same
//! code path. An end-to-end flow then drives delta → taint →
//! selective invalidation → re-derivation through a real root store
//! and the in-process oracle.

use nrslb_core::validate::{GccOracle, InProcessOracle};
use nrslb_core::{Usage, VerdictCache, VerdictKey};
use nrslb_crypto::sha256::Digest;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_rsf::{Delta, TaintSet};
use nrslb_x509::testutil::simple_chain;

fn d(n: u8) -> Digest {
    Digest([n; 32])
}

fn key(n: u8) -> VerdictKey {
    VerdictKey {
        chain: d(n),
        gcc: d(n.wrapping_add(100)),
        usage: Usage::Tls,
    }
}

/// The exactness core: 32 verdicts spread across 8 shards, each tagged
/// with one of four roots; invalidating one root's taint evicts that
/// root's verdicts and only those.
#[test]
fn taint_evicts_exact_dependents_across_shards() {
    let cache = VerdictCache::with_shards(256, 8);
    let roots = [d(1), d(2), d(3), d(4)];
    for n in 0..32u8 {
        let root = roots[(n % 4) as usize];
        cache.insert_tainted(key(n), n % 2 == 0, &[root]);
    }
    assert_eq!(cache.len(), 32);

    let mut taint = TaintSet::empty();
    taint.taint_root(d(2));
    let evicted = cache.invalidate_taint(&taint);
    assert_eq!(evicted, 8, "exactly the 8 verdicts tagged with root 2");

    for n in 0..32u8 {
        let expect_evicted = n % 4 == 1; // tagged with roots[1] = d(2)
        match cache.get(&key(n)) {
            None => assert!(expect_evicted, "verdict {n} wrongly evicted"),
            Some(v) => {
                assert!(!expect_evicted, "verdict {n} wrongly survived");
                assert_eq!(v, n % 2 == 0, "surviving verdict {n} corrupted");
            }
        }
    }
    assert_eq!(cache.len(), 24);

    // Re-invalidating the same root finds nothing left.
    assert_eq!(cache.invalidate_taint(&taint), 0);
}

#[test]
fn empty_taint_evicts_nothing() {
    let cache = VerdictCache::with_shards(64, 8);
    for n in 0..16u8 {
        cache.insert_tainted(key(n), true, &[d(1)]);
    }
    assert_eq!(cache.invalidate_taint(&TaintSet::empty()), 0);
    assert_eq!(cache.len(), 16);
    for n in 0..16u8 {
        assert_eq!(cache.get(&key(n)), Some(true));
    }
}

/// Snapshot fallback arrives as full taint and flows through the same
/// `invalidate_taint` entry point — there is no separate wholesale
/// clear API.
#[test]
fn full_taint_clears_everything_via_the_shared_path() {
    let cache = VerdictCache::with_shards(64, 8);
    for n in 0..16u8 {
        cache.insert_tainted(key(n), true, &[d((n % 3) + 1)]);
    }
    assert_eq!(cache.invalidate_taint(&TaintSet::full()), 16);
    assert_eq!(cache.len(), 0);
    for n in 0..16u8 {
        assert_eq!(cache.get(&key(n)), None);
    }
    // The index was cleared with the entries: a later precise
    // invalidation neither finds stale registrations nor panics.
    let mut taint = TaintSet::empty();
    taint.taint_root(d(1));
    assert_eq!(cache.invalidate_taint(&taint), 0);
}

/// Every entry is implicitly tainted by its GCC source hash: plain
/// `insert` (no explicit tags) is still evictable by policy identity.
#[test]
fn plain_inserts_are_tainted_by_their_gcc_source() {
    let cache = VerdictCache::with_shards(64, 8);
    cache.insert(key(1), true);
    cache.insert(key(2), false);
    let mut taint = TaintSet::empty();
    taint.taint_gcc_source(key(1).gcc);
    assert_eq!(cache.invalidate_taint(&taint), 1);
    assert_eq!(cache.get(&key(1)), None);
    assert_eq!(cache.get(&key(2)), Some(false));
}

/// LRU evictions must unregister from the taint index: a key pushed
/// out by capacity pressure is not double-counted by invalidation.
#[test]
fn lru_evictions_clean_the_taint_index() {
    let cache = VerdictCache::with_shards(2, 1); // tiny single-shard LRU
    cache.insert_tainted(key(1), true, &[d(9)]);
    cache.insert_tainted(key(2), true, &[d(9)]);
    cache.insert_tainted(key(3), true, &[d(9)]); // evicts key(1)
    assert_eq!(cache.len(), 2);
    let mut taint = TaintSet::empty();
    taint.taint_root(d(9));
    assert_eq!(
        cache.invalidate_taint(&taint),
        2,
        "only the entries actually cached count as evicted"
    );
}

/// End to end: two roots with GCCs, two warm chains; a feed delta
/// distrusting root A invalidates A's verdicts only, so B's chain
/// still serves from the cache while A's re-derives.
#[test]
fn delta_taint_invalidates_only_touched_roots_verdicts() {
    let pki_a = simple_chain("taint-e2e-a.example");
    let pki_b = simple_chain("taint-e2e-b.example");

    let mut store = RootStore::new("e2e");
    // Distinct GCC sources per root: content-identical sources share a
    // source hash and would (correctly) share invalidation fate, which
    // this test's exact-count assertions must not conflate.
    for (pki, tag) in [(&pki_a, "a"), (&pki_b, "b")] {
        store.add_trusted(pki.root.clone()).unwrap();
        let src = format!("valid(Chain, _) :- leaf(Chain, _).\nowner(\"{tag}\").");
        let gcc = Gcc::parse(
            "e2e-policy",
            pki.root.fingerprint(),
            &src,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
    }

    let oracle = InProcessOracle::new(store.clone());
    let chain_a = [
        pki_a.leaf.clone(),
        pki_a.intermediate.clone(),
        pki_a.root.clone(),
    ];
    let chain_b = [
        pki_b.leaf.clone(),
        pki_b.intermediate.clone(),
        pki_b.root.clone(),
    ];
    // Cold, then warm: both chains cached.
    for chain in [&chain_a, &chain_b] {
        assert!(oracle.evaluate(chain, Usage::Tls).unwrap()[0].accepted);
        assert!(oracle.evaluate(chain, Usage::Tls).unwrap()[0].accepted);
    }
    assert_eq!(oracle.cache().len(), 2);
    assert_eq!(oracle.cache().hits(), 2);

    // Feed delta: replace root A's GCC (a policy revision). A stays
    // trusted, but its record — and therefore its cached verdict — is
    // stale.
    let mut next = store.clone();
    let old_a = next.gccs_for(&pki_a.root.fingerprint())[0].clone();
    next.detach_gcc(&pki_a.root.fingerprint(), &old_a.source_hash());
    let revised = Gcc::parse(
        "e2e-policy",
        pki_a.root.fingerprint(),
        "valid(Chain, _) :- leaf(Chain, _).\nowner(\"a\").\nrevision(\"2\").",
        GccMetadata::default(),
    )
    .unwrap();
    next.attach_gcc(revised).unwrap();
    let delta = Delta::between(&store, &next, 1, 2, 10);
    let taint = TaintSet::of_delta(&delta, &store);
    assert!(!taint.is_full());

    let evicted = oracle.absorb_update(next, &taint);
    assert_eq!(evicted, 1, "exactly root A's verdict evicted");
    assert_eq!(oracle.cache().len(), 1);

    // B still serves warm (hit count advances); A re-derives (a miss).
    let hits_before = oracle.cache().hits();
    let misses_before = oracle.cache().misses();
    assert!(oracle.evaluate(&chain_b, Usage::Tls).unwrap()[0].accepted);
    assert_eq!(oracle.cache().hits(), hits_before + 1);
    assert!(oracle.evaluate(&chain_a, Usage::Tls).unwrap()[0].accepted);
    assert_eq!(oracle.cache().misses(), misses_before + 1);
    assert_eq!(oracle.cache().len(), 2, "A's verdict re-cached");
}
