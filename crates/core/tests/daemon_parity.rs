//! Engine parity: the reactor and thread-pool daemons must be
//! reply-for-reply identical on the wire, because they share one
//! protocol module. This suite speaks *raw frames* over the socket —
//! no client-library smoothing — and byte-compares the replies across
//! engines, including the malformed-frame keep-alive paths the old
//! stream-oriented engine got wrong.

use nrslb_core::daemon::{ephemeral_socket_path, Engine, TrustDaemon};
use nrslb_core::Usage;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_x509::testutil::simple_chain;
use nrslb_x509::Certificate;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;

const OP_EVALUATE: u8 = 1;
const OP_METRICS: u8 = 2;
const OP_EVALUATE_BATCH: u8 = 3;
const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

fn tls_gated_store(host: &str) -> (RootStore, Vec<Certificate>, i64) {
    let pki = simple_chain(host);
    let mut store = RootStore::new("parity");
    store.add_trusted(pki.root.clone()).unwrap();
    let gcc = Gcc::parse(
        "tls-only",
        pki.root.fingerprint(),
        r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
        GccMetadata::default(),
    )
    .unwrap();
    store.attach_gcc(gcc).unwrap();
    let chain = vec![pki.leaf, pki.intermediate, pki.root];
    (store, chain, pki.now)
}

fn spawn(store: &RootStore, engine: Engine, tag: &str) -> TrustDaemon {
    TrustDaemon::builder()
        .socket(ephemeral_socket_path(tag))
        .workers(2)
        .engine(engine)
        .spawn(store.clone())
        .unwrap()
}

fn usage_byte(usage: Usage) -> u8 {
    match usage {
        Usage::Tls => 0,
        Usage::SMime => 1,
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Raw `evaluate` body with an arbitrary usage byte (valid or not).
fn evaluate_body(raw_usage: u8, chain: &[Certificate]) -> Vec<u8> {
    let mut body = vec![raw_usage];
    put_u32(&mut body, chain.len() as u32);
    for cert in chain {
        let der = cert.to_der();
        put_u32(&mut body, der.len() as u32);
        body.extend_from_slice(der);
    }
    body
}

fn evaluate_frame(raw_usage: u8, chain: &[Certificate]) -> Vec<u8> {
    let mut frame = vec![OP_EVALUATE];
    frame.extend_from_slice(&evaluate_body(raw_usage, chain));
    frame
}

fn batch_frame(items: &[(u8, &[Certificate])]) -> Vec<u8> {
    let mut frame = vec![OP_EVALUATE_BATCH];
    put_u32(&mut frame, items.len() as u32);
    for (raw_usage, chain) in items {
        frame.extend_from_slice(&evaluate_body(*raw_usage, chain));
    }
    frame
}

fn read_u8(stream: &mut UnixStream) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    stream.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32(stream: &mut UnixStream) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    stream.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_exact_vec(stream: &mut UnixStream, n: usize) -> std::io::Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Read exactly one reply frame off the wire and return its raw bytes
/// (status + payload), using only the framing rules — so two engines'
/// replies can be compared byte-for-byte. `opcode` picks the ok-payload
/// shape.
fn read_reply(stream: &mut UnixStream, opcode: u8) -> std::io::Result<Vec<u8>> {
    let mut reply = Vec::new();
    let status = read_u8(stream)?;
    reply.push(status);
    match status {
        STATUS_ERR => {
            let len = read_u32(stream)?;
            reply.extend_from_slice(&len.to_le_bytes());
            reply.extend_from_slice(&read_exact_vec(stream, len as usize)?);
        }
        STATUS_OK => match opcode {
            OP_METRICS => {
                let len = read_u32(stream)?;
                reply.extend_from_slice(&len.to_le_bytes());
                reply.extend_from_slice(&read_exact_vec(stream, len as usize)?);
            }
            OP_EVALUATE => read_verdict_list(stream, &mut reply)?,
            OP_EVALUATE_BATCH => {
                let n = read_u32(stream)?;
                reply.extend_from_slice(&n.to_le_bytes());
                for _ in 0..n {
                    read_verdict_list(stream, &mut reply)?;
                }
            }
            other => panic!("bad opcode {other}"),
        },
        other => panic!("bad status byte {other}"),
    }
    Ok(reply)
}

fn read_verdict_list(stream: &mut UnixStream, reply: &mut Vec<u8>) -> std::io::Result<()> {
    let n = read_u32(stream)?;
    reply.extend_from_slice(&n.to_le_bytes());
    for _ in 0..n {
        reply.push(read_u8(stream)?);
        let len = read_u32(stream)?;
        reply.extend_from_slice(&len.to_le_bytes());
        reply.extend_from_slice(&read_exact_vec(stream, len as usize)?);
    }
    Ok(())
}

/// Send every frame in `script` on ONE connection and collect the raw
/// reply bytes for each.
fn exchange_script(daemon: &TrustDaemon, script: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut stream = UnixStream::connect(daemon.socket_path()).unwrap();
    let mut replies = Vec::with_capacity(script.len());
    for frame in script {
        stream.write_all(frame).unwrap();
        stream.flush().unwrap();
        replies.push(read_reply(&mut stream, frame[0]).unwrap());
    }
    replies
}

/// The shared scenario script: good frames, a recoverable-malformed
/// frame mid-stream, batches with duplicates — all on one keep-alive
/// connection. (Fatal frames close the connection, so they get their
/// own test.)
fn scenario_script(chain: &[Certificate]) -> Vec<Vec<u8>> {
    vec![
        evaluate_frame(usage_byte(Usage::Tls), chain),
        evaluate_frame(usage_byte(Usage::SMime), chain),
        // Bad usage byte: delimitable, must answer an error and keep
        // the connection usable for the frames that follow.
        evaluate_frame(9, chain),
        evaluate_frame(usage_byte(Usage::Tls), chain),
        // Batches with duplicate items exercise the dedup/cache path.
        batch_frame(&[
            (usage_byte(Usage::Tls), chain),
            (usage_byte(Usage::Tls), chain),
            (usage_byte(Usage::SMime), chain),
        ]),
        // A batch with one bad item: the whole frame is consumed, one
        // error reply, connection survives.
        batch_frame(&[(usage_byte(Usage::Tls), chain), (7, chain)]),
        evaluate_frame(usage_byte(Usage::SMime), chain),
    ]
}

#[test]
fn engines_are_reply_for_reply_identical() {
    let (store, chain, _) = tls_gated_store("parity.example");
    let reactor = spawn(&store, Engine::Reactor, "parity-r");
    let pool = spawn(&store, Engine::ThreadPool, "parity-t");
    let script = scenario_script(&chain);
    let reactor_replies = exchange_script(&reactor, &script);
    let pool_replies = exchange_script(&pool, &script);
    assert_eq!(reactor_replies.len(), pool_replies.len());
    for (i, (r, t)) in reactor_replies.iter().zip(&pool_replies).enumerate() {
        assert_eq!(r, t, "reply {i} diverged between engines");
    }
    // Spot-check semantics, not just parity: the TLS evaluate accepted,
    // the bad-usage frame errored.
    assert_eq!(reactor_replies[0][0], STATUS_OK);
    assert_eq!(reactor_replies[2][0], STATUS_ERR);
    assert_eq!(
        &reactor_replies[2][5..],
        b"bad usage byte",
        "error message on the wire"
    );
}

#[test]
fn malformed_frame_mid_stream_keeps_connection_open() {
    // The regression the protocol rewrite fixes: a recoverable
    // malformed frame must produce a structured error reply and leave
    // the connection in sync — on BOTH engines.
    let (store, chain, _) = tls_gated_store("midstream.example");
    for (engine, tag) in [(Engine::Reactor, "mid-r"), (Engine::ThreadPool, "mid-t")] {
        let daemon = spawn(&store, engine, tag);
        let mut stream = UnixStream::connect(daemon.socket_path()).unwrap();

        // Good frame.
        let good = evaluate_frame(usage_byte(Usage::Tls), &chain);
        stream.write_all(&good).unwrap();
        assert_eq!(
            read_reply(&mut stream, OP_EVALUATE).unwrap()[0],
            STATUS_OK,
            "{engine:?}"
        );

        // Malformed-but-delimited frame: structured error, no close.
        stream.write_all(&evaluate_frame(42, &chain)).unwrap();
        let err = read_reply(&mut stream, OP_EVALUATE).unwrap();
        assert_eq!(err[0], STATUS_ERR, "{engine:?}");
        assert_eq!(&err[5..], b"bad usage byte", "{engine:?}");

        // The same connection still serves correct replies.
        stream.write_all(&good).unwrap();
        let after = read_reply(&mut stream, OP_EVALUATE).unwrap();
        assert_eq!(after[0], STATUS_OK, "{engine:?}");

        // The error was counted.
        let text = daemon.render_metrics();
        assert!(
            text.contains("nrslb_daemon_request_errors_total 1"),
            "{engine:?}: {text}"
        );
        assert!(
            text.contains("nrslb_daemon_requests_total 3"),
            "{engine:?}: {text}"
        );
    }
}

#[test]
fn fatal_frames_error_then_close_on_both_engines() {
    let (store, chain, _) = tls_gated_store("fatal.example");
    for (engine, tag) in [
        (Engine::Reactor, "fatal-r"),
        (Engine::ThreadPool, "fatal-t"),
    ] {
        let daemon = spawn(&store, engine, tag);
        let mut stream = UnixStream::connect(daemon.socket_path()).unwrap();
        // A good request first proves the connection works.
        stream
            .write_all(&evaluate_frame(usage_byte(Usage::Tls), &chain))
            .unwrap();
        assert_eq!(read_reply(&mut stream, OP_EVALUATE).unwrap()[0], STATUS_OK);

        // Unknown opcode: cannot resync. Final error frame, then EOF.
        stream.write_all(&[77]).unwrap();
        let err = read_reply(&mut stream, OP_EVALUATE).unwrap();
        assert_eq!(err[0], STATUS_ERR, "{engine:?}");
        assert_eq!(&err[5..], b"unknown opcode 77", "{engine:?}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "{engine:?}: connection must close");
    }
}

#[test]
fn pipelined_frames_are_answered_in_order() {
    // Write several frames in one burst before reading anything; both
    // engines must answer each, in order. (The reactor buffers the
    // pipeline and serves one-in-flight per connection.)
    let (store, chain, _) = tls_gated_store("pipeline.example");
    for (engine, tag) in [(Engine::Reactor, "pipe-r"), (Engine::ThreadPool, "pipe-t")] {
        let daemon = spawn(&store, engine, tag);
        let mut stream = UnixStream::connect(daemon.socket_path()).unwrap();
        let mut burst = Vec::new();
        let usages = [Usage::Tls, Usage::SMime, Usage::Tls, Usage::SMime];
        for usage in usages {
            burst.extend_from_slice(&evaluate_frame(usage_byte(usage), &chain));
        }
        stream.write_all(&burst).unwrap();
        stream.flush().unwrap();
        for usage in usages {
            let reply = read_reply(&mut stream, OP_EVALUATE).unwrap();
            assert_eq!(reply[0], STATUS_OK, "{engine:?}");
            // verdict list: n=1, accepted iff TLS (the tls-only GCC).
            assert_eq!(reply[5], u8::from(usage == Usage::Tls), "{engine:?}");
        }
    }
}

#[test]
fn deprecated_constructors_match_builder_thread_pool_byte_for_byte() {
    // The four deprecated constructors forward to the builder pinned to
    // Engine::ThreadPool; their daemons must answer the scenario script
    // byte-identically to an explicitly-built thread-pool daemon.
    let (store, chain, _) = tls_gated_store("deprecated-parity.example");
    let script = scenario_script(&chain);
    let via_builder = spawn(&store, Engine::ThreadPool, "dep-builder");
    let builder_replies = exchange_script(&via_builder, &script);

    #[allow(deprecated)]
    let daemons = [
        TrustDaemon::spawn(store.clone(), ephemeral_socket_path("dep-spawn")).unwrap(),
        TrustDaemon::spawn_with_workers(store.clone(), ephemeral_socket_path("dep-workers"), 2)
            .unwrap(),
        TrustDaemon::spawn_observed(
            store.clone(),
            ephemeral_socket_path("dep-observed"),
            2,
            std::sync::Arc::new(nrslb_obs::Registry::new()),
        )
        .unwrap(),
        TrustDaemon::spawn_configured(
            store.clone(),
            ephemeral_socket_path("dep-configured"),
            nrslb_core::daemon::DaemonConfig::default(),
            std::sync::Arc::new(nrslb_obs::Registry::new()),
        )
        .unwrap(),
    ];
    for daemon in &daemons {
        assert_eq!(daemon.engine(), Engine::ThreadPool);
        assert_eq!(exchange_script(daemon, &script), builder_replies);
    }
}

#[test]
fn metrics_opcode_works_on_both_engines() {
    // Metrics payloads are engine-specific (the reactor adds per-loop
    // series), so no byte-parity — but both must answer STATUS_OK with
    // a well-formed exposition containing the daemon series.
    let (store, _, _) = tls_gated_store("metrics.example");
    for (engine, tag) in [(Engine::Reactor, "met-r"), (Engine::ThreadPool, "met-t")] {
        let daemon = spawn(&store, engine, tag);
        let mut stream = UnixStream::connect(daemon.socket_path()).unwrap();
        stream.write_all(&[OP_METRICS]).unwrap();
        let reply = read_reply(&mut stream, OP_METRICS).unwrap();
        assert_eq!(reply[0], STATUS_OK);
        let text = String::from_utf8(reply[5..].to_vec()).unwrap();
        assert!(text.contains("nrslb_daemon_requests_total"), "{engine:?}");
        if engine == Engine::Reactor {
            assert!(
                text.contains("nrslb_reactor_connections{loop=\"0\"}"),
                "{engine:?}: {text}"
            );
        }
    }
}
