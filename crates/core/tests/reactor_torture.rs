//! Reactor torture: 512 concurrent keep-alive clients hammering one
//! reactor daemon with deliberately hostile I/O — every frame written
//! in randomized partial chunks, every reply read in randomized partial
//! chunks — interleaved with recoverable malformed frames. The
//! invariants are exact: every request gets exactly one byte-correct
//! reply, the request/error counters land on the precise totals, and
//! every per-loop connection gauge returns to zero after the clients
//! hang up.

use nrslb_core::daemon::{ephemeral_socket_path, Engine, TrustDaemon};
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_x509::testutil::simple_chain;
use rand::prelude::*;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

const CLIENTS: usize = 512;
const GOOD_PER_CLIENT: usize = 4;

const OP_EVALUATE: u8 = 1;
const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// Write `bytes` in random-sized slices, occasionally yielding so the
/// reactor observes genuinely partial frames.
fn chunked_write(stream: &mut UnixStream, bytes: &[u8], rng: &mut StdRng) {
    let mut off = 0;
    while off < bytes.len() {
        let n = rng.gen_range(1usize..65).min(bytes.len() - off);
        stream.write_all(&bytes[off..off + n]).unwrap();
        off += n;
        if rng.gen_range(0u32..16) == 0 {
            std::thread::yield_now();
        }
    }
    stream.flush().unwrap();
}

/// Read exactly `n` bytes, but pull them off the socket in random-sized
/// slices so the client, too, drains replies partially.
fn chunked_read(stream: &mut UnixStream, n: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = vec![0u8; n];
    let mut have = 0;
    while have < n {
        let want = rng.gen_range(1usize..49).min(n - have);
        let got = stream.read(&mut out[have..have + want]).unwrap();
        assert!(got > 0, "daemon closed the connection mid-reply");
        have += got;
    }
    out
}

/// Read one reply frame (status + payload) with chunked reads. Only the
/// two shapes this test provokes are supported: an evaluate verdict
/// list and an error string.
fn read_reply(stream: &mut UnixStream, rng: &mut StdRng) -> Vec<u8> {
    let mut reply = chunked_read(stream, 1, rng);
    match reply[0] {
        STATUS_ERR => {
            let len_bytes = chunked_read(stream, 4, rng);
            let len = u32::from_le_bytes(len_bytes.clone().try_into().unwrap()) as usize;
            reply.extend_from_slice(&len_bytes);
            reply.extend_from_slice(&chunked_read(stream, len, rng));
        }
        STATUS_OK => {
            let n_bytes = chunked_read(stream, 4, rng);
            let n = u32::from_le_bytes(n_bytes.clone().try_into().unwrap());
            reply.extend_from_slice(&n_bytes);
            for _ in 0..n {
                let head = chunked_read(stream, 5, rng);
                let len = u32::from_le_bytes(head[1..5].try_into().unwrap()) as usize;
                reply.extend_from_slice(&head);
                reply.extend_from_slice(&chunked_read(stream, len, rng));
            }
        }
        other => panic!("bad status byte {other}"),
    }
    reply
}

fn evaluate_frame(raw_usage: u8, ders: &[Vec<u8>]) -> Vec<u8> {
    let mut frame = vec![OP_EVALUATE, raw_usage];
    frame.extend_from_slice(&(ders.len() as u32).to_le_bytes());
    for der in ders {
        frame.extend_from_slice(&(der.len() as u32).to_le_bytes());
        frame.extend_from_slice(der);
    }
    frame
}

fn gauge_sum(metrics: &str, name: &str) -> i64 {
    metrics
        .lines()
        .filter(|l| l.starts_with(name) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<i64>().ok())
        .sum()
}

#[test]
fn five_hundred_twelve_keep_alive_clients_with_partial_io() {
    let pki = simple_chain("torture.example");
    let mut store = RootStore::new("torture");
    store.add_trusted(pki.root.clone()).unwrap();
    store
        .attach_gcc(
            Gcc::parse(
                "tls-only",
                pki.root.fingerprint(),
                r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
                GccMetadata::default(),
            )
            .unwrap(),
        )
        .unwrap();

    let daemon = TrustDaemon::builder()
        .socket(ephemeral_socket_path("torture"))
        .engine(Engine::Reactor)
        .event_loops(2)
        .workers(2)
        .spawn(store)
        .unwrap();
    assert_eq!(daemon.engine(), Engine::Reactor);

    let ders: Vec<Vec<u8>> = [&pki.leaf, &pki.intermediate, &pki.root]
        .iter()
        .map(|c| c.to_der().to_vec())
        .collect();
    let good = evaluate_frame(0, &ders);
    let bad = evaluate_frame(9, &ders);

    // Reference replies, captured once over a plain connection.
    let mut probe = UnixStream::connect(daemon.socket_path()).unwrap();
    let mut probe_rng = StdRng::seed_from_u64(0);
    probe.write_all(&good).unwrap();
    let expect_good = read_reply(&mut probe, &mut probe_rng);
    assert_eq!(expect_good[0], STATUS_OK);
    probe.write_all(&bad).unwrap();
    let expect_bad = read_reply(&mut probe, &mut probe_rng);
    assert_eq!(expect_bad[0], STATUS_ERR);
    drop(probe);

    let socket = daemon.socket_path().to_path_buf();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let socket = socket.clone();
            let good = good.clone();
            let bad = bad.clone();
            let expect_good = expect_good.clone();
            let expect_bad = expect_bad.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBAD5EED ^ i as u64);
                let mut stream = UnixStream::connect(&socket).unwrap();
                // Slot one recoverable-malformed frame in among the
                // good ones at a random position; every client keeps
                // its connection alive across all of them.
                let mut plan = vec![true; GOOD_PER_CLIENT];
                plan.insert(rng.gen_range(0usize..plan.len() + 1), false);
                for ok in plan {
                    let (frame, expect) = if ok {
                        (&good, &expect_good)
                    } else {
                        (&bad, &expect_bad)
                    };
                    chunked_write(&mut stream, frame, &mut rng);
                    let reply = read_reply(&mut stream, &mut rng);
                    assert_eq!(&reply, expect, "client {i}: wrong reply");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Exactly one reply per request, and the daemon counted each one:
    // 512×4 good + 512 malformed + the 2 probe requests.
    let expected_total = (CLIENTS * (GOOD_PER_CLIENT + 1) + 2) as i64;
    let expected_errors = (CLIENTS + 1) as i64;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = daemon.render_metrics();
        let total = gauge_sum(&text, "nrslb_daemon_requests_total");
        let errors = gauge_sum(&text, "nrslb_daemon_request_errors_total");
        let open = gauge_sum(&text, "nrslb_reactor_connections{");
        assert_eq!(total, expected_total, "requests_total must be exact");
        assert_eq!(
            errors, expected_errors,
            "request_errors_total must be exact"
        );
        // Connection teardown is asynchronous (the loops still have to
        // see EOF), so only the gauge gets a grace period.
        if open == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connections gauge stuck at {open}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}
