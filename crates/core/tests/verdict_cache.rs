//! The sharded verdict cache must be observably equivalent to the
//! single-lock LRU it replaced — exactly when `shards = 1`, and modulo
//! the documented per-shard LRU granularity otherwise (a cache of S
//! shards behaves as S independent single-lock LRUs of the per-shard
//! capacity, with keys routed by hash). Both statements are checked
//! against an executable reference model over arbitrary operation
//! sequences, and a 16-thread stress test pins the exact-total counter
//! guarantees the observability layer depends on.

use nrslb_core::{ShardedLru, VerdictCache, VerdictKey};
use nrslb_crypto::sha256::sha256;
use nrslb_obs::Registry;
use nrslb_rootstore::Usage;
use proptest::collection::vec;
use proptest::prelude::*;

/// Executable reference: the single-lock exact LRU that `ShardedLru`
/// replaced. Front of `entries` is least-recently-used.
struct ModelLru {
    capacity: usize,
    entries: Vec<(u64, u32)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelLru {
    fn new(capacity: usize) -> ModelLru {
        ModelLru {
            capacity: capacity.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<u32> {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(pos) => {
                let entry = self.entries.remove(pos);
                self.entries.push(entry);
                self.hits += 1;
                Some(entry.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u64, value: u32) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
            self.entries.push((key, value));
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, value));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One scripted cache operation: `get` when `is_get`, `insert`
/// otherwise.
type Op = (bool, u64, u32);

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    vec((any::<bool>(), 0u64..24, 0u32..100), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // With one shard the sharded cache IS the old single-lock cache:
    // every lookup result and every counter agrees with the reference
    // model on arbitrary operation sequences.
    #[test]
    fn single_shard_matches_single_lock_model(
        capacity in 1usize..12,
        ops in ops_strategy(300),
    ) {
        let cache: ShardedLru<u64, u32> = ShardedLru::new(capacity, 1);
        let mut model = ModelLru::new(capacity);
        for (step, (is_get, key, value)) in ops.iter().enumerate() {
            if *is_get {
                prop_assert_eq!(cache.get(key), model.get(*key), "step {}", step);
            } else {
                cache.insert(*key, *value);
                model.insert(*key, *value);
            }
        }
        prop_assert_eq!(cache.len(), model.len());
        prop_assert_eq!(cache.hits(), model.hits);
        prop_assert_eq!(cache.misses(), model.misses);
        prop_assert_eq!(cache.evictions(), model.evictions);
    }

    // With S shards the cache behaves as S independent single-lock
    // LRUs of the per-shard capacity, keys routed by hash — the
    // documented granularity difference, and the ONLY difference:
    // routing each operation to a per-shard reference model reproduces
    // every lookup result and every aggregate counter.
    #[test]
    fn sharded_cache_equals_per_shard_single_lock_models(
        capacity in 1usize..48,
        shards in 2usize..9,
        ops in ops_strategy(400),
    ) {
        let cache: ShardedLru<u64, u32> = ShardedLru::new(capacity, shards);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        let mut models: Vec<ModelLru> =
            (0..shards).map(|_| ModelLru::new(shard_capacity)).collect();
        for (step, (is_get, key, value)) in ops.iter().enumerate() {
            let model = &mut models[cache.shard_of(key)];
            if *is_get {
                prop_assert_eq!(cache.get(key), model.get(*key), "step {}", step);
            } else {
                cache.insert(*key, *value);
                model.insert(*key, *value);
            }
        }
        prop_assert_eq!(cache.len(), models.iter().map(ModelLru::len).sum::<usize>());
        prop_assert_eq!(cache.hits(), models.iter().map(|m| m.hits).sum::<u64>());
        prop_assert_eq!(cache.misses(), models.iter().map(|m| m.misses).sum::<u64>());
        prop_assert_eq!(
            cache.evictions(),
            models.iter().map(|m| m.evictions).sum::<u64>()
        );
    }
}

/// Parse `name{...} value` / `name value` lines and sum every sample of
/// `name` in a rendered exposition.
fn sum_metric(text: &str, name: &str) -> u64 {
    text.lines()
        .filter(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
        })
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

fn verdict_key(i: usize) -> VerdictKey {
    VerdictKey {
        chain: sha256(format!("stress-chain-{i}").as_bytes()),
        gcc: sha256(format!("stress-gcc-{}", i % 7).as_bytes()),
        usage: if i.is_multiple_of(2) {
            Usage::Tls
        } else {
            Usage::SMime
        },
    }
}

/// 16 threads hammer one sharded cache; afterwards every counter must
/// be *exactly* right — the same no-lost-updates contract
/// `crates/obs/tests/concurrency.rs` pins for raw registry handles,
/// here end to end through the cache's instrumented hot path.
#[test]
fn stress_16_threads_exact_totals() {
    const THREADS: usize = 16;
    const OPS_PER_THREAD: usize = 10_000;
    const KEYS: usize = 512;

    // Capacity 4096 over 8 shards = 512 per shard, so even the worst
    // hash skew cannot evict with only 512 distinct keys in play and
    // the final entry count is deterministic.
    let registry = Registry::new();
    let cache = VerdictCache::with_shards_and_registry(4096, 8, &registry);
    let keys: Vec<VerdictKey> = (0..KEYS).map(verdict_key).collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let keys = &keys;
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // Each thread walks the key space at its own stride
                    // so shards see interleaved, contended traffic.
                    let key = &keys[(t * 31 + i) % KEYS];
                    if cache.get(key).is_none() {
                        cache.insert(*key, i % 2 == 0);
                    }
                }
            });
        }
    });

    let total = (THREADS * OPS_PER_THREAD) as u64;
    // Every lookup is exactly one hit or one miss; none may be lost.
    assert_eq!(cache.hits() + cache.misses(), total);
    // All 512 keys were touched and nothing was ever evicted.
    assert_eq!(cache.len(), KEYS);
    assert_eq!(cache.evictions(), 0);
    // A key can miss more than once (two threads race the first
    // lookup), but at least one miss per key is structural.
    assert!(cache.misses() >= KEYS as u64, "{cache:?}");

    // The mirrored registry agrees exactly with the cache's own
    // atomics, both in aggregate and summed across per-shard series.
    let text = registry.render_text();
    assert_eq!(
        sum_metric(&text, "nrslb_verdict_cache_hits_total"),
        cache.hits()
    );
    assert_eq!(
        sum_metric(&text, "nrslb_verdict_cache_misses_total"),
        cache.misses()
    );
    assert_eq!(
        sum_metric(&text, "nrslb_verdict_cache_shard_hits_total"),
        cache.hits()
    );
    assert_eq!(
        sum_metric(&text, "nrslb_verdict_cache_shard_misses_total"),
        cache.misses()
    );
    assert_eq!(
        sum_metric(&text, "nrslb_verdict_cache_entries"),
        KEYS as u64
    );
}
