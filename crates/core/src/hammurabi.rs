//! The *complete validation redesign* deployment mode (§3.1): the entire
//! per-chain validation policy — expiry, CA bits, path lengths, name
//! constraints, EKU, hostname, systematic store constraints **and** all
//! attached GCCs — expressed as one stratified Datalog program and
//! evaluated in a single run, in the style of Hammurabi (Larisch et al.,
//! CCS '22).
//!
//! Cryptographic signature verification stays outside the logic program
//! (as in Hammurabi itself); its results are injected as `sigOk/1` facts.
//! String matching (wildcards, name-constraint subtrees) is likewise
//! precomputed into auxiliary relations (`subtreeMatch/2`, `hostOk/1`),
//! because pure Datalog has no string primitives.

use crate::facts::{add_chain_facts, cert_id, chain_id};
use crate::validate::{RejectReason, ValidatorConfig};
use crate::CoreError;
use nrslb_datalog::{Database, Engine, Program, Val};
use nrslb_rootstore::{RootStore, Usage};
use nrslb_x509::name::in_subtree;
use nrslb_x509::Certificate;
use std::sync::Arc;

/// The validation policy, as Datalog source. Public so documentation and
/// examples can show the complete program.
pub const POLICY: &str = r#"
% ---- temporal validity ----
expired(C) :- now(T), notAfter(C, NA), NA < T.
notYetValid(C) :- now(T), notBefore(C, NB), T < NB.
timeBad(Chain) :- chainIndex(Chain, _, C), expired(C).
timeBad(Chain) :- chainIndex(Chain, _, C), notYetValid(C).

% ---- signatures (verified natively, injected as sigOk facts) ----
sigBad(Chain) :- chainIndex(Chain, _, C), \+sigOk(C).

% ---- revocation (OneCRL/CRLite results injected as revoked facts) ----
revBad(Chain) :- chainIndex(Chain, _, C), revoked(C).

% ---- CA bit: everything above the leaf must be a CA ----
caBad(Chain) :- chainIndex(Chain, I, C), I > 0, \+isCA(C).

% ---- path length: CA at index I has I-1 CAs below it ----
pathLenBad(Chain) :- chainIndex(Chain, I, C), I > 0, pathLen(C, L), M = I - 1, L < M.

% ---- name constraints over leaf SANs ----
constrained(CA) :- permittedSubtree(CA, _).
permittedOk(CA, Name) :- permittedSubtree(CA, Base), subtreeMatch(Base, Name).
ncBad(Chain) :- chainIndex(Chain, I, CA), I > 0, constrained(CA),
                leaf(Chain, L), san(L, Name), \+permittedOk(CA, Name).
ncBad(Chain) :- chainIndex(Chain, I, CA), I > 0, excludedSubtree(CA, Base),
                leaf(Chain, L), san(L, Name), subtreeMatch(Base, Name).

% ---- extended key usage of the leaf ----
ekuFor("TLS", "id-kp-serverAuth").
ekuFor("S/MIME", "id-kp-emailProtection").
ekuRestricted(C) :- extendedKeyUsage(C, _).
ekuOk(Chain) :- leaf(Chain, L), \+ekuRestricted(L).
ekuOk(Chain) :- leaf(Chain, L), queryUsage(U), ekuFor(U, P), extendedKeyUsage(L, P).
ekuBad(Chain) :- chain(Chain), \+ekuOk(Chain).

% ---- hostname (matching precomputed into hostOk facts) ----
hostBad(Chain) :- hostRequested(1), leaf(Chain, L), \+hostOk(L).

% ---- systematic store constraints (NSS date/usage pairs) ----
usageDateBad(Chain) :- root(Chain, R), queryUsage("TLS"), tlsDistrustAfter(R, T),
                       leaf(Chain, L), notBefore(L, NB), NB >= T.
usageDateBad(Chain) :- root(Chain, R), queryUsage("S/MIME"), smimeDistrustAfter(R, T),
                       leaf(Chain, L), notBefore(L, NB), NB >= T.

% ---- verdict ----
chainBad(Chain) :- timeBad(Chain).
chainBad(Chain) :- sigBad(Chain).
chainBad(Chain) :- revBad(Chain).
chainBad(Chain) :- caBad(Chain).
chainBad(Chain) :- pathLenBad(Chain).
chainBad(Chain) :- ncBad(Chain).
chainBad(Chain) :- ekuBad(Chain).
chainBad(Chain) :- hostBad(Chain).
chainBad(Chain) :- usageDateBad(Chain).
policyOk(Chain) :- chain(Chain), \+chainBad(Chain).
"#;

/// Rename every *derived* predicate of `program` by appending `suffix`,
/// leaving EDB (fact-base) predicates untouched. Used to merge several
/// GCCs into one policy run without their `valid/2` (or helper) rules
/// colliding.
pub fn namespace_program(program: &Program, suffix: &str) -> Program {
    use nrslb_datalog::ast::{BodyItem, Literal};
    let derived = program.derived_predicates();
    let rename = |lit: &Literal| -> Literal {
        if derived.contains(&lit.pred) {
            Literal {
                pred: Arc::from(format!("{}{}", lit.pred, suffix).as_str()),
                args: lit.args.clone(),
            }
        } else {
            lit.clone()
        }
    };
    let rules = program
        .rules
        .iter()
        .map(|rule| nrslb_datalog::Rule {
            head: rename(&rule.head),
            body: rule
                .body
                .iter()
                .map(|item| match item {
                    BodyItem::Pos(l) => BodyItem::Pos(rename(l)),
                    BodyItem::Neg(l) => BodyItem::Neg(rename(l)),
                    other => other.clone(),
                })
                .collect(),
        })
        .collect();
    Program { rules }
}

/// Build the complete program for a chain: the base [`POLICY`], plus each
/// attached GCC namespaced apart and wired into `chainBad` via
/// `gccBad`.
fn full_program(
    store: &RootStore,
    root_fp: &nrslb_crypto::sha256::Digest,
) -> Result<Program, CoreError> {
    let mut program = Program::parse(POLICY).expect("base policy parses");
    for (i, gcc) in store.gccs_for(root_fp).iter().enumerate() {
        let suffix = format!("__g{i}");
        let renamed = namespace_program(gcc.program(), &suffix);
        program.rules.extend(renamed.rules);
        let wire = format!(
            "gccBad(Chain) :- chain(Chain), queryUsage(U), \\+valid{suffix}(Chain, U).\n\
             chainBad(Chain) :- gccBad(Chain)."
        );
        let wire = Program::parse(&wire).expect("wire rules parse");
        program.rules.extend(wire.rules);
    }
    Ok(program)
}

/// Inject the per-validation facts the policy needs beyond the chain
/// conversion: time, usage, signature results, subtree matches, hostname
/// match and systematic constraints.
#[allow(clippy::too_many_arguments)]
fn add_policy_facts(
    db: &mut Database,
    chain: &[Certificate],
    usage: Usage,
    now: i64,
    hostname: Option<&str>,
    store: &RootStore,
    config: ValidatorConfig,
    revocation: Option<&dyn nrslb_revocation::RevocationChecker>,
) {
    db.add_fact("now", vec![Val::int(now)]);
    db.add_fact("queryUsage", vec![Val::str(usage.as_datalog())]);
    // Signature results (crypto outside the program).
    for (i, cert) in chain.iter().enumerate() {
        let issuer = chain.get(i + 1).unwrap_or(cert);
        if cert.verify_signed_by(issuer).is_ok() {
            db.add_fact("sigOk", vec![Val::str(cert_id(cert))]);
        }
    }
    // Revocation results (computed natively, injected as facts).
    if let Some(checker) = revocation {
        for cert in chain {
            if checker.is_revoked(cert) {
                db.add_fact("revoked", vec![Val::str(cert_id(cert))]);
            }
        }
    }
    // Subtree matches for every (constraint base, leaf SAN) pair.
    let leaf = &chain[0];
    for cert in chain.iter().skip(1) {
        if let Some(nc) = &cert.extensions().name_constraints {
            for base in nc.permitted.iter().chain(&nc.excluded) {
                for san in leaf.dns_names() {
                    if in_subtree(san, base, config.dot_semantics) {
                        db.add_fact("subtreeMatch", vec![Val::str(base), Val::str(san)]);
                    }
                }
            }
        }
    }
    // Hostname.
    if let Some(host) = hostname {
        db.add_fact("hostRequested", vec![Val::int(1)]);
        if leaf.matches_hostname(host) {
            db.add_fact("hostOk", vec![Val::str(cert_id(leaf))]);
        }
    }
    // Systematic constraints for the chain's root.
    if let Some(root) = chain.last() {
        if let Some(rec) = store.record(&root.fingerprint()) {
            let rid = Val::str(cert_id(root));
            if let Some(t) = rec.tls_distrust_after {
                db.add_fact("tlsDistrustAfter", vec![rid.clone(), Val::int(t)]);
            }
            if let Some(t) = rec.smime_distrust_after {
                db.add_fact("smimeDistrustAfter", vec![rid, Val::int(t)]);
            }
        }
    }
    // EKU enforcement knob: when disabled, suppress by marking every leaf
    // usage as satisfied (inject the relevant fact).
    if !config.enforce_eku {
        let lid = Val::str(cert_id(leaf));
        db.add_fact(
            "extendedKeyUsage",
            vec![lid.clone(), Val::str("id-kp-serverAuth")],
        );
        db.add_fact(
            "extendedKeyUsage",
            vec![lid, Val::str("id-kp-emailProtection")],
        );
    }
}

/// Evaluate the full policy program for one candidate chain.
///
/// Returns `Ok(Ok(()))` on acceptance, `Ok(Err(reason))` on rejection,
/// `Err` only on engine failure.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_chain(
    chain: &[Certificate],
    usage: Usage,
    now: i64,
    hostname: Option<&str>,
    store: &RootStore,
    config: ValidatorConfig,
    revocation: Option<&dyn nrslb_revocation::RevocationChecker>,
) -> Result<Result<(), RejectReason>, CoreError> {
    let root_fp = chain.last().expect("chain non-empty").fingerprint();
    let program = full_program(store, &root_fp)?;
    let mut db = Database::new();
    add_chain_facts(chain, &mut db);
    add_policy_facts(
        &mut db, chain, usage, now, hostname, store, config, revocation,
    );
    let out = Engine::new(&program)?.run(db)?;

    let cid = Val::str(chain_id(chain));
    if out.contains("policyOk", std::slice::from_ref(&cid)) {
        return Ok(Ok(()));
    }
    // Extract a specific reason for parity with the native validator.
    let index_of = |cert_handle: &Val| -> usize {
        chain
            .iter()
            .position(|c| Val::str(cert_id(c)) == *cert_handle)
            .unwrap_or(0)
    };
    // Per-cert temporal reasons.
    for (i, cert) in chain.iter().enumerate() {
        let h = Val::str(cert_id(cert));
        if out.contains("notYetValid", std::slice::from_ref(&h)) {
            return Ok(Err(RejectReason::NotYetValid { index: i }));
        }
        if out.contains("expired", &[h]) {
            return Ok(Err(RejectReason::Expired { index: i }));
        }
    }
    if out.contains("sigBad", std::slice::from_ref(&cid)) {
        for (i, cert) in chain.iter().enumerate() {
            if !out.contains("sigOk", &[Val::str(cert_id(cert))]) {
                return Ok(Err(RejectReason::BadSignature { index: i }));
            }
        }
    }
    if out.contains("revBad", std::slice::from_ref(&cid)) {
        for (i, cert) in chain.iter().enumerate() {
            if out.contains("revoked", &[Val::str(cert_id(cert))]) {
                return Ok(Err(RejectReason::Revoked { index: i }));
            }
        }
    }
    if out.contains("caBad", std::slice::from_ref(&cid)) {
        for (i, cert) in chain.iter().enumerate().skip(1) {
            if !cert.is_ca() {
                return Ok(Err(RejectReason::NotCa { index: i }));
            }
        }
    }
    if out.contains("pathLenBad", std::slice::from_ref(&cid)) {
        for (i, cert) in chain.iter().enumerate().skip(1) {
            if let Some(l) = cert.path_len() {
                if (i - 1) as u32 > l {
                    return Ok(Err(RejectReason::PathLenExceeded { index: i }));
                }
            }
        }
    }
    if out.contains("ncBad", std::slice::from_ref(&cid)) {
        // Find the first violating (CA, SAN) pair the way the native
        // validator reports it.
        let leaf = &chain[0];
        for (i, cert) in chain.iter().enumerate().skip(1) {
            if let Some(nc) = &cert.extensions().name_constraints {
                for san in leaf.dns_names() {
                    if !nc.allows(san, config.dot_semantics) {
                        return Ok(Err(RejectReason::NameConstraintViolation {
                            index: i,
                            name: san.clone(),
                        }));
                    }
                }
            }
        }
    }
    if out.contains("ekuBad", std::slice::from_ref(&cid)) {
        return Ok(Err(RejectReason::WrongEku));
    }
    if out.contains("hostBad", std::slice::from_ref(&cid)) {
        return Ok(Err(RejectReason::HostnameMismatch));
    }
    if out.contains("usageDateBad", std::slice::from_ref(&cid)) {
        return Ok(Err(RejectReason::UsageDateConstraint));
    }
    if out.contains("gccBad", std::slice::from_ref(&cid)) {
        // Identify which GCC rejected (re-query the namespaced valids).
        for (i, gcc) in store.gccs_for(&root_fp).iter().enumerate() {
            let pred = format!("valid__g{i}");
            if !out.contains(&pred, &[cid.clone(), Val::str(usage.as_datalog())]) {
                return Ok(Err(RejectReason::GccRejected {
                    gcc_name: gcc.name().to_string(),
                }));
            }
        }
        return Ok(Err(RejectReason::PolicyRejected));
    }
    let _ = index_of;
    Ok(Err(RejectReason::PolicyRejected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{ValidationMode, Validator};
    use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
    use nrslb_x509::testutil::{simple_chain, YEAR};

    #[test]
    fn base_policy_parses_and_stratifies() {
        let program = Program::parse(POLICY).unwrap();
        Engine::new(&program).unwrap();
    }

    #[test]
    fn accepts_good_chain() {
        let pki = simple_chain("ham.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let verdict = evaluate_chain(
            &chain,
            Usage::Tls,
            pki.now,
            None,
            &store,
            ValidatorConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(verdict, Ok(()));
    }

    #[test]
    fn rejects_expired_with_reason() {
        let pki = simple_chain("hamexp.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let verdict = evaluate_chain(
            &chain,
            Usage::Tls,
            pki.now + 2 * YEAR,
            None,
            &store,
            ValidatorConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(verdict, Err(RejectReason::Expired { index: 0 }));
    }

    #[test]
    fn hammurabi_mode_agrees_with_user_agent_mode() {
        let pki = simple_chain("hamparity.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "smime-block",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        let ua = Validator::new(store.clone(), ValidationMode::UserAgent);
        let ham = Validator::new(store, ValidationMode::Hammurabi);
        let pool = [pki.intermediate.clone()];
        for usage in Usage::ALL {
            for t in [pki.now, pki.now + 2 * YEAR, pki.now - 2 * YEAR] {
                let a = ua.validate(&pki.leaf, &pool, usage, t).unwrap();
                let b = ham.validate(&pki.leaf, &pool, usage, t).unwrap();
                assert_eq!(a.accepted(), b.accepted(), "usage={usage} t={t}");
            }
        }
    }

    #[test]
    fn multiple_gccs_all_must_accept() {
        let pki = simple_chain("hammulti.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        let accept_all = Gcc::parse(
            "accept",
            pki.root.fingerprint(),
            "valid(Chain, U) :- chainIndex(Chain, _, _), queryUsage(U).",
            GccMetadata::default(),
        )
        .unwrap();
        // Uses an `exempt` helper that must not collide with other GCCs.
        let deny_tls = Gcc::parse(
            "deny-tls",
            pki.root.fingerprint(),
            r#"
            exempt("nobody").
            valid(Chain, "S/MIME") :- leaf(Chain, _).
            valid(Chain, "TLS") :- root(Chain, R), hash(R, H), exempt(H).
            "#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(accept_all).unwrap();
        store.attach_gcc(deny_tls).unwrap();

        let ham = Validator::new(store, ValidationMode::Hammurabi);
        let pool = [pki.intermediate.clone()];
        let tls = ham.validate(&pki.leaf, &pool, Usage::Tls, pki.now).unwrap();
        assert!(!tls.accepted());
        assert!(matches!(
            tls.final_reason(),
            Some(RejectReason::GccRejected { gcc_name }) if gcc_name == "deny-tls"
        ));
    }

    #[test]
    fn namespacing_keeps_edb_predicates() {
        let p = Program::parse(
            "helper(X) :- leaf(C, X).
             valid(C, U) :- helper(X), leaf(C, X), queryUsage(U).",
        )
        .unwrap();
        let n = namespace_program(&p, "__g0");
        let text = n.to_string();
        assert!(text.contains("helper__g0"));
        assert!(text.contains("valid__g0"));
        assert!(text.contains("leaf(C, X)")); // EDB untouched
        assert!(!text.contains("leaf__g0"));
    }
}
