//! GCC execution: pose `valid(Chain, Usage)?` against a chain's facts.
//!
//! Evaluation goes through a [`ValidationSession`]: the chain is
//! converted to facts once, frozen, and every GCC reads the shared base
//! through a layered database (derived tuples land in a per-run
//! overlay). The pre-session path — cloning the full fact base per GCC
//! — survives as [`evaluate_gcc_on_db_cloning`] for the E6 benchmark's
//! before/after comparison.

use crate::facts::{chain_facts, chain_id};
use crate::session::ValidationSession;
use crate::CoreError;
use nrslb_datalog::{Database, Val};
use nrslb_rootstore::{Gcc, Usage};
use nrslb_x509::Certificate;

/// The result of evaluating one GCC against one chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GccVerdict {
    /// The GCC's name — shared with the [`Gcc`] itself, so building a
    /// verdict is a refcount bump, not a `String` copy.
    pub gcc_name: std::sync::Arc<str>,
    /// Did `valid(Chain, Usage)` hold?
    pub accepted: bool,
}

/// Evaluate a single GCC against a pre-converted fact database by
/// **cloning** it — the legacy execution path.
///
/// Every call pays a full copy of the fact base. It is kept only as the
/// baseline for the E6 benchmark's shared-base comparison; use
/// [`ValidationSession::evaluate_gcc`] everywhere else.
pub fn evaluate_gcc_on_db_cloning(
    gcc: &Gcc,
    db: &Database,
    chain_handle: &str,
    usage: Usage,
) -> Result<bool, CoreError> {
    let out = gcc.engine().run(db.clone())?;
    Ok(out.contains(
        "valid",
        &[Val::str(chain_handle), Val::str(usage.as_datalog())],
    ))
}

/// Convert `chain` and evaluate one GCC.
///
/// The paper's execution model (§3): the converted statements are fed,
/// along with the GCC, into the Datalog interpreter, and the validator
/// queries `valid(Chain, Usage)?`.
pub fn evaluate_gcc(gcc: &Gcc, chain: &[Certificate], usage: Usage) -> Result<bool, CoreError> {
    ValidationSession::new(chain).evaluate_gcc(gcc, usage)
}

/// Evaluate every GCC attached to the candidate root; the chain is
/// acceptable iff **all** GCCs accept ("a constructed chain is valid if
/// and only if all GCCs attached to the candidate root are valid", §3).
///
/// Returns the per-GCC verdicts. Conversion happens once, and the fact
/// base is shared (not cloned) across the GCC evaluations.
pub fn evaluate_gccs(
    gccs: &[Gcc],
    chain: &[Certificate],
    usage: Usage,
) -> Result<Vec<GccVerdict>, CoreError> {
    if gccs.is_empty() {
        return Ok(Vec::new());
    }
    ValidationSession::new(chain).evaluate_gccs(gccs, usage)
}

/// Do all verdicts accept?
pub fn all_accept(verdicts: &[GccVerdict]) -> bool {
    verdicts.iter().all(|v| v.accepted)
}

/// Explain a GCC's verdict on a chain: when the GCC accepts, the
/// derivation tree for `valid(Chain, Usage)`; when it rejects, `None`
/// (there is nothing to derive — the query simply fails).
///
/// The rendered tree is the audit trail the paper's "easy to reason
/// about" claim buys: which rule fired, which facts supported it, which
/// negations held.
pub fn explain_gcc(
    gcc: &Gcc,
    chain: &[Certificate],
    usage: Usage,
) -> Result<Option<nrslb_datalog::Derivation>, CoreError> {
    let db = chain_facts(chain);
    let out = gcc.engine().run(db)?;
    let goal = [Val::str(chain_id(chain)), Val::str(usage.as_datalog())];
    Ok(nrslb_datalog::explain::explain(
        gcc.program(),
        &out,
        "valid",
        &goal,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_rootstore::GccMetadata;
    use nrslb_x509::testutil::simple_chain;

    fn chain() -> Vec<Certificate> {
        let pki = simple_chain("gcceval.example");
        vec![pki.leaf, pki.intermediate, pki.root]
    }

    fn gcc(src: &str) -> Gcc {
        Gcc::parse(
            "test",
            nrslb_crypto::sha256::Digest::ZERO,
            src,
            GccMetadata::default(),
        )
        .unwrap()
    }

    #[test]
    fn accept_and_reject() {
        let chain = chain();
        // Accept everything for TLS.
        let g = gcc(r#"valid(Chain, "TLS") :- leaf(Chain, _)."#);
        assert!(evaluate_gcc(&g, &chain, Usage::Tls).unwrap());
        // That same GCC rejects S/MIME (no rule derives it).
        assert!(!evaluate_gcc(&g, &chain, Usage::SMime).unwrap());
    }

    #[test]
    fn listing_1_trustcor_on_real_chain() {
        let chain = chain();
        let g = gcc(r#"
            nov30th2022(1669784400).
            valid(Chain, "S/MIME") :-
              leaf(Chain, Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
            valid(Chain, "TLS") :-
              leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
            "#);
        // The testutil leaf is issued January 2022 and is not EV.
        assert!(evaluate_gcc(&g, &chain, Usage::Tls).unwrap());
        assert!(evaluate_gcc(&g, &chain, Usage::SMime).unwrap());
    }

    #[test]
    fn all_must_accept() {
        let chain = chain();
        let yes = gcc(r#"valid(Chain, "TLS") :- leaf(Chain, _)."#);
        let no = gcc(r#"valid(Chain, "TLS") :- leaf(Chain, C), EV(C)."#); // leaf is not EV
        let verdicts = evaluate_gccs(&[yes.clone(), no], &chain, Usage::Tls).unwrap();
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[0].accepted);
        assert!(!verdicts[1].accepted);
        assert!(!all_accept(&verdicts));
        let verdicts = evaluate_gccs(&[yes], &chain, Usage::Tls).unwrap();
        assert!(all_accept(&verdicts));
    }

    #[test]
    fn empty_gcc_list_is_vacuously_accepting() {
        let verdicts = evaluate_gccs(&[], &chain(), Usage::Tls).unwrap();
        assert!(verdicts.is_empty());
        assert!(all_accept(&verdicts));
    }

    #[test]
    fn explanation_names_rule_and_facts() {
        let chain = chain();
        let g = gcc(r#"
            nov30th2022(1669784400).
            valid(Chain, "TLS") :-
              leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
            "#);
        let derivation = explain_gcc(&g, &chain, Usage::Tls).unwrap().unwrap();
        let rendered = derivation.render();
        assert!(rendered.contains("valid("), "{rendered}");
        assert!(rendered.contains("leaf("), "{rendered}");
        assert!(rendered.contains("notBefore("), "{rendered}");
        assert!(rendered.contains("[absent]"), "{rendered}"); // \+EV
        assert!(rendered.contains("< 1669784400 [holds]"), "{rendered}");
        // A rejecting query has no derivation.
        assert!(explain_gcc(&g, &chain, Usage::SMime).unwrap().is_none());
    }
}
