//! The trust-daemon wire protocol, factored out of the serving engines.
//!
//! Both daemon engines — the thread-per-worker pool and the readiness
//! reactor ([`crate::reactor`]) — speak exactly this module: a
//! *buffer-based* parser ([`try_parse`]) that never consumes bytes
//! until a complete frame is delimited, a shared executor ([`execute`])
//! that turns a parsed request into response bytes, and the response
//! encoders. One implementation means the two engines are
//! reply-for-reply identical by construction (and the parity test
//! suite checks it anyway).
//!
//! ## Malformed frames and keep-alive
//!
//! The parser distinguishes three outcomes:
//!
//! * [`Parsed::Incomplete`] — the buffer does not yet hold a whole
//!   frame; read more.
//! * [`Parsed::Frame`] with `Err(msg)` — the frame was fully
//!   *delimited* (every length field was sane, all bytes consumed) but
//!   semantically invalid, e.g. a bad usage byte. The engine answers
//!   with a structured error frame and **keeps the connection open**:
//!   the stream is still in sync because the bad frame was consumed
//!   whole. (The pre-reactor engine desynchronized here — it replied
//!   mid-frame and then misparsed the leftover body bytes as the next
//!   opcode.)
//! * [`Parsed::Fatal`] — the frame cannot be delimited at all (unknown
//!   opcode, a length field past its limit). The engine answers with an
//!   error frame and closes, since resynchronizing is impossible.
//!
//! Certificate DER that parses as a frame but not as a certificate is a
//! *execution*-time error: the frame is consumed, the reply is a
//! structured error, the connection survives.

use crate::cache::ParsedCertCache;
use crate::gcc_eval::GccVerdict;
use crate::validate::GccOracle;
use nrslb_crypto::sha256::{Digest, Sha256};
use nrslb_rootstore::Usage;
use nrslb_x509::Certificate;

pub(crate) const OP_EVALUATE: u8 = 1;
pub(crate) const OP_METRICS: u8 = 2;
pub(crate) const OP_EVALUATE_BATCH: u8 = 3;
pub(crate) const STATUS_OK: u8 = 0;
pub(crate) const STATUS_ERR: u8 = 1;
/// Upper bound on any length field, to bound allocations from hostile
/// peers (a trust daemon is security-critical infrastructure).
pub(crate) const MAX_LEN: u32 = 16 * 1024 * 1024;
/// Upper bound on chains per `OP_EVALUATE_BATCH` request.
pub(crate) const MAX_BATCH: u32 = 256;
/// Upper bound on certificates per chain.
pub(crate) const MAX_CHAIN: u32 = 64;
/// Upper bound on a connection's accumulated unparsed bytes. A peer
/// that streams this much without completing a frame is either hostile
/// or broken; the engine replies fatally and closes.
pub(crate) const MAX_BUFFERED: usize = 64 * 1024 * 1024;

pub(crate) fn usage_to_byte(usage: Usage) -> u8 {
    match usage {
        Usage::Tls => 0,
        Usage::SMime => 1,
    }
}

pub(crate) fn usage_from_byte(b: u8) -> Option<Usage> {
    match b {
        0 => Some(Usage::Tls),
        1 => Some(Usage::SMime),
        _ => None,
    }
}

/// One decoded request frame. Certificate bytes stay raw DER here; the
/// parse into [`Certificate`] handles (and its cache) happens at
/// execution time, off the event loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Request {
    /// `OP_EVALUATE`: one chain, one usage.
    Evaluate { usage: Usage, ders: Vec<Vec<u8>> },
    /// `OP_EVALUATE_BATCH`: many chains in one frame.
    EvaluateBatch { items: Vec<(Usage, Vec<Vec<u8>>)> },
    /// `OP_METRICS`: render the registry.
    Metrics,
}

/// Outcome of attempting to delimit one frame at the head of a buffer.
#[derive(Debug)]
pub(crate) enum Parsed {
    /// No complete frame yet; accumulate more bytes.
    Incomplete,
    /// A fully delimited frame (`.1` = bytes consumed). `Err` carries a
    /// semantic decode failure to answer with `STATUS_ERR`; the
    /// connection stays usable.
    Frame(Result<Request, String>, usize),
    /// The stream cannot be resynchronized; answer and close.
    Fatal(String),
}

/// Byte cursor that returns `None` at end-of-buffer (= incomplete).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(bytes)
    }
}

/// Intermediate result while delimiting a sub-structure.
enum Step<T> {
    Incomplete,
    Fatal(String),
    Done(T),
}

/// A delimited `evaluate` body: the usage and raw DER blocks, or the
/// recoverable-error message a drained-but-invalid body carries.
type EvaluateBody = Result<(Usage, Vec<Vec<u8>>), String>;

/// Delimit one `evaluate` body (usage byte, cert count, DER blocks).
/// A bad usage byte is *recoverable*: the rest of the body is still
/// length-delimited, so it is drained and the error carried outward.
fn parse_evaluate_body(c: &mut Cursor<'_>) -> Step<EvaluateBody> {
    let Some(usage_byte) = c.u8() else {
        return Step::Incomplete;
    };
    let usage = usage_from_byte(usage_byte);
    let Some(n) = c.u32() else {
        return Step::Incomplete;
    };
    if n > MAX_CHAIN {
        // The claimed length is untrustworthy; draining it would let a
        // hostile peer demand unbounded buffering. Unrecoverable.
        return Step::Fatal("chain too long".to_string());
    }
    let mut ders = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let Some(len) = c.u32() else {
            return Step::Incomplete;
        };
        if len > MAX_LEN {
            return Step::Fatal("length field exceeds limit".to_string());
        }
        let Some(der) = c.take(len as usize) else {
            return Step::Incomplete;
        };
        ders.push(der.to_vec());
    }
    Step::Done(match usage {
        Some(usage) => Ok((usage, ders)),
        None => Err("bad usage byte".to_string()),
    })
}

/// Try to delimit one frame at the head of `buf`.
pub(crate) fn try_parse(buf: &[u8]) -> Parsed {
    let mut c = Cursor { buf, pos: 0 };
    let Some(opcode) = c.u8() else {
        return Parsed::Incomplete;
    };
    match opcode {
        OP_METRICS => Parsed::Frame(Ok(Request::Metrics), c.pos),
        OP_EVALUATE => match parse_evaluate_body(&mut c) {
            Step::Incomplete => Parsed::Incomplete,
            Step::Fatal(msg) => Parsed::Fatal(msg),
            Step::Done(body) => Parsed::Frame(
                body.map(|(usage, ders)| Request::Evaluate { usage, ders }),
                c.pos,
            ),
        },
        OP_EVALUATE_BATCH => {
            let Some(n) = c.u32() else {
                return Parsed::Incomplete;
            };
            if n > MAX_BATCH {
                return Parsed::Fatal("batch too large".to_string());
            }
            let mut items = Vec::with_capacity(n as usize);
            let mut first_err: Option<String> = None;
            for _ in 0..n {
                match parse_evaluate_body(&mut c) {
                    Step::Incomplete => return Parsed::Incomplete,
                    Step::Fatal(msg) => return Parsed::Fatal(msg),
                    Step::Done(Ok(item)) => items.push(item),
                    // Keep delimiting the remaining items so the whole
                    // frame is consumed before the error reply.
                    Step::Done(Err(msg)) => first_err = first_err.or(Some(msg)),
                }
            }
            Parsed::Frame(
                match first_err {
                    None => Ok(Request::EvaluateBatch { items }),
                    Some(msg) => Err(msg),
                },
                c.pos,
            )
        }
        other => Parsed::Fatal(format!("unknown opcode {other}")),
    }
}

// ---------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_verdict_list(out: &mut Vec<u8>, verdicts: &[GccVerdict]) {
    put_u32(out, verdicts.len() as u32);
    for v in verdicts {
        out.push(u8::from(v.accepted));
        put_u32(out, v.gcc_name.len() as u32);
        out.extend_from_slice(v.gcc_name.as_bytes());
    }
}

pub(crate) fn encode_verdicts_reply(verdicts: &[GccVerdict]) -> Vec<u8> {
    let mut out = vec![STATUS_OK];
    put_verdict_list(&mut out, verdicts);
    out
}

pub(crate) fn encode_batch_reply(batches: &[Vec<GccVerdict>]) -> Vec<u8> {
    let mut out = vec![STATUS_OK];
    put_u32(&mut out, batches.len() as u32);
    for verdicts in batches {
        put_verdict_list(&mut out, verdicts);
    }
    out
}

pub(crate) fn encode_text_reply(text: &str) -> Vec<u8> {
    let mut out = vec![STATUS_OK];
    put_u32(&mut out, text.len() as u32);
    out.extend_from_slice(text.as_bytes());
    out
}

pub(crate) fn encode_error_reply(message: &str) -> Vec<u8> {
    let mut out = vec![STATUS_ERR];
    put_u32(&mut out, message.len() as u32);
    out.extend_from_slice(message.as_bytes());
    out
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Content identity of one batch item: the usage byte plus a digest of
/// the chain's certificate fingerprints in order. Two items with equal
/// keys are the same evaluation by construction, so the batch handler
/// evaluates the first and clones its verdicts for the rest.
fn batch_item_key(usage: Usage, chain: &[Certificate]) -> (u8, Digest) {
    let mut h = Sha256::new();
    for cert in chain {
        h.update(cert.fingerprint().0);
    }
    (usage_to_byte(usage), h.finalize())
}

fn parse_chain(ders: &[Vec<u8>], certs: &ParsedCertCache) -> Result<Vec<Certificate>, String> {
    let mut chain = Vec::with_capacity(ders.len());
    for der in ders {
        chain.push(certs.parse(der).map_err(|e| e.to_string())?);
    }
    Ok(chain)
}

/// Execute one parsed request against the shared oracle and encode its
/// reply. Counts the request, times it into the latency histogram, and
/// counts error replies — the same accounting on both engines.
pub(crate) fn execute(
    request: &Request,
    oracle: &dyn GccOracle,
    certs: &ParsedCertCache,
    instruments: &crate::daemon::DaemonInstruments,
) -> Vec<u8> {
    instruments.requests.inc();
    let span = instruments.span();
    let reply = run(request, oracle, certs, instruments);
    drop(span);
    match reply {
        Ok(bytes) => bytes,
        Err(message) => {
            instruments.request_errors.inc();
            encode_error_reply(&message)
        }
    }
}

/// Account for a frame that failed to decode (the engines answer it
/// with [`encode_error_reply`] themselves).
pub(crate) fn count_malformed(instruments: &crate::daemon::DaemonInstruments) {
    instruments.requests.inc();
    instruments.request_errors.inc();
}

fn run(
    request: &Request,
    oracle: &dyn GccOracle,
    certs: &ParsedCertCache,
    instruments: &crate::daemon::DaemonInstruments,
) -> Result<Vec<u8>, String> {
    match request {
        Request::Metrics => Ok(encode_text_reply(&instruments.registry.render_text())),
        Request::Evaluate { usage, ders } => {
            let chain = parse_chain(ders, certs)?;
            let verdicts = oracle.evaluate(&chain, *usage).map_err(|e| e.to_string())?;
            Ok(encode_verdicts_reply(&verdicts))
        }
        Request::EvaluateBatch { items } => {
            let mut chains = Vec::with_capacity(items.len());
            for (usage, ders) in items {
                chains.push((*usage, parse_chain(ders, certs)?));
            }
            instruments.batch_size.observe(chains.len() as u64);
            // Page loads repeat chains (every subresource re-validates
            // the same server chain), so dedup by content identity:
            // evaluate each distinct (usage, chain) once and clone the
            // verdicts — a refcount bump per name — for the repeats.
            let mut first_at: std::collections::HashMap<(u8, Digest), usize> =
                std::collections::HashMap::with_capacity(chains.len());
            let mut batches: Vec<Vec<GccVerdict>> = Vec::with_capacity(chains.len());
            for (i, (usage, chain)) in chains.iter().enumerate() {
                match first_at.entry(batch_item_key(*usage, chain)) {
                    std::collections::hash_map::Entry::Occupied(seen) => {
                        batches.push(batches[*seen.get()].clone());
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(i);
                        batches.push(oracle.evaluate(chain, *usage).map_err(|e| e.to_string())?);
                    }
                }
            }
            Ok(encode_batch_reply(&batches))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluate_frame(usage_byte: u8, ders: &[&[u8]]) -> Vec<u8> {
        let mut f = vec![OP_EVALUATE, usage_byte];
        put_u32(&mut f, ders.len() as u32);
        for d in ders {
            put_u32(&mut f, d.len() as u32);
            f.extend_from_slice(d);
        }
        f
    }

    #[test]
    fn incomplete_prefixes_never_consume() {
        let frame = evaluate_frame(0, &[b"abc", b"defg"]);
        for cut in 0..frame.len() {
            assert!(
                matches!(try_parse(&frame[..cut]), Parsed::Incomplete),
                "prefix of {cut} bytes"
            );
        }
        match try_parse(&frame) {
            Parsed::Frame(Ok(Request::Evaluate { usage, ders }), consumed) => {
                assert_eq!(usage, Usage::Tls);
                assert_eq!(ders, vec![b"abc".to_vec(), b"defg".to_vec()]);
                assert_eq!(consumed, frame.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_usage_byte_is_recoverable_and_fully_consumed() {
        let frame = evaluate_frame(9, &[b"abc"]);
        match try_parse(&frame) {
            Parsed::Frame(Err(msg), consumed) => {
                assert_eq!(msg, "bad usage byte");
                assert_eq!(consumed, frame.len(), "bad frame must be drained whole");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pipelined_frames_parse_one_at_a_time() {
        let mut buf = evaluate_frame(0, &[b"x"]);
        let second = evaluate_frame(1, &[b"y"]);
        buf.extend_from_slice(&second);
        let Parsed::Frame(Ok(_), consumed) = try_parse(&buf) else {
            panic!("first frame");
        };
        let Parsed::Frame(Ok(Request::Evaluate { usage, .. }), consumed2) =
            try_parse(&buf[consumed..])
        else {
            panic!("second frame");
        };
        assert_eq!(usage, Usage::SMime);
        assert_eq!(consumed + consumed2, buf.len());
    }

    #[test]
    fn undelimitable_frames_are_fatal() {
        // Unknown opcode.
        assert!(matches!(try_parse(&[77]), Parsed::Fatal(_)));
        // Chain length past the cap.
        let mut f = vec![OP_EVALUATE, 0];
        put_u32(&mut f, MAX_CHAIN + 1);
        assert!(matches!(try_parse(&f), Parsed::Fatal(_)));
        // DER length field past the cap.
        let mut f = vec![OP_EVALUATE, 0];
        put_u32(&mut f, 1);
        put_u32(&mut f, MAX_LEN + 1);
        assert!(matches!(try_parse(&f), Parsed::Fatal(_)));
        // Batch count past the cap.
        let mut f = vec![OP_EVALUATE_BATCH];
        put_u32(&mut f, MAX_BATCH + 1);
        assert!(matches!(try_parse(&f), Parsed::Fatal(_)));
    }

    #[test]
    fn batch_with_one_bad_item_is_recoverable_whole() {
        let mut f = vec![OP_EVALUATE_BATCH];
        put_u32(&mut f, 2);
        f.extend_from_slice(&evaluate_frame(0, &[b"ok"])[1..]);
        f.extend_from_slice(&evaluate_frame(5, &[b"bad"])[1..]);
        match try_parse(&f) {
            Parsed::Frame(Err(msg), consumed) => {
                assert_eq!(msg, "bad usage byte");
                assert_eq!(consumed, f.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_frame_is_one_byte() {
        match try_parse(&[OP_METRICS, 0xEE]) {
            Parsed::Frame(Ok(Request::Metrics), 1) => {}
            other => panic!("{other:?}"),
        }
    }
}
