//! The *platform execution* deployment mode (§3.1): a system trust
//! daemon — the moral equivalent of macOS's `trustd` — that owns the
//! platform root store and evaluates GCCs on behalf of TLS user-agents.
//!
//! The daemon listens on a Unix-domain socket. A user-agent mid-chain-
//! construction sends the candidate chain plus the requested usage; the
//! daemon converts the chain to Datalog statements, executes all GCCs
//! attached to the candidate root, and returns the per-GCC verdicts. The
//! user-agent proceeds with chain construction, "building a new chain if
//! the daemon responded false".
//!
//! ## Engines
//!
//! Daemons are spawned through [`DaemonBuilder`] and serve connections
//! with one of two interchangeable engines ([`Engine`]):
//!
//! * [`Engine::Reactor`] (default) — a readiness reactor
//!   (`crate::reactor`): a few event-loop threads multiplex *all*
//!   connections over non-blocking sockets, and complete frames are
//!   dispatched to a worker pool for Datalog evaluation. Concurrency is
//!   bounded by memory, not worker count — thousands of keep-alive
//!   user-agents can stay connected while eight workers evaluate.
//! * [`Engine::ThreadPool`] — the original thread-per-connection pool:
//!   accepted connections queue on a bounded MPMC channel and a worker
//!   owns one connection end-to-end until its peer hangs up. Kept as
//!   the ablation arm; at most `workers` connections are served
//!   concurrently.
//!
//! Both engines speak exactly `crate::proto` — one parser, one
//! executor, one set of reply encoders — so they are reply-for-reply
//! identical, and both share one [`InProcessOracle`] (and thus one GCC
//! [`crate::VerdictCache`]), so a verdict computed for one client is a
//! cache hit for every other.
//!
//! ## Wire protocol
//!
//! Little-endian, length-prefixed. Connections are **keep-alive**: a
//! client sends any number of requests on one connection and the daemon
//! answers each in order, so user-agents amortize socket setup across a
//! page load ([`DaemonClient::keep_alive`]). `OP_EVALUATE_BATCH` goes
//! further and packs many chains into one round-trip with a single
//! response frame:
//!
//! ```text
//! evaluate := u8 usage(0=TLS,1=S/MIME) u32 n_certs (u32 len, bytes der)*
//! request  := u8 opcode(1=evaluate)  evaluate
//!           | u8 opcode(2=metrics)
//!           | u8 opcode(3=evaluate-batch) u32 n_items  evaluate*
//! verdicts := u32 n_verdicts (u8 accepted, u32 len, bytes name)*
//! response := u8 status(0=ok,1=error)
//!             ok(evaluate):       verdicts
//!             ok(metrics):        u32 len, bytes exposition-text
//!             ok(evaluate-batch): u32 n_items  verdicts*
//!             error:              u32 len, bytes message
//! ```
//!
//! A malformed-but-delimitable frame (e.g. a bad usage byte) is
//! answered with a structured error frame and the connection **stays
//! open** — the bad frame was consumed whole, so the stream is still in
//! sync. Only undelimitable garbage (unknown opcode, a length field
//! past its cap) closes the connection, after a final error frame.
//!
//! ## Observability
//!
//! Every daemon owns (or is handed, [`DaemonBuilder::registry`]) an
//! [`nrslb_obs::Registry`]. The shared oracle's verdict cache mirrors
//! its hit/miss/eviction statistics into it, each request is timed into
//! `nrslb_daemon_request_latency_us`, and the reactor engine adds
//! per-loop gauges/counters (see `crate::reactor`). The `metrics`
//! opcode returns [`Registry::render_text`] — Prometheus text
//! exposition over the same socket, so operators scrape the daemon
//! without a second listener.

use crate::cache::ParsedCertCache;
use crate::gcc_eval::GccVerdict;
use crate::proto::{
    self, Parsed, MAX_BATCH, MAX_LEN, OP_EVALUATE, OP_EVALUATE_BATCH, OP_METRICS, STATUS_ERR,
    STATUS_OK,
};
use crate::reactor::{DaemonService, ReactorHandle};
use crate::validate::{GccOracle, InProcessOracle};
use crate::CoreError;
use nrslb_obs::{Counter, Gauge, Histogram, Registry, Span};
use nrslb_rootstore::{RootStore, Usage};
use nrslb_rsf::{Staleness, Subscriber, SyncCounters};
use nrslb_x509::Certificate;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

fn read_u8(r: &mut impl Read) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_block(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "length field exceeds limit",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Default number of evaluation worker threads.
pub const DEFAULT_WORKERS: usize = 8;

/// Per-daemon instrument handles, shared by every engine thread. The
/// registry rides along so the `metrics` opcode can render it from any
/// thread.
#[derive(Clone)]
pub(crate) struct DaemonInstruments {
    pub(crate) registry: Arc<Registry>,
    /// Connections accepted but not yet picked up by a worker
    /// (thread-pool engine only; the reactor never queues accepts).
    pub(crate) queue_depth: Gauge,
    /// Requests served, by opcode outcome.
    pub(crate) requests: Counter,
    /// Requests answered with an error status.
    pub(crate) request_errors: Counter,
    /// Per-request service time in microseconds.
    pub(crate) latency_us: Histogram,
    /// Chains per `OP_EVALUATE_BATCH` request.
    pub(crate) batch_size: Histogram,
}

impl DaemonInstruments {
    fn new(registry: Arc<Registry>) -> DaemonInstruments {
        DaemonInstruments {
            queue_depth: registry.gauge(
                "nrslb_daemon_queue_depth",
                "connections accepted but not yet picked up by a worker",
            ),
            requests: registry.counter("nrslb_daemon_requests_total", "requests served"),
            request_errors: registry.counter(
                "nrslb_daemon_request_errors_total",
                "requests answered with an error status",
            ),
            latency_us: registry.histogram(
                "nrslb_daemon_request_latency_us",
                "per-request service time in microseconds",
            ),
            batch_size: registry.histogram(
                "nrslb_daemon_batch_size",
                "chains per evaluate-batch request",
            ),
            registry,
        }
    }

    pub(crate) fn span(&self) -> Span {
        Span::enter(self.latency_us.clone(), Arc::clone(self.registry.clock()))
    }
}

/// Everything a serving thread needs to execute requests: the shared
/// oracle, the shared parsed-certificate cache, and the instruments.
#[derive(Clone)]
pub(crate) struct ExecCtx {
    pub(crate) oracle: Arc<InProcessOracle>,
    pub(crate) certs: Arc<ParsedCertCache>,
    pub(crate) instruments: DaemonInstruments,
}

/// An accepted connection waiting in the worker queue, keeping the
/// queue-depth gauge honest by construction: the increment happens when
/// the guard is created in the accept loop and the matching decrement
/// in `Drop` — so the gauge comes back down whether a worker picks the
/// connection up, the channel send fails, the queue is dropped with
/// connections still queued at shutdown, or a worker panics before
/// serving. (The pre-guard code decremented on the happy path only and
/// leaked an increment on every other exit.)
struct QueuedConn {
    stream: Option<UnixStream>,
    depth: Gauge,
}

impl QueuedConn {
    fn new(stream: UnixStream, depth: Gauge) -> QueuedConn {
        depth.add(1);
        QueuedConn {
            stream: Some(stream),
            depth,
        }
    }

    /// Dequeue the connection; the guard drops here, so queue time ends
    /// when a worker takes the stream, not when serving finishes.
    fn take(mut self) -> UnixStream {
        self.stream.take().expect("stream taken once")
    }
}

impl Drop for QueuedConn {
    fn drop(&mut self) {
        self.depth.sub(1);
    }
}

/// Which serving engine a daemon runs (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Readiness reactor: event loops multiplex every connection,
    /// workers only evaluate. The default.
    #[default]
    Reactor,
    /// Thread-per-connection worker pool (the ablation arm): at most
    /// `workers` connections are served concurrently.
    ThreadPool,
}

/// Configuration for [`TrustDaemon::spawn_configured`]. Superseded by
/// [`DaemonBuilder`], which covers the same knobs plus engine choice.
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Worker threads serving connections (at least 1).
    pub workers: usize,
    /// Capacity of the verdict cache shared by all workers.
    pub cache_capacity: usize,
    /// Shard count of the verdict cache; `1` reproduces the old
    /// single-lock cache (the throughput benchmark's ablation arm).
    pub cache_shards: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            workers: DEFAULT_WORKERS,
            cache_capacity: crate::cache::DEFAULT_VERDICT_CACHE_CAPACITY,
            cache_shards: crate::cache::DEFAULT_CACHE_SHARDS,
        }
    }
}

/// How many event loops the reactor engine runs by default: half the
/// available cores, clamped to `1..=4` — loops only parse and move
/// bytes, so a few go a long way.
fn default_event_loops() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    (cores / 2).clamp(1, 4)
}

/// Builder for a [`TrustDaemon`]: socket path (required), engine,
/// worker count, event-loop count, verdict-cache geometry, and metric
/// registry.
///
/// ```no_run
/// use nrslb_core::daemon::{Engine, TrustDaemon};
/// # let store = nrslb_rootstore::RootStore::new("platform");
/// let daemon = TrustDaemon::builder()
///     .socket("/run/nrslb/trustd.sock")
///     .workers(8)
///     .engine(Engine::Reactor)
///     .spawn(store)
///     .unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct DaemonBuilder {
    socket: Option<PathBuf>,
    workers: usize,
    event_loops: usize,
    cache_capacity: usize,
    cache_shards: usize,
    registry: Option<Arc<Registry>>,
    engine: Engine,
}

impl Default for DaemonBuilder {
    fn default() -> DaemonBuilder {
        DaemonBuilder {
            socket: None,
            workers: DEFAULT_WORKERS,
            event_loops: default_event_loops(),
            cache_capacity: crate::cache::DEFAULT_VERDICT_CACHE_CAPACITY,
            cache_shards: crate::cache::DEFAULT_CACHE_SHARDS,
            registry: None,
            engine: Engine::default(),
        }
    }
}

impl DaemonBuilder {
    /// The Unix socket path to bind (required; a stale socket file from
    /// a previous run is removed first).
    pub fn socket(mut self, path: impl AsRef<Path>) -> DaemonBuilder {
        self.socket = Some(path.as_ref().to_path_buf());
        self
    }

    /// Evaluation worker threads (at least 1; default
    /// [`DEFAULT_WORKERS`]). Under [`Engine::ThreadPool`] this also
    /// caps concurrent connections.
    pub fn workers(mut self, workers: usize) -> DaemonBuilder {
        self.workers = workers;
        self
    }

    /// Event-loop threads for [`Engine::Reactor`] (at least 1; default
    /// scales with core count). Ignored by [`Engine::ThreadPool`].
    pub fn event_loops(mut self, event_loops: usize) -> DaemonBuilder {
        self.event_loops = event_loops;
        self
    }

    /// Capacity of the shared verdict cache.
    pub fn cache_capacity(mut self, capacity: usize) -> DaemonBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Shard count of the shared verdict cache; `1` reproduces the old
    /// single-lock cache (the throughput benchmark's ablation arm).
    pub fn cache_shards(mut self, shards: usize) -> DaemonBuilder {
        self.cache_shards = shards;
        self
    }

    /// Report into a caller-provided registry — so the daemon's metrics
    /// share one exposition with a co-resident validator's or
    /// subscriber's. Defaults to a fresh private registry.
    pub fn registry(mut self, registry: Arc<Registry>) -> DaemonBuilder {
        self.registry = Some(registry);
        self
    }

    /// Which serving engine to run (default [`Engine::Reactor`]).
    pub fn engine(mut self, engine: Engine) -> DaemonBuilder {
        self.engine = engine;
        self
    }

    /// Bind the socket and start serving GCC evaluations for `store`.
    ///
    /// Fails with [`std::io::ErrorKind::InvalidInput`] if no socket
    /// path was set, or with the bind error otherwise.
    pub fn spawn(self, store: RootStore) -> std::io::Result<TrustDaemon> {
        let path = self.socket.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "DaemonBuilder::socket is required",
            )
        })?;
        // Remove a stale socket from a previous run.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = self.registry.unwrap_or_else(|| Arc::new(Registry::new()));
        let oracle = Arc::new(InProcessOracle::configured(
            store,
            self.cache_capacity,
            self.cache_shards,
            Some(&registry),
        ));
        let cert_cache = Arc::new(ParsedCertCache::default());
        let instruments = DaemonInstruments::new(registry);
        let ctx = ExecCtx {
            oracle: Arc::clone(&oracle),
            certs: Arc::clone(&cert_cache),
            instruments: instruments.clone(),
        };
        let engine = match self.engine {
            Engine::Reactor => {
                let registry = Arc::clone(&ctx.instruments.registry);
                EngineHandle::Reactor(ReactorHandle::spawn(
                    listener,
                    self.event_loops.max(1),
                    self.workers.max(1),
                    Arc::new(DaemonService::new(ctx)),
                    &registry,
                    Arc::clone(&stop),
                )?)
            }
            Engine::ThreadPool => {
                spawn_thread_pool(listener, self.workers.max(1), ctx, Arc::clone(&stop))
            }
        };
        Ok(TrustDaemon {
            path,
            stop,
            oracle,
            cert_cache,
            instruments,
            engine,
            feed: None,
        })
    }
}

/// The running engine's threads, joined on shutdown.
enum EngineHandle {
    ThreadPool {
        accept: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    Reactor(ReactorHandle),
}

/// Start the thread-pool engine: a bounded accept queue feeding workers
/// that each own one connection until its peer hangs up.
fn spawn_thread_pool(
    listener: UnixListener,
    workers: usize,
    ctx: ExecCtx,
    stop: Arc<AtomicBool>,
) -> EngineHandle {
    // Bounded: with all workers busy, at most 2x`workers` accepted
    // connections queue before the accept loop itself blocks (and the
    // kernel listen backlog takes over).
    let (conn_tx, conn_rx) = crossbeam::channel::bounded::<QueuedConn>(workers * 2);
    let worker_handles = (0..workers)
        .map(|_| {
            let conn_rx = conn_rx.clone();
            let ctx = ctx.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // recv fails once the accept thread (the only sender)
                // is gone and the queue has drained.
                while let Ok(queued) = conn_rx.recv() {
                    let _ = serve_connection(queued.take(), &ctx, &stop);
                }
            })
        })
        .collect();
    drop(conn_rx);
    let queue_depth = ctx.instruments.queue_depth.clone();
    let accept = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let queued = QueuedConn::new(stream, queue_depth.clone());
            if conn_tx.send(queued).is_err() {
                break;
            }
        }
        // conn_tx drops here; idle workers wake and exit.
    });
    EngineHandle::ThreadPool {
        accept: Some(accept),
        workers: worker_handles,
    }
}

/// A running trust daemon; dropping the handle shuts it down.
pub struct TrustDaemon {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    oracle: Arc<InProcessOracle>,
    cert_cache: Arc<ParsedCertCache>,
    instruments: DaemonInstruments,
    engine: EngineHandle,
    /// The RSF subscriber keeping the platform store current, when the
    /// operator wired one up ([`TrustDaemon::attach_feed`]). The daemon
    /// surfaces its sync health ([`TrustDaemon::sync_counters`],
    /// [`TrustDaemon::feed_staleness`]) the way it surfaces the verdict
    /// cache.
    feed: Option<Arc<Mutex<Subscriber>>>,
}

impl TrustDaemon {
    /// Configure a daemon: socket path, engine, workers, cache
    /// geometry, registry. See [`DaemonBuilder`].
    pub fn builder() -> DaemonBuilder {
        DaemonBuilder::default()
    }

    /// Bind `socket_path` and serve GCC evaluations for `store` with
    /// [`DEFAULT_WORKERS`] worker threads.
    #[deprecated(note = "use TrustDaemon::builder()")]
    pub fn spawn(store: RootStore, socket_path: impl AsRef<Path>) -> std::io::Result<TrustDaemon> {
        #[allow(deprecated)]
        TrustDaemon::spawn_with_workers(store, socket_path, DEFAULT_WORKERS)
    }

    /// Bind `socket_path` and serve with an explicit worker count
    /// (at least 1), reporting into a private registry.
    #[deprecated(note = "use TrustDaemon::builder()")]
    pub fn spawn_with_workers(
        store: RootStore,
        socket_path: impl AsRef<Path>,
        workers: usize,
    ) -> std::io::Result<TrustDaemon> {
        #[allow(deprecated)]
        TrustDaemon::spawn_observed(store, socket_path, workers, Arc::new(Registry::new()))
    }

    /// Bind `socket_path` and serve, reporting into a caller-provided
    /// registry — so the daemon's metrics share one exposition with a
    /// co-resident validator's or subscriber's.
    #[deprecated(note = "use TrustDaemon::builder()")]
    pub fn spawn_observed(
        store: RootStore,
        socket_path: impl AsRef<Path>,
        workers: usize,
        registry: Arc<Registry>,
    ) -> std::io::Result<TrustDaemon> {
        #[allow(deprecated)]
        TrustDaemon::spawn_configured(
            store,
            socket_path,
            DaemonConfig {
                workers,
                ..DaemonConfig::default()
            },
            registry,
        )
    }

    /// Bind `socket_path` and serve with full control over worker count
    /// and verdict-cache geometry, reporting into a caller-provided
    /// registry.
    ///
    /// Forwards to [`DaemonBuilder`] pinned to [`Engine::ThreadPool`] —
    /// the engine these constructors always ran — so existing callers
    /// keep byte-identical behavior.
    #[deprecated(note = "use TrustDaemon::builder()")]
    pub fn spawn_configured(
        store: RootStore,
        socket_path: impl AsRef<Path>,
        config: DaemonConfig,
        registry: Arc<Registry>,
    ) -> std::io::Result<TrustDaemon> {
        TrustDaemon::builder()
            .socket(socket_path)
            .workers(config.workers)
            .cache_capacity(config.cache_capacity)
            .cache_shards(config.cache_shards)
            .registry(registry)
            .engine(Engine::ThreadPool)
            .spawn(store)
    }

    /// The socket path clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// Which engine this daemon is serving with.
    pub fn engine(&self) -> Engine {
        match self.engine {
            EngineHandle::ThreadPool { .. } => Engine::ThreadPool,
            EngineHandle::Reactor(_) => Engine::Reactor,
        }
    }

    /// The shared oracle (exposes the verdict cache for metrics).
    pub fn oracle(&self) -> &InProcessOracle {
        &self.oracle
    }

    /// The shared parsed-certificate cache (DER bytes → handle),
    /// exposed so operators and tests can read its hit/miss counters.
    pub fn cert_cache(&self) -> &ParsedCertCache {
        &self.cert_cache
    }

    /// The daemon's metric registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.instruments.registry
    }

    /// The registry rendered as Prometheus text exposition — the same
    /// payload the `metrics` opcode returns over the socket.
    pub fn render_metrics(&self) -> String {
        self.instruments.registry.render_text()
    }

    /// Wire up the RSF subscriber that keeps the platform store
    /// current; the daemon then exposes its sync health as metrics.
    pub fn attach_feed(&mut self, feed: Arc<Mutex<Subscriber>>) {
        self.feed = Some(feed);
    }

    /// The attached subscriber's sync counters (attempts, retries,
    /// fallbacks, quarantines, stale serves), if a feed is attached.
    pub fn sync_counters(&self) -> Option<SyncCounters> {
        self.feed
            .as_ref()
            .map(|f| f.lock().expect("feed mutex").counters())
    }

    /// The attached subscriber's freshness at `now`, if a feed is
    /// attached.
    pub fn feed_staleness(&self, now: i64) -> Option<Staleness> {
        self.feed
            .as_ref()
            .map(|f| f.lock().expect("feed mutex").staleness(now))
    }

    /// Propagate the attached feed's applied updates into the serving
    /// path: drain the subscriber's accumulated [`nrslb_rsf::TaintSet`]
    /// (precise per-delta blast radius; full on snapshot fallback),
    /// swap the oracle onto the subscriber's current store, and evict
    /// exactly the tainted verdicts — so a long-running daemon
    /// invalidates by taint instead of absorbing updates wholesale.
    ///
    /// Call after the feed's polling loop applies updates. Returns the
    /// number of verdicts evicted, `Some(0)` without touching the
    /// store when the feed had nothing new, and `None` when no feed is
    /// attached. In-flight requests keep the store snapshot they
    /// started with ([`InProcessOracle::store`] hands out `Arc`s).
    pub fn refresh_from_feed(&self) -> Option<u64> {
        let feed = self.feed.as_ref()?;
        let mut feed = feed.lock().expect("feed mutex");
        let taint = feed.take_taint();
        if taint.is_empty() {
            return Some(0);
        }
        let store = feed.store().clone();
        drop(feed);
        Some(self.oracle.absorb_update(store, &taint))
    }

    /// Create a connect-per-request client for this daemon.
    pub fn client(&self) -> DaemonClient {
        DaemonClient::new(&self.path)
    }

    /// Create a keep-alive client for this daemon (one connection,
    /// many requests, batch support).
    pub fn keep_alive_client(&self) -> DaemonClient {
        DaemonClient::keep_alive(&self.path)
    }

    /// Create a keep-alive client for this daemon.
    #[deprecated(note = "use TrustDaemon::keep_alive_client()")]
    #[allow(deprecated)]
    pub fn connection(&self) -> DaemonConnection {
        DaemonConnection::new(&self.path)
    }
}

impl Drop for TrustDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = UnixStream::connect(&self.path);
        match &mut self.engine {
            EngineHandle::ThreadPool { accept, workers } => {
                if let Some(t) = accept.take() {
                    let _ = t.join();
                }
                for t in workers.drain(..) {
                    let _ = t.join();
                }
            }
            EngineHandle::Reactor(handle) => handle.shutdown(),
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// How often an idle worker wakes to re-check the shutdown flag while
/// waiting for bytes on a keep-alive connection.
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(25);

/// Thread-pool engine: serve one connection end-to-end over the shared
/// protocol module, until the peer hangs up or the frame stream turns
/// fatally malformed.
fn serve_connection(stream: UnixStream, ctx: &ExecCtx, stop: &AtomicBool) -> std::io::Result<()> {
    let mut stream = stream;
    let mut rbuf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 64 * 1024];
    // Keep-alive clients may hold the connection open indefinitely
    // between requests, so reads poll with a short timeout and re-check
    // the shutdown flag — a quiet connection must never block daemon
    // shutdown.
    stream.set_read_timeout(Some(IDLE_POLL))?;
    loop {
        // Serve every complete frame already buffered before reading
        // more (clients may pipeline).
        loop {
            match proto::try_parse(&rbuf) {
                Parsed::Incomplete => {
                    if rbuf.len() > proto::MAX_BUFFERED {
                        proto::count_malformed(&ctx.instruments);
                        stream
                            .write_all(&proto::encode_error_reply("frame exceeds buffer limit"))?;
                        return Ok(());
                    }
                    break;
                }
                Parsed::Frame(Ok(request), consumed) => {
                    rbuf.drain(..consumed);
                    let reply =
                        proto::execute(&request, &*ctx.oracle, &ctx.certs, &ctx.instruments);
                    stream.write_all(&reply)?;
                    stream.flush()?;
                }
                Parsed::Frame(Err(message), consumed) => {
                    rbuf.drain(..consumed);
                    proto::count_malformed(&ctx.instruments);
                    stream.write_all(&proto::encode_error_reply(&message))?;
                    stream.flush()?;
                }
                Parsed::Fatal(message) => {
                    proto::count_malformed(&ctx.instruments);
                    stream.write_all(&proto::encode_error_reply(&message))?;
                    stream.flush()?;
                    return Ok(());
                }
            }
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(()), // peer hung up
            Ok(n) => rbuf.extend_from_slice(&scratch[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
    }
}

/// How a [`DaemonClient`] manages its socket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConnectionMode {
    /// A fresh `connect(2)` per request: trivially robust to daemon
    /// restarts, no state to invalidate. The default.
    #[default]
    PerRequest,
    /// One cached connection reused across requests — the
    /// throughput-oriented mode, avoiding the per-request connect
    /// round-trip that dominates warm-cache latency. Transport errors
    /// (broken pipe after a daemon restart, short reads) drop the
    /// cached stream and retry once on a fresh connection; evaluation
    /// requests are idempotent, so the retry is safe.
    KeepAlive,
}

/// Client side of the trust-daemon protocol. Implements [`GccOracle`],
/// so a [`crate::Validator`] in `Platform` mode can delegate GCC
/// evaluation to the daemon transparently.
///
/// The [`ConnectionMode`] picks the transport strategy; request and
/// response semantics are identical in both. Protocol errors (the
/// daemon answered `STATUS_ERR`) are final in either mode and — under
/// [`ConnectionMode::KeepAlive`] — keep the connection open, since the
/// response frame was fully consumed.
///
/// `Clone` copies the path and mode but **not** the cached connection;
/// each clone dials its own.
#[derive(Debug)]
pub struct DaemonClient {
    path: PathBuf,
    mode: ConnectionMode,
    stream: Mutex<Option<UnixStream>>,
}

impl Clone for DaemonClient {
    fn clone(&self) -> DaemonClient {
        DaemonClient {
            path: self.path.clone(),
            mode: self.mode,
            stream: Mutex::new(None),
        }
    }
}

impl DaemonClient {
    /// Connect-per-request client for the daemon at `socket_path`.
    pub fn new(socket_path: impl AsRef<Path>) -> DaemonClient {
        DaemonClient::with_mode(socket_path, ConnectionMode::PerRequest)
    }

    /// Keep-alive client for the daemon at `socket_path`. No connection
    /// is opened until the first request.
    pub fn keep_alive(socket_path: impl AsRef<Path>) -> DaemonClient {
        DaemonClient::with_mode(socket_path, ConnectionMode::KeepAlive)
    }

    /// Client with an explicit [`ConnectionMode`].
    pub fn with_mode(socket_path: impl AsRef<Path>, mode: ConnectionMode) -> DaemonClient {
        DaemonClient {
            path: socket_path.as_ref().to_path_buf(),
            mode,
            stream: Mutex::new(None),
        }
    }

    /// This client's [`ConnectionMode`].
    pub fn mode(&self) -> ConnectionMode {
        self.mode
    }

    /// Run one request/response exchange. `parse` layers transport
    /// errors (outer `io::Result` — the connection state is unknown)
    /// over protocol errors (inner — the response frame was fully
    /// consumed). Under [`ConnectionMode::KeepAlive`] a transport
    /// failure drops the cached stream and retries once on a fresh
    /// connection.
    fn exchange<T>(
        &self,
        request: &[u8],
        parse: impl Fn(&mut UnixStream) -> std::io::Result<Result<T, CoreError>>,
    ) -> Result<T, CoreError> {
        let io_err = |e: std::io::Error| CoreError::Daemon(e.to_string());
        match self.mode {
            ConnectionMode::PerRequest => {
                let mut stream = UnixStream::connect(&self.path).map_err(io_err)?;
                stream.write_all(request).map_err(io_err)?;
                stream.flush().map_err(io_err)?;
                parse(&mut stream).map_err(io_err)?
            }
            ConnectionMode::KeepAlive => {
                let mut guard = self.stream.lock().expect("daemon client poisoned");
                let mut reconnected = guard.is_none();
                loop {
                    if guard.is_none() {
                        *guard = Some(UnixStream::connect(&self.path).map_err(io_err)?);
                    }
                    let stream = guard.as_mut().expect("stream just ensured");
                    let attempt = (|| {
                        stream.write_all(request)?;
                        stream.flush()?;
                        parse(stream)
                    })();
                    match attempt {
                        Ok(result) => return result,
                        Err(e) => {
                            // Transport failure: the stream is in an
                            // unknown state. Drop it; retry once on a
                            // fresh connection.
                            *guard = None;
                            if reconnected {
                                return Err(io_err(e));
                            }
                            reconnected = true;
                        }
                    }
                }
            }
        }
    }

    /// Evaluate one chain against the GCCs attached to its root.
    pub fn evaluate(
        &self,
        chain: &[Certificate],
        usage: Usage,
    ) -> Result<Vec<GccVerdict>, CoreError> {
        let mut req = vec![OP_EVALUATE];
        encode_evaluate_body(&mut req, chain, usage);
        self.exchange(&req, |stream| match read_u8(stream)? {
            STATUS_OK => read_verdict_list(stream),
            STATUS_ERR => Ok(Err(read_error_reply(stream)?)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status byte {other}"),
            )),
        })
    }

    /// Evaluate many chains in one request frame (`OP_EVALUATE_BATCH`):
    /// a single write, a single response read, one round trip. Verdict
    /// lists come back in submission order. The whole batch shares one
    /// response frame, so failures are all-or-nothing: any chain that
    /// fails to evaluate fails the batch.
    pub fn evaluate_batch(
        &self,
        items: &[(&[Certificate], Usage)],
    ) -> Result<Vec<Vec<GccVerdict>>, CoreError> {
        if items.len() as u32 > MAX_BATCH {
            return Err(CoreError::Daemon(format!(
                "batch of {} exceeds limit {MAX_BATCH}",
                items.len()
            )));
        }
        let mut req = vec![OP_EVALUATE_BATCH];
        req.extend_from_slice(&(items.len() as u32).to_le_bytes());
        for (chain, usage) in items {
            encode_evaluate_body(&mut req, chain, *usage);
        }
        let expected = items.len();
        self.exchange(&req, move |stream| match read_u8(stream)? {
            STATUS_OK => {
                let n = read_u32(stream)? as usize;
                if n != expected {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("batch answered {n} items, expected {expected}"),
                    ));
                }
                let mut batches = Vec::with_capacity(n);
                for _ in 0..n {
                    match read_verdict_list(stream)? {
                        Ok(verdicts) => batches.push(verdicts),
                        Err(e) => return Ok(Err(e)),
                    }
                }
                Ok(Ok(batches))
            }
            STATUS_ERR => Ok(Err(read_error_reply(stream)?)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status byte {other}"),
            )),
        })
    }

    /// Scrape the daemon: fetch its registry rendered as Prometheus
    /// text exposition (the `metrics` opcode).
    pub fn metrics_text(&self) -> Result<String, CoreError> {
        self.exchange(&[OP_METRICS], |stream| match read_u8(stream)? {
            STATUS_OK => {
                let body = read_block(stream)?;
                Ok(String::from_utf8(body)
                    .map_err(|_| CoreError::Daemon("non-utf8 metrics payload".into())))
            }
            STATUS_ERR => Ok(Err(read_error_reply(stream)?)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status byte {other}"),
            )),
        })
    }
}

impl GccOracle for DaemonClient {
    fn evaluate(&self, chain: &[Certificate], usage: Usage) -> Result<Vec<GccVerdict>, CoreError> {
        DaemonClient::evaluate(self, chain, usage)
    }
}

/// Append one `evaluate` body (usage byte, cert count, DER blocks) to a
/// request buffer. Shared by the single-shot and batch encoders.
fn encode_evaluate_body(req: &mut Vec<u8>, chain: &[Certificate], usage: Usage) {
    req.push(proto::usage_to_byte(usage));
    req.extend_from_slice(&(chain.len() as u32).to_le_bytes());
    for cert in chain {
        let der = cert.to_der();
        req.extend_from_slice(&(der.len() as u32).to_le_bytes());
        req.extend_from_slice(der);
    }
}

/// Read one verdict list off the wire.
///
/// The outer `io::Result` is a *transport* failure (short read, broken
/// pipe) — the connection state is unknown and a keep-alive client must
/// drop the stream. The inner `Result` is a *protocol* failure (the
/// daemon reported an error, or sent malformed-but-framed data); the
/// response frame was fully consumed, so the connection stays usable.
fn read_verdict_list(
    stream: &mut UnixStream,
) -> std::io::Result<Result<Vec<GccVerdict>, CoreError>> {
    let n = read_u32(stream)?;
    if n > 1024 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "verdict count exceeds limit",
        ));
    }
    let mut verdicts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let accepted = read_u8(stream)? != 0;
        let name = read_block(stream)?;
        let gcc_name: std::sync::Arc<str> = match std::str::from_utf8(&name) {
            Ok(name) => std::sync::Arc::from(name),
            Err(_) => return Ok(Err(CoreError::Daemon("non-utf8 GCC name".into()))),
        };
        verdicts.push(GccVerdict { gcc_name, accepted });
    }
    Ok(Ok(verdicts))
}

/// Read a `STATUS_ERR` payload (the frame is fully drained, so a
/// keep-alive connection remains usable afterwards).
fn read_error_reply(stream: &mut UnixStream) -> std::io::Result<CoreError> {
    let msg = read_block(stream)?;
    Ok(CoreError::Daemon(
        String::from_utf8_lossy(&msg).into_owned(),
    ))
}

/// Keep-alive client: one Unix socket reused across requests, with
/// batch submission.
#[deprecated(note = "use DaemonClient::keep_alive()")]
#[derive(Debug)]
pub struct DaemonConnection {
    inner: DaemonClient,
}

#[allow(deprecated)]
impl DaemonConnection {
    /// Keep-alive client for the daemon at `socket_path`. No connection
    /// is opened until the first request.
    pub fn new(socket_path: impl AsRef<Path>) -> DaemonConnection {
        DaemonConnection {
            inner: DaemonClient::keep_alive(socket_path),
        }
    }

    /// Evaluate one chain over the persistent connection.
    pub fn evaluate(
        &self,
        chain: &[Certificate],
        usage: Usage,
    ) -> Result<Vec<GccVerdict>, CoreError> {
        self.inner.evaluate(chain, usage)
    }

    /// Evaluate many chains in one request frame; see
    /// [`DaemonClient::evaluate_batch`].
    pub fn evaluate_batch(
        &self,
        items: &[(&[Certificate], Usage)],
    ) -> Result<Vec<Vec<GccVerdict>>, CoreError> {
        self.inner.evaluate_batch(items)
    }
}

#[allow(deprecated)]
impl GccOracle for DaemonConnection {
    fn evaluate(&self, chain: &[Certificate], usage: Usage) -> Result<Vec<GccVerdict>, CoreError> {
        self.inner.evaluate(chain, usage)
    }
}

/// A unique socket path in the system temp directory (test/example aid).
pub fn ephemeral_socket_path(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nrslb-trustd-{}-{}-{}.sock",
        tag,
        std::process::id(),
        n
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{ValidationMode, Validator};
    use nrslb_rootstore::{Gcc, GccMetadata};
    use nrslb_x509::testutil::simple_chain;

    fn spawn_default(store: RootStore, tag: &str) -> TrustDaemon {
        TrustDaemon::builder()
            .socket(ephemeral_socket_path(tag))
            .spawn(store)
            .unwrap()
    }

    #[test]
    fn daemon_evaluates_gccs() {
        let pki = simple_chain("daemon.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        let daemon = spawn_default(store, "eval");
        let client = daemon.client();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let verdicts = client.evaluate(&chain, Usage::Tls).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].accepted);
        let verdicts = client.evaluate(&chain, Usage::SMime).unwrap();
        assert!(!verdicts[0].accepted);
    }

    #[test]
    fn validator_platform_mode_uses_daemon() {
        let pki = simple_chain("daemonmode.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "deny-all",
            pki.root.fingerprint(),
            r#"valid(Chain, "never") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        let daemon = spawn_default(store.clone(), "mode");
        let validator = Validator::new(store, ValidationMode::Platform(Arc::new(daemon.client())));
        let out = validator
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert!(!out.accepted());
        assert!(matches!(
            out.final_reason(),
            Some(crate::validate::RejectReason::GccRejected { .. })
        ));
    }

    #[test]
    fn daemon_with_no_gccs_accepts_vacuously() {
        let pki = simple_chain("daemonempty.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let daemon = spawn_default(store, "empty");
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let verdicts = daemon.client().evaluate(&chain, Usage::Tls).unwrap();
        assert!(verdicts.is_empty());
    }

    #[test]
    fn concurrent_clients_get_complete_correct_verdicts() {
        // 10 threads hammer one daemon (8 workers) with interleaved
        // requests for two different chains and both usages; every
        // response must be the complete, correct verdict set for that
        // exact (chain, usage) — no cross-talk, no partial replies.
        let pki_a = simple_chain("concurrent-a.example");
        let pki_b = simple_chain("concurrent-b.example");
        let mut store = RootStore::new("platform");
        for pki in [&pki_a, &pki_b] {
            store.add_trusted(pki.root.clone()).unwrap();
            let tls_only = Gcc::parse(
                "tls-only",
                pki.root.fingerprint(),
                r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
                GccMetadata::default(),
            )
            .unwrap();
            let any_usage = Gcc::parse(
                "any-usage",
                pki.root.fingerprint(),
                "valid(Chain, _) :- leaf(Chain, _).",
                GccMetadata::default(),
            )
            .unwrap();
            store.attach_gcc(tls_only).unwrap();
            store.attach_gcc(any_usage).unwrap();
        }

        let daemon = TrustDaemon::builder()
            .socket(ephemeral_socket_path("concurrent"))
            .workers(8)
            .spawn(store)
            .unwrap();
        let chain_a = vec![pki_a.leaf, pki_a.intermediate, pki_a.root];
        let chain_b = vec![pki_b.leaf, pki_b.intermediate, pki_b.root];

        let check = |client: &DaemonClient, chain: &[Certificate], usage: Usage| {
            let verdicts = client.evaluate(chain, usage).unwrap();
            let by_name: Vec<(&str, bool)> = verdicts
                .iter()
                .map(|v| (&*v.gcc_name, v.accepted))
                .collect();
            assert_eq!(
                by_name,
                [("tls-only", usage == Usage::Tls), ("any-usage", true)],
                "usage {usage}"
            );
        };

        std::thread::scope(|scope| {
            for t in 0..10usize {
                let client = daemon.client();
                let chain_a = &chain_a;
                let chain_b = &chain_b;
                scope.spawn(move || {
                    for i in 0..20usize {
                        let chain = if (t + i) % 2 == 0 { chain_a } else { chain_b };
                        let usage = if i % 2 == 0 { Usage::Tls } else { Usage::SMime };
                        check(&client, chain, usage);
                    }
                });
            }
        });
        // 2 chains x 2 usages x 2 GCCs = 8 distinct verdict keys. Misses
        // beyond 8 only happen when workers race on a cold key, which is
        // bounded by the worker count per key.
        let cache = daemon.oracle().cache();
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.hits() + cache.misses(), 10 * 20 * 2);
        assert!(cache.hits() >= 10 * 20 * 2 - 8 * 8, "{cache:?}");
    }

    #[test]
    fn daemon_scrapes_feed_sync_counters() {
        use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust};
        let pki = simple_chain("daemonfeed.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let coordinator = CoordinatorKey::from_seed([21; 32], 4).unwrap();
        let key = FeedKey::new([22; 32], 6, &coordinator).unwrap();
        let mut publisher = FeedPublisher::new("platform", key, &store, 0).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        let feed = Arc::new(Mutex::new(Subscriber::builder("platform", trust).build()));

        let mut daemon = spawn_default(store, "feed");
        assert!(daemon.sync_counters().is_none(), "no feed attached yet");
        daemon.attach_feed(feed.clone());
        assert_eq!(daemon.sync_counters(), Some(SyncCounters::default()));
        assert_eq!(daemon.feed_staleness(0), Some(Staleness::NeverSynced));

        feed.lock().unwrap().sync(&mut publisher, 100).unwrap();
        let counters = daemon.sync_counters().unwrap();
        assert_eq!(counters.attempts, 1);
        assert_eq!(counters.messages_ingested, 1);
        assert_eq!(counters.quarantines, 0);
        assert_eq!(
            daemon.feed_staleness(150),
            Some(Staleness::Fresh { age_secs: 50 })
        );
        assert!(matches!(
            daemon.feed_staleness(100 + 90_000),
            Some(Staleness::Exceeded { .. })
        ));
    }

    /// A long-running daemon propagates feed deltas into its verdict
    /// cache by precise taint ([`TrustDaemon::refresh_from_feed`])
    /// instead of absorbing updates wholesale.
    #[test]
    fn daemon_refresh_from_feed_invalidates_by_taint() {
        use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust};

        let pki_a = simple_chain("refresh-a.example");
        let pki_b = simple_chain("refresh-b.example");
        let mut store = RootStore::new("platform");
        // Distinct GCC sources per root so taint stays per-root precise.
        for (pki, tag) in [(&pki_a, "a"), (&pki_b, "b")] {
            store.add_trusted(pki.root.clone()).unwrap();
            let src = format!("valid(Chain, _) :- leaf(Chain, _).\nowner(\"{tag}\").");
            let gcc = Gcc::parse(
                "refresh-policy",
                pki.root.fingerprint(),
                &src,
                GccMetadata::default(),
            )
            .unwrap();
            store.attach_gcc(gcc).unwrap();
        }

        let coordinator = CoordinatorKey::from_seed([41; 32], 4).unwrap();
        let key = FeedKey::new([42; 32], 6, &coordinator).unwrap();
        let mut publisher = FeedPublisher::new("platform", key, &store, 0).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        let feed = Arc::new(Mutex::new(Subscriber::builder("platform", trust).build()));

        let mut daemon = spawn_default(store.clone(), "refresh");
        assert!(daemon.refresh_from_feed().is_none(), "no feed attached");
        daemon.attach_feed(feed.clone());

        // Bootstrap (snapshot → full taint): nothing cached yet, so
        // the refresh swaps the store and evicts nothing.
        feed.lock().unwrap().sync(&mut publisher, 10).unwrap();
        assert_eq!(daemon.refresh_from_feed(), Some(0));

        // Warm both chains through the socket.
        let client = daemon.client();
        let chain_a = vec![
            pki_a.leaf.clone(),
            pki_a.intermediate.clone(),
            pki_a.root.clone(),
        ];
        let chain_b = vec![pki_b.leaf, pki_b.intermediate, pki_b.root];
        for chain in [&chain_a, &chain_b] {
            assert!(client.evaluate(chain, Usage::Tls).unwrap()[0].accepted);
            assert!(client.evaluate(chain, Usage::Tls).unwrap()[0].accepted);
        }
        assert_eq!(daemon.oracle().cache().len(), 2);

        // Idle poll applied nothing: refresh is a no-op.
        feed.lock().unwrap().sync(&mut publisher, 20).unwrap();
        assert_eq!(daemon.refresh_from_feed(), Some(0));
        assert_eq!(daemon.oracle().cache().len(), 2);

        // Revise root A's GCC upstream; the delta's precise taint
        // evicts exactly A's verdict.
        let mut next = store.clone();
        let old_a = next.gccs_for(&pki_a.root.fingerprint())[0].clone();
        next.detach_gcc(&pki_a.root.fingerprint(), &old_a.source_hash());
        let revised = Gcc::parse(
            "refresh-policy",
            pki_a.root.fingerprint(),
            "valid(Chain, _) :- leaf(Chain, _).\nowner(\"a\").\nrevision(\"2\").",
            GccMetadata::default(),
        )
        .unwrap();
        next.attach_gcc(revised).unwrap();
        publisher.publish(&next, 30).unwrap();
        feed.lock().unwrap().sync(&mut publisher, 30).unwrap();
        assert_eq!(
            daemon.refresh_from_feed(),
            Some(1),
            "exactly root A's verdict evicted"
        );
        assert_eq!(daemon.oracle().cache().len(), 1);

        // B still serves warm; A re-derives against the refreshed store.
        let hits = daemon.oracle().cache().hits();
        let misses = daemon.oracle().cache().misses();
        assert!(client.evaluate(&chain_b, Usage::Tls).unwrap()[0].accepted);
        assert_eq!(daemon.oracle().cache().hits(), hits + 1);
        assert!(client.evaluate(&chain_a, Usage::Tls).unwrap()[0].accepted);
        assert_eq!(daemon.oracle().cache().misses(), misses + 1);
    }

    #[test]
    fn scraped_metrics_cover_cache_validation_and_feed() {
        use crate::validate::{ValidationMode, Validator};
        use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust};

        let pki = simple_chain("scrape.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        // One registry shared by the daemon (cache + request metrics),
        // a Platform-mode validator (outcome + latency metrics), and
        // the RSF subscriber (sync + state metrics) — the acceptance
        // shape for the observability PR.
        let registry = Arc::new(Registry::new());
        let daemon = TrustDaemon::builder()
            .socket(ephemeral_socket_path("scrape"))
            .workers(4)
            .registry(Arc::clone(&registry))
            .spawn(store.clone())
            .unwrap();
        let coordinator = CoordinatorKey::from_seed([31; 32], 4).unwrap();
        let key = FeedKey::new([32; 32], 6, &coordinator).unwrap();
        let mut publisher = FeedPublisher::new("platform", key, &store, 0).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        let feed = Arc::new(Mutex::new(
            Subscriber::builder("platform", trust)
                .registry(Arc::clone(&registry))
                .build(),
        ));
        feed.lock().unwrap().sync(&mut publisher, 100).unwrap();

        let validator = Validator::new(store, ValidationMode::Platform(Arc::new(daemon.client())))
            .with_registry(&registry);
        for _ in 0..2 {
            let out = validator
                .validate(
                    &pki.leaf,
                    std::slice::from_ref(&pki.intermediate),
                    Usage::Tls,
                    pki.now,
                )
                .unwrap();
            assert!(out.accepted());
        }

        let text = daemon.client().metrics_text().unwrap();
        // The scrape request is itself timed, so the scraped text and a
        // later local render differ only in the request-latency series.
        assert!(daemon
            .render_metrics()
            .contains("nrslb_daemon_requests_total 3"));
        // Cache hit/miss: two identical validations = one miss, one hit.
        assert!(
            text.contains("nrslb_verdict_cache_misses_total 1"),
            "{text}"
        );
        assert!(text.contains("nrslb_verdict_cache_hits_total 1"), "{text}");
        // Validation outcomes and latency quantiles.
        assert!(
            text.contains("nrslb_validations_total{outcome=\"accepted\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_validation_latency_us{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_validation_latency_us_count 2"),
            "{text}"
        );
        // Daemon request metrics (2 evaluate calls; the metrics scrape
        // itself raced this render, so only a lower bound is stable).
        assert!(text.contains("nrslb_daemon_requests_total"), "{text}");
        assert!(
            text.contains("nrslb_daemon_request_latency_us{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("nrslb_daemon_queue_depth"), "{text}");
        // Subscriber state: 1 = live after the successful sync.
        assert!(
            text.contains("nrslb_rsf_subscriber_state{subscriber=\"platform\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_rsf_sync_attempts_total{subscriber=\"platform\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_rsf_last_synced_timestamp_secs{subscriber=\"platform\"} 100"),
            "{text}"
        );
    }

    #[test]
    fn client_error_on_missing_daemon() {
        let client = DaemonClient::new("/nonexistent/nrslb.sock");
        let pki = simple_chain("noclient.example");
        let err = client.evaluate(&[pki.leaf], Usage::Tls);
        assert!(matches!(err, Err(CoreError::Daemon(_))));
    }

    #[test]
    fn builder_requires_a_socket_path() {
        let store = RootStore::new("platform");
        let err = TrustDaemon::builder().spawn(store).err().unwrap();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn daemon_shuts_down_cleanly() {
        let pki = simple_chain("shutdown.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        for engine in [Engine::Reactor, Engine::ThreadPool] {
            let path = ephemeral_socket_path("shutdown");
            {
                let daemon = TrustDaemon::builder()
                    .socket(&path)
                    .engine(engine)
                    .spawn(store.clone())
                    .unwrap();
                assert_eq!(daemon.engine(), engine);
                assert!(path.exists());
            }
            assert!(!path.exists(), "socket removed on drop ({engine:?})");
        }
    }

    /// Store fixture with one TLS-gated GCC attached to the chain root.
    fn tls_gated_store(pki: &nrslb_x509::testutil::SimplePki) -> RootStore {
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
        store
    }

    #[test]
    fn batch_evaluates_many_chains_in_one_round_trip() {
        let pki = simple_chain("batch.example");
        let store = tls_gated_store(&pki);
        let registry = Arc::new(Registry::new());
        let daemon = TrustDaemon::builder()
            .socket(ephemeral_socket_path("batch"))
            .workers(2)
            .registry(Arc::clone(&registry))
            .spawn(store)
            .unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let conn = daemon.keep_alive_client();

        // Mixed usages in one frame; verdicts must come back in
        // submission order with per-item correctness.
        let items: Vec<(&[Certificate], Usage)> = vec![
            (&chain, Usage::Tls),
            (&chain, Usage::SMime),
            (&chain, Usage::Tls),
        ];
        let batches = conn.evaluate_batch(&items).unwrap();
        assert_eq!(batches.len(), 3);
        for (i, (_, usage)) in items.iter().enumerate() {
            assert_eq!(batches[i].len(), 1, "item {i}");
            assert_eq!(&*batches[i][0].gcc_name, "tls-only");
            assert_eq!(batches[i][0].accepted, *usage == Usage::Tls, "item {i}");
        }

        // An empty batch is a valid (if pointless) request.
        assert!(conn.evaluate_batch(&[]).unwrap().is_empty());

        // The client rejects oversized batches before touching the wire.
        let oversized: Vec<(&[Certificate], Usage)> = (0..=MAX_BATCH as usize)
            .map(|_| (&chain[..], Usage::Tls))
            .collect();
        assert!(matches!(
            conn.evaluate_batch(&oversized),
            Err(CoreError::Daemon(_))
        ));

        // Batch sizes were observed: two batch requests (3 chains, 0).
        let text = daemon.render_metrics();
        assert!(text.contains("nrslb_daemon_batch_size_count 2"), "{text}");
    }

    #[test]
    fn cert_cache_parses_each_der_once_across_requests() {
        let pki = simple_chain("certcache-daemon.example");
        let store = tls_gated_store(&pki);
        let daemon = spawn_default(store, "certcache");
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let conn = daemon.keep_alive_client();

        assert!(conn.evaluate(&chain, Usage::Tls).unwrap()[0].accepted);
        // First request: three certs, all parse-cache misses.
        assert_eq!(daemon.cert_cache().misses(), 3);
        assert_eq!(daemon.cert_cache().hits(), 0);

        // Repeats of the same wire bytes never touch the DER parser.
        for _ in 0..2 {
            assert!(conn.evaluate(&chain, Usage::Tls).unwrap()[0].accepted);
        }
        assert_eq!(daemon.cert_cache().misses(), 3);
        assert_eq!(daemon.cert_cache().hits(), 6);
    }

    #[test]
    fn batch_dedups_repeated_chains_by_content() {
        let pki = simple_chain("batchdedup.example");
        let store = tls_gated_store(&pki);
        let daemon = spawn_default(store, "batchdedup");
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let conn = daemon.keep_alive_client();

        // Four copies of the same (chain, usage) plus one distinct
        // usage: two distinct evaluations, five verdict lists.
        let items: Vec<(&[Certificate], Usage)> = vec![
            (&chain, Usage::Tls),
            (&chain, Usage::Tls),
            (&chain, Usage::SMime),
            (&chain, Usage::Tls),
            (&chain, Usage::Tls),
        ];
        let batches = conn.evaluate_batch(&items).unwrap();
        assert_eq!(batches.len(), 5);
        for (i, (_, usage)) in items.iter().enumerate() {
            assert_eq!(batches[i][0].accepted, *usage == Usage::Tls, "item {i}");
        }
        // The duplicates were answered by cloning, not re-evaluation:
        // the verdict cache saw exactly the two distinct items (both
        // misses, no hits — dedup short-circuits before the oracle).
        assert_eq!(daemon.oracle().cache().misses(), 2);
        assert_eq!(daemon.oracle().cache().hits(), 0);
    }

    #[test]
    fn keep_alive_connection_reuses_socket_and_reconnects_after_restart() {
        let pki = simple_chain("keepalive.example");
        let store = tls_gated_store(&pki);
        let path = ephemeral_socket_path("keepalive");
        let chain = vec![pki.leaf, pki.intermediate, pki.root];

        let daemon = TrustDaemon::builder()
            .socket(&path)
            .spawn(store.clone())
            .unwrap();
        let conn = daemon.keep_alive_client();
        assert_eq!(conn.mode(), ConnectionMode::KeepAlive);
        // Two sequential evaluations ride the same connection.
        for _ in 0..2 {
            let verdicts = conn.evaluate(&chain, Usage::Tls).unwrap();
            assert!(verdicts[0].accepted);
        }
        assert!(daemon
            .render_metrics()
            .contains("nrslb_daemon_requests_total 2"));

        // Restart the daemon at the same path: the cached stream is now
        // stale, and the next request must transparently reconnect.
        drop(daemon);
        let daemon = TrustDaemon::builder().socket(&path).spawn(store).unwrap();
        let verdicts = conn.evaluate(&chain, Usage::SMime).unwrap();
        assert!(!verdicts[0].accepted);
        drop(daemon);

        // With no daemon at all, the reconnect attempt surfaces a final
        // error rather than hanging.
        assert!(matches!(
            conn.evaluate(&chain, Usage::Tls),
            Err(CoreError::Daemon(_))
        ));
    }

    #[test]
    fn queue_depth_returns_to_zero_after_connections_close() {
        let pki = simple_chain("queuedepth.example");
        let store = tls_gated_store(&pki);
        let registry = Arc::new(Registry::new());
        // The queue-depth gauge meters the thread-pool accept queue;
        // the reactor engine never queues accepts, so this test pins
        // the engine.
        let daemon = TrustDaemon::builder()
            .socket(ephemeral_socket_path("queuedepth"))
            .workers(2)
            .registry(Arc::clone(&registry))
            .engine(Engine::ThreadPool)
            .spawn(store)
            .unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];

        // Hammer the daemon from several short-lived clients so the
        // bounded queue actually fills and drains.
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let client = daemon.client();
                let chain = &chain;
                scope.spawn(move || {
                    for _ in 0..5 {
                        client.evaluate(chain, Usage::Tls).unwrap();
                    }
                });
            }
        });

        // Every QueuedConn was dropped (worker finished or queue torn
        // down), so the gauge must read exactly zero — the RAII guard
        // decrements on every exit path.
        let text = daemon.render_metrics();
        assert!(text.contains("nrslb_daemon_queue_depth 0"), "{text}");
        assert!(text.contains("nrslb_daemon_requests_total 30"), "{text}");
    }

    #[test]
    fn deprecated_constructors_still_spawn_thread_pool_daemons() {
        let pki = simple_chain("deprecated.example");
        let store = tls_gated_store(&pki);
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        #[allow(deprecated)]
        let daemon = TrustDaemon::spawn(store, ephemeral_socket_path("deprecated")).unwrap();
        assert_eq!(daemon.engine(), Engine::ThreadPool);
        #[allow(deprecated)]
        let conn = daemon.connection();
        assert!(conn.evaluate(&chain, Usage::Tls).unwrap()[0].accepted);
    }
}
