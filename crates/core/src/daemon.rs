//! The *platform execution* deployment mode (§3.1): a system trust
//! daemon — the moral equivalent of macOS's `trustd` — that owns the
//! platform root store and evaluates GCCs on behalf of TLS user-agents.
//!
//! The daemon listens on a Unix-domain socket. A user-agent mid-chain-
//! construction sends the candidate chain plus the requested usage; the
//! daemon converts the chain to Datalog statements, executes all GCCs
//! attached to the candidate root, and returns the per-GCC verdicts. The
//! user-agent proceeds with chain construction, "building a new chain if
//! the daemon responded false".
//!
//! ## Concurrency
//!
//! Connections are served by a fixed pool of worker threads fed from a
//! bounded MPMC channel: the accept loop enqueues each connection, and
//! whichever worker is free picks it up. The pool bounds both thread
//! count and queued-connection memory no matter how many clients
//! connect at once. All workers share one [`InProcessOracle`] — and
//! thus one GCC [`crate::VerdictCache`] — so a verdict computed for one
//! client is a cache hit for every other.
//!
//! ## Wire protocol
//!
//! Little-endian, length-prefixed:
//!
//! ```text
//! request  := u8 opcode(1=evaluate) u8 usage(0=TLS,1=S/MIME)
//!             u32 n_certs  (u32 len, bytes der)*
//!           | u8 opcode(2=metrics)
//! response := u8 status(0=ok,1=error)
//!             ok(evaluate): u32 n_verdicts (u8 accepted, u32 len, bytes name)*
//!             ok(metrics):  u32 len, bytes exposition-text
//!             error:        u32 len, bytes message
//! ```
//!
//! ## Observability
//!
//! Every daemon owns (or is handed, [`TrustDaemon::spawn_observed`]) an
//! [`nrslb_obs::Registry`]. The shared oracle's verdict cache mirrors
//! its hit/miss/eviction statistics into it, each request is timed into
//! `nrslb_daemon_request_latency_us`, and the connection queue depth is
//! tracked as a gauge. The `metrics` opcode returns
//! [`Registry::render_text`] — Prometheus text exposition over the same
//! socket, so operators scrape the daemon without a second listener.

use crate::gcc_eval::GccVerdict;
use crate::validate::{GccOracle, InProcessOracle};
use crate::CoreError;
use nrslb_obs::{Counter, Gauge, Histogram, Registry, Span};
use nrslb_rootstore::{RootStore, Usage};
use nrslb_rsf::{Staleness, Subscriber, SyncCounters};
use nrslb_x509::Certificate;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

const OP_EVALUATE: u8 = 1;
const OP_METRICS: u8 = 2;
const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;
/// Upper bound on any length field, to bound allocations from hostile
/// peers (a trust daemon is security-critical infrastructure).
const MAX_LEN: u32 = 16 * 1024 * 1024;

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u8(r: &mut impl Read) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_block(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "length field exceeds limit",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn usage_to_byte(usage: Usage) -> u8 {
    match usage {
        Usage::Tls => 0,
        Usage::SMime => 1,
    }
}

fn usage_from_byte(b: u8) -> Option<Usage> {
    match b {
        0 => Some(Usage::Tls),
        1 => Some(Usage::SMime),
        _ => None,
    }
}

/// Default number of worker threads serving connections.
pub const DEFAULT_WORKERS: usize = 8;

/// Per-daemon instrument handles, shared by the accept loop and every
/// worker. The registry rides along so the `metrics` opcode can render
/// it from any worker thread.
#[derive(Clone)]
struct DaemonInstruments {
    registry: Arc<Registry>,
    /// Connections accepted but not yet picked up by a worker.
    queue_depth: Gauge,
    /// Requests served, by opcode outcome.
    requests: Counter,
    /// Requests answered with an error status.
    request_errors: Counter,
    /// Per-request service time in microseconds.
    latency_us: Histogram,
}

impl DaemonInstruments {
    fn new(registry: Arc<Registry>) -> DaemonInstruments {
        DaemonInstruments {
            queue_depth: registry.gauge(
                "nrslb_daemon_queue_depth",
                "connections accepted but not yet picked up by a worker",
            ),
            requests: registry.counter("nrslb_daemon_requests_total", "requests served"),
            request_errors: registry.counter(
                "nrslb_daemon_request_errors_total",
                "requests answered with an error status",
            ),
            latency_us: registry.histogram(
                "nrslb_daemon_request_latency_us",
                "per-request service time in microseconds",
            ),
            registry,
        }
    }

    fn span(&self) -> Span {
        Span::enter(self.latency_us.clone(), Arc::clone(self.registry.clock()))
    }
}

/// A running trust daemon; dropping the handle shuts it down.
pub struct TrustDaemon {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    oracle: Arc<InProcessOracle>,
    instruments: DaemonInstruments,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The RSF subscriber keeping the platform store current, when the
    /// operator wired one up ([`TrustDaemon::attach_feed`]). The daemon
    /// surfaces its sync health ([`TrustDaemon::sync_counters`],
    /// [`TrustDaemon::feed_staleness`]) the way it surfaces the verdict
    /// cache.
    feed: Option<Arc<Mutex<Subscriber>>>,
}

impl TrustDaemon {
    /// Bind `socket_path` and serve GCC evaluations for `store` with
    /// [`DEFAULT_WORKERS`] worker threads.
    pub fn spawn(store: RootStore, socket_path: impl AsRef<Path>) -> std::io::Result<TrustDaemon> {
        TrustDaemon::spawn_with_workers(store, socket_path, DEFAULT_WORKERS)
    }

    /// Bind `socket_path` and serve with an explicit worker count
    /// (at least 1), reporting into a private registry.
    pub fn spawn_with_workers(
        store: RootStore,
        socket_path: impl AsRef<Path>,
        workers: usize,
    ) -> std::io::Result<TrustDaemon> {
        TrustDaemon::spawn_observed(store, socket_path, workers, Arc::new(Registry::new()))
    }

    /// Bind `socket_path` and serve, reporting into a caller-provided
    /// registry — so the daemon's metrics share one exposition with a
    /// co-resident validator's or subscriber's.
    pub fn spawn_observed(
        store: RootStore,
        socket_path: impl AsRef<Path>,
        workers: usize,
        registry: Arc<Registry>,
    ) -> std::io::Result<TrustDaemon> {
        let workers = workers.max(1);
        let path = socket_path.as_ref().to_path_buf();
        // Remove a stale socket from a previous run.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let oracle = Arc::new(InProcessOracle::with_registry(store, &registry));
        let instruments = DaemonInstruments::new(registry);
        // Bounded: with all workers busy, at most 2x`workers` accepted
        // connections queue before the accept loop itself blocks (and
        // the kernel listen backlog takes over).
        let (conn_tx, conn_rx) = crossbeam::channel::bounded::<UnixStream>(workers * 2);
        let worker_handles = (0..workers)
            .map(|_| {
                let conn_rx = conn_rx.clone();
                let oracle = Arc::clone(&oracle);
                let instruments = instruments.clone();
                std::thread::spawn(move || {
                    // recv fails once the accept thread (the only
                    // sender) is gone and the queue has drained.
                    while let Ok(stream) = conn_rx.recv() {
                        instruments.queue_depth.sub(1);
                        let _ = serve_connection(stream, &*oracle, &instruments);
                    }
                })
            })
            .collect();
        drop(conn_rx);
        let stop2 = stop.clone();
        let accept_instruments = instruments.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                accept_instruments.queue_depth.add(1);
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            // conn_tx drops here; idle workers wake and exit.
        });
        Ok(TrustDaemon {
            path,
            stop,
            oracle,
            instruments,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
            feed: None,
        })
    }

    /// The socket path clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// The shared oracle (exposes the verdict cache for metrics).
    pub fn oracle(&self) -> &InProcessOracle {
        &self.oracle
    }

    /// The daemon's metric registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.instruments.registry
    }

    /// The registry rendered as Prometheus text exposition — the same
    /// payload the `metrics` opcode returns over the socket.
    pub fn render_metrics(&self) -> String {
        self.instruments.registry.render_text()
    }

    /// Wire up the RSF subscriber that keeps the platform store
    /// current; the daemon then exposes its sync health as metrics.
    pub fn attach_feed(&mut self, feed: Arc<Mutex<Subscriber>>) {
        self.feed = Some(feed);
    }

    /// The attached subscriber's sync counters (attempts, retries,
    /// fallbacks, quarantines, stale serves), if a feed is attached.
    pub fn sync_counters(&self) -> Option<SyncCounters> {
        self.feed
            .as_ref()
            .map(|f| f.lock().expect("feed mutex").counters())
    }

    /// The attached subscriber's freshness at `now`, if a feed is
    /// attached.
    pub fn feed_staleness(&self, now: i64) -> Option<Staleness> {
        self.feed
            .as_ref()
            .map(|f| f.lock().expect("feed mutex").staleness(now))
    }

    /// Create a client for this daemon.
    pub fn client(&self) -> DaemonClient {
        DaemonClient::new(&self.path)
    }
}

impl Drop for TrustDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = UnixStream::connect(&self.path);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// What a successful request answers with (the two opcodes have
/// different ok-payload shapes).
enum Reply {
    Verdicts(Vec<GccVerdict>),
    Text(String),
}

fn serve_connection(
    mut stream: UnixStream,
    oracle: &dyn GccOracle,
    instruments: &DaemonInstruments,
) -> std::io::Result<()> {
    // Serve requests until the peer closes the connection.
    loop {
        let opcode = match read_u8(&mut stream) {
            Ok(op) => op,
            Err(_) => return Ok(()), // peer hung up
        };
        // The span covers decode + evaluation + response write; it
        // records on drop, so error paths are timed too.
        let span = instruments.span();
        instruments.requests.inc();
        let reply = handle_request(opcode, &mut stream, oracle, instruments);
        match reply {
            Ok(Reply::Verdicts(verdicts)) => {
                stream.write_all(&[STATUS_OK])?;
                write_u32(&mut stream, verdicts.len() as u32)?;
                for v in verdicts {
                    stream.write_all(&[u8::from(v.accepted)])?;
                    write_u32(&mut stream, v.gcc_name.len() as u32)?;
                    stream.write_all(v.gcc_name.as_bytes())?;
                }
            }
            Ok(Reply::Text(text)) => {
                stream.write_all(&[STATUS_OK])?;
                write_u32(&mut stream, text.len() as u32)?;
                stream.write_all(text.as_bytes())?;
            }
            Err(message) => {
                instruments.request_errors.inc();
                stream.write_all(&[STATUS_ERR])?;
                write_u32(&mut stream, message.len() as u32)?;
                stream.write_all(message.as_bytes())?;
            }
        }
        stream.flush()?;
        drop(span);
    }
}

fn handle_request(
    opcode: u8,
    stream: &mut UnixStream,
    oracle: &dyn GccOracle,
    instruments: &DaemonInstruments,
) -> Result<Reply, String> {
    if opcode == OP_METRICS {
        return Ok(Reply::Text(instruments.registry.render_text()));
    }
    if opcode != OP_EVALUATE {
        return Err(format!("unknown opcode {opcode}"));
    }
    let usage = read_u8(stream)
        .ok()
        .and_then(usage_from_byte)
        .ok_or("bad usage byte")?;
    let n = read_u32(stream).map_err(|e| e.to_string())?;
    if n > 64 {
        return Err("chain too long".to_string());
    }
    let mut chain = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let der = read_block(stream).map_err(|e| e.to_string())?;
        let cert = Certificate::from_der(&der).map_err(|e| e.to_string())?;
        chain.push(cert);
    }
    oracle
        .evaluate(&chain, usage)
        .map(Reply::Verdicts)
        .map_err(|e| e.to_string())
}

/// Client side of the trust-daemon protocol. Implements [`GccOracle`],
/// so a [`crate::Validator`] in `Platform` mode can delegate GCC
/// evaluation to the daemon transparently.
///
/// Connects per evaluation; the daemon supports request pipelining on one
/// connection, but a fresh connection per candidate chain keeps the
/// client trivially robust to daemon restarts.
#[derive(Clone, Debug)]
pub struct DaemonClient {
    path: PathBuf,
}

impl DaemonClient {
    /// Client for the daemon at `socket_path`.
    pub fn new(socket_path: impl AsRef<Path>) -> DaemonClient {
        DaemonClient {
            path: socket_path.as_ref().to_path_buf(),
        }
    }

    /// Scrape the daemon: fetch its registry rendered as Prometheus
    /// text exposition (the `metrics` opcode).
    pub fn metrics_text(&self) -> Result<String, CoreError> {
        let io_err = |e: std::io::Error| CoreError::Daemon(e.to_string());
        let mut stream = UnixStream::connect(&self.path).map_err(io_err)?;
        stream.write_all(&[OP_METRICS]).map_err(io_err)?;
        stream.flush().map_err(io_err)?;
        let status = read_u8(&mut stream).map_err(io_err)?;
        let body = read_block(&mut stream).map_err(io_err)?;
        match status {
            STATUS_OK => String::from_utf8(body)
                .map_err(|_| CoreError::Daemon("non-utf8 metrics payload".into())),
            STATUS_ERR => Err(CoreError::Daemon(
                String::from_utf8_lossy(&body).into_owned(),
            )),
            other => Err(CoreError::Daemon(format!("bad status byte {other}"))),
        }
    }
}

impl GccOracle for DaemonClient {
    fn evaluate(&self, chain: &[Certificate], usage: Usage) -> Result<Vec<GccVerdict>, CoreError> {
        let io_err = |e: std::io::Error| CoreError::Daemon(e.to_string());
        let mut stream = UnixStream::connect(&self.path).map_err(io_err)?;
        // Request.
        let mut req = Vec::new();
        req.push(OP_EVALUATE);
        req.push(usage_to_byte(usage));
        req.extend_from_slice(&(chain.len() as u32).to_le_bytes());
        for cert in chain {
            let der = cert.to_der();
            req.extend_from_slice(&(der.len() as u32).to_le_bytes());
            req.extend_from_slice(der);
        }
        stream.write_all(&req).map_err(io_err)?;
        stream.flush().map_err(io_err)?;
        // Response.
        let status = read_u8(&mut stream).map_err(io_err)?;
        match status {
            STATUS_OK => {
                let n = read_u32(&mut stream).map_err(io_err)?;
                if n > 1024 {
                    return Err(CoreError::Daemon("verdict count exceeds limit".into()));
                }
                let mut verdicts = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let accepted = read_u8(&mut stream).map_err(io_err)? != 0;
                    let name = read_block(&mut stream).map_err(io_err)?;
                    let gcc_name = String::from_utf8(name)
                        .map_err(|_| CoreError::Daemon("non-utf8 GCC name".into()))?;
                    verdicts.push(GccVerdict { gcc_name, accepted });
                }
                Ok(verdicts)
            }
            STATUS_ERR => {
                let msg = read_block(&mut stream).map_err(io_err)?;
                Err(CoreError::Daemon(
                    String::from_utf8_lossy(&msg).into_owned(),
                ))
            }
            other => Err(CoreError::Daemon(format!("bad status byte {other}"))),
        }
    }
}

/// A unique socket path in the system temp directory (test/example aid).
pub fn ephemeral_socket_path(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nrslb-trustd-{}-{}-{}.sock",
        tag,
        std::process::id(),
        n
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{ValidationMode, Validator};
    use nrslb_rootstore::{Gcc, GccMetadata};
    use nrslb_x509::testutil::simple_chain;

    #[test]
    fn daemon_evaluates_gccs() {
        let pki = simple_chain("daemon.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        let daemon = TrustDaemon::spawn(store, ephemeral_socket_path("eval")).unwrap();
        let client = daemon.client();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let verdicts = client.evaluate(&chain, Usage::Tls).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].accepted);
        let verdicts = client.evaluate(&chain, Usage::SMime).unwrap();
        assert!(!verdicts[0].accepted);
    }

    #[test]
    fn validator_platform_mode_uses_daemon() {
        let pki = simple_chain("daemonmode.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "deny-all",
            pki.root.fingerprint(),
            r#"valid(Chain, "never") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        let daemon = TrustDaemon::spawn(store.clone(), ephemeral_socket_path("mode")).unwrap();
        let validator = Validator::new(store, ValidationMode::Platform(Arc::new(daemon.client())));
        let out = validator
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert!(!out.accepted());
        assert!(matches!(
            out.final_reason(),
            Some(crate::validate::RejectReason::GccRejected { .. })
        ));
    }

    #[test]
    fn daemon_with_no_gccs_accepts_vacuously() {
        let pki = simple_chain("daemonempty.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let daemon = TrustDaemon::spawn(store, ephemeral_socket_path("empty")).unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let verdicts = daemon.client().evaluate(&chain, Usage::Tls).unwrap();
        assert!(verdicts.is_empty());
    }

    #[test]
    fn concurrent_clients_get_complete_correct_verdicts() {
        // 10 threads hammer one daemon (8 workers) with interleaved
        // requests for two different chains and both usages; every
        // response must be the complete, correct verdict set for that
        // exact (chain, usage) — no cross-talk, no partial replies.
        let pki_a = simple_chain("concurrent-a.example");
        let pki_b = simple_chain("concurrent-b.example");
        let mut store = RootStore::new("platform");
        for pki in [&pki_a, &pki_b] {
            store.add_trusted(pki.root.clone()).unwrap();
            let tls_only = Gcc::parse(
                "tls-only",
                pki.root.fingerprint(),
                r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
                GccMetadata::default(),
            )
            .unwrap();
            let any_usage = Gcc::parse(
                "any-usage",
                pki.root.fingerprint(),
                "valid(Chain, _) :- leaf(Chain, _).",
                GccMetadata::default(),
            )
            .unwrap();
            store.attach_gcc(tls_only).unwrap();
            store.attach_gcc(any_usage).unwrap();
        }

        let daemon =
            TrustDaemon::spawn_with_workers(store, ephemeral_socket_path("concurrent"), 8).unwrap();
        let chain_a = vec![pki_a.leaf, pki_a.intermediate, pki_a.root];
        let chain_b = vec![pki_b.leaf, pki_b.intermediate, pki_b.root];

        let check = |client: &DaemonClient, chain: &[Certificate], usage: Usage| {
            let verdicts = client.evaluate(chain, usage).unwrap();
            let by_name: Vec<(&str, bool)> = verdicts
                .iter()
                .map(|v| (v.gcc_name.as_str(), v.accepted))
                .collect();
            assert_eq!(
                by_name,
                [("tls-only", usage == Usage::Tls), ("any-usage", true)],
                "usage {usage}"
            );
        };

        std::thread::scope(|scope| {
            for t in 0..10usize {
                let client = daemon.client();
                let chain_a = &chain_a;
                let chain_b = &chain_b;
                scope.spawn(move || {
                    for i in 0..20usize {
                        let chain = if (t + i) % 2 == 0 { chain_a } else { chain_b };
                        let usage = if i % 2 == 0 { Usage::Tls } else { Usage::SMime };
                        check(&client, chain, usage);
                    }
                });
            }
        });
        // 2 chains x 2 usages x 2 GCCs = 8 distinct verdict keys. Misses
        // beyond 8 only happen when workers race on a cold key, which is
        // bounded by the worker count per key.
        let cache = daemon.oracle().cache();
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.hits() + cache.misses(), 10 * 20 * 2);
        assert!(cache.hits() >= 10 * 20 * 2 - 8 * 8, "{cache:?}");
    }

    #[test]
    fn daemon_scrapes_feed_sync_counters() {
        use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust};
        let pki = simple_chain("daemonfeed.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let coordinator = CoordinatorKey::from_seed([21; 32], 4).unwrap();
        let key = FeedKey::new([22; 32], 6, &coordinator).unwrap();
        let mut publisher = FeedPublisher::new("platform", key, &store, 0).unwrap();
        let trust = FeedTrust {
            coordinator: coordinator.public(),
        };
        let feed = Arc::new(Mutex::new(Subscriber::builder("platform", trust).build()));

        let mut daemon = TrustDaemon::spawn(store, ephemeral_socket_path("feed")).unwrap();
        assert!(daemon.sync_counters().is_none(), "no feed attached yet");
        daemon.attach_feed(feed.clone());
        assert_eq!(daemon.sync_counters(), Some(SyncCounters::default()));
        assert_eq!(daemon.feed_staleness(0), Some(Staleness::NeverSynced));

        feed.lock().unwrap().sync(&mut publisher, 100).unwrap();
        let counters = daemon.sync_counters().unwrap();
        assert_eq!(counters.attempts, 1);
        assert_eq!(counters.messages_ingested, 1);
        assert_eq!(counters.quarantines, 0);
        assert_eq!(
            daemon.feed_staleness(150),
            Some(Staleness::Fresh { age_secs: 50 })
        );
        assert!(matches!(
            daemon.feed_staleness(100 + 90_000),
            Some(Staleness::Exceeded { .. })
        ));
    }

    #[test]
    fn scraped_metrics_cover_cache_validation_and_feed() {
        use crate::validate::{ValidationMode, Validator};
        use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust};

        let pki = simple_chain("scrape.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        // One registry shared by the daemon (cache + request metrics),
        // a Platform-mode validator (outcome + latency metrics), and
        // the RSF subscriber (sync + state metrics) — the acceptance
        // shape for the observability PR.
        let registry = Arc::new(Registry::new());
        let daemon = TrustDaemon::spawn_observed(
            store.clone(),
            ephemeral_socket_path("scrape"),
            4,
            Arc::clone(&registry),
        )
        .unwrap();
        let coordinator = CoordinatorKey::from_seed([31; 32], 4).unwrap();
        let key = FeedKey::new([32; 32], 6, &coordinator).unwrap();
        let mut publisher = FeedPublisher::new("platform", key, &store, 0).unwrap();
        let trust = FeedTrust {
            coordinator: coordinator.public(),
        };
        let feed = Arc::new(Mutex::new(
            Subscriber::builder("platform", trust)
                .registry(Arc::clone(&registry))
                .build(),
        ));
        feed.lock().unwrap().sync(&mut publisher, 100).unwrap();

        let validator = Validator::new(store, ValidationMode::Platform(Arc::new(daemon.client())))
            .with_registry(&registry);
        for _ in 0..2 {
            let out = validator
                .validate(
                    &pki.leaf,
                    std::slice::from_ref(&pki.intermediate),
                    Usage::Tls,
                    pki.now,
                )
                .unwrap();
            assert!(out.accepted());
        }

        let text = daemon.client().metrics_text().unwrap();
        // The scrape request is itself timed, so the scraped text and a
        // later local render differ only in the request-latency series.
        assert!(daemon
            .render_metrics()
            .contains("nrslb_daemon_requests_total 3"));
        // Cache hit/miss: two identical validations = one miss, one hit.
        assert!(
            text.contains("nrslb_verdict_cache_misses_total 1"),
            "{text}"
        );
        assert!(text.contains("nrslb_verdict_cache_hits_total 1"), "{text}");
        // Validation outcomes and latency quantiles.
        assert!(
            text.contains("nrslb_validations_total{outcome=\"accepted\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_validation_latency_us{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_validation_latency_us_count 2"),
            "{text}"
        );
        // Daemon request metrics (2 evaluate calls; the metrics scrape
        // itself raced this render, so only a lower bound is stable).
        assert!(text.contains("nrslb_daemon_requests_total"), "{text}");
        assert!(
            text.contains("nrslb_daemon_request_latency_us{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("nrslb_daemon_queue_depth"), "{text}");
        // Subscriber state: 1 = live after the successful sync.
        assert!(
            text.contains("nrslb_rsf_subscriber_state{subscriber=\"platform\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_rsf_sync_attempts_total{subscriber=\"platform\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_rsf_last_synced_timestamp_secs{subscriber=\"platform\"} 100"),
            "{text}"
        );
    }

    #[test]
    fn client_error_on_missing_daemon() {
        let client = DaemonClient::new("/nonexistent/nrslb.sock");
        let pki = simple_chain("noclient.example");
        let err = client.evaluate(&[pki.leaf], Usage::Tls);
        assert!(matches!(err, Err(CoreError::Daemon(_))));
    }

    #[test]
    fn daemon_shuts_down_cleanly() {
        let pki = simple_chain("shutdown.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let path = ephemeral_socket_path("shutdown");
        {
            let _daemon = TrustDaemon::spawn(store, &path).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "socket removed on drop");
    }
}
