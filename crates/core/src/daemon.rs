//! The *platform execution* deployment mode (§3.1): a system trust
//! daemon — the moral equivalent of macOS's `trustd` — that owns the
//! platform root store and evaluates GCCs on behalf of TLS user-agents.
//!
//! The daemon listens on a Unix-domain socket. A user-agent mid-chain-
//! construction sends the candidate chain plus the requested usage; the
//! daemon converts the chain to Datalog statements, executes all GCCs
//! attached to the candidate root, and returns the per-GCC verdicts. The
//! user-agent proceeds with chain construction, "building a new chain if
//! the daemon responded false".
//!
//! ## Concurrency
//!
//! Connections are served by a fixed pool of worker threads fed from a
//! bounded MPMC channel: the accept loop enqueues each connection, and
//! whichever worker is free picks it up. The pool bounds both thread
//! count and queued-connection memory no matter how many clients
//! connect at once. All workers share one [`InProcessOracle`] — and
//! thus one GCC [`crate::VerdictCache`] — so a verdict computed for one
//! client is a cache hit for every other.
//!
//! ## Wire protocol
//!
//! Little-endian, length-prefixed. Connections are **keep-alive**: a
//! client sends any number of requests on one connection and the daemon
//! answers each in order, so user-agents amortize socket setup across a
//! page load ([`DaemonConnection`]). `OP_EVALUATE_BATCH` goes further
//! and packs many chains into one round-trip with a single response
//! frame:
//!
//! ```text
//! evaluate := u8 usage(0=TLS,1=S/MIME) u32 n_certs (u32 len, bytes der)*
//! request  := u8 opcode(1=evaluate)  evaluate
//!           | u8 opcode(2=metrics)
//!           | u8 opcode(3=evaluate-batch) u32 n_items  evaluate*
//! verdicts := u32 n_verdicts (u8 accepted, u32 len, bytes name)*
//! response := u8 status(0=ok,1=error)
//!             ok(evaluate):       verdicts
//!             ok(metrics):        u32 len, bytes exposition-text
//!             ok(evaluate-batch): u32 n_items  verdicts*
//!             error:              u32 len, bytes message
//! ```
//!
//! ## Observability
//!
//! Every daemon owns (or is handed, [`TrustDaemon::spawn_observed`]) an
//! [`nrslb_obs::Registry`]. The shared oracle's verdict cache mirrors
//! its hit/miss/eviction statistics into it, each request is timed into
//! `nrslb_daemon_request_latency_us`, and the connection queue depth is
//! tracked as a gauge. The `metrics` opcode returns
//! [`Registry::render_text`] — Prometheus text exposition over the same
//! socket, so operators scrape the daemon without a second listener.

use crate::cache::ParsedCertCache;
use crate::gcc_eval::GccVerdict;
use crate::validate::{GccOracle, InProcessOracle};
use crate::CoreError;
use nrslb_crypto::sha256::{Digest, Sha256};
use nrslb_obs::{Counter, Gauge, Histogram, Registry, Span};
use nrslb_rootstore::{RootStore, Usage};
use nrslb_rsf::{Staleness, Subscriber, SyncCounters};
use nrslb_x509::Certificate;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

const OP_EVALUATE: u8 = 1;
const OP_METRICS: u8 = 2;
const OP_EVALUATE_BATCH: u8 = 3;
const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;
/// Upper bound on any length field, to bound allocations from hostile
/// peers (a trust daemon is security-critical infrastructure).
const MAX_LEN: u32 = 16 * 1024 * 1024;
/// Upper bound on chains per `OP_EVALUATE_BATCH` request.
const MAX_BATCH: u32 = 256;

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u8(r: &mut impl Read) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_block(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "length field exceeds limit",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn usage_to_byte(usage: Usage) -> u8 {
    match usage {
        Usage::Tls => 0,
        Usage::SMime => 1,
    }
}

fn usage_from_byte(b: u8) -> Option<Usage> {
    match b {
        0 => Some(Usage::Tls),
        1 => Some(Usage::SMime),
        _ => None,
    }
}

/// Default number of worker threads serving connections.
pub const DEFAULT_WORKERS: usize = 8;

/// Per-daemon instrument handles, shared by the accept loop and every
/// worker. The registry rides along so the `metrics` opcode can render
/// it from any worker thread.
#[derive(Clone)]
struct DaemonInstruments {
    registry: Arc<Registry>,
    /// Connections accepted but not yet picked up by a worker.
    queue_depth: Gauge,
    /// Requests served, by opcode outcome.
    requests: Counter,
    /// Requests answered with an error status.
    request_errors: Counter,
    /// Per-request service time in microseconds.
    latency_us: Histogram,
    /// Chains per `OP_EVALUATE_BATCH` request.
    batch_size: Histogram,
}

impl DaemonInstruments {
    fn new(registry: Arc<Registry>) -> DaemonInstruments {
        DaemonInstruments {
            queue_depth: registry.gauge(
                "nrslb_daemon_queue_depth",
                "connections accepted but not yet picked up by a worker",
            ),
            requests: registry.counter("nrslb_daemon_requests_total", "requests served"),
            request_errors: registry.counter(
                "nrslb_daemon_request_errors_total",
                "requests answered with an error status",
            ),
            latency_us: registry.histogram(
                "nrslb_daemon_request_latency_us",
                "per-request service time in microseconds",
            ),
            batch_size: registry.histogram(
                "nrslb_daemon_batch_size",
                "chains per evaluate-batch request",
            ),
            registry,
        }
    }

    fn span(&self) -> Span {
        Span::enter(self.latency_us.clone(), Arc::clone(self.registry.clock()))
    }
}

/// An accepted connection waiting in the worker queue, keeping the
/// queue-depth gauge honest by construction: the increment happens when
/// the guard is created in the accept loop and the matching decrement
/// in `Drop` — so the gauge comes back down whether a worker picks the
/// connection up, the channel send fails, the queue is dropped with
/// connections still queued at shutdown, or a worker panics before
/// serving. (The pre-guard code decremented on the happy path only and
/// leaked an increment on every other exit.)
struct QueuedConn {
    stream: Option<UnixStream>,
    depth: Gauge,
}

impl QueuedConn {
    fn new(stream: UnixStream, depth: Gauge) -> QueuedConn {
        depth.add(1);
        QueuedConn {
            stream: Some(stream),
            depth,
        }
    }

    /// Dequeue the connection; the guard drops here, so queue time ends
    /// when a worker takes the stream, not when serving finishes.
    fn take(mut self) -> UnixStream {
        self.stream.take().expect("stream taken once")
    }
}

impl Drop for QueuedConn {
    fn drop(&mut self) {
        self.depth.sub(1);
    }
}

/// Configuration for spawning a [`TrustDaemon`].
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Worker threads serving connections (at least 1).
    pub workers: usize,
    /// Capacity of the verdict cache shared by all workers.
    pub cache_capacity: usize,
    /// Shard count of the verdict cache; `1` reproduces the old
    /// single-lock cache (the throughput benchmark's ablation arm).
    pub cache_shards: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            workers: DEFAULT_WORKERS,
            cache_capacity: crate::cache::DEFAULT_VERDICT_CACHE_CAPACITY,
            cache_shards: crate::cache::DEFAULT_CACHE_SHARDS,
        }
    }
}

/// A running trust daemon; dropping the handle shuts it down.
pub struct TrustDaemon {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    oracle: Arc<InProcessOracle>,
    cert_cache: Arc<ParsedCertCache>,
    instruments: DaemonInstruments,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The RSF subscriber keeping the platform store current, when the
    /// operator wired one up ([`TrustDaemon::attach_feed`]). The daemon
    /// surfaces its sync health ([`TrustDaemon::sync_counters`],
    /// [`TrustDaemon::feed_staleness`]) the way it surfaces the verdict
    /// cache.
    feed: Option<Arc<Mutex<Subscriber>>>,
}

impl TrustDaemon {
    /// Bind `socket_path` and serve GCC evaluations for `store` with
    /// [`DEFAULT_WORKERS`] worker threads.
    pub fn spawn(store: RootStore, socket_path: impl AsRef<Path>) -> std::io::Result<TrustDaemon> {
        TrustDaemon::spawn_with_workers(store, socket_path, DEFAULT_WORKERS)
    }

    /// Bind `socket_path` and serve with an explicit worker count
    /// (at least 1), reporting into a private registry.
    pub fn spawn_with_workers(
        store: RootStore,
        socket_path: impl AsRef<Path>,
        workers: usize,
    ) -> std::io::Result<TrustDaemon> {
        TrustDaemon::spawn_observed(store, socket_path, workers, Arc::new(Registry::new()))
    }

    /// Bind `socket_path` and serve, reporting into a caller-provided
    /// registry — so the daemon's metrics share one exposition with a
    /// co-resident validator's or subscriber's.
    pub fn spawn_observed(
        store: RootStore,
        socket_path: impl AsRef<Path>,
        workers: usize,
        registry: Arc<Registry>,
    ) -> std::io::Result<TrustDaemon> {
        TrustDaemon::spawn_configured(
            store,
            socket_path,
            DaemonConfig {
                workers,
                ..DaemonConfig::default()
            },
            registry,
        )
    }

    /// Bind `socket_path` and serve with full control over worker count
    /// and verdict-cache geometry, reporting into a caller-provided
    /// registry. The throughput benchmark uses this to run the
    /// single-lock (`cache_shards = 1`) ablation against the sharded
    /// default.
    pub fn spawn_configured(
        store: RootStore,
        socket_path: impl AsRef<Path>,
        config: DaemonConfig,
        registry: Arc<Registry>,
    ) -> std::io::Result<TrustDaemon> {
        let workers = config.workers.max(1);
        let path = socket_path.as_ref().to_path_buf();
        // Remove a stale socket from a previous run.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let oracle = Arc::new(InProcessOracle::configured(
            store,
            config.cache_capacity,
            config.cache_shards,
            Some(&registry),
        ));
        let cert_cache = Arc::new(ParsedCertCache::default());
        let instruments = DaemonInstruments::new(registry);
        // Bounded: with all workers busy, at most 2x`workers` accepted
        // connections queue before the accept loop itself blocks (and
        // the kernel listen backlog takes over).
        let (conn_tx, conn_rx) = crossbeam::channel::bounded::<QueuedConn>(workers * 2);
        let worker_handles = (0..workers)
            .map(|_| {
                let conn_rx = conn_rx.clone();
                let oracle = Arc::clone(&oracle);
                let certs = Arc::clone(&cert_cache);
                let instruments = instruments.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // recv fails once the accept thread (the only
                    // sender) is gone and the queue has drained.
                    while let Ok(queued) = conn_rx.recv() {
                        let _ =
                            serve_connection(queued.take(), &*oracle, &certs, &instruments, &stop);
                    }
                })
            })
            .collect();
        drop(conn_rx);
        let stop2 = stop.clone();
        let accept_instruments = instruments.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let queued = QueuedConn::new(stream, accept_instruments.queue_depth.clone());
                if conn_tx.send(queued).is_err() {
                    break;
                }
            }
            // conn_tx drops here; idle workers wake and exit.
        });
        Ok(TrustDaemon {
            path,
            stop,
            oracle,
            cert_cache,
            instruments,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
            feed: None,
        })
    }

    /// The socket path clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// The shared oracle (exposes the verdict cache for metrics).
    pub fn oracle(&self) -> &InProcessOracle {
        &self.oracle
    }

    /// The shared parsed-certificate cache (DER bytes → handle),
    /// exposed so operators and tests can read its hit/miss counters.
    pub fn cert_cache(&self) -> &ParsedCertCache {
        &self.cert_cache
    }

    /// The daemon's metric registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.instruments.registry
    }

    /// The registry rendered as Prometheus text exposition — the same
    /// payload the `metrics` opcode returns over the socket.
    pub fn render_metrics(&self) -> String {
        self.instruments.registry.render_text()
    }

    /// Wire up the RSF subscriber that keeps the platform store
    /// current; the daemon then exposes its sync health as metrics.
    pub fn attach_feed(&mut self, feed: Arc<Mutex<Subscriber>>) {
        self.feed = Some(feed);
    }

    /// The attached subscriber's sync counters (attempts, retries,
    /// fallbacks, quarantines, stale serves), if a feed is attached.
    pub fn sync_counters(&self) -> Option<SyncCounters> {
        self.feed
            .as_ref()
            .map(|f| f.lock().expect("feed mutex").counters())
    }

    /// The attached subscriber's freshness at `now`, if a feed is
    /// attached.
    pub fn feed_staleness(&self, now: i64) -> Option<Staleness> {
        self.feed
            .as_ref()
            .map(|f| f.lock().expect("feed mutex").staleness(now))
    }

    /// Create a connect-per-request client for this daemon.
    pub fn client(&self) -> DaemonClient {
        DaemonClient::new(&self.path)
    }

    /// Create a keep-alive client for this daemon (one connection,
    /// many requests, batch support).
    pub fn connection(&self) -> DaemonConnection {
        DaemonConnection::new(&self.path)
    }
}

impl Drop for TrustDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = UnixStream::connect(&self.path);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// What a successful request answers with (the opcodes have different
/// ok-payload shapes).
enum Reply {
    Verdicts(Vec<GccVerdict>),
    Batch(Vec<Vec<GccVerdict>>),
    Text(String),
}

fn write_verdict_list(stream: &mut UnixStream, verdicts: &[GccVerdict]) -> std::io::Result<()> {
    write_u32(stream, verdicts.len() as u32)?;
    for v in verdicts {
        stream.write_all(&[u8::from(v.accepted)])?;
        write_u32(stream, v.gcc_name.len() as u32)?;
        stream.write_all(v.gcc_name.as_bytes())?;
    }
    Ok(())
}

/// How often an idle worker wakes to re-check the shutdown flag while
/// waiting for the next request on a keep-alive connection.
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(25);

fn serve_connection(
    mut stream: UnixStream,
    oracle: &dyn GccOracle,
    certs: &ParsedCertCache,
    instruments: &DaemonInstruments,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // Serve requests until the peer closes the connection.
    loop {
        // Keep-alive clients may hold the connection open indefinitely
        // between requests, so the idle opcode wait polls with a short
        // read timeout and re-checks the shutdown flag between polls —
        // a quiet connection must never block daemon shutdown.
        stream.set_read_timeout(Some(IDLE_POLL))?;
        let opcode = loop {
            match read_u8(&mut stream) {
                Ok(op) => break op,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                }
                Err(_) => return Ok(()), // peer hung up
            }
        };
        // A frame is in flight: mid-request reads block normally.
        stream.set_read_timeout(None)?;
        // The span covers decode + evaluation + response write; it
        // records on drop, so error paths are timed too.
        let span = instruments.span();
        instruments.requests.inc();
        let reply = handle_request(opcode, &mut stream, oracle, certs, instruments);
        match reply {
            Ok(Reply::Verdicts(verdicts)) => {
                stream.write_all(&[STATUS_OK])?;
                write_verdict_list(&mut stream, &verdicts)?;
            }
            Ok(Reply::Batch(batches)) => {
                stream.write_all(&[STATUS_OK])?;
                write_u32(&mut stream, batches.len() as u32)?;
                for verdicts in &batches {
                    write_verdict_list(&mut stream, verdicts)?;
                }
            }
            Ok(Reply::Text(text)) => {
                stream.write_all(&[STATUS_OK])?;
                write_u32(&mut stream, text.len() as u32)?;
                stream.write_all(text.as_bytes())?;
            }
            Err(message) => {
                instruments.request_errors.inc();
                stream.write_all(&[STATUS_ERR])?;
                write_u32(&mut stream, message.len() as u32)?;
                stream.write_all(message.as_bytes())?;
            }
        }
        stream.flush()?;
        drop(span);
    }
}

/// Read one `evaluate` body (usage byte + chain) off the wire.
///
/// Each certificate's wire bytes go through the shared
/// [`ParsedCertCache`] (fast hash + byte-identity check), so on a hit
/// the daemon skips the DER parse and gets back a handle whose
/// fingerprint, hex form, and interned Datalog symbol were memoized by
/// earlier requests.
fn read_evaluate_body(
    stream: &mut UnixStream,
    certs: &ParsedCertCache,
) -> Result<(Usage, Vec<Certificate>), String> {
    let usage = read_u8(stream)
        .ok()
        .and_then(usage_from_byte)
        .ok_or("bad usage byte")?;
    let n = read_u32(stream).map_err(|e| e.to_string())?;
    if n > 64 {
        return Err("chain too long".to_string());
    }
    let mut chain = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let der = read_block(stream).map_err(|e| e.to_string())?;
        let cert = certs.parse(&der).map_err(|e| e.to_string())?;
        chain.push(cert);
    }
    Ok((usage, chain))
}

/// Content identity of one batch item: the usage byte plus a digest of
/// the chain's certificate fingerprints in order. Two items with equal
/// keys are the same evaluation by construction, so the batch handler
/// evaluates the first and clones its verdicts for the rest.
fn batch_item_key(usage: Usage, chain: &[Certificate]) -> (u8, Digest) {
    let mut h = Sha256::new();
    for cert in chain {
        h.update(cert.fingerprint().0);
    }
    (usage_to_byte(usage), h.finalize())
}

fn handle_request(
    opcode: u8,
    stream: &mut UnixStream,
    oracle: &dyn GccOracle,
    certs: &ParsedCertCache,
    instruments: &DaemonInstruments,
) -> Result<Reply, String> {
    match opcode {
        OP_METRICS => Ok(Reply::Text(instruments.registry.render_text())),
        OP_EVALUATE => {
            let (usage, chain) = read_evaluate_body(stream, certs)?;
            oracle
                .evaluate(&chain, usage)
                .map(Reply::Verdicts)
                .map_err(|e| e.to_string())
        }
        OP_EVALUATE_BATCH => {
            let n = read_u32(stream).map_err(|e| e.to_string())?;
            if n > MAX_BATCH {
                return Err("batch too large".to_string());
            }
            // Drain the whole batch off the wire before evaluating, so
            // the client can write its request in one shot and block on
            // the single response frame.
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                items.push(read_evaluate_body(stream, certs)?);
            }
            instruments.batch_size.observe(items.len() as u64);
            // Page loads repeat chains (every subresource re-validates
            // the same server chain), so dedup by content identity:
            // evaluate each distinct (usage, chain) once and clone the
            // verdicts — a refcount bump per name — for the repeats.
            let mut first_at: std::collections::HashMap<(u8, Digest), usize> =
                std::collections::HashMap::with_capacity(items.len());
            let mut batches: Vec<Vec<GccVerdict>> = Vec::with_capacity(items.len());
            for (i, (usage, chain)) in items.iter().enumerate() {
                match first_at.entry(batch_item_key(*usage, chain)) {
                    std::collections::hash_map::Entry::Occupied(seen) => {
                        batches.push(batches[*seen.get()].clone());
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(i);
                        batches.push(oracle.evaluate(chain, *usage).map_err(|e| e.to_string())?);
                    }
                }
            }
            Ok(Reply::Batch(batches))
        }
        other => Err(format!("unknown opcode {other}")),
    }
}

/// Client side of the trust-daemon protocol. Implements [`GccOracle`],
/// so a [`crate::Validator`] in `Platform` mode can delegate GCC
/// evaluation to the daemon transparently.
///
/// Connects per evaluation; the daemon supports request pipelining on one
/// connection, but a fresh connection per candidate chain keeps the
/// client trivially robust to daemon restarts.
#[derive(Clone, Debug)]
pub struct DaemonClient {
    path: PathBuf,
}

impl DaemonClient {
    /// Client for the daemon at `socket_path`.
    pub fn new(socket_path: impl AsRef<Path>) -> DaemonClient {
        DaemonClient {
            path: socket_path.as_ref().to_path_buf(),
        }
    }

    /// Scrape the daemon: fetch its registry rendered as Prometheus
    /// text exposition (the `metrics` opcode).
    pub fn metrics_text(&self) -> Result<String, CoreError> {
        let io_err = |e: std::io::Error| CoreError::Daemon(e.to_string());
        let mut stream = UnixStream::connect(&self.path).map_err(io_err)?;
        stream.write_all(&[OP_METRICS]).map_err(io_err)?;
        stream.flush().map_err(io_err)?;
        let status = read_u8(&mut stream).map_err(io_err)?;
        let body = read_block(&mut stream).map_err(io_err)?;
        match status {
            STATUS_OK => String::from_utf8(body)
                .map_err(|_| CoreError::Daemon("non-utf8 metrics payload".into())),
            STATUS_ERR => Err(CoreError::Daemon(
                String::from_utf8_lossy(&body).into_owned(),
            )),
            other => Err(CoreError::Daemon(format!("bad status byte {other}"))),
        }
    }
}

/// Append one `evaluate` body (usage byte, cert count, DER blocks) to a
/// request buffer. Shared by the single-shot and batch encoders.
fn encode_evaluate_body(req: &mut Vec<u8>, chain: &[Certificate], usage: Usage) {
    req.push(usage_to_byte(usage));
    req.extend_from_slice(&(chain.len() as u32).to_le_bytes());
    for cert in chain {
        let der = cert.to_der();
        req.extend_from_slice(&(der.len() as u32).to_le_bytes());
        req.extend_from_slice(der);
    }
}

/// Read one verdict list off the wire.
///
/// The outer `io::Result` is a *transport* failure (short read, broken
/// pipe) — the connection state is unknown and a keep-alive client must
/// drop the stream. The inner `Result` is a *protocol* failure (the
/// daemon reported an error, or sent malformed-but-framed data); the
/// response frame was fully consumed, so the connection stays usable.
fn read_verdict_list(
    stream: &mut UnixStream,
) -> std::io::Result<Result<Vec<GccVerdict>, CoreError>> {
    let n = read_u32(stream)?;
    if n > 1024 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "verdict count exceeds limit",
        ));
    }
    let mut verdicts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let accepted = read_u8(stream)? != 0;
        let name = read_block(stream)?;
        let gcc_name: std::sync::Arc<str> = match std::str::from_utf8(&name) {
            Ok(name) => std::sync::Arc::from(name),
            Err(_) => return Ok(Err(CoreError::Daemon("non-utf8 GCC name".into()))),
        };
        verdicts.push(GccVerdict { gcc_name, accepted });
    }
    Ok(Ok(verdicts))
}

/// Read a `STATUS_ERR` payload (the frame is fully drained, so a
/// keep-alive connection remains usable afterwards).
fn read_error_reply(stream: &mut UnixStream) -> std::io::Result<CoreError> {
    let msg = read_block(stream)?;
    Ok(CoreError::Daemon(
        String::from_utf8_lossy(&msg).into_owned(),
    ))
}

impl GccOracle for DaemonClient {
    fn evaluate(&self, chain: &[Certificate], usage: Usage) -> Result<Vec<GccVerdict>, CoreError> {
        let io_err = |e: std::io::Error| CoreError::Daemon(e.to_string());
        let mut stream = UnixStream::connect(&self.path).map_err(io_err)?;
        // Request.
        let mut req = vec![OP_EVALUATE];
        encode_evaluate_body(&mut req, chain, usage);
        stream.write_all(&req).map_err(io_err)?;
        stream.flush().map_err(io_err)?;
        // Response.
        let status = read_u8(&mut stream).map_err(io_err)?;
        match status {
            STATUS_OK => read_verdict_list(&mut stream).map_err(io_err)?,
            STATUS_ERR => Err(read_error_reply(&mut stream).map_err(io_err)?),
            other => Err(CoreError::Daemon(format!("bad status byte {other}"))),
        }
    }
}

/// Keep-alive client: one Unix socket reused across requests, with
/// batch submission. This is the throughput-oriented counterpart of
/// [`DaemonClient`] — it avoids the per-request `connect(2)` +
/// worker-dispatch round trip, which dominates daemon latency for warm
/// cache hits.
///
/// Transport errors (broken pipe after a daemon restart, short reads)
/// drop the cached stream and retry once on a fresh connection;
/// evaluation requests are idempotent, so the retry is safe. Protocol
/// errors (the daemon answered `STATUS_ERR`) are final and keep the
/// connection open, since the response frame was fully consumed.
#[derive(Debug)]
pub struct DaemonConnection {
    path: PathBuf,
    stream: Mutex<Option<UnixStream>>,
}

impl DaemonConnection {
    /// Keep-alive client for the daemon at `socket_path`. No connection
    /// is opened until the first request.
    pub fn new(socket_path: impl AsRef<Path>) -> DaemonConnection {
        DaemonConnection {
            path: socket_path.as_ref().to_path_buf(),
            stream: Mutex::new(None),
        }
    }

    /// Run one request/response exchange on the cached stream,
    /// reconnecting once if the transport fails (stale connection from a
    /// daemon restart). `parse` layers transport errors (outer, retry)
    /// over protocol errors (inner, final).
    fn exchange<T>(
        &self,
        request: &[u8],
        parse: impl Fn(&mut UnixStream) -> std::io::Result<Result<T, CoreError>>,
    ) -> Result<T, CoreError> {
        let io_err = |e: std::io::Error| CoreError::Daemon(e.to_string());
        let mut guard = self.stream.lock().expect("daemon connection poisoned");
        let mut reconnected = guard.is_none();
        loop {
            if guard.is_none() {
                *guard = Some(UnixStream::connect(&self.path).map_err(io_err)?);
            }
            let stream = guard.as_mut().expect("stream just ensured");
            let attempt = (|| {
                stream.write_all(request)?;
                stream.flush()?;
                parse(stream)
            })();
            match attempt {
                Ok(result) => return result,
                Err(e) => {
                    // Transport failure: the stream is in an unknown
                    // state. Drop it; retry once on a fresh connection.
                    *guard = None;
                    if reconnected {
                        return Err(io_err(e));
                    }
                    reconnected = true;
                }
            }
        }
    }

    /// Evaluate one chain (same semantics as [`DaemonClient::evaluate`],
    /// over the persistent connection).
    pub fn evaluate(
        &self,
        chain: &[Certificate],
        usage: Usage,
    ) -> Result<Vec<GccVerdict>, CoreError> {
        let mut req = vec![OP_EVALUATE];
        encode_evaluate_body(&mut req, chain, usage);
        self.exchange(&req, |stream| match read_u8(stream)? {
            STATUS_OK => read_verdict_list(stream),
            STATUS_ERR => Ok(Err(read_error_reply(stream)?)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status byte {other}"),
            )),
        })
    }

    /// Evaluate many chains in one request frame (`OP_EVALUATE_BATCH`):
    /// a single write, a single response read, one round trip. Verdict
    /// lists come back in submission order. The whole batch shares one
    /// daemon worker, so failures are all-or-nothing: any chain that
    /// fails to evaluate fails the batch.
    pub fn evaluate_batch(
        &self,
        items: &[(&[Certificate], Usage)],
    ) -> Result<Vec<Vec<GccVerdict>>, CoreError> {
        if items.len() as u32 > MAX_BATCH {
            return Err(CoreError::Daemon(format!(
                "batch of {} exceeds limit {MAX_BATCH}",
                items.len()
            )));
        }
        let mut req = vec![OP_EVALUATE_BATCH];
        req.extend_from_slice(&(items.len() as u32).to_le_bytes());
        for (chain, usage) in items {
            encode_evaluate_body(&mut req, chain, *usage);
        }
        let expected = items.len();
        self.exchange(&req, move |stream| match read_u8(stream)? {
            STATUS_OK => {
                let n = read_u32(stream)? as usize;
                if n != expected {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("batch answered {n} items, expected {expected}"),
                    ));
                }
                let mut batches = Vec::with_capacity(n);
                for _ in 0..n {
                    match read_verdict_list(stream)? {
                        Ok(verdicts) => batches.push(verdicts),
                        Err(e) => return Ok(Err(e)),
                    }
                }
                Ok(Ok(batches))
            }
            STATUS_ERR => Ok(Err(read_error_reply(stream)?)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status byte {other}"),
            )),
        })
    }
}

impl GccOracle for DaemonConnection {
    fn evaluate(&self, chain: &[Certificate], usage: Usage) -> Result<Vec<GccVerdict>, CoreError> {
        DaemonConnection::evaluate(self, chain, usage)
    }
}

/// A unique socket path in the system temp directory (test/example aid).
pub fn ephemeral_socket_path(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nrslb-trustd-{}-{}-{}.sock",
        tag,
        std::process::id(),
        n
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{ValidationMode, Validator};
    use nrslb_rootstore::{Gcc, GccMetadata};
    use nrslb_x509::testutil::simple_chain;

    #[test]
    fn daemon_evaluates_gccs() {
        let pki = simple_chain("daemon.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        let daemon = TrustDaemon::spawn(store, ephemeral_socket_path("eval")).unwrap();
        let client = daemon.client();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let verdicts = client.evaluate(&chain, Usage::Tls).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts[0].accepted);
        let verdicts = client.evaluate(&chain, Usage::SMime).unwrap();
        assert!(!verdicts[0].accepted);
    }

    #[test]
    fn validator_platform_mode_uses_daemon() {
        let pki = simple_chain("daemonmode.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "deny-all",
            pki.root.fingerprint(),
            r#"valid(Chain, "never") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        let daemon = TrustDaemon::spawn(store.clone(), ephemeral_socket_path("mode")).unwrap();
        let validator = Validator::new(store, ValidationMode::Platform(Arc::new(daemon.client())));
        let out = validator
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert!(!out.accepted());
        assert!(matches!(
            out.final_reason(),
            Some(crate::validate::RejectReason::GccRejected { .. })
        ));
    }

    #[test]
    fn daemon_with_no_gccs_accepts_vacuously() {
        let pki = simple_chain("daemonempty.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let daemon = TrustDaemon::spawn(store, ephemeral_socket_path("empty")).unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let verdicts = daemon.client().evaluate(&chain, Usage::Tls).unwrap();
        assert!(verdicts.is_empty());
    }

    #[test]
    fn concurrent_clients_get_complete_correct_verdicts() {
        // 10 threads hammer one daemon (8 workers) with interleaved
        // requests for two different chains and both usages; every
        // response must be the complete, correct verdict set for that
        // exact (chain, usage) — no cross-talk, no partial replies.
        let pki_a = simple_chain("concurrent-a.example");
        let pki_b = simple_chain("concurrent-b.example");
        let mut store = RootStore::new("platform");
        for pki in [&pki_a, &pki_b] {
            store.add_trusted(pki.root.clone()).unwrap();
            let tls_only = Gcc::parse(
                "tls-only",
                pki.root.fingerprint(),
                r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
                GccMetadata::default(),
            )
            .unwrap();
            let any_usage = Gcc::parse(
                "any-usage",
                pki.root.fingerprint(),
                "valid(Chain, _) :- leaf(Chain, _).",
                GccMetadata::default(),
            )
            .unwrap();
            store.attach_gcc(tls_only).unwrap();
            store.attach_gcc(any_usage).unwrap();
        }

        let daemon =
            TrustDaemon::spawn_with_workers(store, ephemeral_socket_path("concurrent"), 8).unwrap();
        let chain_a = vec![pki_a.leaf, pki_a.intermediate, pki_a.root];
        let chain_b = vec![pki_b.leaf, pki_b.intermediate, pki_b.root];

        let check = |client: &DaemonClient, chain: &[Certificate], usage: Usage| {
            let verdicts = client.evaluate(chain, usage).unwrap();
            let by_name: Vec<(&str, bool)> = verdicts
                .iter()
                .map(|v| (&*v.gcc_name, v.accepted))
                .collect();
            assert_eq!(
                by_name,
                [("tls-only", usage == Usage::Tls), ("any-usage", true)],
                "usage {usage}"
            );
        };

        std::thread::scope(|scope| {
            for t in 0..10usize {
                let client = daemon.client();
                let chain_a = &chain_a;
                let chain_b = &chain_b;
                scope.spawn(move || {
                    for i in 0..20usize {
                        let chain = if (t + i) % 2 == 0 { chain_a } else { chain_b };
                        let usage = if i % 2 == 0 { Usage::Tls } else { Usage::SMime };
                        check(&client, chain, usage);
                    }
                });
            }
        });
        // 2 chains x 2 usages x 2 GCCs = 8 distinct verdict keys. Misses
        // beyond 8 only happen when workers race on a cold key, which is
        // bounded by the worker count per key.
        let cache = daemon.oracle().cache();
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.hits() + cache.misses(), 10 * 20 * 2);
        assert!(cache.hits() >= 10 * 20 * 2 - 8 * 8, "{cache:?}");
    }

    #[test]
    fn daemon_scrapes_feed_sync_counters() {
        use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust};
        let pki = simple_chain("daemonfeed.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let coordinator = CoordinatorKey::from_seed([21; 32], 4).unwrap();
        let key = FeedKey::new([22; 32], 6, &coordinator).unwrap();
        let mut publisher = FeedPublisher::new("platform", key, &store, 0).unwrap();
        let trust = FeedTrust {
            coordinator: coordinator.public(),
        };
        let feed = Arc::new(Mutex::new(Subscriber::builder("platform", trust).build()));

        let mut daemon = TrustDaemon::spawn(store, ephemeral_socket_path("feed")).unwrap();
        assert!(daemon.sync_counters().is_none(), "no feed attached yet");
        daemon.attach_feed(feed.clone());
        assert_eq!(daemon.sync_counters(), Some(SyncCounters::default()));
        assert_eq!(daemon.feed_staleness(0), Some(Staleness::NeverSynced));

        feed.lock().unwrap().sync(&mut publisher, 100).unwrap();
        let counters = daemon.sync_counters().unwrap();
        assert_eq!(counters.attempts, 1);
        assert_eq!(counters.messages_ingested, 1);
        assert_eq!(counters.quarantines, 0);
        assert_eq!(
            daemon.feed_staleness(150),
            Some(Staleness::Fresh { age_secs: 50 })
        );
        assert!(matches!(
            daemon.feed_staleness(100 + 90_000),
            Some(Staleness::Exceeded { .. })
        ));
    }

    #[test]
    fn scraped_metrics_cover_cache_validation_and_feed() {
        use crate::validate::{ValidationMode, Validator};
        use nrslb_rsf::{CoordinatorKey, FeedKey, FeedPublisher, FeedTrust};

        let pki = simple_chain("scrape.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        // One registry shared by the daemon (cache + request metrics),
        // a Platform-mode validator (outcome + latency metrics), and
        // the RSF subscriber (sync + state metrics) — the acceptance
        // shape for the observability PR.
        let registry = Arc::new(Registry::new());
        let daemon = TrustDaemon::spawn_observed(
            store.clone(),
            ephemeral_socket_path("scrape"),
            4,
            Arc::clone(&registry),
        )
        .unwrap();
        let coordinator = CoordinatorKey::from_seed([31; 32], 4).unwrap();
        let key = FeedKey::new([32; 32], 6, &coordinator).unwrap();
        let mut publisher = FeedPublisher::new("platform", key, &store, 0).unwrap();
        let trust = FeedTrust {
            coordinator: coordinator.public(),
        };
        let feed = Arc::new(Mutex::new(
            Subscriber::builder("platform", trust)
                .registry(Arc::clone(&registry))
                .build(),
        ));
        feed.lock().unwrap().sync(&mut publisher, 100).unwrap();

        let validator = Validator::new(store, ValidationMode::Platform(Arc::new(daemon.client())))
            .with_registry(&registry);
        for _ in 0..2 {
            let out = validator
                .validate(
                    &pki.leaf,
                    std::slice::from_ref(&pki.intermediate),
                    Usage::Tls,
                    pki.now,
                )
                .unwrap();
            assert!(out.accepted());
        }

        let text = daemon.client().metrics_text().unwrap();
        // The scrape request is itself timed, so the scraped text and a
        // later local render differ only in the request-latency series.
        assert!(daemon
            .render_metrics()
            .contains("nrslb_daemon_requests_total 3"));
        // Cache hit/miss: two identical validations = one miss, one hit.
        assert!(
            text.contains("nrslb_verdict_cache_misses_total 1"),
            "{text}"
        );
        assert!(text.contains("nrslb_verdict_cache_hits_total 1"), "{text}");
        // Validation outcomes and latency quantiles.
        assert!(
            text.contains("nrslb_validations_total{outcome=\"accepted\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_validation_latency_us{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_validation_latency_us_count 2"),
            "{text}"
        );
        // Daemon request metrics (2 evaluate calls; the metrics scrape
        // itself raced this render, so only a lower bound is stable).
        assert!(text.contains("nrslb_daemon_requests_total"), "{text}");
        assert!(
            text.contains("nrslb_daemon_request_latency_us{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("nrslb_daemon_queue_depth"), "{text}");
        // Subscriber state: 1 = live after the successful sync.
        assert!(
            text.contains("nrslb_rsf_subscriber_state{subscriber=\"platform\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_rsf_sync_attempts_total{subscriber=\"platform\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_rsf_last_synced_timestamp_secs{subscriber=\"platform\"} 100"),
            "{text}"
        );
    }

    #[test]
    fn client_error_on_missing_daemon() {
        let client = DaemonClient::new("/nonexistent/nrslb.sock");
        let pki = simple_chain("noclient.example");
        let err = client.evaluate(&[pki.leaf], Usage::Tls);
        assert!(matches!(err, Err(CoreError::Daemon(_))));
    }

    #[test]
    fn daemon_shuts_down_cleanly() {
        let pki = simple_chain("shutdown.example");
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let path = ephemeral_socket_path("shutdown");
        {
            let _daemon = TrustDaemon::spawn(store, &path).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "socket removed on drop");
    }

    /// Store fixture with one TLS-gated GCC attached to the chain root.
    fn tls_gated_store(pki: &nrslb_x509::testutil::SimplePki) -> RootStore {
        let mut store = RootStore::new("platform");
        store.add_trusted(pki.root.clone()).unwrap();
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
        store
    }

    #[test]
    fn batch_evaluates_many_chains_in_one_round_trip() {
        let pki = simple_chain("batch.example");
        let store = tls_gated_store(&pki);
        let registry = Arc::new(Registry::new());
        let daemon = TrustDaemon::spawn_observed(
            store,
            ephemeral_socket_path("batch"),
            2,
            Arc::clone(&registry),
        )
        .unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let conn = daemon.connection();

        // Mixed usages in one frame; verdicts must come back in
        // submission order with per-item correctness.
        let items: Vec<(&[Certificate], Usage)> = vec![
            (&chain, Usage::Tls),
            (&chain, Usage::SMime),
            (&chain, Usage::Tls),
        ];
        let batches = conn.evaluate_batch(&items).unwrap();
        assert_eq!(batches.len(), 3);
        for (i, (_, usage)) in items.iter().enumerate() {
            assert_eq!(batches[i].len(), 1, "item {i}");
            assert_eq!(&*batches[i][0].gcc_name, "tls-only");
            assert_eq!(batches[i][0].accepted, *usage == Usage::Tls, "item {i}");
        }

        // An empty batch is a valid (if pointless) request.
        assert!(conn.evaluate_batch(&[]).unwrap().is_empty());

        // The client rejects oversized batches before touching the wire.
        let oversized: Vec<(&[Certificate], Usage)> = (0..=MAX_BATCH as usize)
            .map(|_| (&chain[..], Usage::Tls))
            .collect();
        assert!(matches!(
            conn.evaluate_batch(&oversized),
            Err(CoreError::Daemon(_))
        ));

        // Batch sizes were observed: two batch requests (3 chains, 0).
        let text = daemon.render_metrics();
        assert!(text.contains("nrslb_daemon_batch_size_count 2"), "{text}");
    }

    #[test]
    fn cert_cache_parses_each_der_once_across_requests() {
        let pki = simple_chain("certcache-daemon.example");
        let store = tls_gated_store(&pki);
        let daemon = TrustDaemon::spawn(store, ephemeral_socket_path("certcache")).unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let conn = daemon.connection();

        assert!(conn.evaluate(&chain, Usage::Tls).unwrap()[0].accepted);
        // First request: three certs, all parse-cache misses.
        assert_eq!(daemon.cert_cache().misses(), 3);
        assert_eq!(daemon.cert_cache().hits(), 0);

        // Repeats of the same wire bytes never touch the DER parser.
        for _ in 0..2 {
            assert!(conn.evaluate(&chain, Usage::Tls).unwrap()[0].accepted);
        }
        assert_eq!(daemon.cert_cache().misses(), 3);
        assert_eq!(daemon.cert_cache().hits(), 6);
    }

    #[test]
    fn batch_dedups_repeated_chains_by_content() {
        let pki = simple_chain("batchdedup.example");
        let store = tls_gated_store(&pki);
        let daemon = TrustDaemon::spawn(store, ephemeral_socket_path("batchdedup")).unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];
        let conn = daemon.connection();

        // Four copies of the same (chain, usage) plus one distinct
        // usage: two distinct evaluations, five verdict lists.
        let items: Vec<(&[Certificate], Usage)> = vec![
            (&chain, Usage::Tls),
            (&chain, Usage::Tls),
            (&chain, Usage::SMime),
            (&chain, Usage::Tls),
            (&chain, Usage::Tls),
        ];
        let batches = conn.evaluate_batch(&items).unwrap();
        assert_eq!(batches.len(), 5);
        for (i, (_, usage)) in items.iter().enumerate() {
            assert_eq!(batches[i][0].accepted, *usage == Usage::Tls, "item {i}");
        }
        // The duplicates were answered by cloning, not re-evaluation:
        // the verdict cache saw exactly the two distinct items (both
        // misses, no hits — dedup short-circuits before the oracle).
        assert_eq!(daemon.oracle().cache().misses(), 2);
        assert_eq!(daemon.oracle().cache().hits(), 0);
    }

    #[test]
    fn keep_alive_connection_reuses_socket_and_reconnects_after_restart() {
        let pki = simple_chain("keepalive.example");
        let store = tls_gated_store(&pki);
        let path = ephemeral_socket_path("keepalive");
        let chain = vec![pki.leaf, pki.intermediate, pki.root];

        let daemon = TrustDaemon::spawn(store.clone(), &path).unwrap();
        let conn = daemon.connection();
        // Two sequential evaluations ride the same connection: the
        // daemon's request counter advances but only one connection was
        // ever queued (queue depth gauge saw a single accept).
        for _ in 0..2 {
            let verdicts = conn.evaluate(&chain, Usage::Tls).unwrap();
            assert!(verdicts[0].accepted);
        }
        assert!(daemon
            .render_metrics()
            .contains("nrslb_daemon_requests_total 2"));

        // Restart the daemon at the same path: the cached stream is now
        // stale, and the next request must transparently reconnect.
        drop(daemon);
        let daemon = TrustDaemon::spawn(store, &path).unwrap();
        let verdicts = conn.evaluate(&chain, Usage::SMime).unwrap();
        assert!(!verdicts[0].accepted);
        drop(daemon);

        // With no daemon at all, the reconnect attempt surfaces a final
        // error rather than hanging.
        assert!(matches!(
            conn.evaluate(&chain, Usage::Tls),
            Err(CoreError::Daemon(_))
        ));
    }

    #[test]
    fn queue_depth_returns_to_zero_after_connections_close() {
        let pki = simple_chain("queuedepth.example");
        let store = tls_gated_store(&pki);
        let registry = Arc::new(Registry::new());
        let daemon = TrustDaemon::spawn_observed(
            store,
            ephemeral_socket_path("queuedepth"),
            2,
            Arc::clone(&registry),
        )
        .unwrap();
        let chain = vec![pki.leaf, pki.intermediate, pki.root];

        // Hammer the daemon from several short-lived clients so the
        // bounded queue actually fills and drains.
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let client = daemon.client();
                let chain = &chain;
                scope.spawn(move || {
                    for _ in 0..5 {
                        client.evaluate(chain, Usage::Tls).unwrap();
                    }
                });
            }
        });

        // Every QueuedConn was dropped (worker finished or queue torn
        // down), so the gauge must read exactly zero — the RAII guard
        // decrements on every exit path.
        let text = daemon.render_metrics();
        assert!(text.contains("nrslb_daemon_queue_depth 0"), "{text}");
        assert!(text.contains("nrslb_daemon_requests_total 30"), "{text}");
    }
}
