//! Contention-free caches for the validation fast path.
//!
//! The trust daemon's workers — and every co-resident validator — share
//! two memoization structures on the hot path:
//!
//! * the [`VerdictCache`], a bounded LRU of GCC verdicts keyed by
//!   `(chain, GCC source, usage)`, and
//! * the [`SigMemo`], a bounded memo of hash-based-signature
//!   verification results keyed by `(certificate fingerprint, issuer
//!   SPKI digest)` — the dominant per-chain cost (a WOTS+/XMSS
//!   verification is thousands of SHA-256 compressions), paid once per
//!   `(cert, issuer)` edge instead of once per validation.
//!
//! Both are built on one N-way sharded LRU: keys hash to a shard, each
//! shard owns a private `parking_lot` lock, and aggregate statistics are
//! lock-free atomics. Under concurrent load no two operations on
//! different shards ever contend, so throughput scales with worker
//! count instead of serializing on one lock (the pre-sharding design).
//!
//! ## Semantics vs a single-lock LRU
//!
//! A sharded cache with `S` shards and capacity `C` behaves exactly
//! like `S` independent single-lock LRUs of capacity `⌈C/S⌉` each:
//! lookups, stored values, and hit/miss accounting are identical to the
//! single-lock design, but recency (and therefore *which* entry is
//! evicted under pressure) is tracked per shard, not globally. With
//! `shards = 1` the cache *is* the old single-lock design — that
//! configuration is kept as the benchmark ablation and as the oracle
//! for the equivalence proptest (`tests/verdict_cache.rs`).

use nrslb_crypto::sha256::Digest;
use nrslb_rootstore::Usage;
use nrslb_rsf::TaintSet;
use nrslb_x509::Certificate;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default shard count for the hot-path caches. Eight shards keep the
/// collision probability for the daemon's default eight workers low
/// (two workers contend only when their keys land in the same shard)
/// without fragmenting small caches into uselessly tiny LRUs.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Default capacity of the signature-verification memo: one entry per
/// distinct `(certificate, issuer)` edge, 8192 edges ≈ every chain a
/// busy daemon sees between root-store updates.
pub const DEFAULT_SIG_MEMO_CAPACITY: usize = 8192;

/// One shard: a bounded LRU guarded by its own lock.
struct Shard<K, V> {
    inner: Mutex<ShardInner<K, V>>,
}

struct ShardInner<K, V> {
    map: HashMap<K, (V, u64)>,
    /// Recency order: stamp -> key, oldest first.
    order: BTreeMap<u64, K>,
    clock: u64,
}

impl<K, V> Shard<K, V> {
    fn new() -> Shard<K, V> {
        Shard {
            inner: Mutex::new(ShardInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
            }),
        }
    }
}

/// An N-way sharded, bounded, thread-safe LRU map.
///
/// Keys hash to a shard; every operation locks exactly one shard. The
/// aggregate statistics (`hits`, `misses`, `evictions`, `len`) are
/// relaxed atomics updated inside the shard's critical section, so
/// totals are exact once writers quiesce.
pub struct ShardedLru<K, V> {
    shards: Vec<Shard<K, V>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
}

impl<K: Hash + Eq + Copy, V: Clone> ShardedLru<K, V> {
    /// A map of at least `capacity` total entries split across `shards`
    /// shards (each shard holds `⌈capacity/shards⌉`, at least 1).
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<K, V> {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity (shard capacity × shard count; the requested
    /// capacity rounded up to a multiple of the shard count).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// The shard index `key` maps to.
    pub fn shard_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Look up `key`, marking it most-recently-used in its shard.
    /// Returns the shard index alongside the value so callers can
    /// attribute per-shard metrics without re-hashing.
    pub fn get_indexed(&self, key: &K) -> (usize, Option<V>) {
        let idx = self.shard_of(key);
        let mut inner = self.shards[idx].inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let ShardInner { map, order, .. } = &mut *inner;
        let out = match map.get_mut(key) {
            Some((value, stamp)) => {
                order.remove(stamp);
                *stamp = clock;
                order.insert(clock, *key);
                let value = value.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        (idx, out)
    }

    /// Look up `key`, marking it most-recently-used in its shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_indexed(key).1
    }

    /// Look up `key` *without* counting a hit or miss and without
    /// touching the shard's recency order. This is the probe for the
    /// reactor's inline cost guard: deciding *where* to execute a
    /// request must not perturb the statistics or eviction behavior
    /// the execution itself will produce, or the two dispatch paths
    /// would stop being observationally identical.
    pub fn peek(&self, key: &K) -> Option<V> {
        let idx = self.shard_of(key);
        let inner = self.shards[idx].inner.lock();
        inner.map.get(key).map(|(value, _)| value.clone())
    }

    /// Insert (or refresh) `key`, evicting the shard's least-recently-
    /// used entry when the shard is full. Returns the shard index and
    /// how many entries were evicted.
    pub fn insert_indexed(&self, key: K, value: V) -> (usize, u64) {
        let (idx, evicted) = self.insert_evicting(key, value);
        (idx, evicted.len() as u64)
    }

    /// [`ShardedLru::insert_indexed`], additionally returning the keys
    /// the LRU policy pushed out — callers maintaining side indexes
    /// (e.g. the verdict cache's taint index) must learn which entries
    /// silently disappeared.
    pub fn insert_evicting(&self, key: K, value: V) -> (usize, Vec<K>) {
        let idx = self.shard_of(&key);
        let mut inner = self.shards[idx].inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let ShardInner { map, order, .. } = &mut *inner;
        if let Some((stored, stamp)) = map.get_mut(&key) {
            *stored = value;
            order.remove(stamp);
            *stamp = clock;
            order.insert(clock, key);
            return (idx, Vec::new());
        }
        let mut evicted = Vec::new();
        while map.len() >= self.shard_capacity {
            let Some((_, oldest)) = order.pop_first() else {
                break;
            };
            map.remove(&oldest);
            evicted.push(oldest);
        }
        map.insert(key, (value, clock));
        order.insert(clock, key);
        if !evicted.is_empty() {
            self.evictions
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            self.entries
                .fetch_sub(evicted.len() as u64, Ordering::Relaxed);
        }
        self.entries.fetch_add(1, Ordering::Relaxed);
        (idx, evicted)
    }

    /// Insert (or refresh) `key`; see [`ShardedLru::insert_indexed`].
    pub fn insert(&self, key: K, value: V) {
        self.insert_indexed(key, value);
    }

    /// Remove `key` from its shard; returns whether it was present.
    /// Targeted invalidation, not an LRU eviction — it does not count
    /// toward [`ShardedLru::evictions`].
    pub fn remove(&self, key: &K) -> bool {
        let idx = self.shard_of(key);
        let mut inner = self.shards[idx].inner.lock();
        let ShardInner { map, order, .. } = &mut *inner;
        match map.remove(key) {
            Some((_, stamp)) => {
                order.remove(&stamp);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Drop every entry in every shard (retaining allocations); returns
    /// how many entries were removed. Like [`ShardedLru::remove`], this
    /// is invalidation, not LRU eviction.
    pub fn clear(&self) -> u64 {
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            removed += inner.map.len() as u64;
            inner.map.clear();
            inner.order.clear();
        }
        self.entries.fetch_sub(removed, Ordering::Relaxed);
        removed
    }

    /// Number of stored entries across all shards.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the map so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the per-shard LRU policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// What determines a GCC verdict: the chain's content identity, the
/// GCC's content identity, and the requested usage. GCCs are pure
/// functions of these three.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// [`crate::ValidationSession::chain_key`] of the chain.
    pub chain: Digest,
    /// [`nrslb_rootstore::Gcc::source_hash`] of the constraint.
    pub gcc: Digest,
    /// The requested usage.
    pub usage: Usage,
}

/// Default capacity of the trust daemon's verdict cache.
pub const DEFAULT_VERDICT_CACHE_CAPACITY: usize = 4096;

/// Registry handles mirroring the cache's statistics, present when the
/// cache was built via [`VerdictCache::with_registry`].
struct CacheInstruments {
    hits: nrslb_obs::Counter,
    misses: nrslb_obs::Counter,
    evictions: nrslb_obs::Counter,
    invalidations: nrslb_obs::Counter,
    entries: nrslb_obs::Gauge,
    /// Per-shard hit/miss counters, indexed by shard.
    shard_hits: Vec<nrslb_obs::Counter>,
    shard_misses: Vec<nrslb_obs::Counter>,
}

/// Bidirectional index between cached verdict keys and the taint
/// digests they depend on, enabling
/// [`VerdictCache::invalidate_taint`] to evict exactly the verdicts a
/// feed delta touched instead of clearing wholesale.
#[derive(Default)]
struct TaintIndex {
    by_digest: HashMap<Digest, std::collections::HashSet<VerdictKey>>,
    by_key: HashMap<VerdictKey, Vec<Digest>>,
}

impl TaintIndex {
    /// Register `key` under `tags`, replacing any previous
    /// registration (re-inserted verdicts may carry different taints).
    fn register(&mut self, key: VerdictKey, tags: &[Digest]) {
        self.unregister(&key);
        let mut stored: Vec<Digest> = Vec::with_capacity(tags.len());
        for tag in tags {
            if stored.contains(tag) {
                continue;
            }
            stored.push(*tag);
            self.by_digest.entry(*tag).or_default().insert(key);
        }
        self.by_key.insert(key, stored);
    }

    /// Forget `key` entirely (evicted or invalidated).
    fn unregister(&mut self, key: &VerdictKey) {
        let Some(tags) = self.by_key.remove(key) else {
            return;
        };
        for tag in tags {
            if let Some(set) = self.by_digest.get_mut(&tag) {
                set.remove(key);
                if set.is_empty() {
                    self.by_digest.remove(&tag);
                }
            }
        }
    }

    /// All keys registered under `digest`, detached from that digest's
    /// bucket (the caller unregisters each key it actually evicts).
    fn take_keys(&mut self, digest: &Digest) -> Vec<VerdictKey> {
        self.by_digest
            .remove(digest)
            .map(|set| set.into_iter().collect())
            .unwrap_or_default()
    }

    fn clear(&mut self) {
        self.by_digest.clear();
        self.by_key.clear();
    }
}

/// A bounded, thread-safe, N-way sharded LRU cache of GCC verdicts.
///
/// Shared (via `Arc`) between the validator, the in-process oracle and
/// every trust-daemon worker. Each lookup or insert locks only the
/// shard its key hashes to, so concurrent workers touching different
/// chains never contend; see the module docs for the exact semantics
/// relative to a single global LRU.
pub struct VerdictCache {
    lru: ShardedLru<VerdictKey, bool>,
    /// Taint digests ↔ keys; locked before any shard lock (insert and
    /// invalidate both follow index → shard order, so the two locks
    /// never interleave in opposite orders).
    taint: Mutex<TaintIndex>,
    instruments: Option<CacheInstruments>,
}

impl std::fmt::Debug for VerdictCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VerdictCache({}/{} entries, {} shards, {} hits, {} misses)",
            self.len(),
            self.capacity(),
            self.shard_count(),
            self.hits(),
            self.misses()
        )
    }
}

impl VerdictCache {
    /// A cache of at least `capacity` entries split across
    /// [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new(capacity: usize) -> VerdictCache {
        VerdictCache::with_shards(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// A cache with an explicit shard count (at least 1). `shards = 1`
    /// reproduces the old single-lock cache exactly — the benchmark
    /// ablation and the proptest oracle.
    pub fn with_shards(capacity: usize, shards: usize) -> VerdictCache {
        VerdictCache {
            lru: ShardedLru::new(capacity, shards),
            taint: Mutex::new(TaintIndex::default()),
            instruments: None,
        }
    }

    /// A cache that also mirrors its statistics into `registry` as
    /// `nrslb_verdict_cache_{hits,misses,evictions}_total` counters, an
    /// `nrslb_verdict_cache_entries` gauge, and per-shard
    /// `nrslb_verdict_cache_shard_{hits,misses}_total{shard="i"}`
    /// counters.
    pub fn with_registry(capacity: usize, registry: &nrslb_obs::Registry) -> VerdictCache {
        VerdictCache::with_shards_and_registry(capacity, DEFAULT_CACHE_SHARDS, registry)
    }

    /// [`VerdictCache::with_registry`] with an explicit shard count.
    pub fn with_shards_and_registry(
        capacity: usize,
        shards: usize,
        registry: &nrslb_obs::Registry,
    ) -> VerdictCache {
        let mut cache = VerdictCache::with_shards(capacity, shards);
        let per_shard = |name: &str, help: &str| {
            (0..cache.lru.shard_count())
                .map(|i| registry.counter_with(name, &[("shard", &i.to_string())], help))
                .collect()
        };
        cache.instruments = Some(CacheInstruments {
            hits: registry.counter(
                "nrslb_verdict_cache_hits_total",
                "verdict-cache lookups answered from the cache",
            ),
            misses: registry.counter(
                "nrslb_verdict_cache_misses_total",
                "verdict-cache lookups that missed",
            ),
            evictions: registry.counter(
                "nrslb_verdict_cache_evictions_total",
                "verdicts evicted by the LRU policy",
            ),
            invalidations: registry.counter(
                "nrslb_verdict_cache_invalidations_total",
                "verdicts evicted by taint-targeted invalidation",
            ),
            entries: registry.gauge("nrslb_verdict_cache_entries", "verdicts currently cached"),
            shard_hits: per_shard(
                "nrslb_verdict_cache_shard_hits_total",
                "verdict-cache hits by shard",
            ),
            shard_misses: per_shard(
                "nrslb_verdict_cache_shard_misses_total",
                "verdict-cache misses by shard",
            ),
        });
        cache
    }

    /// Look up a verdict, marking the entry most-recently-used within
    /// its shard.
    pub fn get(&self, key: &VerdictKey) -> Option<bool> {
        let (shard, value) = self.lru.get_indexed(key);
        if let Some(i) = &self.instruments {
            match value {
                Some(_) => {
                    i.hits.inc();
                    i.shard_hits[shard].inc();
                }
                None => {
                    i.misses.inc();
                    i.shard_misses[shard].inc();
                }
            }
        }
        value
    }

    /// Look up a verdict *without* counting a hit or miss, touching
    /// recency, or ticking the registry mirrors — see
    /// [`ShardedLru::peek`]. Used by the inline cost guard to ask
    /// "would this request hit?" before choosing a dispatch path.
    pub fn peek(&self, key: &VerdictKey) -> Option<bool> {
        self.lru.peek(key)
    }

    /// Insert (or refresh) a verdict, evicting the shard's least-
    /// recently-used entry when the shard is full. The entry is
    /// implicitly tainted by its GCC source hash (`key.gcc`); use
    /// [`VerdictCache::insert_tainted`] to attach the chain's root and
    /// issuer identities too.
    pub fn insert(&self, key: VerdictKey, value: bool) {
        self.insert_tainted(key, value, &[]);
    }

    /// Insert (or refresh) a verdict tagged with the extra taint
    /// digests it depends on — typically the chain's root fingerprint
    /// and issuer SPKI fingerprints. `key.gcc` is always added, so
    /// every entry is at minimum invalidatable by its policy source. A
    /// later [`VerdictCache::invalidate_taint`] whose set names any of
    /// these digests evicts exactly this entry (and its fellows).
    pub fn insert_tainted(&self, key: VerdictKey, value: bool, taints: &[Digest]) {
        let mut index = self.taint.lock();
        let (_, evicted_keys) = self.lru.insert_evicting(key, value);
        for k in &evicted_keys {
            index.unregister(k);
        }
        let mut tags: Vec<Digest> = Vec::with_capacity(taints.len() + 1);
        tags.push(key.gcc);
        tags.extend_from_slice(taints);
        index.register(key, &tags);
        drop(index);
        if let Some(i) = &self.instruments {
            if !evicted_keys.is_empty() {
                i.evictions.add(evicted_keys.len() as u64);
            }
            i.entries.set(self.lru.len() as i64);
        }
    }

    /// Evict every cached verdict whose taint tags intersect `taint` —
    /// the single invalidation path for both feed-ingest flavors:
    /// precise deltas name the touched roots/GCCs/SPKIs and evict only
    /// their dependents; a snapshot fallback arrives as
    /// [`TaintSet::full`] and clears everything. An empty taint evicts
    /// nothing. Returns how many verdicts were evicted.
    pub fn invalidate_taint(&self, taint: &TaintSet) -> u64 {
        if taint.is_empty() {
            return 0;
        }
        let mut index = self.taint.lock();
        let removed = if taint.is_full() {
            index.clear();
            self.lru.clear()
        } else {
            let mut removed = 0u64;
            for digest in taint.digests() {
                for key in index.take_keys(&digest) {
                    if self.lru.remove(&key) {
                        removed += 1;
                    }
                    index.unregister(&key);
                }
            }
            removed
        };
        drop(index);
        if let Some(i) = &self.instruments {
            if removed > 0 {
                i.invalidations.add(removed);
            }
            i.entries.set(self.lru.len() as i64);
        }
        removed
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Maximum number of entries (the requested capacity rounded up to
    /// a multiple of the shard count).
    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.lru.shard_count()
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.lru.hits()
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.lru.misses()
    }

    /// Verdicts evicted by the LRU policy so far.
    pub fn evictions(&self) -> u64 {
        self.lru.evictions()
    }
}

/// Key of one memoized signature verification: the signed certificate's
/// content identity and the verifying key's identity.
///
/// The certificate fingerprint covers the full DER — TBS *and*
/// signature bits — and the issuer component is the SPKI digest
/// ([`nrslb_crypto::hbs::PublicKey::fingerprint`], which hashes the
/// height-prefixed key serialization, a different domain than
/// certificate fingerprints). The pair therefore fully determines the
/// `(message, signature, key)` triple handed to `hbs::verify`, so a
/// memoized result can never alias a different verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SigMemoKey {
    /// Fingerprint of the signed certificate (hash of its full DER).
    pub cert: Digest,
    /// Digest of the issuer's SubjectPublicKeyInfo.
    pub issuer_spki: Digest,
}

/// A bounded memo of hash-based-signature verification results.
///
/// WOTS+/XMSS verification is the dominant cost of a cold chain
/// (thousands of SHA-256 compressions per signature); verification is a
/// pure function of `(cert DER, issuer key)`, so the result is safe to
/// reuse across validations, sessions, and daemon clients. Negative
/// results are memoized too — a forged signature stays forged.
pub struct SigMemo {
    lru: ShardedLru<SigMemoKey, bool>,
    instruments: Option<MemoInstruments>,
}

struct MemoInstruments {
    hits: nrslb_obs::Counter,
    misses: nrslb_obs::Counter,
}

impl std::fmt::Debug for SigMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SigMemo({}/{} entries, {} hits, {} misses)",
            self.lru.len(),
            self.lru.capacity(),
            self.hits(),
            self.misses()
        )
    }
}

impl Default for SigMemo {
    fn default() -> SigMemo {
        SigMemo::new(DEFAULT_SIG_MEMO_CAPACITY)
    }
}

impl SigMemo {
    /// A memo of at least `capacity` entries, sharded like the verdict
    /// cache.
    pub fn new(capacity: usize) -> SigMemo {
        SigMemo {
            lru: ShardedLru::new(capacity, DEFAULT_CACHE_SHARDS),
            instruments: None,
        }
    }

    /// A memo that also mirrors its statistics into `registry` as
    /// `nrslb_sig_memo_{hits,misses}_total`.
    pub fn with_registry(capacity: usize, registry: &nrslb_obs::Registry) -> SigMemo {
        let mut memo = SigMemo::new(capacity);
        memo.instruments = Some(MemoInstruments {
            hits: registry.counter(
                "nrslb_sig_memo_hits_total",
                "signature verifications answered from the memo",
            ),
            misses: registry.counter(
                "nrslb_sig_memo_misses_total",
                "signature verifications computed and memoized",
            ),
        });
        memo
    }

    /// Was `cert` signed by `issuer`? Answers from the memo when the
    /// `(cert, issuer key)` edge was verified before; otherwise runs
    /// the full hash-based verification and memoizes the result.
    pub fn verify_signed_by(&self, cert: &Certificate, issuer: &Certificate) -> bool {
        let key = SigMemoKey {
            cert: cert.fingerprint(),
            issuer_spki: issuer.public_key().fingerprint(),
        };
        if let Some(cached) = self.lru.get(&key) {
            if let Some(i) = &self.instruments {
                i.hits.inc();
            }
            return cached;
        }
        let valid = cert.verify_signed_by(issuer).is_ok();
        self.lru.insert(key, valid);
        if let Some(i) = &self.instruments {
            i.misses.inc();
        }
        valid
    }

    /// Verifications answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.lru.hits()
    }

    /// Verifications computed (and memoized) so far.
    pub fn misses(&self) -> u64 {
        self.lru.misses()
    }

    /// Number of memoized `(cert, issuer)` edges.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

/// Default capacity of the daemon's parsed-certificate cache: one entry
/// per distinct certificate DER, sized to cover every cert a busy
/// daemon sees between root-store updates (leaves churn; issuers
/// repeat).
pub const DEFAULT_CERT_CACHE_CAPACITY: usize = 8192;

/// A bounded memo of parsed certificates, keyed by a fast
/// non-cryptographic hash of the raw DER and verified by byte equality.
///
/// Parsing is a pure function of the DER bytes, so repeat wire bytes —
/// the steady state of a busy daemon — can skip the parser entirely.
/// The lookup is deliberately *not* keyed by SHA-256: hashing a
/// multi-kilobyte hash-based-signature certificate cryptographically
/// costs more than the rest of a warm request combined. Instead the key
/// is a 64-bit FxHash of the DER, and a probe only counts as a hit when
/// the cached certificate's DER is byte-identical to the probe bytes —
/// correctness never rests on the weak hash, a collision merely
/// degrades to a fresh parse. A hit returns a handle (an `Arc` clone)
/// whose fingerprint, hex form, and interned symbol were memoized by
/// earlier requests, so the warm path recomputes none of them.
pub struct ParsedCertCache {
    lru: ShardedLru<u64, Certificate>,
}

impl std::fmt::Debug for ParsedCertCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ParsedCertCache({}/{} entries, {} hits, {} misses)",
            self.lru.len(),
            self.lru.capacity(),
            self.hits(),
            self.misses()
        )
    }
}

impl Default for ParsedCertCache {
    fn default() -> ParsedCertCache {
        ParsedCertCache::new(DEFAULT_CERT_CACHE_CAPACITY)
    }
}

impl ParsedCertCache {
    /// A cache of at least `capacity` parsed certificates, sharded like
    /// the verdict cache.
    pub fn new(capacity: usize) -> ParsedCertCache {
        ParsedCertCache {
            lru: ShardedLru::new(capacity, DEFAULT_CACHE_SHARDS),
        }
    }

    /// The cache's lookup key for `der`: a 64-bit FxHash of the bytes.
    /// Exposed so a probe ([`ParsedCertCache::peek_keyed`]) and its
    /// later commit ([`ParsedCertCache::parse_keyed`]) can share one
    /// hash pass — hashing the DER is the dominant cost of a warm
    /// lookup, and the reactor's inline path must not pay it twice.
    pub fn key_of(der: &[u8]) -> u64 {
        let mut h = nrslb_datalog::intern::FxHasher::default();
        std::hash::Hasher::write(&mut h, der);
        std::hash::Hasher::finish(&h)
    }

    /// Parse `der`, answering from the cache when these exact bytes
    /// were parsed before (verified by byte comparison, so an FxHash
    /// collision can never alias two certificates).
    pub fn parse(&self, der: &[u8]) -> Result<Certificate, nrslb_x509::X509Error> {
        self.parse_keyed(ParsedCertCache::key_of(der), der)
    }

    /// [`ParsedCertCache::parse`] with a precomputed
    /// [`ParsedCertCache::key_of`] key, for callers that already hashed
    /// `der` during a probe.
    pub fn parse_keyed(&self, key: u64, der: &[u8]) -> Result<Certificate, nrslb_x509::X509Error> {
        if let Some(cert) = self.lru.get(&key) {
            if cert.to_der() == der {
                return Ok(cert);
            }
        }
        let cert = Certificate::from_der(der)?;
        self.lru.insert(key, cert.clone());
        Ok(cert)
    }

    /// Return the cached parse of exactly these DER bytes, if present,
    /// *without* counting a hit or miss or touching recency — see
    /// [`ShardedLru::peek`]. A `None` says nothing about parseability,
    /// only that the inline probe cannot prove the parse is free.
    pub fn peek(&self, der: &[u8]) -> Option<Certificate> {
        self.peek_keyed(ParsedCertCache::key_of(der), der)
    }

    /// [`ParsedCertCache::peek`] with a precomputed
    /// [`ParsedCertCache::key_of`] key.
    pub fn peek_keyed(&self, key: u64, der: &[u8]) -> Option<Certificate> {
        let cert = self.lru.peek(&key)?;
        (cert.to_der() == der).then_some(cert)
    }

    /// Parses answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.lru.hits()
    }

    /// Parses computed (and cached) so far.
    pub fn misses(&self) -> u64 {
        self.lru.misses()
    }

    /// Number of cached certificates.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_x509::testutil::simple_chain;

    fn key(n: u8) -> VerdictKey {
        VerdictKey {
            chain: Digest([n; 32]),
            gcc: Digest([n.wrapping_add(1); 32]),
            usage: Usage::Tls,
        }
    }

    #[test]
    fn sharded_capacity_rounds_up() {
        let cache = VerdictCache::with_shards(10, 8);
        assert_eq!(cache.capacity(), 16); // ceil(10/8) = 2 per shard
        assert_eq!(cache.shard_count(), 8);
        let single = VerdictCache::with_shards(10, 1);
        assert_eq!(single.capacity(), 10);
    }

    #[test]
    fn sharded_round_trip_and_stats() {
        let cache = VerdictCache::new(64);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), true);
        cache.insert(key(2), false);
        assert_eq!(cache.get(&key(1)), Some(true));
        assert_eq!(cache.get(&key(2)), Some(false));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn single_shard_evicts_global_lru() {
        let cache = VerdictCache::with_shards(2, 1);
        cache.insert(key(1), true);
        cache.insert(key(2), true);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(&key(1)), Some(true));
        cache.insert(key(3), true);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(2)), None, "LRU entry evicted");
        assert_eq!(cache.get(&key(1)), Some(true));
        assert_eq!(cache.get(&key(3)), Some(true));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn per_shard_metrics_cover_every_lookup() {
        let registry = nrslb_obs::Registry::new();
        let cache = VerdictCache::with_shards_and_registry(64, 4, &registry);
        for n in 0..16u8 {
            assert_eq!(cache.get(&key(n)), None);
            cache.insert(key(n), true);
            assert_eq!(cache.get(&key(n)), Some(true));
        }
        let text = registry.render_text();
        assert!(text.contains("nrslb_verdict_cache_hits_total 16"), "{text}");
        assert!(
            text.contains("nrslb_verdict_cache_misses_total 16"),
            "{text}"
        );
        // Per-shard series sum to the aggregate.
        let sum_series = |name: &str| -> u64 {
            text.lines()
                .filter(|l| l.starts_with(&format!("{name}{{")))
                .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum()
        };
        assert_eq!(sum_series("nrslb_verdict_cache_shard_hits_total"), 16);
        assert_eq!(sum_series("nrslb_verdict_cache_shard_misses_total"), 16);
    }

    #[test]
    fn memo_pays_verification_once_per_edge() {
        let pki = simple_chain("memo.example");
        let memo = SigMemo::new(16);
        assert!(memo.verify_signed_by(&pki.leaf, &pki.intermediate));
        assert!(memo.verify_signed_by(&pki.leaf, &pki.intermediate));
        assert!(memo.verify_signed_by(&pki.intermediate, &pki.root));
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 2);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn memo_caches_negative_results() {
        let pki = simple_chain("memo-neg.example");
        let memo = SigMemo::new(16);
        assert!(!memo.verify_signed_by(&pki.leaf, &pki.root), "wrong issuer");
        assert!(!memo.verify_signed_by(&pki.leaf, &pki.root));
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        // The correct edge is a different key and still verifies.
        assert!(memo.verify_signed_by(&pki.leaf, &pki.intermediate));
    }

    #[test]
    fn parsed_cert_cache_parses_once_per_der() {
        let pki = simple_chain("certcache.example");
        let der = pki.leaf.to_der().to_vec();
        let cache = ParsedCertCache::new(16);
        let a = cache.parse(&der).unwrap();
        let b = cache.parse(&der).unwrap();
        assert_eq!(a.fingerprint(), pki.leaf.fingerprint());
        assert_eq!(b.fingerprint(), pki.leaf.fingerprint());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // A different certificate is a separate entry.
        let other = cache.parse(pki.intermediate.to_der()).unwrap();
        assert_eq!(other.fingerprint(), pki.intermediate.fingerprint());
        assert_eq!(cache.len(), 2);
        // Garbage DER is not cached.
        assert!(cache.parse(b"not-a-cert").is_err());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn memo_distinguishes_issuer_keys() {
        let a = simple_chain("memo-a.example");
        let b = simple_chain("memo-b.example");
        let memo = SigMemo::new(16);
        assert!(memo.verify_signed_by(&a.leaf, &a.intermediate));
        // Same leaf, different issuer key: separate entry, fresh verify.
        assert!(!memo.verify_signed_by(&a.leaf, &b.intermediate));
        assert_eq!(memo.misses(), 2);
    }
}
