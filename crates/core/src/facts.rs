//! Conversion of certificate chains into Datalog fact bases.
//!
//! The fact schema follows the predicates used in the paper's listings,
//! so Listings 1–3 run verbatim against converted chains:
//!
//! | predicate | meaning |
//! |---|---|
//! | `chain(Chain)` | the chain handle |
//! | `leaf(Chain, Cert)` | `Cert` is the chain's leaf |
//! | `root(Chain, Cert)` | `Cert` is the chain's root |
//! | `intermediate(Chain, Cert)` | `Cert` is an intermediate |
//! | `chainIndex(Chain, I, Cert)` | position `I` (0 = leaf) |
//! | `signs(Issuer, Subject)` | adjacency: `Issuer` signed `Subject` |
//! | `hash(Cert, Hex)` | SHA-256 fingerprint, lowercase hex |
//! | `notBefore(Cert, T)` / `notAfter(Cert, T)` | validity (Unix secs) |
//! | `subject(Cert, S)` / `issuer(Cert, S)` | display-form names |
//! | `serial(Cert, S)` | decimal string (serials exceed i64) |
//! | `EV(Cert)` | asserts the CA/B EV policy |
//! | `isCA(Cert)` / `pathLen(Cert, N)` | BasicConstraints |
//! | `san(Cert, Name)` | one fact per SAN DNS name |
//! | `sanTld(Cert, Tld)` | the TLD of each SAN (precomputed; see §5.2) |
//! | `keyUsage(Cert, U)` | one fact per named KeyUsage bit |
//! | `extendedKeyUsage(Cert, P)` | one per EKU purpose (`"id-kp-serverAuth"`...) |
//! | `permittedSubtree(Cert, D)` / `excludedSubtree(Cert, D)` | name constraints |
//!
//! Certificate handles are the fingerprint hex itself, which is why
//! Listing 2's `hash(Int, H), exempt(H)` works unchanged.
//!
//! Facts are emitted **pre-interned**: schema predicates are interned
//! once per process (`fact_syms`), and each certificate's handle
//! symbol is interned once per certificate and cached on the
//! certificate itself ([`cert_sym`]), so converting a chain hashes
//! small `u32` ids instead of rebuilding and re-hashing hex strings.

use nrslb_datalog::intern::{ITuple, IVal, Sym};
use nrslb_datalog::{intern, Database, Program};
use nrslb_der::Oid;
use nrslb_rootstore::Usage;
use nrslb_x509::Certificate;
use std::sync::{Arc, OnceLock};

/// Pre-interned symbols for every schema predicate (plus the `valid`
/// verdict predicate and the usage constants), resolved once per
/// process.
pub(crate) struct FactSyms {
    pub(crate) chain: Sym,
    pub(crate) leaf: Sym,
    pub(crate) root: Sym,
    pub(crate) intermediate: Sym,
    pub(crate) chain_index: Sym,
    pub(crate) signs: Sym,
    pub(crate) hash: Sym,
    pub(crate) not_before: Sym,
    pub(crate) not_after: Sym,
    pub(crate) subject: Sym,
    pub(crate) issuer: Sym,
    pub(crate) serial: Sym,
    pub(crate) ev: Sym,
    pub(crate) is_ca: Sym,
    pub(crate) path_len: Sym,
    pub(crate) san: Sym,
    pub(crate) san_tld: Sym,
    pub(crate) key_usage: Sym,
    pub(crate) extended_key_usage: Sym,
    pub(crate) permitted_subtree: Sym,
    pub(crate) excluded_subtree: Sym,
    pub(crate) valid: Sym,
    tls: Sym,
    smime: Sym,
}

impl FactSyms {
    /// The interned symbol for a usage's Datalog constant.
    pub(crate) fn usage(&self, usage: Usage) -> Sym {
        match usage {
            Usage::Tls => self.tls,
            Usage::SMime => self.smime,
        }
    }
}

/// The process-wide schema symbols.
pub(crate) fn fact_syms() -> &'static FactSyms {
    static SYMS: OnceLock<FactSyms> = OnceLock::new();
    SYMS.get_or_init(|| FactSyms {
        chain: intern("chain"),
        leaf: intern("leaf"),
        root: intern("root"),
        intermediate: intern("intermediate"),
        chain_index: intern("chainIndex"),
        signs: intern("signs"),
        hash: intern("hash"),
        not_before: intern("notBefore"),
        not_after: intern("notAfter"),
        subject: intern("subject"),
        issuer: intern("issuer"),
        serial: intern("serial"),
        ev: intern("EV"),
        is_ca: intern("isCA"),
        path_len: intern("pathLen"),
        san: intern("san"),
        san_tld: intern("sanTld"),
        key_usage: intern("keyUsage"),
        extended_key_usage: intern("extendedKeyUsage"),
        permitted_subtree: intern("permittedSubtree"),
        excluded_subtree: intern("excludedSubtree"),
        valid: intern("valid"),
        tls: intern(Usage::Tls.as_datalog()),
        smime: intern(Usage::SMime.as_datalog()),
    })
}

/// The Datalog handle for a certificate: its SHA-256 fingerprint in hex.
///
/// The hex is rendered at most once per certificate and shared by every
/// clone (see [`Certificate::fingerprint_hex`]); this returns a refcount
/// bump, not a fresh `String`.
pub fn cert_id(cert: &Certificate) -> Arc<str> {
    Arc::clone(cert.fingerprint_hex())
}

/// The certificate's handle as an interned symbol.
///
/// The symbol id is cached on the certificate itself after the first
/// call, so re-emitting facts for a previously seen certificate skips
/// the global symbol-table lookup entirely.
pub fn cert_sym(cert: &Certificate) -> Sym {
    match cert.symbol_token() {
        Some(token) => Sym::from_raw(token),
        None => {
            let sym = intern(cert.fingerprint_hex());
            Sym::from_raw(cert.set_symbol_token(sym.to_raw()))
        }
    }
}

/// The Datalog handle for a chain: `chain:` + the leaf's short hash.
///
/// One validation converts one chain, so the handle only needs to be
/// stable and distinct from certificate handles.
pub fn chain_id(chain: &[Certificate]) -> String {
    match chain.first() {
        Some(leaf) => format!("chain:{}", leaf.fingerprint().short()),
        None => "chain:empty".to_string(),
    }
}

fn eku_name(oid: &Oid) -> String {
    use nrslb_x509::oids;
    if *oid == oids::kp_server_auth() {
        "id-kp-serverAuth".to_string()
    } else if *oid == oids::kp_client_auth() {
        "id-kp-clientAuth".to_string()
    } else if *oid == oids::kp_email_protection() {
        "id-kp-emailProtection".to_string()
    } else {
        oid.to_string()
    }
}

fn istr(s: &str) -> IVal {
    IVal::Sym(intern(s))
}

fn fact1(db: &mut Database, pred: Sym, a: IVal) {
    db.add_ifact(pred, ITuple::from_slice(&[a]));
}

fn fact2(db: &mut Database, pred: Sym, a: IVal, b: IVal) {
    db.add_ifact(pred, ITuple::from_slice(&[a, b]));
}

fn fact3(db: &mut Database, pred: Sym, a: IVal, b: IVal, c: IVal) {
    db.add_ifact(pred, ITuple::from_slice(&[a, b, c]));
}

/// Append the facts for one certificate (independent of chain position).
pub fn cert_facts(cert: &Certificate, db: &mut Database) {
    let syms = fact_syms();
    let id = IVal::Sym(cert_sym(cert));
    // The handle *is* the hex digest, so `hash` relates it to itself.
    fact2(db, syms.hash, id, id);
    fact2(
        db,
        syms.not_before,
        id,
        IVal::Int(cert.validity().not_before),
    );
    fact2(db, syms.not_after, id, IVal::Int(cert.validity().not_after));
    fact2(db, syms.subject, id, istr(&cert.subject().to_string()));
    fact2(db, syms.issuer, id, istr(&cert.issuer().to_string()));
    fact2(db, syms.serial, id, istr(&cert.serial().to_string()));
    if cert.is_ev() {
        fact1(db, syms.ev, id);
    }
    if cert.is_ca() {
        fact1(db, syms.is_ca, id);
    }
    if let Some(n) = cert.path_len() {
        fact2(db, syms.path_len, id, IVal::Int(n as i64));
    }
    for san in cert.dns_names() {
        fact2(db, syms.san, id, istr(san));
        // TLD extraction is a string operation Datalog cannot do itself;
        // providing it as a relation lets pre-emptive GCCs (§5.2)
        // constrain issuance scope by TLD.
        if let Some(tld) = nrslb_x509::name::tld(san) {
            fact2(db, syms.san_tld, id, istr(&tld));
        }
    }
    if let Some(ku) = cert.extensions().key_usage {
        for name in ku.names() {
            fact2(db, syms.key_usage, id, istr(name));
        }
    }
    if let Some(eku) = &cert.extensions().extended_key_usage {
        for oid in &eku.0 {
            fact2(db, syms.extended_key_usage, id, istr(&eku_name(oid)));
        }
    }
    if let Some(nc) = &cert.extensions().name_constraints {
        for base in &nc.permitted {
            fact2(db, syms.permitted_subtree, id, istr(base));
        }
        for base in &nc.excluded {
            fact2(db, syms.excluded_subtree, id, istr(base));
        }
    }
}

/// Convert a complete chain (leaf first, root last) into a fact database.
///
/// This is the **direct** path: facts are constructed in memory, already
/// interned.
pub fn chain_facts(chain: &[Certificate]) -> Database {
    let mut db = Database::new();
    add_chain_facts(chain, &mut db);
    db
}

/// Append chain facts to an existing database (used by the Hammurabi mode
/// which layers policy facts on top).
pub fn add_chain_facts(chain: &[Certificate], db: &mut Database) {
    let syms = fact_syms();
    let cid = istr(&chain_id(chain));
    fact1(db, syms.chain, cid);
    for (i, cert) in chain.iter().enumerate() {
        cert_facts(cert, db);
        let id = IVal::Sym(cert_sym(cert));
        fact3(db, syms.chain_index, cid, IVal::Int(i as i64), id);
        if i == 0 {
            fact2(db, syms.leaf, cid, id);
        }
        if i == chain.len() - 1 {
            fact2(db, syms.root, cid, id);
        }
        if i != 0 && i != chain.len() - 1 {
            fact2(db, syms.intermediate, cid, id);
        }
        if i + 1 < chain.len() {
            let issuer_id = IVal::Sym(cert_sym(&chain[i + 1]));
            fact2(db, syms.signs, issuer_id, id);
        }
    }
}

/// Convert a chain via the **unoptimized** path the paper measured:
/// build facts, serialize them to Datalog text, then re-parse the text
/// into a program whose facts seed evaluation.
///
/// Returns the parsed program (facts only). Benchmark E1 compares this
/// against [`chain_facts`].
pub fn chain_facts_unoptimized(
    chain: &[Certificate],
) -> Result<Program, nrslb_datalog::DatalogError> {
    let db = chain_facts(chain);
    let text = db.to_fact_text();
    Program::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_datalog::{Engine, Val};
    use nrslb_x509::testutil::simple_chain;

    fn test_chain() -> Vec<Certificate> {
        let pki = simple_chain("facts.example");
        vec![pki.leaf, pki.intermediate, pki.root]
    }

    #[test]
    fn structural_facts() {
        let chain = test_chain();
        let db = chain_facts(&chain);
        let cid = Val::str(chain_id(&chain));
        let leaf = Val::Str(cert_id(&chain[0]));
        let mid = Val::Str(cert_id(&chain[1]));
        let root = Val::Str(cert_id(&chain[2]));

        assert!(db.contains("chain", std::slice::from_ref(&cid)));
        assert!(db.contains("leaf", &[cid.clone(), leaf.clone()]));
        assert!(db.contains("root", &[cid.clone(), root.clone()]));
        assert!(db.contains("intermediate", &[cid.clone(), mid.clone()]));
        assert!(db.contains("signs", &[mid.clone(), leaf.clone()]));
        assert!(db.contains("signs", &[root.clone(), mid.clone()]));
        assert!(!db.contains("signs", &[root, leaf]));
    }

    #[test]
    fn field_facts() {
        let chain = test_chain();
        let db = chain_facts(&chain);
        let leaf = &chain[0];
        let id = Val::Str(cert_id(leaf));
        assert!(db.contains(
            "notBefore",
            &[id.clone(), Val::int(leaf.validity().not_before)]
        ));
        assert!(db.contains("san", &[id.clone(), Val::str("facts.example")]));
        assert!(db.contains(
            "extendedKeyUsage",
            &[id.clone(), Val::str("id-kp-serverAuth")]
        ));
        assert!(db.contains("keyUsage", &[id.clone(), Val::str("digitalSignature")]));
        assert!(!db.contains("isCA", std::slice::from_ref(&id)));
        assert!(!db.contains("EV", &[id]));

        let mid = Val::Str(cert_id(&chain[1]));
        assert!(db.contains("isCA", std::slice::from_ref(&mid)));
        assert!(db.contains("pathLen", &[mid, Val::int(0)]));
    }

    #[test]
    fn hash_fact_is_own_handle() {
        // Listing 2 relies on hash(Cert, H) where H is the full hex digest.
        let chain = test_chain();
        let db = chain_facts(&chain);
        let id = cert_id(&chain[1]);
        assert!(db.contains("hash", &[Val::str(&id), Val::str(&id)]));
        assert_eq!(id.len(), 64);
    }

    #[test]
    fn cert_sym_is_stable_and_matches_handle() {
        let chain = test_chain();
        let leaf = &chain[0];
        let sym = cert_sym(leaf);
        assert_eq!(cert_sym(leaf), sym, "token cached on the certificate");
        assert_eq!(cert_sym(&leaf.clone()), sym, "shared through the Arc");
        assert_eq!(&*sym.resolve(), &*cert_id(leaf));
    }

    #[test]
    fn unoptimized_path_equals_direct_path() {
        let chain = test_chain();
        let direct = chain_facts(&chain);
        let program = chain_facts_unoptimized(&chain).unwrap();
        // Run the fact-only program to materialize its database.
        let reparsed = Engine::new(&program).unwrap().run(Database::new()).unwrap();
        assert_eq!(reparsed.len(), direct.len());
        for pred in direct.predicates() {
            for tuple in direct.tuples(&pred) {
                assert!(reparsed.contains(&pred, &tuple), "{pred}{tuple:?}");
            }
        }
    }

    #[test]
    fn listing_1_runs_on_converted_chain() {
        let chain = test_chain();
        let db = chain_facts(&chain);
        let program = Program::parse(
            r#"
            nov30th2022(1669784400).
            valid(Chain, "TLS") :-
              leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
            "#,
        )
        .unwrap();
        let out = Engine::new(&program).unwrap().run(db).unwrap();
        // testutil leaves are issued ~2022-01 (not_before = T0 - YEAR/2),
        // which is before Nov 30 2022, and are not EV.
        assert!(out.contains("valid", &[Val::str(chain_id(&chain)), Val::str("TLS")]));
    }

    #[test]
    fn two_cert_chain_has_no_intermediates() {
        let pki = simple_chain("short.example");
        let chain = vec![pki.leaf, pki.root];
        let db = chain_facts(&chain);
        assert!(db.tuples("intermediate").is_empty());
        assert_eq!(db.tuples("signs").len(), 1);
    }
}
