//! Conversion of certificate chains into Datalog fact bases.
//!
//! The fact schema follows the predicates used in the paper's listings,
//! so Listings 1–3 run verbatim against converted chains:
//!
//! | predicate | meaning |
//! |---|---|
//! | `chain(Chain)` | the chain handle |
//! | `leaf(Chain, Cert)` | `Cert` is the chain's leaf |
//! | `root(Chain, Cert)` | `Cert` is the chain's root |
//! | `intermediate(Chain, Cert)` | `Cert` is an intermediate |
//! | `chainIndex(Chain, I, Cert)` | position `I` (0 = leaf) |
//! | `signs(Issuer, Subject)` | adjacency: `Issuer` signed `Subject` |
//! | `hash(Cert, Hex)` | SHA-256 fingerprint, lowercase hex |
//! | `notBefore(Cert, T)` / `notAfter(Cert, T)` | validity (Unix secs) |
//! | `subject(Cert, S)` / `issuer(Cert, S)` | display-form names |
//! | `serial(Cert, S)` | decimal string (serials exceed i64) |
//! | `EV(Cert)` | asserts the CA/B EV policy |
//! | `isCA(Cert)` / `pathLen(Cert, N)` | BasicConstraints |
//! | `san(Cert, Name)` | one fact per SAN DNS name |
//! | `sanTld(Cert, Tld)` | the TLD of each SAN (precomputed; see §5.2) |
//! | `keyUsage(Cert, U)` | one fact per named KeyUsage bit |
//! | `extendedKeyUsage(Cert, P)` | one per EKU purpose (`"id-kp-serverAuth"`...) |
//! | `permittedSubtree(Cert, D)` / `excludedSubtree(Cert, D)` | name constraints |
//!
//! Certificate handles are the fingerprint hex itself, which is why
//! Listing 2's `hash(Int, H), exempt(H)` works unchanged.

use nrslb_datalog::{Database, Program, Val};
use nrslb_der::Oid;
use nrslb_x509::Certificate;

/// The Datalog handle for a certificate: its SHA-256 fingerprint in hex.
pub fn cert_id(cert: &Certificate) -> String {
    cert.fingerprint().to_hex()
}

/// The Datalog handle for a chain: `chain:` + the leaf's short hash.
///
/// One validation converts one chain, so the handle only needs to be
/// stable and distinct from certificate handles.
pub fn chain_id(chain: &[Certificate]) -> String {
    match chain.first() {
        Some(leaf) => format!("chain:{}", leaf.fingerprint().short()),
        None => "chain:empty".to_string(),
    }
}

fn eku_name(oid: &Oid) -> String {
    use nrslb_x509::oids;
    if *oid == oids::kp_server_auth() {
        "id-kp-serverAuth".to_string()
    } else if *oid == oids::kp_client_auth() {
        "id-kp-clientAuth".to_string()
    } else if *oid == oids::kp_email_protection() {
        "id-kp-emailProtection".to_string()
    } else {
        oid.to_string()
    }
}

/// Append the facts for one certificate (independent of chain position).
pub fn cert_facts(cert: &Certificate, db: &mut Database) {
    let id = Val::str(cert_id(cert));
    db.add_fact(
        "hash",
        vec![id.clone(), Val::str(cert.fingerprint().to_hex())],
    );
    db.add_fact(
        "notBefore",
        vec![id.clone(), Val::int(cert.validity().not_before)],
    );
    db.add_fact(
        "notAfter",
        vec![id.clone(), Val::int(cert.validity().not_after)],
    );
    db.add_fact(
        "subject",
        vec![id.clone(), Val::str(cert.subject().to_string())],
    );
    db.add_fact(
        "issuer",
        vec![id.clone(), Val::str(cert.issuer().to_string())],
    );
    db.add_fact(
        "serial",
        vec![id.clone(), Val::str(cert.serial().to_string())],
    );
    if cert.is_ev() {
        db.add_fact("EV", vec![id.clone()]);
    }
    if cert.is_ca() {
        db.add_fact("isCA", vec![id.clone()]);
    }
    if let Some(n) = cert.path_len() {
        db.add_fact("pathLen", vec![id.clone(), Val::int(n as i64)]);
    }
    for san in cert.dns_names() {
        db.add_fact("san", vec![id.clone(), Val::str(san)]);
        // TLD extraction is a string operation Datalog cannot do itself;
        // providing it as a relation lets pre-emptive GCCs (§5.2)
        // constrain issuance scope by TLD.
        if let Some(tld) = nrslb_x509::name::tld(san) {
            db.add_fact("sanTld", vec![id.clone(), Val::str(tld)]);
        }
    }
    if let Some(ku) = cert.extensions().key_usage {
        for name in ku.names() {
            db.add_fact("keyUsage", vec![id.clone(), Val::str(name)]);
        }
    }
    if let Some(eku) = &cert.extensions().extended_key_usage {
        for oid in &eku.0 {
            db.add_fact(
                "extendedKeyUsage",
                vec![id.clone(), Val::str(eku_name(oid))],
            );
        }
    }
    if let Some(nc) = &cert.extensions().name_constraints {
        for base in &nc.permitted {
            db.add_fact("permittedSubtree", vec![id.clone(), Val::str(base)]);
        }
        for base in &nc.excluded {
            db.add_fact("excludedSubtree", vec![id.clone(), Val::str(base)]);
        }
    }
}

/// Convert a complete chain (leaf first, root last) into a fact database.
///
/// This is the **direct** path: facts are constructed in memory.
pub fn chain_facts(chain: &[Certificate]) -> Database {
    let mut db = Database::new();
    add_chain_facts(chain, &mut db);
    db
}

/// Append chain facts to an existing database (used by the Hammurabi mode
/// which layers policy facts on top).
pub fn add_chain_facts(chain: &[Certificate], db: &mut Database) {
    let cid = Val::str(chain_id(chain));
    db.add_fact("chain", vec![cid.clone()]);
    for (i, cert) in chain.iter().enumerate() {
        cert_facts(cert, db);
        let id = Val::str(cert_id(cert));
        db.add_fact(
            "chainIndex",
            vec![cid.clone(), Val::int(i as i64), id.clone()],
        );
        if i == 0 {
            db.add_fact("leaf", vec![cid.clone(), id.clone()]);
        }
        if i == chain.len() - 1 {
            db.add_fact("root", vec![cid.clone(), id.clone()]);
        }
        if i != 0 && i != chain.len() - 1 {
            db.add_fact("intermediate", vec![cid.clone(), id.clone()]);
        }
        if i + 1 < chain.len() {
            let issuer_id = Val::str(cert_id(&chain[i + 1]));
            db.add_fact("signs", vec![issuer_id, id]);
        }
    }
}

/// Convert a chain via the **unoptimized** path the paper measured:
/// build facts, serialize them to Datalog text, then re-parse the text
/// into a program whose facts seed evaluation.
///
/// Returns the parsed program (facts only). Benchmark E1 compares this
/// against [`chain_facts`].
pub fn chain_facts_unoptimized(
    chain: &[Certificate],
) -> Result<Program, nrslb_datalog::DatalogError> {
    let db = chain_facts(chain);
    let text = db.to_fact_text();
    Program::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_datalog::Engine;
    use nrslb_x509::testutil::simple_chain;

    fn test_chain() -> Vec<Certificate> {
        let pki = simple_chain("facts.example");
        vec![pki.leaf, pki.intermediate, pki.root]
    }

    #[test]
    fn structural_facts() {
        let chain = test_chain();
        let db = chain_facts(&chain);
        let cid = Val::str(chain_id(&chain));
        let leaf = Val::str(cert_id(&chain[0]));
        let mid = Val::str(cert_id(&chain[1]));
        let root = Val::str(cert_id(&chain[2]));

        assert!(db.contains("chain", std::slice::from_ref(&cid)));
        assert!(db.contains("leaf", &[cid.clone(), leaf.clone()]));
        assert!(db.contains("root", &[cid.clone(), root.clone()]));
        assert!(db.contains("intermediate", &[cid.clone(), mid.clone()]));
        assert!(db.contains("signs", &[mid.clone(), leaf.clone()]));
        assert!(db.contains("signs", &[root.clone(), mid.clone()]));
        assert!(!db.contains("signs", &[root, leaf]));
    }

    #[test]
    fn field_facts() {
        let chain = test_chain();
        let db = chain_facts(&chain);
        let leaf = &chain[0];
        let id = Val::str(cert_id(leaf));
        assert!(db.contains(
            "notBefore",
            &[id.clone(), Val::int(leaf.validity().not_before)]
        ));
        assert!(db.contains("san", &[id.clone(), Val::str("facts.example")]));
        assert!(db.contains(
            "extendedKeyUsage",
            &[id.clone(), Val::str("id-kp-serverAuth")]
        ));
        assert!(db.contains("keyUsage", &[id.clone(), Val::str("digitalSignature")]));
        assert!(!db.contains("isCA", std::slice::from_ref(&id)));
        assert!(!db.contains("EV", &[id]));

        let mid = Val::str(cert_id(&chain[1]));
        assert!(db.contains("isCA", std::slice::from_ref(&mid)));
        assert!(db.contains("pathLen", &[mid, Val::int(0)]));
    }

    #[test]
    fn hash_fact_is_own_handle() {
        // Listing 2 relies on hash(Cert, H) where H is the full hex digest.
        let chain = test_chain();
        let db = chain_facts(&chain);
        let id = cert_id(&chain[1]);
        assert!(db.contains("hash", &[Val::str(&id), Val::str(&id)]));
        assert_eq!(id.len(), 64);
    }

    #[test]
    fn unoptimized_path_equals_direct_path() {
        let chain = test_chain();
        let direct = chain_facts(&chain);
        let program = chain_facts_unoptimized(&chain).unwrap();
        // Run the fact-only program to materialize its database.
        let reparsed = Engine::new(&program).unwrap().run(Database::new()).unwrap();
        assert_eq!(reparsed.len(), direct.len());
        for pred in direct.predicates() {
            for tuple in direct.tuples(pred) {
                assert!(reparsed.contains(pred, tuple), "{pred}{tuple:?}");
            }
        }
    }

    #[test]
    fn listing_1_runs_on_converted_chain() {
        let chain = test_chain();
        let db = chain_facts(&chain);
        let program = Program::parse(
            r#"
            nov30th2022(1669784400).
            valid(Chain, "TLS") :-
              leaf(Chain, Cert), \+EV(Cert), nov30th2022(T), notBefore(Cert, NB), NB < T.
            "#,
        )
        .unwrap();
        let out = Engine::new(&program).unwrap().run(db).unwrap();
        // testutil leaves are issued ~2022-01 (not_before = T0 - YEAR/2),
        // which is before Nov 30 2022, and are not EV.
        assert!(out.contains("valid", &[Val::str(chain_id(&chain)), Val::str("TLS")]));
    }

    #[test]
    fn two_cert_chain_has_no_intermediates() {
        let pki = simple_chain("short.example");
        let chain = vec![pki.leaf, pki.root];
        let db = chain_facts(&chain);
        assert!(db.tuples("intermediate").is_empty());
        assert_eq!(db.tuples("signs").len(), 1);
    }
}
