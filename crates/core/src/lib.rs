//! # `nrslb-core` — GCC-aware certificate chain validation
//!
//! This crate is the paper's primary contribution, made executable:
//!
//! * [`facts`] — conversion of certificate chains into Datalog statements
//!   (§3: "the chain in question is first converted into a form the GCC
//!   program can read"). Both the *direct* in-memory path and the
//!   *unoptimized* text path (serialize to Datalog source, re-parse) are
//!   implemented; the latter reproduces the paper's ~2.4 ms conversion
//!   measurement (experiment E1).
//! * [`chain`] — candidate-chain construction from a leaf, an intermediate
//!   pool and a root store, with backtracking.
//! * [`validate`] — the validator: standard X.509 path checks (expiry,
//!   signatures, CA bit, path length, name constraints, EKU) plus the
//!   paper's extension — when a candidate root carries GCCs, they are
//!   executed and the chain is rejected unless **all** attached GCCs
//!   accept (§3.1); on rejection the builder *continues* with the next
//!   candidate chain, exactly as the paper prescribes.
//! * [`gcc_eval`] — the GCC execution engine: facts + program →
//!   `valid(Chain, Usage)?`.
//! * [`session`] — compile-once / evaluate-many execution:
//!   [`ValidationSession`] freezes a chain's facts behind an `Arc` so
//!   every GCC (and usage) shares one fact base, and [`VerdictCache`]
//!   memoizes `(chain, GCC, usage)` verdicts in a bounded LRU shared by
//!   the validator and the trust daemon's workers.
//! * [`cache`] — the contention-free hot-path caches: the N-way sharded
//!   [`VerdictCache`] and the [`SigMemo`] that memoizes hash-based
//!   signature verifications per `(cert, issuer)` edge.
//! * [`daemon`] — the *platform execution* deployment mode (§3.1): a
//!   Unix-domain-socket trust daemon evaluating GCCs out of process, with
//!   a length-prefixed binary protocol, batch evaluation
//!   (`OP_EVALUATE_BATCH`) and keep-alive client connections.
//! * [`hammurabi`] — the *complete validation redesign* mode (§3.1): the
//!   entire chain-validation policy expressed as one Datalog program, in
//!   the style of Hammurabi (CCS '22); GCCs are folded into the same
//!   program run.
//!
//! The three modes are selected by [`ValidationMode`]; all three produce
//! identical verdicts on the workspace's test corpora (enforced by
//! integration tests), differing only in *where* policy executes.

#![warn(missing_docs)]

pub mod cache;
pub mod chain;
pub mod daemon;
pub mod facts;
pub mod gcc_eval;
pub mod hammurabi;
pub mod metrics;
pub(crate) mod proto;
pub(crate) mod reactor;
pub mod session;
pub mod validate;

pub use cache::{
    ParsedCertCache, ShardedLru, SigMemo, SigMemoKey, DEFAULT_CACHE_SHARDS,
    DEFAULT_CERT_CACHE_CAPACITY, DEFAULT_SIG_MEMO_CAPACITY,
};
pub use chain::{ChainBuilder, ChainError};
pub use daemon::{ConnectionMode, DaemonBuilder, DaemonClient, Engine, TrustDaemon};
pub use facts::{cert_id, chain_facts, chain_facts_unoptimized, chain_id};
pub use gcc_eval::{evaluate_gcc, evaluate_gccs, GccVerdict};
pub use metrics::CoreMetrics;
pub use nrslb_rootstore::Usage;
pub use session::{ValidationSession, VerdictCache, VerdictKey};
pub use validate::{Outcome, RejectReason, ValidationMode, Validator};

use std::fmt;

/// Errors from validation machinery (distinct from a chain being
/// *rejected*, which is a normal [`Outcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A GCC failed to evaluate (budget, arithmetic error...).
    Gcc(nrslb_datalog::DatalogError),
    /// Certificate encoding/decoding failed.
    X509(nrslb_x509::X509Error),
    /// The daemon transport failed.
    Daemon(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Gcc(e) => write!(f, "GCC evaluation error: {e}"),
            CoreError::X509(e) => write!(f, "certificate error: {e}"),
            CoreError::Daemon(e) => write!(f, "trust daemon error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<nrslb_datalog::DatalogError> for CoreError {
    fn from(e: nrslb_datalog::DatalogError) -> Self {
        CoreError::Gcc(e)
    }
}

impl From<nrslb_x509::X509Error> for CoreError {
    fn from(e: nrslb_x509::X509Error) -> Self {
        CoreError::X509(e)
    }
}
