//! Registry-backed instruments for the validator and verdict cache.
//!
//! [`CoreMetrics`] pre-creates one counter per validation outcome class
//! (acceptance plus every [`RejectReason`] variant), so the hot path
//! never touches the registry lock — recording an outcome is one atomic
//! increment on a pre-fetched handle. A latency histogram timed by the
//! registry's injected clock covers each `validate` call end to end.

use crate::validate::{Outcome, RejectReason};
use nrslb_obs::{Clock, Counter, Histogram, Registry, Span};
use std::collections::HashMap;
use std::sync::Arc;

/// Every outcome class a validation can end in: `"accepted"` plus the
/// [`RejectReason::class`] of each rejection variant.
pub const OUTCOME_CLASSES: [&str; 14] = [
    "accepted",
    "no_candidate_chains",
    "expired",
    "not_yet_valid",
    "bad_signature",
    "not_ca",
    "path_len_exceeded",
    "name_constraint_violation",
    "wrong_eku",
    "usage_date_constraint",
    "hostname_mismatch",
    "revoked",
    "gcc_rejected",
    "policy_rejected",
];

/// Instrument handles for a [`Validator`](crate::Validator).
#[derive(Clone, Debug)]
pub struct CoreMetrics {
    /// `nrslb_validations_total{outcome=...}`, one handle per class.
    outcomes: HashMap<&'static str, Counter>,
    /// Validations that returned an engine error (not a rejection).
    pub errors: Counter,
    /// End-to-end `validate` latency in microseconds.
    pub latency_us: Histogram,
    clock: Arc<dyn Clock>,
}

impl CoreMetrics {
    /// Create (or re-attach to) the validator's metric series in
    /// `registry`, pre-fetching a counter handle per outcome class.
    pub fn new(registry: &Registry) -> CoreMetrics {
        let outcomes = OUTCOME_CLASSES
            .iter()
            .map(|class| {
                let counter = registry.counter_with(
                    "nrslb_validations_total",
                    &[("outcome", class)],
                    "validations by outcome class",
                );
                (*class, counter)
            })
            .collect();
        CoreMetrics {
            outcomes,
            errors: registry.counter(
                "nrslb_validation_errors_total",
                "validations aborted by an engine error",
            ),
            latency_us: registry.histogram(
                "nrslb_validation_latency_us",
                "end-to-end validation latency in microseconds",
            ),
            clock: Arc::clone(registry.clock()),
        }
    }

    /// A span timing one validation into `latency_us`.
    pub fn span(&self) -> Span {
        Span::enter(self.latency_us.clone(), Arc::clone(&self.clock))
    }

    /// The counter for one outcome class (all classes are pre-created).
    pub fn outcome(&self, class: &str) -> Option<&Counter> {
        self.outcomes.get(class)
    }

    /// Record a finished validation's outcome class.
    pub fn record(&self, outcome: &Outcome) {
        let class = match outcome.final_reason() {
            None => "accepted",
            Some(reason) => reason.class(),
        };
        self.outcomes[class].inc();
    }
}

impl RejectReason {
    /// The outcome-class label of this rejection (one of
    /// [`OUTCOME_CLASSES`]), independent of per-instance detail like
    /// chain indices or names.
    pub fn class(&self) -> &'static str {
        match self {
            RejectReason::NoCandidateChains => "no_candidate_chains",
            RejectReason::Expired { .. } => "expired",
            RejectReason::NotYetValid { .. } => "not_yet_valid",
            RejectReason::BadSignature { .. } => "bad_signature",
            RejectReason::NotCa { .. } => "not_ca",
            RejectReason::PathLenExceeded { .. } => "path_len_exceeded",
            RejectReason::NameConstraintViolation { .. } => "name_constraint_violation",
            RejectReason::WrongEku => "wrong_eku",
            RejectReason::UsageDateConstraint => "usage_date_constraint",
            RejectReason::HostnameMismatch => "hostname_mismatch",
            RejectReason::Revoked { .. } => "revoked",
            RejectReason::GccRejected { .. } => "gcc_rejected",
            RejectReason::PolicyRejected => "policy_rejected",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_obs::VirtualClock;

    #[test]
    fn every_reject_class_is_precreated() {
        let registry = Registry::with_clock(VirtualClock::shared(0));
        let metrics = CoreMetrics::new(&registry);
        for class in OUTCOME_CLASSES {
            assert!(metrics.outcome(class).is_some(), "missing class {class}");
        }
        let text = registry.render_text();
        for class in OUTCOME_CLASSES {
            assert!(
                text.contains(&format!("nrslb_validations_total{{outcome=\"{class}\"}} 0")),
                "class {class} not rendered in:\n{text}"
            );
        }
    }

    #[test]
    fn reject_reason_classes_match_the_class_list() {
        let reasons = [
            RejectReason::NoCandidateChains,
            RejectReason::Expired { index: 0 },
            RejectReason::NotYetValid { index: 0 },
            RejectReason::BadSignature { index: 0 },
            RejectReason::NotCa { index: 0 },
            RejectReason::PathLenExceeded { index: 0 },
            RejectReason::NameConstraintViolation {
                index: 0,
                name: "x".into(),
            },
            RejectReason::WrongEku,
            RejectReason::UsageDateConstraint,
            RejectReason::HostnameMismatch,
            RejectReason::Revoked { index: 0 },
            RejectReason::GccRejected {
                gcc_name: "x".into(),
            },
            RejectReason::PolicyRejected,
        ];
        for reason in reasons {
            assert!(
                OUTCOME_CLASSES.contains(&reason.class()),
                "{reason:?} class missing from OUTCOME_CLASSES"
            );
        }
    }
}
