//! Candidate-chain construction: from a leaf and a pool of intermediates
//! to every structurally possible path ending at a trusted root.
//!
//! Chain *building* is purely structural (issuer/subject name chaining,
//! cycle avoidance, depth limit); all semantic checks (signatures,
//! validity, constraints, GCCs) happen in [`crate::validate`], which
//! walks the candidates in order and may reject some and accept a later
//! one — the "continue building" behaviour the paper requires when a GCC
//! rejects a candidate (§3.1).

use nrslb_rootstore::RootStore;
use nrslb_x509::Certificate;
use std::collections::HashSet;

/// Maximum chain length (leaf + intermediates + root) explored.
pub const DEFAULT_MAX_DEPTH: usize = 8;

/// Errors from chain building.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The leaf certificate is itself a trusted root; chains must have
    /// at least a leaf and a root.
    LeafIsRoot,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::LeafIsRoot => write!(f, "leaf certificate is a trusted root"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Builds candidate chains from a leaf toward the trusted roots of a
/// store, through a pool of intermediate certificates.
pub struct ChainBuilder<'a> {
    store: &'a RootStore,
    intermediates: &'a [Certificate],
    max_depth: usize,
}

impl<'a> ChainBuilder<'a> {
    /// Create a builder over `store` and an intermediate pool.
    pub fn new(store: &'a RootStore, intermediates: &'a [Certificate]) -> ChainBuilder<'a> {
        ChainBuilder {
            store,
            intermediates,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }

    /// Override the depth limit.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// All candidate chains for `leaf`, leaf first and root last, in
    /// depth-first discovery order (shorter chains first among branches
    /// explored at the same point).
    ///
    /// Every returned chain ends in a certificate from the store's
    /// *trusted* set. Distrusted and unknown roots never appear.
    pub fn candidate_chains(&self, leaf: &Certificate) -> Vec<Vec<Certificate>> {
        let mut out = Vec::new();
        let mut path = vec![leaf.clone()];
        let mut visited: HashSet<_> = [leaf.fingerprint()].into();
        self.extend(&mut path, &mut visited, &mut out);
        // Prefer shorter chains: stable sort preserves discovery order
        // among equal lengths.
        out.sort_by_key(|c| c.len());
        out
    }

    fn extend(
        &self,
        path: &mut Vec<Certificate>,
        visited: &mut HashSet<nrslb_crypto::sha256::Digest>,
        out: &mut Vec<Vec<Certificate>>,
    ) {
        let current = path.last().expect("path never empty").clone();
        // Candidate roots: trusted certs whose subject matches the
        // current cert's issuer (skipping the degenerate case where the
        // "root" is the current certificate itself re-added).
        for root in self.store.roots_by_subject(current.issuer()) {
            if root.fingerprint() == current.fingerprint() {
                continue;
            }
            let mut chain = path.clone();
            chain.push(root.clone());
            out.push(chain);
        }
        if path.len() + 1 >= self.max_depth {
            return;
        }
        // Candidate intermediates.
        for cand in self.intermediates {
            if cand.subject() != current.issuer() {
                continue;
            }
            if !visited.insert(cand.fingerprint()) {
                continue; // cycle or duplicate
            }
            path.push(cand.clone());
            self.extend(path, visited, out);
            path.pop();
            visited.remove(&cand.fingerprint());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_x509::builder::{CaKey, CertificateBuilder};
    use nrslb_x509::testutil::simple_chain;
    use nrslb_x509::DistinguishedName;

    #[test]
    fn finds_the_simple_chain() {
        let pki = simple_chain("build.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        let pool = vec![pki.intermediate.clone()];
        let builder = ChainBuilder::new(&store, &pool);
        let chains = builder.candidate_chains(&pki.leaf);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 3);
        assert_eq!(chains[0][0], pki.leaf);
        assert_eq!(chains[0][2], pki.root);
    }

    #[test]
    fn no_chain_without_intermediate() {
        let pki = simple_chain("nopath.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        let builder = ChainBuilder::new(&store, &[]);
        assert!(builder.candidate_chains(&pki.leaf).is_empty());
    }

    #[test]
    fn no_chain_to_distrusted_root() {
        let pki = simple_chain("distrusted.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        store.distrust(pki.root.fingerprint(), "incident");
        let pool = vec![pki.intermediate.clone()];
        let builder = ChainBuilder::new(&store, &pool);
        assert!(builder.candidate_chains(&pki.leaf).is_empty());
    }

    #[test]
    fn multiple_paths_cross_signed() {
        // Two roots with the *same subject DN* but different keys, both
        // trusted: cross-signing produces two candidate chains.
        let pki = simple_chain("cross.example");
        let alt_root_key = CaKey::from_seed(pki.root_key.name().clone(), [0x77; 32], 6).unwrap();
        let alt_root = CertificateBuilder::new()
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .build_self_signed(&alt_root_key)
            .unwrap();
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        store.add_trusted(alt_root).unwrap();
        let pool = vec![pki.intermediate.clone()];
        let builder = ChainBuilder::new(&store, &pool);
        let chains = builder.candidate_chains(&pki.leaf);
        assert_eq!(chains.len(), 2);
    }

    #[test]
    fn depth_limit_respected() {
        // A long chain of intermediates: i1 <- i2 <- ... <- i6.
        let root_key = CaKey::generate_for_tests("Deep Root", 0xd0);
        let root = CertificateBuilder::new()
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .build_self_signed(&root_key)
            .unwrap();
        let mut store = RootStore::new("test");
        store.add_trusted(root).unwrap();

        let mut keys = vec![root_key];
        let mut pool = Vec::new();
        for i in 0..6 {
            let key = CaKey::generate_for_tests(&format!("Deep Int {i}"), 0xd1 + i as u8);
            let cert = CertificateBuilder::new()
                .subject(key.name().clone())
                .subject_key(key.public())
                .validity_window(0, 4_000_000_000)
                .ca(None)
                .build_signed_by(keys.last().unwrap())
                .unwrap();
            pool.push(cert);
            keys.push(key);
        }
        let leaf = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("deep.example"))
            .dns_names(&["deep.example"])
            .validity_window(0, 4_000_000_000)
            .build_signed_by(keys.last().unwrap())
            .unwrap();

        let builder = ChainBuilder::new(&store, &pool); // default depth 8
        assert_eq!(builder.candidate_chains(&leaf).len(), 1); // 1 leaf + 6 ints + root = 8

        let builder = ChainBuilder::new(&store, &pool).with_max_depth(7);
        assert!(builder.candidate_chains(&leaf).is_empty());
    }

    #[test]
    fn cycles_do_not_hang() {
        // Two intermediates that issue each other.
        let ka = CaKey::generate_for_tests("Cycle A", 0xe0);
        let kb = CaKey::generate_for_tests("Cycle B", 0xe1);
        let a_by_b = CertificateBuilder::new()
            .subject(ka.name().clone())
            .subject_key(ka.public())
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .build_signed_by(&kb)
            .unwrap();
        let b_by_a = CertificateBuilder::new()
            .subject(kb.name().clone())
            .subject_key(kb.public())
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .build_signed_by(&ka)
            .unwrap();
        let leaf = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("cycle.example"))
            .validity_window(0, 4_000_000_000)
            .build_signed_by(&ka)
            .unwrap();
        let store = RootStore::new("empty");
        let pool = vec![a_by_b, b_by_a];
        let builder = ChainBuilder::new(&store, &pool);
        assert!(builder.candidate_chains(&leaf).is_empty()); // terminates
    }

    #[test]
    fn shorter_chains_sort_first() {
        // Leaf directly issued by a root that also cross-signs an
        // intermediate with the same name... simpler: leaf signed by root
        // directly AND via an intermediate with identical subject as root.
        let pki = simple_chain("short-first.example");
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        // Intermediate whose subject equals the root's subject, signed by
        // the root: creates a longer alternative path.
        let shadow = CertificateBuilder::new()
            .subject(pki.root.subject().clone())
            .subject_key(pki.intermediate_key.public())
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .build_signed_by(&pki.root_key)
            .unwrap();
        let direct_leaf = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("direct.example"))
            .validity_window(0, 4_000_000_000)
            .build_signed_by(&pki.root_key)
            .unwrap();
        let pool = vec![shadow];
        let builder = ChainBuilder::new(&store, &pool);
        let chains = builder.candidate_chains(&direct_leaf);
        assert_eq!(chains.len(), 2);
        assert!(chains[0].len() < chains[1].len());
    }
}
