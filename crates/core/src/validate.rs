//! The GCC-aware certificate validator.
//!
//! Implements the paper's modified chain-validation algorithm (§3.1):
//! candidate chains are built structurally, then checked in order; when a
//! candidate root carries GCCs, the GCCs execute and a `false` result
//! rejects *that candidate* — the validator then continues with the next
//! candidate chain rather than failing outright.

use crate::cache::{SigMemo, DEFAULT_CACHE_SHARDS, DEFAULT_SIG_MEMO_CAPACITY};
use crate::chain::ChainBuilder;
use crate::gcc_eval::GccVerdict;
use crate::session::{
    chain_content_key, evaluate_gccs_lazy, evaluate_gccs_lazy_keyed, ValidationSession,
    VerdictCache, VerdictKey, DEFAULT_VERDICT_CACHE_CAPACITY,
};
use crate::{hammurabi, CoreError};
use nrslb_revocation::RevocationChecker;
use nrslb_rootstore::{RootStore, Usage};
use nrslb_x509::name::DotSemantics;
use nrslb_x509::{oids, Certificate};
use parking_lot::RwLock;
use std::sync::Arc;

/// Where policy (GCC) evaluation happens — the three deployment options
/// of §3.1.
#[derive(Clone, Default)]
pub enum ValidationMode {
    /// *User-agent execution*: conversion and GCC evaluation in-process.
    #[default]
    UserAgent,
    /// *Platform execution*: GCCs are evaluated by an external oracle
    /// (normally a [`crate::daemon::DaemonClient`] speaking to the trust
    /// daemon over a Unix socket).
    Platform(Arc<dyn GccOracle>),
    /// *Complete validation redesign*: the whole per-chain policy
    /// (standard checks + GCCs) runs as a single Datalog program, in the
    /// style of Hammurabi.
    Hammurabi,
}

impl std::fmt::Debug for ValidationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationMode::UserAgent => write!(f, "UserAgent"),
            ValidationMode::Platform(_) => write!(f, "Platform(<oracle>)"),
            ValidationMode::Hammurabi => write!(f, "Hammurabi"),
        }
    }
}

/// Anything that can answer "do the GCCs attached to this chain's root
/// accept the chain for this usage?" — the IPC boundary of the platform
/// deployment mode.
pub trait GccOracle: Send + Sync {
    /// Evaluate all GCCs for the chain's root; `Ok(verdicts)` with every
    /// verdict accepting means the chain may proceed.
    fn evaluate(&self, chain: &[Certificate], usage: Usage) -> Result<Vec<GccVerdict>, CoreError>;
}

/// Why a candidate chain was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// No structurally possible chain reached a trusted root.
    NoCandidateChains,
    /// Certificate at `index` (0 = leaf) was expired at validation time.
    Expired {
        /// Position in the chain, leaf = 0.
        index: usize,
    },
    /// Certificate at `index` is not yet valid.
    NotYetValid {
        /// Position in the chain, leaf = 0.
        index: usize,
    },
    /// Signature of certificate at `index` did not verify under its issuer.
    BadSignature {
        /// Position in the chain, leaf = 0.
        index: usize,
    },
    /// Certificate at `index` must be a CA but is not.
    NotCa {
        /// Position in the chain, leaf = 0.
        index: usize,
    },
    /// BasicConstraints path length of the CA at `index` was exceeded.
    PathLenExceeded {
        /// Position in the chain, leaf = 0.
        index: usize,
    },
    /// A name constraint of the CA at `index` excludes a leaf SAN.
    NameConstraintViolation {
        /// Position of the constraining CA.
        index: usize,
        /// The offending DNS name.
        name: String,
    },
    /// The leaf's ExtendedKeyUsage does not permit the requested usage.
    WrongEku,
    /// The store's systematic date/usage constraint rejects the leaf
    /// (NSS-style `tls_distrust_after` / `smime_distrust_after`).
    UsageDateConstraint,
    /// The leaf does not match the requested hostname.
    HostnameMismatch,
    /// Certificate at `index` is revoked (OneCRL/CRLite-style check).
    Revoked {
        /// Position in the chain, leaf = 0.
        index: usize,
    },
    /// A GCC attached to the candidate root returned false.
    GccRejected {
        /// Name of the rejecting GCC.
        gcc_name: String,
    },
    /// The Hammurabi policy program rejected the chain.
    PolicyRejected,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::NoCandidateChains => write!(f, "no chain to a trusted root"),
            RejectReason::Expired { index } => write!(f, "certificate {index} expired"),
            RejectReason::NotYetValid { index } => write!(f, "certificate {index} not yet valid"),
            RejectReason::BadSignature { index } => write!(f, "certificate {index} bad signature"),
            RejectReason::NotCa { index } => write!(f, "certificate {index} is not a CA"),
            RejectReason::PathLenExceeded { index } => {
                write!(f, "path length of CA {index} exceeded")
            }
            RejectReason::NameConstraintViolation { index, name } => {
                write!(f, "CA {index} name constraints exclude {name}")
            }
            RejectReason::WrongEku => write!(f, "leaf EKU does not permit usage"),
            RejectReason::UsageDateConstraint => {
                write!(f, "systematic date/usage constraint rejects leaf")
            }
            RejectReason::HostnameMismatch => write!(f, "hostname mismatch"),
            RejectReason::Revoked { index } => write!(f, "certificate {index} is revoked"),
            RejectReason::GccRejected { gcc_name } => write!(f, "GCC {gcc_name} rejected chain"),
            RejectReason::PolicyRejected => write!(f, "policy program rejected chain"),
        }
    }
}

/// One candidate chain the validator tried.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// The candidate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// `Ok(())` if accepted; otherwise why it was rejected.
    pub result: Result<(), RejectReason>,
    /// Per-GCC verdicts, when GCC evaluation ran for this candidate.
    pub gcc_verdicts: Vec<GccVerdict>,
}

/// The accepted chain and its trust attributes.
#[derive(Clone, Debug)]
pub struct AcceptedChain {
    /// The validated chain, leaf first, root last.
    pub chain: Vec<Certificate>,
    /// Whether EV treatment is granted (leaf asserts EV *and* the store
    /// allows EV for the root — Firefox's per-root EV bit).
    pub ev_granted: bool,
}

/// The overall result of a validation.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The accepted chain, if any candidate passed.
    pub accepted_chain: Option<AcceptedChain>,
    /// Every candidate examined, in order, with its result.
    pub attempts: Vec<Attempt>,
}

impl Outcome {
    /// Did validation succeed?
    pub fn accepted(&self) -> bool {
        self.accepted_chain.is_some()
    }

    /// The reason of the *last* rejection (the conventionally reported
    /// error), or `NoCandidateChains` when nothing was tried.
    pub fn final_reason(&self) -> Option<&RejectReason> {
        if self.accepted() {
            return None;
        }
        self.attempts
            .last()
            .and_then(|a| a.result.as_ref().err())
            .or(Some(&RejectReason::NoCandidateChains))
    }
}

/// Configuration for a [`Validator`].
#[derive(Clone, Copy, Debug)]
pub struct ValidatorConfig {
    /// Maximum chain depth explored.
    pub max_depth: usize,
    /// Leading-dot semantics for name constraints (the Firefox/OpenSSL
    /// discrepancy the paper cites; an ablation knob).
    pub dot_semantics: DotSemantics,
    /// Require the leaf's EKU (when present) to include the usage.
    pub enforce_eku: bool,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        ValidatorConfig {
            max_depth: crate::chain::DEFAULT_MAX_DEPTH,
            dot_semantics: DotSemantics::Rfc5280,
            enforce_eku: true,
        }
    }
}

/// A GCC-aware chain validator bound to a root store.
pub struct Validator {
    store: RootStore,
    mode: ValidationMode,
    config: ValidatorConfig,
    revocation: Option<Arc<dyn RevocationChecker>>,
    verdict_cache: Option<Arc<VerdictCache>>,
    sig_memo: Arc<SigMemo>,
    metrics: Option<crate::metrics::CoreMetrics>,
    eval_metrics: Option<nrslb_datalog::EvalMetrics>,
}

impl Validator {
    /// Create a validator over `store` using `mode`.
    pub fn new(store: RootStore, mode: ValidationMode) -> Validator {
        Validator {
            store,
            mode,
            config: ValidatorConfig::default(),
            revocation: None,
            verdict_cache: None,
            sig_memo: Arc::new(SigMemo::default()),
            metrics: None,
            eval_metrics: None,
        }
    }

    /// Report outcome counts (`nrslb_validations_total{outcome=...}`),
    /// end-to-end latency (`nrslb_validation_latency_us`), the
    /// signature memo's hit/miss counters and — in `UserAgent` mode —
    /// per-GCC Datalog engine statistics into `registry`.
    ///
    /// Replaces the validator's signature memo with a
    /// registry-instrumented one, so apply [`Validator::with_sig_memo`]
    /// *after* this to share a caller-owned memo instead.
    pub fn with_registry(mut self, registry: &nrslb_obs::Registry) -> Validator {
        self.metrics = Some(crate::metrics::CoreMetrics::new(registry));
        self.eval_metrics = Some(nrslb_datalog::EvalMetrics::new(registry));
        self.sig_memo = Arc::new(SigMemo::with_registry(DEFAULT_SIG_MEMO_CAPACITY, registry));
        self
    }

    /// Reuse GCC verdicts across validations through `cache` (in
    /// `UserAgent` mode; `Platform` oracles carry their own cache).
    pub fn with_verdict_cache(mut self, cache: Arc<VerdictCache>) -> Validator {
        self.verdict_cache = Some(cache);
        self
    }

    /// Apply a feed update's blast radius to the verdict cache: evict
    /// exactly the cached verdicts whose taint tags the set names (a
    /// full taint — snapshot fallback — clears everything, an empty
    /// taint evicts nothing). Returns how many verdicts were evicted;
    /// 0 when no cache is attached. This is the ingest-side hook of
    /// delta → taint → selective invalidation: pass
    /// [`nrslb_rsf::Subscriber::take_taint`] here after syncing.
    pub fn invalidate_tainted(&self, taint: &nrslb_rsf::TaintSet) -> u64 {
        self.verdict_cache
            .as_deref()
            .map(|c| c.invalidate_taint(taint))
            .unwrap_or(0)
    }

    /// Share a signature-verification memo with other validators.
    /// Every validator owns a private memo by default; sharing one
    /// means a `(cert, issuer)` edge verified by any of them is a memo
    /// hit for all.
    pub fn with_sig_memo(mut self, memo: Arc<SigMemo>) -> Validator {
        self.sig_memo = memo;
        self
    }

    /// The validator's signature-verification memo (for inspection /
    /// sharing).
    pub fn sig_memo(&self) -> &Arc<SigMemo> {
        &self.sig_memo
    }

    /// Consult `checker` during validation; revoked certificates reject
    /// the candidate chain (OneCRL / CRLSet / CRLite, paper §2.2, §4).
    pub fn with_revocation(mut self, checker: Arc<dyn RevocationChecker>) -> Validator {
        self.revocation = Some(checker);
        self
    }

    /// Override configuration.
    pub fn with_config(mut self, config: ValidatorConfig) -> Validator {
        self.config = config;
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &RootStore {
        &self.store
    }

    /// Swap in a different root store, keeping mode, cache and config.
    ///
    /// This is the differential-testing hook: the same validator
    /// revalidates one chain against many stores (a primary and each
    /// subscriber replica) without rebuilding the oracle plumbing. The
    /// verdict cache can stay — verdict keys are content-addressed by
    /// (chain, GCC source, usage), so a replica whose GCCs differ from
    /// the primary's misses instead of aliasing.
    pub fn set_store(&mut self, store: RootStore) {
        self.store = store;
    }

    /// Validate `leaf` (with an intermediate pool) for `usage` at time
    /// `now`, without a hostname check.
    pub fn validate(
        &self,
        leaf: &Certificate,
        intermediates: &[Certificate],
        usage: Usage,
        now: i64,
    ) -> Result<Outcome, CoreError> {
        self.validate_inner(leaf, intermediates, usage, now, None)
    }

    /// Validate for a specific hostname (TLS server identity).
    pub fn validate_for_host(
        &self,
        leaf: &Certificate,
        intermediates: &[Certificate],
        hostname: &str,
        now: i64,
    ) -> Result<Outcome, CoreError> {
        self.validate_inner(leaf, intermediates, Usage::Tls, now, Some(hostname))
    }

    fn validate_inner(
        &self,
        leaf: &Certificate,
        intermediates: &[Certificate],
        usage: Usage,
        now: i64,
        hostname: Option<&str>,
    ) -> Result<Outcome, CoreError> {
        let _span = self.metrics.as_ref().map(|m| m.span());
        let outcome = self.validate_uninstrumented(leaf, intermediates, usage, now, hostname);
        if let Some(metrics) = &self.metrics {
            match &outcome {
                Ok(out) => metrics.record(out),
                Err(_) => metrics.errors.inc(),
            }
        }
        outcome
    }

    fn validate_uninstrumented(
        &self,
        leaf: &Certificate,
        intermediates: &[Certificate],
        usage: Usage,
        now: i64,
        hostname: Option<&str>,
    ) -> Result<Outcome, CoreError> {
        let builder =
            ChainBuilder::new(&self.store, intermediates).with_max_depth(self.config.max_depth);
        let candidates = builder.candidate_chains(leaf);
        let mut attempts = Vec::new();
        for chain in candidates {
            let attempt = self.try_candidate(&chain, usage, now, hostname)?;
            let ok = attempt.result.is_ok();
            attempts.push(attempt);
            if ok {
                let root_fp = chain.last().expect("chain non-empty").fingerprint();
                let ev_allowed = self
                    .store
                    .record(&root_fp)
                    .map(|r| r.ev_allowed)
                    .unwrap_or(false);
                return Ok(Outcome {
                    accepted_chain: Some(AcceptedChain {
                        ev_granted: leaf.is_ev() && ev_allowed,
                        chain,
                    }),
                    attempts,
                });
            }
        }
        Ok(Outcome {
            accepted_chain: None,
            attempts,
        })
    }

    fn try_candidate(
        &self,
        chain: &[Certificate],
        usage: Usage,
        now: i64,
        hostname: Option<&str>,
    ) -> Result<Attempt, CoreError> {
        let mut attempt = Attempt {
            chain: chain.to_vec(),
            result: Ok(()),
            gcc_verdicts: Vec::new(),
        };
        let reject = |attempt: &mut Attempt, reason: RejectReason| {
            attempt.result = Err(reason);
        };

        match self.mode {
            ValidationMode::Hammurabi => {
                // Signatures are still verified natively (crypto stays
                // outside the logic program); everything else, including
                // GCCs, runs in one Datalog evaluation.
                for (i, cert) in chain.iter().enumerate() {
                    let issuer = chain.get(i + 1).unwrap_or(cert);
                    if !self.sig_memo.verify_signed_by(cert, issuer) {
                        reject(&mut attempt, RejectReason::BadSignature { index: i });
                        return Ok(attempt);
                    }
                }
                let verdict = hammurabi::evaluate_chain(
                    chain,
                    usage,
                    now,
                    hostname,
                    &self.store,
                    self.config,
                    self.revocation.as_deref(),
                )?;
                if let Err(reason) = verdict {
                    reject(&mut attempt, reason);
                }
                return Ok(attempt);
            }
            ValidationMode::UserAgent | ValidationMode::Platform(_) => {}
        }

        // --- Standard X.509 path checks (native path) ---
        let leaf = &chain[0];
        for (i, cert) in chain.iter().enumerate() {
            if now < cert.validity().not_before {
                reject(&mut attempt, RejectReason::NotYetValid { index: i });
                return Ok(attempt);
            }
            if now > cert.validity().not_after {
                reject(&mut attempt, RejectReason::Expired { index: i });
                return Ok(attempt);
            }
        }
        for (i, cert) in chain.iter().enumerate() {
            let issuer = chain.get(i + 1).unwrap_or(cert); // root self-signed
                                                           // The memo answers repeated (cert, issuer) edges — the
                                                           // common case when one intermediate signs many leaves, or
                                                           // one chain is re-validated — without re-running the
                                                           // hash-based verification.
            if !self.sig_memo.verify_signed_by(cert, issuer) {
                reject(&mut attempt, RejectReason::BadSignature { index: i });
                return Ok(attempt);
            }
        }
        if let Some(revocation) = &self.revocation {
            for (i, cert) in chain.iter().enumerate() {
                if revocation.is_revoked(cert) {
                    reject(&mut attempt, RejectReason::Revoked { index: i });
                    return Ok(attempt);
                }
            }
        }
        for (i, cert) in chain.iter().enumerate().skip(1) {
            if !cert.is_ca() {
                reject(&mut attempt, RejectReason::NotCa { index: i });
                return Ok(attempt);
            }
            // pathLen: number of CA certs strictly between this CA and
            // the leaf is i - 1.
            if let Some(limit) = cert.path_len() {
                if (i - 1) as u32 > limit {
                    reject(&mut attempt, RejectReason::PathLenExceeded { index: i });
                    return Ok(attempt);
                }
            }
            // Name constraints apply to all descendant leaf names.
            if let Some(nc) = &cert.extensions().name_constraints {
                for san in leaf.dns_names() {
                    if !nc.allows(san, self.config.dot_semantics) {
                        reject(
                            &mut attempt,
                            RejectReason::NameConstraintViolation {
                                index: i,
                                name: san.clone(),
                            },
                        );
                        return Ok(attempt);
                    }
                }
            }
        }
        // Leaf EKU vs usage.
        if self.config.enforce_eku {
            if let Some(eku) = &leaf.extensions().extended_key_usage {
                let needed = match usage {
                    Usage::Tls => oids::kp_server_auth(),
                    Usage::SMime => oids::kp_email_protection(),
                };
                if !eku.contains(&needed) {
                    reject(&mut attempt, RejectReason::WrongEku);
                    return Ok(attempt);
                }
            }
        }
        // Hostname.
        if let Some(host) = hostname {
            if !leaf.matches_hostname(host) {
                reject(&mut attempt, RejectReason::HostnameMismatch);
                return Ok(attempt);
            }
        }
        // Systematic store constraints (NSS date/usage pairs).
        let root_fp = chain.last().expect("chain non-empty").fingerprint();
        if !self
            .store
            .usage_permitted(&root_fp, usage, leaf.validity().not_before)
        {
            reject(&mut attempt, RejectReason::UsageDateConstraint);
            return Ok(attempt);
        }

        // --- GCC execution (§3.1) ---
        let verdicts = match &self.mode {
            ValidationMode::UserAgent => {
                let gccs = self.store.gccs_for(&root_fp);
                if gccs.is_empty() {
                    Vec::new()
                } else if let Some(cache) = self.verdict_cache.as_deref() {
                    // Lazy fast path: the fact conversion only happens
                    // if some verdict misses the cache — a fully warm
                    // chain touches no Datalog at all.
                    evaluate_gccs_lazy(chain, gccs, usage, cache, self.eval_metrics.as_ref())?
                } else {
                    // One conversion per candidate; every GCC shares the
                    // frozen fact base.
                    let session = ValidationSession::new(chain);
                    session.evaluate_gccs_observed(gccs, usage, None, self.eval_metrics.as_ref())?
                }
            }
            ValidationMode::Platform(oracle) => oracle.evaluate(chain, usage)?,
            ValidationMode::Hammurabi => unreachable!("handled above"),
        };
        if let Some(bad) = verdicts.iter().find(|v| !v.accepted) {
            let name = bad.gcc_name.to_string();
            attempt.gcc_verdicts = verdicts;
            reject(&mut attempt, RejectReason::GccRejected { gcc_name: name });
            return Ok(attempt);
        }
        attempt.gcc_verdicts = verdicts;
        Ok(attempt)
    }
}

/// The in-process oracle: evaluates GCCs from its own copy of the store,
/// memoizing verdicts in a bounded LRU cache. Wrapped by the trust
/// daemon (all worker threads share one oracle, hence one cache); also
/// usable directly for tests.
pub struct InProcessOracle {
    /// The current store snapshot, swappable through `&self` so a
    /// long-running daemon can absorb feed updates while worker threads
    /// keep evaluating: readers clone the `Arc` under a briefly-held
    /// read lock and evaluate against their own handle. A racing
    /// evaluation may insert a verdict computed against the *old*
    /// snapshot after [`InProcessOracle::absorb_update`] invalidated —
    /// that is benign, because verdict keys are content-addressed by
    /// (chain, GCC source hash, usage): an entry for a replaced GCC or
    /// removed root is simply never looked up again.
    store: RwLock<Arc<RootStore>>,
    cache: VerdictCache,
    eval_metrics: Option<nrslb_datalog::EvalMetrics>,
}

impl InProcessOracle {
    /// Create an oracle over a store snapshot with the default cache
    /// capacity.
    pub fn new(store: RootStore) -> InProcessOracle {
        InProcessOracle::with_cache_capacity(store, DEFAULT_VERDICT_CACHE_CAPACITY)
    }

    /// Create an oracle with an explicit verdict-cache capacity.
    pub fn with_cache_capacity(store: RootStore, capacity: usize) -> InProcessOracle {
        InProcessOracle {
            store: RwLock::new(Arc::new(store)),
            cache: VerdictCache::new(capacity),
            eval_metrics: None,
        }
    }

    /// Create an oracle reporting into `registry`: the verdict cache
    /// mirrors its statistics there, and every cache-missing GCC
    /// evaluation records into the `nrslb_datalog_*` families (the
    /// trust daemon builds its shared oracle this way).
    pub fn with_registry(store: RootStore, registry: &nrslb_obs::Registry) -> InProcessOracle {
        InProcessOracle::configured(
            store,
            DEFAULT_VERDICT_CACHE_CAPACITY,
            DEFAULT_CACHE_SHARDS,
            Some(registry),
        )
    }

    /// Create an oracle with explicit cache capacity and shard count
    /// (`shards = 1` is the single-lock ablation the throughput bench
    /// compares against), optionally reporting into a registry.
    pub fn configured(
        store: RootStore,
        capacity: usize,
        shards: usize,
        registry: Option<&nrslb_obs::Registry>,
    ) -> InProcessOracle {
        let (cache, eval_metrics) = match registry {
            Some(r) => (
                VerdictCache::with_shards_and_registry(capacity, shards, r),
                Some(nrslb_datalog::EvalMetrics::new(r)),
            ),
            None => (VerdictCache::with_shards(capacity, shards), None),
        };
        InProcessOracle {
            store: RwLock::new(Arc::new(store)),
            cache,
            eval_metrics,
        }
    }

    /// The oracle's verdict cache (for inspection / metrics).
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// A handle to the oracle's current store snapshot. The handle
    /// stays valid (and internally consistent) even if a concurrent
    /// [`InProcessOracle::absorb_update`] swaps in a newer snapshot.
    pub fn store(&self) -> Arc<RootStore> {
        Arc::clone(&self.store.read())
    }

    /// Evict exactly the cached verdicts a feed update tainted; see
    /// [`VerdictCache::invalidate_taint`]. Returns the eviction count.
    pub fn invalidate_tainted(&self, taint: &nrslb_rsf::TaintSet) -> u64 {
        self.cache.invalidate_taint(taint)
    }

    /// Absorb a synced subscriber state: replace the store snapshot and
    /// invalidate only the tainted verdicts — the core of the
    /// delta → taint → selective invalidation → re-derivation flow.
    /// Untainted verdicts survive and keep serving warm. Returns the
    /// eviction count. Takes `&self`, so a daemon sharing the oracle
    /// across worker threads can refresh it live (see
    /// [`crate::daemon::TrustDaemon::refresh_from_feed`]).
    pub fn absorb_update(&self, store: RootStore, taint: &nrslb_rsf::TaintSet) -> u64 {
        *self.store.write() = Arc::new(store);
        self.cache.invalidate_taint(taint)
    }

    /// [`GccOracle::evaluate`], but only if this exact chain is
    /// answered entirely from the verdict cache — the reactor's fused
    /// inline cost guard *and* execution in one pass (DESIGN.md §5g).
    ///
    /// The store lookup and [`chain_content_key`] are computed once;
    /// each verdict is first checked with a *non-perturbing*
    /// [`VerdictCache::peek`]. Any miss returns `None` having caused
    /// no observable effect — no hit/miss counted, no recency moved —
    /// and the caller hands the request to a worker, which starts from
    /// scratch. On a full hit the same keys are committed through
    /// [`evaluate_gccs_lazy_keyed`] (counting gets, identical to the
    /// worker path), reusing the chain key so the SHA-256 pass is not
    /// paid twice. A concurrent eviction between probe and commit
    /// merely makes the commit derive that verdict on the loop thread,
    /// exactly as a worker would.
    pub fn evaluate_warm(
        &self,
        chain: &[Certificate],
        usage: Usage,
    ) -> Option<Result<Vec<GccVerdict>, CoreError>> {
        let Some(root) = chain.last() else {
            return Some(Ok(Vec::new())); // no verdicts to derive
        };
        let store = self.store();
        let gccs = store.gccs_for(&root.fingerprint());
        if gccs.is_empty() {
            return Some(Ok(Vec::new())); // vacuous accept: no GCCs to run
        }
        let chain_key = chain_content_key(chain);
        let all_cached = gccs.iter().all(|gcc| {
            self.cache
                .peek(&VerdictKey {
                    chain: chain_key,
                    gcc: gcc.source_hash(),
                    usage,
                })
                .is_some()
        });
        if !all_cached {
            return None;
        }
        let mut verdicts = Vec::with_capacity(gccs.len());
        Some(
            evaluate_gccs_lazy_keyed(
                chain,
                gccs,
                usage,
                &self.cache,
                self.eval_metrics.as_ref(),
                chain_key,
                &mut verdicts,
            )
            .map(|()| verdicts),
        )
    }
}

impl GccOracle for InProcessOracle {
    fn evaluate(&self, chain: &[Certificate], usage: Usage) -> Result<Vec<GccVerdict>, CoreError> {
        let Some(root) = chain.last() else {
            return Ok(Vec::new());
        };
        let store = self.store();
        let gccs = store.gccs_for(&root.fingerprint());
        if gccs.is_empty() {
            return Ok(Vec::new());
        }
        // Lazy fast path: warm chains never build a fact base, so
        // concurrent daemon workers serving a hot chain only touch the
        // sharded cache.
        evaluate_gccs_lazy(chain, gccs, usage, &self.cache, self.eval_metrics.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_rootstore::{Gcc, GccMetadata};
    use nrslb_x509::builder::{CaKey, CertificateBuilder};
    use nrslb_x509::extensions::NameConstraints;
    use nrslb_x509::testutil::{simple_chain, SimplePki, T0, YEAR};
    use nrslb_x509::DistinguishedName;

    fn store_for(pki: &SimplePki) -> RootStore {
        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        store
    }

    #[test]
    fn accepts_valid_chain() {
        let pki = simple_chain("ok.example");
        let v = Validator::new(store_for(&pki), ValidationMode::UserAgent);
        let out = v
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert!(out.accepted());
        let acc = out.accepted_chain.unwrap();
        assert_eq!(acc.chain.len(), 3);
        assert!(!acc.ev_granted); // leaf is not EV
    }

    #[test]
    fn repeated_validations_hit_the_signature_memo() {
        let pki = simple_chain("memo.example");
        let v = Validator::new(store_for(&pki), ValidationMode::UserAgent);
        let validate = || {
            let out = v
                .validate(
                    &pki.leaf,
                    std::slice::from_ref(&pki.intermediate),
                    Usage::Tls,
                    pki.now,
                )
                .unwrap();
            assert!(out.accepted());
        };
        validate();
        // First validation pays for each chain edge once: leaf <-
        // intermediate, intermediate <- root, root self-signature.
        let cold_misses = v.sig_memo().misses();
        assert!(cold_misses >= 3, "{cold_misses}");
        // Every subsequent validation of the same chain is all memo
        // hits — zero new hash-based signature verifications.
        for _ in 0..3 {
            validate();
        }
        assert_eq!(v.sig_memo().misses(), cold_misses);
        assert!(v.sig_memo().hits() >= 3 * 3);
    }

    #[test]
    fn rejects_expired_leaf() {
        let pki = simple_chain("expired.example");
        let v = Validator::new(store_for(&pki), ValidationMode::UserAgent);
        let late = pki.now + 2 * YEAR;
        let out = v
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                late,
            )
            .unwrap();
        assert!(!out.accepted());
        assert_eq!(
            out.final_reason(),
            Some(&RejectReason::Expired { index: 0 })
        );
    }

    #[test]
    fn rejects_not_yet_valid() {
        let pki = simple_chain("early.example");
        let v = Validator::new(store_for(&pki), ValidationMode::UserAgent);
        let out = v
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now - YEAR,
            )
            .unwrap();
        assert_eq!(
            out.final_reason(),
            Some(&RejectReason::NotYetValid { index: 0 })
        );
    }

    #[test]
    fn rejects_forged_signature() {
        let pki = simple_chain("forged.example");
        // A leaf claiming the intermediate as issuer but signed by an
        // unrelated key.
        let mallory = CaKey::generate_for_tests("Mallory", 0x66);
        let forged_tbs = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("victim.example"))
            .dns_names(&["victim.example"])
            .validity_window(T0 - YEAR, T0 + YEAR)
            .build_signed_by(&mallory)
            .unwrap();
        // Re-parent: craft a cert with issuer = intermediate's name but
        // mallory's signature. Build it directly via the builder by
        // making mallory's CaKey carry the intermediate's name.
        let fake_issuer_key =
            CaKey::from_seed(pki.intermediate_key.name().clone(), [0x67; 32], 4).unwrap();
        let forged = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("victim.example"))
            .dns_names(&["victim.example"])
            .validity_window(T0 - YEAR, T0 + YEAR)
            .build_signed_by(&fake_issuer_key)
            .unwrap();
        let _ = forged_tbs;
        let v = Validator::new(store_for(&pki), ValidationMode::UserAgent);
        let out = v
            .validate(
                &forged,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert!(!out.accepted());
        assert_eq!(
            out.final_reason(),
            Some(&RejectReason::BadSignature { index: 0 })
        );
    }

    #[test]
    fn rejects_non_ca_intermediate() {
        // The leaf's issuer is another *leaf* (no CA bit).
        let root_key = CaKey::generate_for_tests("NonCA Root", 0x68);
        let root = CertificateBuilder::new()
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .build_self_signed(&root_key)
            .unwrap();
        let middle_key = CaKey::generate_for_tests("Sneaky Leaf", 0x69);
        let middle = CertificateBuilder::new()
            .subject(middle_key.name().clone())
            .subject_key(middle_key.public())
            .validity_window(0, 4_000_000_000)
            // no basic constraints: not a CA
            .build_signed_by(&root_key)
            .unwrap();
        let leaf = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("victim.example"))
            .validity_window(0, 4_000_000_000)
            .build_signed_by(&middle_key)
            .unwrap();
        let mut store = RootStore::new("test");
        store.add_trusted(root).unwrap();
        let v = Validator::new(store, ValidationMode::UserAgent);
        let out = v.validate(&leaf, &[middle], Usage::Tls, 1000).unwrap();
        assert_eq!(out.final_reason(), Some(&RejectReason::NotCa { index: 1 }));
    }

    #[test]
    fn enforces_path_length() {
        // Root(pathLen=0) -> int -> leaf is fine; root -> int1 -> int2 ->
        // leaf violates int1's pathLen=0... Here: intermediate has
        // pathLen 0 (from testutil) and we add another intermediate below.
        let pki = simple_chain("pathlen.example");
        let sub_key = CaKey::generate_for_tests("Sub CA", 0x6a);
        let sub = CertificateBuilder::new()
            .subject(sub_key.name().clone())
            .subject_key(sub_key.public())
            .validity_window(pki.now - YEAR, pki.now + YEAR)
            .ca(None)
            .build_signed_by(&pki.intermediate_key)
            .unwrap();
        let leaf = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("deep.example"))
            .dns_names(&["deep.example"])
            .validity_window(pki.now - YEAR / 2, pki.now + YEAR / 2)
            .build_signed_by(&sub_key)
            .unwrap();
        let v = Validator::new(store_for(&pki), ValidationMode::UserAgent);
        let out = v
            .validate(&leaf, &[pki.intermediate.clone(), sub], Usage::Tls, pki.now)
            .unwrap();
        // Chain: leaf(0), sub(1), intermediate(2), root(3). The
        // intermediate at index 2 has pathLen 0 but 1 CA below it.
        assert_eq!(
            out.final_reason(),
            Some(&RejectReason::PathLenExceeded { index: 2 })
        );
    }

    #[test]
    fn enforces_name_constraints() {
        // ANSSI-style: root constrained to .fr (via a name-constrained
        // intermediate) must not validate google.com.
        let root_key = CaKey::generate_for_tests("NC Root", 0x6b);
        let root = CertificateBuilder::new()
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .build_self_signed(&root_key)
            .unwrap();
        let int_key = CaKey::generate_for_tests("NC Int", 0x6c);
        let int = CertificateBuilder::new()
            .subject(int_key.name().clone())
            .subject_key(int_key.public())
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .name_constraints(NameConstraints::permit(&["gouv.fr", "fr"]))
            .build_signed_by(&root_key)
            .unwrap();
        let good = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("impots.gouv.fr"))
            .dns_names(&["impots.gouv.fr"])
            .validity_window(0, 4_000_000_000)
            .build_signed_by(&int_key)
            .unwrap();
        let evil = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("google.com"))
            .dns_names(&["google.com"])
            .validity_window(0, 4_000_000_000)
            .build_signed_by(&int_key)
            .unwrap();
        let mut store = RootStore::new("test");
        store.add_trusted(root).unwrap();
        let v = Validator::new(store, ValidationMode::UserAgent);
        let pool = [int];
        assert!(v
            .validate(&good, &pool, Usage::Tls, 1000)
            .unwrap()
            .accepted());
        let out = v.validate(&evil, &pool, Usage::Tls, 1000).unwrap();
        assert_eq!(
            out.final_reason(),
            Some(&RejectReason::NameConstraintViolation {
                index: 1,
                name: "google.com".into()
            })
        );
    }

    #[test]
    fn enforces_eku() {
        let pki = simple_chain("eku.example");
        let v = Validator::new(store_for(&pki), ValidationMode::UserAgent);
        // testutil leaves have serverAuth EKU only.
        let out = v
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::SMime,
                pki.now,
            )
            .unwrap();
        assert_eq!(out.final_reason(), Some(&RejectReason::WrongEku));
    }

    #[test]
    fn hostname_checks() {
        let pki = simple_chain("www.host.example");
        let v = Validator::new(store_for(&pki), ValidationMode::UserAgent);
        let pool = [pki.intermediate.clone()];
        assert!(v
            .validate_for_host(&pki.leaf, &pool, "www.host.example", pki.now)
            .unwrap()
            .accepted());
        let out = v
            .validate_for_host(&pki.leaf, &pool, "evil.example", pki.now)
            .unwrap();
        assert_eq!(out.final_reason(), Some(&RejectReason::HostnameMismatch));
    }

    #[test]
    fn systematic_date_constraint() {
        let pki = simple_chain("sysdate.example");
        let mut store = store_for(&pki);
        // Distrust TLS leaves issued after a date *before* this leaf's
        // notBefore.
        store
            .record_mut(&pki.root.fingerprint())
            .unwrap()
            .tls_distrust_after = Some(pki.leaf.validity().not_before - 1);
        let v = Validator::new(store, ValidationMode::UserAgent);
        let out = v
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert_eq!(out.final_reason(), Some(&RejectReason::UsageDateConstraint));
    }

    #[test]
    fn gcc_rejection_and_continue_building() {
        let pki = simple_chain("gccflow.example");
        let mut store = store_for(&pki);
        // A GCC that rejects everything for TLS.
        let gcc = Gcc::parse(
            "deny-all",
            pki.root.fingerprint(),
            r#"valid(Chain, "never") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
        let v = Validator::new(store, ValidationMode::UserAgent);
        let out = v
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert!(!out.accepted());
        assert_eq!(
            out.final_reason(),
            Some(&RejectReason::GccRejected {
                gcc_name: "deny-all".into()
            })
        );
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.attempts[0].gcc_verdicts.len(), 1);
    }

    #[test]
    fn gcc_rejecting_one_root_falls_through_to_another() {
        // Two trusted roots can anchor the chain; a GCC kills the first
        // candidate, validation proceeds with the second ("continue
        // building", §3.1).
        let pki = simple_chain("fallback.example");
        let alt_root_key = CaKey::from_seed(pki.root_key.name().clone(), [0x55; 32], 6).unwrap();
        let alt_root = CertificateBuilder::new()
            .validity_window(pki.now - YEAR, pki.now + YEAR)
            .ca(None)
            .build_self_signed(&alt_root_key)
            .unwrap();
        // Cross-sign the intermediate under the alt root.
        let cross_int = CertificateBuilder::new()
            .subject(pki.intermediate_key.name().clone())
            .subject_key(pki.intermediate_key.public())
            .validity_window(pki.now - YEAR, pki.now + YEAR)
            .ca(Some(0))
            .build_signed_by(&alt_root_key)
            .unwrap();

        let mut store = RootStore::new("test");
        store.add_trusted(pki.root.clone()).unwrap();
        store.add_trusted(alt_root.clone()).unwrap();
        let deny = Gcc::parse(
            "deny-all",
            pki.root.fingerprint(),
            r#"valid(Chain, "never") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(deny).unwrap();

        let v = Validator::new(store, ValidationMode::UserAgent);
        let pool = [pki.intermediate.clone(), cross_int];
        let out = v.validate(&pki.leaf, &pool, Usage::Tls, pki.now).unwrap();
        assert!(
            out.accepted(),
            "{:?}",
            out.attempts.iter().map(|a| &a.result).collect::<Vec<_>>()
        );
        // The accepted chain anchors at the alternative root.
        let accepted_root = out
            .accepted_chain
            .as_ref()
            .unwrap()
            .chain
            .last()
            .unwrap()
            .clone();
        assert_eq!(accepted_root.fingerprint(), alt_root.fingerprint());
        // And at least one earlier attempt was GCC-rejected.
        assert!(out
            .attempts
            .iter()
            .any(|a| matches!(a.result, Err(RejectReason::GccRejected { .. }))));
    }

    #[test]
    fn ev_granted_only_when_store_allows() {
        let root_key = CaKey::generate_for_tests("EV Root", 0x6d);
        let root = CertificateBuilder::new()
            .validity_window(0, 4_000_000_000)
            .ca(None)
            .build_self_signed(&root_key)
            .unwrap();
        let leaf = CertificateBuilder::new()
            .subject(DistinguishedName::common_name("ev.example"))
            .dns_names(&["ev.example"])
            .validity_window(0, 4_000_000_000)
            .ev()
            .build_signed_by(&root_key)
            .unwrap();
        let mut store = RootStore::new("test");
        store.add_trusted(root.clone()).unwrap();
        let v = Validator::new(store.clone(), ValidationMode::UserAgent);
        let out = v.validate(&leaf, &[], Usage::Tls, 1000).unwrap();
        assert!(out.accepted_chain.as_ref().unwrap().ev_granted);

        // TurkTrust-style response: disallow EV for this root.
        store.record_mut(&root.fingerprint()).unwrap().ev_allowed = false;
        let v = Validator::new(store, ValidationMode::UserAgent);
        let out = v.validate(&leaf, &[], Usage::Tls, 1000).unwrap();
        assert!(out.accepted(), "chain still accepted");
        assert!(!out.accepted_chain.as_ref().unwrap().ev_granted);
    }

    #[test]
    fn platform_oracle_matches_user_agent() {
        let pki = simple_chain("oracle.example");
        let mut store = store_for(&pki);
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();

        let ua = Validator::new(store.clone(), ValidationMode::UserAgent);
        let oracle = Arc::new(InProcessOracle::new(store.clone()));
        let platform = Validator::new(store, ValidationMode::Platform(oracle));
        let pool = [pki.intermediate.clone()];
        for usage in Usage::ALL {
            let a = ua.validate(&pki.leaf, &pool, usage, pki.now).unwrap();
            let b = platform.validate(&pki.leaf, &pool, usage, pki.now).unwrap();
            assert_eq!(a.accepted(), b.accepted(), "{usage}");
        }
    }

    #[test]
    fn verdict_cache_reuses_gcc_results_across_validations() {
        let pki = simple_chain("cache.example");
        let mut store = store_for(&pki);
        let gcc = Gcc::parse(
            "tls-only",
            pki.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
        let cache = Arc::new(VerdictCache::new(64));
        let v =
            Validator::new(store, ValidationMode::UserAgent).with_verdict_cache(Arc::clone(&cache));
        let pool = [pki.intermediate.clone()];
        let first = v.validate(&pki.leaf, &pool, Usage::Tls, pki.now).unwrap();
        assert!(first.accepted());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = v.validate(&pki.leaf, &pool, Usage::Tls, pki.now).unwrap();
        assert!(second.accepted());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(
            first.attempts[0].gcc_verdicts,
            second.attempts[0].gcc_verdicts
        );
    }

    #[test]
    fn unknown_root_no_candidates() {
        let pki = simple_chain("unknown.example");
        let v = Validator::new(RootStore::new("empty"), ValidationMode::UserAgent);
        let out = v
            .validate(
                &pki.leaf,
                std::slice::from_ref(&pki.intermediate),
                Usage::Tls,
                pki.now,
            )
            .unwrap();
        assert!(!out.accepted());
        assert_eq!(out.final_reason(), Some(&RejectReason::NoCandidateChains));
        assert!(out.attempts.is_empty());
    }
}
