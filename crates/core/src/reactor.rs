//! The readiness-reactor daemon engine (`Engine::Reactor`).
//!
//! A small fixed set of event-loop threads each own one
//! [`polling::Poller`] (the vendored epoll/kqueue-style readiness shim)
//! and a slab of non-blocking connections; the accept thread deals new
//! connections round-robin across loops. Datalog evaluation never runs
//! on a loop: complete frames are handed to a fixed worker pool over an
//! MPMC channel, and workers push finished responses back through a
//! per-loop completion queue plus [`polling::Poller::notify`]. Because
//! a loop thread only ever parses buffers and moves bytes, one loop
//! multiplexes thousands of keep-alive connections — concurrency is no
//! longer capped at the worker count the way the thread-pool engine's
//! connection-pinning is.
//!
//! ## Per-connection state machine
//!
//! ```text
//!          readable                 frame complete            worker done
//! Reading ----------> (buffer) --------------------> Executing ----------+
//!    ^                                                                   |
//!    |        response fully written                response spilled     |
//!    +<------------------------------- Writing <-------------------------+
//!                                        ^  | partial write: stay, armed writable
//!                                        +--+
//! ```
//!
//! * **Reading** — readable interest armed; bytes accumulate in `rbuf`
//!   until [`crate::proto::try_parse`] delimits a frame.
//! * **Executing** — interest *disarmed*: while a request is in flight
//!   the loop neither reads nor parses further frames from that
//!   connection. This is the backpressure policy — one request in
//!   flight per connection, pipelined bytes wait in `rbuf`, and a peer
//!   that floods frames fills its own socket buffer, not daemon memory.
//! * **Writing** — the response did not fit the socket buffer; the
//!   remainder lives in `wbuf` with writable interest armed, and the
//!   per-loop `nrslb_reactor_backpressure_total` counter ticks.
//!
//! Workers attempt the response write themselves (the socket is
//! non-blocking and the loop has the connection disarmed during
//! Executing, so the worker owns the only pending I/O); on the warm
//! path the whole request is served with a single loop wake-up for the
//! read and no loop involvement in the write.
//!
//! ## Observability
//!
//! Per-loop series, labelled `loop="N"`: `nrslb_reactor_connections`
//! (registered connections), `nrslb_reactor_ready_events` (histogram of
//! ready events per poller wake), `nrslb_reactor_backpressure_total`
//! (responses that spilled to the loop's write path).

use crate::daemon::ExecCtx;
use crate::proto::{self, Parsed};
use nrslb_obs::{Counter, Gauge, Histogram};
use polling::{Event, Poller};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a loop sleeps in `wait` with nothing ready; bounds shutdown
/// latency if a notify is ever lost.
const WAIT_TIMEOUT: Duration = Duration::from_millis(500);

/// A worker-finished response headed back to its owning loop.
struct Completion {
    key: usize,
    gen: u64,
    /// Bytes the worker could not push into the socket buffer (empty on
    /// the fast path).
    unwritten: Vec<u8>,
    /// The worker's write hit a hard transport error; close.
    close: bool,
}

/// One evaluation dispatched off a loop.
struct Job {
    shared: Arc<LoopShared>,
    key: usize,
    gen: u64,
    stream: Arc<UnixStream>,
    request: proto::Request,
    /// The connection had no pipelined bytes buffered at dispatch, so
    /// after a fully-written response the worker may re-arm readable
    /// interest itself instead of round-tripping a completion through
    /// the loop (strict request/reply traffic never wakes the loop
    /// twice per request).
    fast_rearm: bool,
}

/// The cross-thread face of one event loop: where the accept thread
/// injects connections and workers deliver completions.
struct LoopShared {
    poller: Poller,
    injected: Mutex<Vec<UnixStream>>,
    completions: Mutex<Vec<Completion>>,
}

impl LoopShared {
    fn inject(&self, stream: UnixStream) {
        self.injected.lock().expect("injected lock").push(stream);
        let _ = self.poller.notify();
    }

    fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completions lock")
            .push(completion);
        let _ = self.poller.notify();
    }
}

/// Per-loop instruments (see module docs).
struct LoopInstruments {
    connections: Gauge,
    ready_events: Histogram,
    backpressure: Counter,
}

impl LoopInstruments {
    fn new(registry: &nrslb_obs::Registry, loop_id: usize) -> LoopInstruments {
        let label = loop_id.to_string();
        let labels: &[(&str, &str)] = &[("loop", &label)];
        LoopInstruments {
            connections: registry.gauge_with(
                "nrslb_reactor_connections",
                labels,
                "connections registered with this event loop",
            ),
            ready_events: registry.histogram_with(
                "nrslb_reactor_ready_events",
                labels,
                "ready events delivered per poller wake",
            ),
            backpressure: registry.counter_with(
                "nrslb_reactor_backpressure_total",
                labels,
                "responses that overflowed the socket buffer into the loop's write path",
            ),
        }
    }
}

/// A running reactor engine; [`ReactorHandle::shutdown`] tears it down.
pub(crate) struct ReactorHandle {
    accept: Option<JoinHandle<()>>,
    loops: Vec<(Arc<LoopShared>, JoinHandle<()>)>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Spawn `n_loops` event loops and `n_workers` evaluation workers
    /// serving `listener`. `stop` is shared with the owning
    /// [`crate::daemon::TrustDaemon`]; setting it (plus a wake-up
    /// connect for the accept thread) initiates shutdown.
    pub(crate) fn spawn(
        listener: UnixListener,
        n_loops: usize,
        n_workers: usize,
        ctx: ExecCtx,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<ReactorHandle> {
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
        let workers = (0..n_workers.max(1))
            .map(|_| {
                let job_rx = job_rx.clone();
                let ctx = ctx.clone();
                std::thread::spawn(move || {
                    // recv fails once every loop (the senders) is gone
                    // and the queue has drained.
                    while let Ok(job) = job_rx.recv() {
                        serve_job(job, &ctx);
                    }
                })
            })
            .collect();
        drop(job_rx);

        let mut loops = Vec::with_capacity(n_loops.max(1));
        for loop_id in 0..n_loops.max(1) {
            let shared = Arc::new(LoopShared {
                poller: Poller::new()?,
                injected: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
            });
            let instruments = LoopInstruments::new(&ctx.instruments.registry, loop_id);
            let thread = {
                let shared = Arc::clone(&shared);
                let ctx = ctx.clone();
                let job_tx = job_tx.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    EventLoop {
                        shared,
                        ctx,
                        job_tx,
                        instruments,
                        slots: Vec::new(),
                        free: Vec::new(),
                        scratch: vec![0u8; 64 * 1024],
                    }
                    .run(&stop)
                })
            };
            loops.push((shared, thread));
        }
        drop(job_tx);

        let accept_loops: Vec<Arc<LoopShared>> = loops.iter().map(|(s, _)| Arc::clone(s)).collect();
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            let mut next = 0usize;
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                accept_loops[next].inject(stream);
                next = (next + 1) % accept_loops.len();
            }
        });

        Ok(ReactorHandle {
            accept: Some(accept),
            loops,
            workers,
        })
    }

    /// Join every thread. The caller has already set the shared stop
    /// flag and poked the listener awake.
    pub(crate) fn shutdown(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // Wake the loops so they observe the stop flag; joining them
        // drops the last job senders, which in turn drains the workers.
        for (shared, _) in &self.loops {
            let _ = shared.poller.notify();
        }
        for (_, thread) in self.loops.drain(..) {
            let _ = thread.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Evaluate one job and write its response directly; whatever does not
/// fit the socket buffer rides the completion back to the loop.
fn serve_job(job: Job, ctx: &ExecCtx) {
    let bytes = proto::execute(&job.request, &*ctx.oracle, &ctx.certs, &ctx.instruments);
    let (unwritten, close) = write_nonblocking(&job.stream, bytes, 0);
    if job.fast_rearm && !close && unwritten.is_empty() {
        // Fast path: the response is fully on the wire and no buffered
        // frames are waiting, so the loop has nothing to do until the
        // peer sends again — arm readable interest directly. The loop
        // reinterprets a readable event on an Executing connection as
        // exactly this signal. (Level-triggered interest also covers a
        // request that raced in while we were writing.)
        if job
            .shared
            .poller
            .modify(&*job.stream, Event::readable(job.key))
            .is_ok()
        {
            return;
        }
        // The loop deleted the fd under us (shutdown); fall through so
        // the slot is reclaimed rather than leaked.
    }
    job.shared.complete(Completion {
        key: job.key,
        gen: job.gen,
        unwritten,
        close,
    });
}

/// Push as much of `bytes[offset..]` as the socket accepts right now.
/// Returns the unwritten tail (empty when done) and whether a hard
/// error demands closing the connection.
fn write_nonblocking(stream: &UnixStream, bytes: Vec<u8>, mut offset: usize) -> (Vec<u8>, bool) {
    let mut stream = stream;
    while offset < bytes.len() {
        match stream.write(&bytes[offset..]) {
            Ok(0) => return (Vec::new(), true),
            Ok(n) => offset += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return (bytes[offset..].to_vec(), false)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return (Vec::new(), true),
        }
    }
    (Vec::new(), false)
}

/// Connection lifecycle (see the module-level state diagram).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    Reading,
    Executing,
    Writing,
}

struct Conn {
    stream: Arc<UnixStream>,
    state: ConnState,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// The peer's write half is closed; close once in-flight work and
    /// buffered responses drain.
    peer_closed: bool,
    /// Close as soon as `wbuf` drains (fatal protocol violation).
    close_after_write: bool,
}

struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

struct EventLoop {
    shared: Arc<LoopShared>,
    ctx: ExecCtx,
    job_tx: crossbeam::channel::Sender<Job>,
    instruments: LoopInstruments,
    slots: Vec<Slot>,
    free: Vec<usize>,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn run(mut self, stop: &AtomicBool) {
        let mut events = Vec::new();
        loop {
            let _ = self.shared.poller.wait(&mut events, Some(WAIT_TIMEOUT));
            if stop.load(Ordering::SeqCst) {
                break;
            }
            if !events.is_empty() {
                self.instruments.ready_events.observe(events.len() as u64);
            }
            self.adopt_injected();
            self.drain_completions();
            for event in &events {
                self.handle_event(*event);
            }
        }
        // Drop connections; the gauge must read zero after shutdown.
        for slot in &mut self.slots {
            if slot.conn.take().is_some() {
                self.instruments.connections.sub(1);
            }
        }
    }

    fn adopt_injected(&mut self) {
        let streams: Vec<UnixStream> =
            std::mem::take(&mut *self.shared.injected.lock().expect("injected lock"));
        for stream in streams {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let key = match self.free.pop() {
                Some(key) => key,
                None => {
                    self.slots.push(Slot { gen: 0, conn: None });
                    self.slots.len() - 1
                }
            };
            let stream = Arc::new(stream);
            if self
                .shared
                .poller
                .add(&*stream, Event::readable(key))
                .is_err()
            {
                self.free.push(key);
                continue;
            }
            self.slots[key].conn = Some(Conn {
                stream,
                state: ConnState::Reading,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                peer_closed: false,
                close_after_write: false,
            });
            self.instruments.connections.add(1);
        }
    }

    fn drain_completions(&mut self) {
        let completions: Vec<Completion> =
            std::mem::take(&mut *self.shared.completions.lock().expect("completions lock"));
        for comp in completions {
            let Some(slot) = self.slots.get_mut(comp.key) else {
                continue;
            };
            // A stale completion for a slot that was closed and reused.
            if slot.gen != comp.gen {
                continue;
            }
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            debug_assert_eq!(conn.state, ConnState::Executing);
            if comp.close {
                self.close(comp.key);
                continue;
            }
            if comp.unwritten.is_empty() {
                conn.state = ConnState::Reading;
                // Pipelined frames may already be buffered; serve them
                // before going back to sleep.
                self.advance(comp.key);
            } else {
                conn.wbuf = comp.unwritten;
                conn.state = ConnState::Writing;
                self.instruments.backpressure.inc();
                self.rearm(comp.key);
            }
        }
    }

    fn handle_event(&mut self, event: Event) {
        let Some(state) = self
            .slots
            .get(event.key)
            .and_then(|s| s.conn.as_ref())
            .map(|c| c.state)
        else {
            return;
        };
        match state {
            ConnState::Reading if event.readable => self.on_readable(event.key),
            // Interest is disarmed for the whole of Executing, so a
            // readable event here can only be the worker's fast-path
            // re-arm: the response is fully written and the connection
            // is back to request/reply duty.
            ConnState::Executing if event.readable => {
                if let Some(conn) = self.slots[event.key].conn.as_mut() {
                    conn.state = ConnState::Reading;
                }
                self.on_readable(event.key);
            }
            ConnState::Writing if event.writable => self.on_writable(event.key),
            // Events for a disarmed or mismatched state are stale
            // oneshot deliveries; the state machine re-arms what it
            // actually wants.
            _ => {}
        }
    }

    fn on_readable(&mut self, key: usize) {
        let conn = match self.slots[key].conn.as_mut() {
            Some(c) => c,
            None => return,
        };
        loop {
            match (&*conn.stream).read(&mut self.scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    // A short read means the kernel buffer is drained;
                    // skip the WouldBlock confirmation syscall. (If
                    // more raced in, level-triggered readable interest
                    // re-delivers once the state machine re-arms.)
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(key);
                    return;
                }
            }
        }
        self.advance(key);
    }

    /// Drive the state machine from Reading: delimit frames out of
    /// `rbuf`, dispatch or answer them, then re-arm interest to match
    /// the resulting state.
    fn advance(&mut self, key: usize) {
        loop {
            let conn = match self.slots[key].conn.as_mut() {
                Some(c) if c.state == ConnState::Reading => c,
                _ => return,
            };
            match proto::try_parse(&conn.rbuf) {
                Parsed::Incomplete => {
                    if conn.peer_closed {
                        // Clean EOF between frames, or mid-frame
                        // abandonment; nothing more will arrive.
                        self.close(key);
                    } else if conn.rbuf.len() > proto::MAX_BUFFERED {
                        proto::count_malformed(&self.ctx.instruments);
                        self.send_reply(
                            key,
                            proto::encode_error_reply("frame exceeds buffer limit"),
                            true,
                        );
                    } else {
                        self.rearm(key);
                    }
                    return;
                }
                Parsed::Frame(Ok(request), consumed) => {
                    conn.rbuf.drain(..consumed);
                    conn.state = ConnState::Executing;
                    let fast_rearm = conn.rbuf.is_empty() && !conn.peer_closed;
                    let job = Job {
                        shared: Arc::clone(&self.shared),
                        key,
                        gen: self.slots[key].gen,
                        stream: Arc::clone(&self.slots[key].conn.as_ref().unwrap().stream),
                        request,
                        fast_rearm,
                    };
                    // No re-arm syscall: every path into a dispatch has
                    // just consumed a oneshot delivery, so the fd is
                    // already disarmed — exactly what Executing wants.
                    if self.job_tx.send(job).is_err() {
                        // Workers are gone (shutdown); drop the conn.
                        self.close(key);
                    }
                    return;
                }
                Parsed::Frame(Err(message), consumed) => {
                    conn.rbuf.drain(..consumed);
                    proto::count_malformed(&self.ctx.instruments);
                    let reply = proto::encode_error_reply(&message);
                    // The frame was fully consumed, so the stream is
                    // still in sync: answer and keep serving.
                    self.send_reply(key, reply, false);
                    // send_reply may have moved us to Writing/closed;
                    // the loop head re-checks state.
                }
                Parsed::Fatal(message) => {
                    proto::count_malformed(&self.ctx.instruments);
                    let reply = proto::encode_error_reply(&message);
                    self.send_reply(key, reply, true);
                    return;
                }
            }
        }
    }

    /// Write `bytes` from the loop (error replies only — evaluation
    /// responses are written by workers). Spills to Writing on a full
    /// socket buffer.
    fn send_reply(&mut self, key: usize, bytes: Vec<u8>, close_after: bool) {
        let conn = match self.slots[key].conn.as_mut() {
            Some(c) => c,
            None => return,
        };
        let (unwritten, broken) = write_nonblocking(&conn.stream, bytes, 0);
        if broken {
            self.close(key);
            return;
        }
        if unwritten.is_empty() {
            if close_after {
                self.close(key);
            }
            // else: state stays Reading; caller's loop continues.
            return;
        }
        conn.wbuf = unwritten;
        conn.state = ConnState::Writing;
        conn.close_after_write = close_after;
        self.instruments.backpressure.inc();
        self.rearm(key);
    }

    fn on_writable(&mut self, key: usize) {
        let conn = match self.slots[key].conn.as_mut() {
            Some(c) => c,
            None => return,
        };
        let wbuf = std::mem::take(&mut conn.wbuf);
        let (unwritten, broken) = write_nonblocking(&conn.stream, wbuf, 0);
        if broken {
            self.close(key);
            return;
        }
        if unwritten.is_empty() {
            if conn.close_after_write {
                self.close(key);
                return;
            }
            conn.state = ConnState::Reading;
            self.advance(key);
        } else {
            conn.wbuf = unwritten;
            self.rearm(key);
        }
    }

    /// Point the oneshot interest at what the current state needs next.
    fn rearm(&mut self, key: usize) {
        let Some(conn) = self.slots[key].conn.as_ref() else {
            return;
        };
        let interest = match conn.state {
            ConnState::Reading => Event::readable(key),
            ConnState::Executing => Event::none(key),
            ConnState::Writing => Event::writable(key),
        };
        if self.shared.poller.modify(&*conn.stream, interest).is_err() {
            self.close(key);
        }
    }

    fn close(&mut self, key: usize) {
        let Some(slot) = self.slots.get_mut(key) else {
            return;
        };
        let Some(conn) = slot.conn.take() else {
            return;
        };
        let _ = self.shared.poller.delete(&*conn.stream);
        slot.gen += 1;
        self.free.push(key);
        self.instruments.connections.sub(1);
        // The stream's fd closes when the last Arc (possibly held by an
        // in-flight worker job) drops; the bumped generation discards
        // that job's completion.
    }
}
