//! The daemon instance of the generic readiness reactor
//! ([`nrslb_reactor`], `Engine::Reactor`).
//!
//! PR 7 built the loop/slab/state-machine engine here; it now lives in
//! the `nrslb-reactor` crate, generic over a per-connection
//! [`Service`], and this module is reduced to the daemon protocol's
//! instance of it: [`DaemonService`] maps [`crate::proto`]'s parser,
//! executor, and error encoders onto the engine's [`Frame`] vocabulary
//! (including the malformed-frame accounting, which belongs to the
//! protocol, not the engine).
//!
//! ## The fused inline cost guard
//!
//! [`Service::try_execute_inline`] is the daemon's answer to the
//! warm-path handoff gap (DESIGN.md §5g): a single-chain `OP_EVALUATE`
//! whose every certificate is already in the parsed-cert cache *and*
//! whose every GCC verdict is already in the verdict cache executes in
//! a few microseconds — cheaper than the two thread wake-ups of the
//! loop→worker→loop round trip it would otherwise ride. The guard and
//! the execution are one pass: the probe hashes each DER once
//! ([`ParsedCertCache::key_of`] + [`ParsedCertCache::peek_keyed`]) and
//! derives the chain content key once
//! ([`crate::validate::InProcessOracle::evaluate_warm`]), and on a
//! full cache hit those same keys *commit* the counting lookups the
//! worker path would perform — no byte is re-hashed. Any probe miss
//! returns `None` with zero observable effect (peeks count nothing and
//! move no recency), and the worker runs the request from scratch.
//! Replies, hit/miss counters, and request/error counts are identical
//! on both dispatch paths; only the latency histogram differs, because
//! inline requests genuinely are faster. Batch and metrics requests,
//! unparsed certificates, uncached verdicts, and chains longer than
//! [`INLINE_MAX_CHAIN`] all stay on the worker pool.

use crate::cache::ParsedCertCache;
use crate::daemon::ExecCtx;
use crate::proto::{self, Parsed};
use nrslb_reactor::{Frame, Service};

pub(crate) use nrslb_reactor::ReactorHandle;

/// Longest chain the inline probe will consider. A probe walks every
/// DER through the cert-cache peek (an FxHash plus a byte compare), so
/// its own cost scales with chain length; beyond a handful of
/// certificates the handoff is no longer the dominant term and the
/// worker path is fine.
const INLINE_MAX_CHAIN: usize = 8;

/// The trust-daemon protocol as a reactor [`Service`]: parsing and
/// malformed accounting from [`crate::proto`], execution through the
/// shared [`ExecCtx`] (oracle, caches, instruments).
pub(crate) struct DaemonService {
    ctx: ExecCtx,
}

impl DaemonService {
    pub(crate) fn new(ctx: ExecCtx) -> DaemonService {
        DaemonService { ctx }
    }
}

impl Service for DaemonService {
    type Request = proto::Request;

    fn parse(&self, buf: &[u8]) -> Frame<proto::Request> {
        match proto::try_parse(buf) {
            Parsed::Incomplete => Frame::Incomplete,
            Parsed::Frame(Ok(request), consumed) => Frame::Request { request, consumed },
            Parsed::Frame(Err(message), consumed) => {
                proto::count_malformed(&self.ctx.instruments);
                Frame::Reply {
                    reply: proto::encode_error_reply(&message),
                    consumed,
                }
            }
            Parsed::Fatal(message) => {
                proto::count_malformed(&self.ctx.instruments);
                Frame::Fatal {
                    reply: proto::encode_error_reply(&message),
                }
            }
        }
    }

    fn max_buffered(&self) -> usize {
        proto::MAX_BUFFERED
    }

    fn overflow_reply(&self) -> Vec<u8> {
        proto::count_malformed(&self.ctx.instruments);
        proto::encode_error_reply("frame exceeds buffer limit")
    }

    fn execute(&self, request: &proto::Request) -> Vec<u8> {
        proto::execute(
            request,
            &*self.ctx.oracle,
            &self.ctx.certs,
            &self.ctx.instruments,
        )
    }

    fn try_execute_inline(&self, request: &proto::Request) -> Option<Vec<u8>> {
        // Only single-chain evaluations: a batch amortizes its handoff
        // over many chains already, and metrics renders are rare and
        // allocation-heavy.
        let proto::Request::Evaluate { usage, ders } = request else {
            return None;
        };
        if ders.len() > INLINE_MAX_CHAIN {
            return None;
        }
        // Probe: hash each DER once, keeping the key for the commit.
        // Peeks count nothing, so bailing here leaves no trace.
        let mut chain = Vec::with_capacity(ders.len());
        let mut keys = Vec::with_capacity(ders.len());
        for der in ders {
            let key = ParsedCertCache::key_of(der);
            let cert = self.ctx.certs.peek_keyed(key, der)?; // unparsed DER: worker
            chain.push(cert);
            keys.push(key);
        }
        let verdicts = self.ctx.oracle.evaluate_warm(&chain, *usage)?;
        // Committed: evaluate_warm counted its verdict hits. Produce
        // the rest of the accounting a worker-path execution would.
        let instruments = &self.ctx.instruments;
        instruments.requests.inc();
        let span = instruments.span();
        for (key, der) in keys.iter().zip(ders) {
            // The counting cert-cache hits parse_chain would record; a
            // racing eviction makes this a real parse, as on a worker.
            let _ = self.ctx.certs.parse_keyed(*key, der);
        }
        let reply = match verdicts {
            Ok(v) => proto::encode_verdicts_reply(&v),
            Err(e) => {
                instruments.request_errors.inc();
                proto::encode_error_reply(&e.to_string())
            }
        };
        drop(span);
        Some(reply)
    }
}
