//! Shared validation sessions: the fact side of compile-once /
//! evaluate-many GCC execution.
//!
//! A [`ValidationSession`] converts a candidate chain into its Datalog
//! fact representation exactly once and freezes it behind an
//! `Arc<Database>`. Every GCC evaluated against the chain — and every
//! usage it is evaluated for — reads through that shared base, so the
//! per-GCC cost is one small overlay of derived tuples instead of a
//! full clone of the fact base. The session also owns a reusable
//! [`EvalScratch`]: overlay relations, binding slots, semi-naive delta
//! sets and the pending queue are cleared capacity-retained between
//! evaluations, so a warm cache-miss evaluation performs zero
//! steady-state heap allocations.
//!
//! On top of that sits the [`VerdictCache`] (see [`crate::cache`]), a
//! bounded sharded LRU keyed by `(chain, GCC source hash, usage)`.
//! Because GCCs are pure logic programs over the chain's facts, a
//! verdict is fully determined by that triple; the trust daemon shares
//! one cache across all client connections, so repeated validations of
//! the same chain (common when many processes talk to one platform
//! daemon) skip evaluation entirely. [`evaluate_gccs_lazy`] goes one
//! step further: it computes only the chain's content key up front and
//! defers fact conversion until the first cache miss, so a fully warm
//! chain costs a few hashes and cache probes — no Datalog at all.

use crate::facts::{chain_facts, chain_id, fact_syms};
use crate::gcc_eval::GccVerdict;
use crate::CoreError;
use nrslb_crypto::sha256::{Digest, Sha256};
use nrslb_datalog::eval::DEFAULT_BUDGET;
use nrslb_datalog::intern::{IVal, Sym};
use nrslb_datalog::{Database, Engine, EvalMode, EvalScratch, Val};
use nrslb_rootstore::{Gcc, Usage};
use nrslb_x509::Certificate;
use std::sync::{Arc, Mutex};

pub use crate::cache::{VerdictCache, VerdictKey, DEFAULT_VERDICT_CACHE_CAPACITY};

/// Content identity of a chain: SHA-256 over the certificate
/// fingerprints in order. This is the verdict-cache key component —
/// unlike [`chain_id`], which is only unique *within* one validation,
/// it distinguishes chains sharing a leaf. Computable without building
/// any facts (and without allocating: the digest is streamed), which is
/// what makes the lazy fast path possible.
pub fn chain_content_key(chain: &[Certificate]) -> Digest {
    let mut hasher = Sha256::new();
    for cert in chain {
        hasher.update(cert.fingerprint().0);
    }
    hasher.finalize()
}

/// A candidate chain converted to facts once, shared by every GCC (and
/// usage) evaluated against it.
#[derive(Debug)]
pub struct ValidationSession {
    facts: Arc<Database>,
    handle: String,
    handle_sym: Sym,
    chain_key: Digest,
    /// Reusable evaluation buffers; fresh per clone (scratch state is
    /// transient, never part of the session's identity).
    scratch: Mutex<EvalScratch>,
}

impl Clone for ValidationSession {
    fn clone(&self) -> ValidationSession {
        ValidationSession {
            facts: Arc::clone(&self.facts),
            handle: self.handle.clone(),
            handle_sym: self.handle_sym,
            chain_key: self.chain_key,
            scratch: Mutex::new(EvalScratch::new()),
        }
    }
}

impl ValidationSession {
    /// Convert `chain` (leaf first) into a frozen, shareable fact base.
    pub fn new(chain: &[Certificate]) -> ValidationSession {
        let handle = chain_id(chain);
        let handle_sym = nrslb_datalog::intern(&handle);
        ValidationSession {
            facts: Arc::new(chain_facts(chain)),
            handle,
            handle_sym,
            chain_key: chain_content_key(chain),
            scratch: Mutex::new(EvalScratch::new()),
        }
    }

    /// The frozen fact base (the EDB every evaluation layers over).
    pub fn facts(&self) -> &Arc<Database> {
        &self.facts
    }

    /// The chain's Datalog handle (first argument of `valid/2`).
    pub fn chain_handle(&self) -> &str {
        &self.handle
    }

    /// The chain's content identity ([`chain_content_key`]).
    pub fn chain_key(&self) -> Digest {
        self.chain_key
    }

    fn scratch(&self) -> std::sync::MutexGuard<'_, EvalScratch> {
        self.scratch.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Did the last run derive `valid(handle, usage)`? Probes the
    /// scratch overlay with pre-interned symbols — no allocation, no
    /// string hashing.
    fn verdict(&self, scratch: &EvalScratch, usage: Usage) -> bool {
        let syms = fact_syms();
        let query = [IVal::Sym(self.handle_sym), IVal::Sym(syms.usage(usage))];
        scratch.overlay().icontains(syms.valid, &query)
    }

    /// Evaluate one GCC against the shared fact base. The base is not
    /// cloned; the GCC's derived tuples land in the session's reusable
    /// scratch overlay (cleared capacity-retained, not reallocated).
    pub fn evaluate_gcc(&self, gcc: &Gcc, usage: Usage) -> Result<bool, CoreError> {
        let mut scratch = self.scratch();
        gcc.compiled().evaluate_reusing(
            &self.facts,
            &mut scratch,
            EvalMode::SemiNaive,
            DEFAULT_BUDGET,
        )?;
        Ok(self.verdict(&scratch, usage))
    }

    /// [`ValidationSession::evaluate_gcc`] with the engine reporting
    /// into `metrics` (evaluation count, derivations, rounds, latency).
    pub fn evaluate_gcc_metered(
        &self,
        gcc: &Gcc,
        usage: Usage,
        metrics: &nrslb_datalog::EvalMetrics,
    ) -> Result<bool, CoreError> {
        let mut scratch = self.scratch();
        gcc.compiled().evaluate_reusing_metered(
            &self.facts,
            &mut scratch,
            EvalMode::SemiNaive,
            DEFAULT_BUDGET,
            metrics,
        )?;
        Ok(self.verdict(&scratch, usage))
    }

    /// Evaluate one GCC with the reference naive-iteration engine
    /// instead of the compiled stratified pipeline.
    ///
    /// This is a differential-testing hook: naive iteration shares the
    /// interned storage with [`ValidationSession::evaluate_gcc`] but
    /// none of the semi-naive delta machinery. It clones the fact base
    /// per call — strictly a test/oracle path, never the serving path.
    pub fn evaluate_gcc_naive(&self, gcc: &Gcc, usage: Usage) -> Result<bool, CoreError> {
        let engine = Engine::from_compiled(Arc::clone(gcc.compiled())).with_mode(EvalMode::Naive);
        let out = engine.run((*self.facts).clone())?;
        Ok(out.contains(
            "valid",
            &[Val::str(&*self.handle), Val::str(usage.as_datalog())],
        ))
    }

    /// Evaluate one GCC on the **string-path reference evaluator**
    /// ([`nrslb_datalog::evaluate_strings`]), which shares no execution
    /// machinery with the interned engine at all — relations keyed by
    /// strings, tuples of owned [`Val`]s, naive iteration.
    ///
    /// This is the `interned-vs-string` differential arm: agreement
    /// here checks the entire interning layer (symbol table, `ITuple`
    /// storage, compiled IR) against the pre-interning execution model.
    pub fn evaluate_gcc_string(&self, gcc: &Gcc, usage: Usage) -> Result<bool, CoreError> {
        let out =
            nrslb_datalog::evaluate_strings(gcc.compiled().program(), &self.facts, DEFAULT_BUDGET)?;
        Ok(out.contains(
            "valid",
            &[Val::str(&*self.handle), Val::str(usage.as_datalog())],
        ))
    }

    /// Evaluate every GCC in order, consulting (and filling) `cache`.
    pub fn evaluate_gccs_cached(
        &self,
        gccs: &[Gcc],
        usage: Usage,
        cache: Option<&VerdictCache>,
    ) -> Result<Vec<GccVerdict>, CoreError> {
        self.evaluate_gccs_observed(gccs, usage, cache, None)
    }

    /// [`ValidationSession::evaluate_gccs_cached`] with the Datalog
    /// engine optionally reporting into `metrics`. Cache hits skip
    /// evaluation entirely, so they record nothing there — the cache's
    /// own instruments count them.
    pub fn evaluate_gccs_observed(
        &self,
        gccs: &[Gcc],
        usage: Usage,
        cache: Option<&VerdictCache>,
        metrics: Option<&nrslb_datalog::EvalMetrics>,
    ) -> Result<Vec<GccVerdict>, CoreError> {
        let mut verdicts = Vec::with_capacity(gccs.len());
        for gcc in gccs {
            let key = VerdictKey {
                chain: self.chain_key,
                gcc: gcc.source_hash(),
                usage,
            };
            let accepted = match cache.and_then(|c| c.get(&key)) {
                Some(cached) => cached,
                None => {
                    let computed = match metrics {
                        Some(m) => self.evaluate_gcc_metered(gcc, usage, m)?,
                        None => self.evaluate_gcc(gcc, usage)?,
                    };
                    if let Some(c) = cache {
                        // The session no longer holds the chain, so the
                        // entry's taint is the policy's attachment
                        // point (plus key.gcc, added implicitly).
                        c.insert_tainted(key, computed, &[gcc.target()]);
                    }
                    computed
                }
            };
            verdicts.push(GccVerdict {
                gcc_name: Arc::clone(gcc.name_shared()),
                accepted,
            });
        }
        Ok(verdicts)
    }

    /// Evaluate every GCC in order without a cache.
    pub fn evaluate_gccs(&self, gccs: &[Gcc], usage: Usage) -> Result<Vec<GccVerdict>, CoreError> {
        self.evaluate_gccs_cached(gccs, usage, None)
    }
}

/// Evaluate every GCC against `chain`, building the
/// [`ValidationSession`] (the Datalog fact conversion) only if some
/// verdict actually misses the cache.
///
/// This is the serving fast path: for a fully warm chain the cost is
/// one [`chain_content_key`] (a few SHA-256 blocks over already-cached
/// fingerprints) plus one sharded cache probe per GCC. Verdicts and
/// hit/miss accounting are identical to building a session eagerly and
/// calling [`ValidationSession::evaluate_gccs_observed`] — each key is
/// probed exactly once either way.
pub fn evaluate_gccs_lazy(
    chain: &[Certificate],
    gccs: &[Gcc],
    usage: Usage,
    cache: &VerdictCache,
    metrics: Option<&nrslb_datalog::EvalMetrics>,
) -> Result<Vec<GccVerdict>, CoreError> {
    let mut verdicts = Vec::with_capacity(gccs.len());
    evaluate_gccs_lazy_into(chain, gccs, usage, cache, metrics, &mut verdicts)?;
    Ok(verdicts)
}

/// [`evaluate_gccs_lazy`] writing into a caller-provided buffer
/// (cleared first), so a serving loop can reuse one verdict `Vec`
/// across requests instead of allocating per call.
pub fn evaluate_gccs_lazy_into(
    chain: &[Certificate],
    gccs: &[Gcc],
    usage: Usage,
    cache: &VerdictCache,
    metrics: Option<&nrslb_datalog::EvalMetrics>,
    verdicts: &mut Vec<GccVerdict>,
) -> Result<(), CoreError> {
    let chain_key = chain_content_key(chain);
    evaluate_gccs_lazy_keyed(chain, gccs, usage, cache, metrics, chain_key, verdicts)
}

/// [`evaluate_gccs_lazy_into`] with a precomputed
/// [`chain_content_key`], for callers (the reactor's fused inline
/// probe) that already derived the key while checking cache residency
/// and must not pay the SHA-256 pass twice.
pub fn evaluate_gccs_lazy_keyed(
    chain: &[Certificate],
    gccs: &[Gcc],
    usage: Usage,
    cache: &VerdictCache,
    metrics: Option<&nrslb_datalog::EvalMetrics>,
    chain_key: Digest,
    verdicts: &mut Vec<GccVerdict>,
) -> Result<(), CoreError> {
    verdicts.clear();
    let mut session: Option<ValidationSession> = None;
    // Taint identities of this chain, computed once on the first miss
    // (cold path only): the root's fingerprint plus every issuer SPKI,
    // so a feed delta touching any of them evicts exactly these
    // verdicts.
    let mut chain_taints: Option<Vec<Digest>> = None;
    for gcc in gccs {
        let key = VerdictKey {
            chain: chain_key,
            gcc: gcc.source_hash(),
            usage,
        };
        let accepted = match cache.get(&key) {
            Some(cached) => cached,
            None => {
                let session = session.get_or_insert_with(|| ValidationSession::new(chain));
                let computed = match metrics {
                    Some(m) => session.evaluate_gcc_metered(gcc, usage, m)?,
                    None => session.evaluate_gcc(gcc, usage)?,
                };
                let base = chain_taints.get_or_insert_with(|| {
                    let mut tags: Vec<Digest> = Vec::with_capacity(chain.len() + 1);
                    if let Some(root) = chain.last() {
                        tags.push(root.fingerprint());
                    }
                    for issuer in chain.iter().skip(1) {
                        tags.push(issuer.public_key().fingerprint());
                    }
                    tags
                });
                let mut tags = base.clone();
                tags.push(gcc.target());
                cache.insert_tainted(key, computed, &tags);
                computed
            }
        };
        verdicts.push(GccVerdict {
            gcc_name: Arc::clone(gcc.name_shared()),
            accepted,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_crypto::sha256::sha256;
    use nrslb_rootstore::GccMetadata;
    use nrslb_x509::testutil::simple_chain;

    fn chain() -> Vec<Certificate> {
        let pki = simple_chain("session.example");
        vec![pki.leaf, pki.intermediate, pki.root]
    }

    fn gcc(name: &str, src: &str) -> Gcc {
        Gcc::parse(name, Digest::ZERO, src, GccMetadata::default()).unwrap()
    }

    #[test]
    fn content_key_streams_to_the_same_digest() {
        let chain = chain();
        let mut concat = Vec::new();
        for cert in &chain {
            concat.extend_from_slice(&cert.fingerprint().0);
        }
        assert_eq!(chain_content_key(&chain), sha256(&concat));
    }

    #[test]
    fn session_shares_one_fact_base_across_gccs() {
        let chain = chain();
        let session = ValidationSession::new(&chain);
        let gccs = [
            gcc("a", r#"valid(Chain, "TLS") :- leaf(Chain, _)."#),
            gcc("b", r#"valid(Chain, "TLS") :- leaf(Chain, C), EV(C)."#),
            gcc("c", r#"valid(Chain, U) :- chain(Chain), usage_never(U)."#),
        ];
        let before = Arc::strong_count(session.facts());
        let verdicts = session.evaluate_gccs(&gccs, Usage::Tls).unwrap();
        assert_eq!(
            verdicts.iter().map(|v| v.accepted).collect::<Vec<_>>(),
            [true, false, false]
        );
        // Nothing held onto the base: evaluation borrowed it per GCC.
        assert_eq!(Arc::strong_count(session.facts()), before);
    }

    #[test]
    fn string_reference_agrees_with_interned_paths() {
        let chain = chain();
        let session = ValidationSession::new(&chain);
        let gccs = [
            gcc("accept", r#"valid(Chain, "TLS") :- leaf(Chain, _)."#),
            gcc("reject", r#"valid(Chain, "TLS") :- leaf(Chain, C), EV(C)."#),
            gcc(
                "lifetime",
                r#"valid(Chain, "TLS") :- leaf(Chain, C), notBefore(C, NB),
                   notAfter(C, NA), L = NA - NB, L < 100000000."#,
            ),
        ];
        for g in &gccs {
            for usage in Usage::ALL {
                let interned = session.evaluate_gcc(g, usage).unwrap();
                assert_eq!(interned, session.evaluate_gcc_string(g, usage).unwrap());
                assert_eq!(interned, session.evaluate_gcc_naive(g, usage).unwrap());
            }
        }
    }

    #[test]
    fn chain_key_distinguishes_chains_with_same_leaf_count() {
        let a = ValidationSession::new(&chain());
        let pki = simple_chain("other-session.example");
        let b = ValidationSession::new(&[pki.leaf, pki.intermediate, pki.root]);
        assert_ne!(a.chain_key(), b.chain_key());
    }

    #[test]
    fn cached_evaluation_skips_the_engine() {
        let chain = chain();
        let session = ValidationSession::new(&chain);
        let cache = VerdictCache::new(8);
        let gccs = [gcc("tls", r#"valid(Chain, "TLS") :- leaf(Chain, _)."#)];
        let first = session
            .evaluate_gccs_cached(&gccs, Usage::Tls, Some(&cache))
            .unwrap();
        assert!(first[0].accepted);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = session
            .evaluate_gccs_cached(&gccs, Usage::Tls, Some(&cache))
            .unwrap();
        assert_eq!(first[0], second[0]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different usage is a different key.
        session
            .evaluate_gccs_cached(&gccs, Usage::SMime, Some(&cache))
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn cache_key_separates_gccs_on_one_chain() {
        let chain = chain();
        let session = ValidationSession::new(&chain);
        let cache = VerdictCache::new(8);
        let accept = gcc("accept", r#"valid(Chain, "TLS") :- leaf(Chain, _)."#);
        let reject = gcc("reject", r#"valid(Chain, "TLS") :- leaf(Chain, C), EV(C)."#);
        let verdicts = session
            .evaluate_gccs_cached(&[accept, reject], Usage::Tls, Some(&cache))
            .unwrap();
        assert!(verdicts[0].accepted);
        assert!(!verdicts[1].accepted);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lazy_evaluation_matches_eager_and_skips_fact_conversion_when_warm() {
        let chain = chain();
        let cache = VerdictCache::new(8);
        let gccs = [
            gcc("accept", r#"valid(Chain, "TLS") :- leaf(Chain, _)."#),
            gcc("reject", r#"valid(Chain, "TLS") :- leaf(Chain, C), EV(C)."#),
        ];
        let cold = evaluate_gccs_lazy(&chain, &gccs, Usage::Tls, &cache, None).unwrap();
        assert_eq!(
            cold.iter().map(|v| v.accepted).collect::<Vec<_>>(),
            [true, false]
        );
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // Warm pass: every verdict answered from the cache; the eager
        // path agrees verdict-for-verdict. The `_into` form reuses the
        // caller's buffer.
        let mut warm = Vec::new();
        evaluate_gccs_lazy_into(&chain, &gccs, Usage::Tls, &cache, None, &mut warm).unwrap();
        assert_eq!(warm, cold);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        let eager = ValidationSession::new(&chain)
            .evaluate_gccs_cached(&gccs, Usage::Tls, Some(&cache))
            .unwrap();
        assert_eq!(eager, cold);
    }
}
