//! Shared validation sessions: the fact side of compile-once /
//! evaluate-many GCC execution.
//!
//! A [`ValidationSession`] converts a candidate chain into its Datalog
//! fact representation exactly once and freezes it behind an
//! `Arc<Database>`. Every GCC evaluated against the chain — and every
//! usage it is evaluated for — reads through that shared base via a
//! [`nrslb_datalog::LayeredDatabase`], so the per-GCC cost is one small
//! overlay of derived tuples instead of a full clone of the fact base.
//!
//! On top of that sits the [`VerdictCache`], a bounded LRU keyed by
//! `(chain, GCC source hash, usage)`. Because GCCs are pure logic
//! programs over the chain's facts, a verdict is fully determined by
//! that triple; the trust daemon shares one cache across all client
//! connections, so repeated validations of the same chain (common when
//! many processes talk to one platform daemon) skip evaluation
//! entirely.

use crate::facts::{chain_facts, chain_id};
use crate::gcc_eval::GccVerdict;
use crate::CoreError;
use nrslb_crypto::sha256::{sha256, Digest};
use nrslb_datalog::{Database, Engine, EvalMode, Val};
use nrslb_rootstore::{Gcc, Usage};
use nrslb_x509::Certificate;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A candidate chain converted to facts once, shared by every GCC (and
/// usage) evaluated against it.
#[derive(Clone, Debug)]
pub struct ValidationSession {
    facts: Arc<Database>,
    handle: String,
    chain_key: Digest,
}

impl ValidationSession {
    /// Convert `chain` (leaf first) into a frozen, shareable fact base.
    pub fn new(chain: &[Certificate]) -> ValidationSession {
        let mut fingerprints = Vec::with_capacity(chain.len() * 32);
        for cert in chain {
            fingerprints.extend_from_slice(&cert.fingerprint().0);
        }
        ValidationSession {
            facts: Arc::new(chain_facts(chain)),
            handle: chain_id(chain),
            chain_key: sha256(&fingerprints),
        }
    }

    /// The frozen fact base (the EDB every evaluation layers over).
    pub fn facts(&self) -> &Arc<Database> {
        &self.facts
    }

    /// The chain's Datalog handle (first argument of `valid/2`).
    pub fn chain_handle(&self) -> &str {
        &self.handle
    }

    /// Content identity of the chain: SHA-256 over the certificate
    /// fingerprints in order. This is the cache key component — unlike
    /// [`chain_id`], which is only unique *within* one validation, it
    /// distinguishes chains sharing a leaf.
    pub fn chain_key(&self) -> Digest {
        self.chain_key
    }

    /// Evaluate one GCC against the shared fact base. The base is not
    /// cloned; the GCC's derived tuples live in a private overlay that
    /// is discarded after the query.
    pub fn evaluate_gcc(&self, gcc: &Gcc, usage: Usage) -> Result<bool, CoreError> {
        let out = gcc.compiled().evaluate(Arc::clone(&self.facts))?;
        Ok(out.contains(
            "valid",
            &[Val::str(&*self.handle), Val::str(usage.as_datalog())],
        ))
    }

    /// [`ValidationSession::evaluate_gcc`] with the engine reporting
    /// into `metrics` (evaluation count, derivations, rounds, latency).
    pub fn evaluate_gcc_metered(
        &self,
        gcc: &Gcc,
        usage: Usage,
        metrics: &nrslb_datalog::EvalMetrics,
    ) -> Result<bool, CoreError> {
        let (out, _stats) = gcc.compiled().evaluate_metered(
            Arc::clone(&self.facts),
            EvalMode::SemiNaive,
            nrslb_datalog::eval::DEFAULT_BUDGET,
            metrics,
        )?;
        Ok(out.contains(
            "valid",
            &[Val::str(&*self.handle), Val::str(usage.as_datalog())],
        ))
    }

    /// Evaluate one GCC with the reference naive-iteration engine
    /// instead of the compiled stratified pipeline.
    ///
    /// This is the differential-testing hook: the naive evaluator
    /// shares no execution machinery with
    /// [`ValidationSession::evaluate_gcc`] beyond the parsed rules, so
    /// agreement between the two is strong evidence the compiled path
    /// computes the right fixpoint. It clones the fact base per call —
    /// strictly a test/oracle path, never the serving path.
    pub fn evaluate_gcc_naive(&self, gcc: &Gcc, usage: Usage) -> Result<bool, CoreError> {
        let engine = Engine::from_compiled(Arc::clone(gcc.compiled())).with_mode(EvalMode::Naive);
        let out = engine.run((*self.facts).clone())?;
        Ok(out.contains(
            "valid",
            &[Val::str(&*self.handle), Val::str(usage.as_datalog())],
        ))
    }

    /// Evaluate every GCC in order, consulting (and filling) `cache`.
    pub fn evaluate_gccs_cached(
        &self,
        gccs: &[Gcc],
        usage: Usage,
        cache: Option<&VerdictCache>,
    ) -> Result<Vec<GccVerdict>, CoreError> {
        self.evaluate_gccs_observed(gccs, usage, cache, None)
    }

    /// [`ValidationSession::evaluate_gccs_cached`] with the Datalog
    /// engine optionally reporting into `metrics`. Cache hits skip
    /// evaluation entirely, so they record nothing there — the cache's
    /// own instruments count them.
    pub fn evaluate_gccs_observed(
        &self,
        gccs: &[Gcc],
        usage: Usage,
        cache: Option<&VerdictCache>,
        metrics: Option<&nrslb_datalog::EvalMetrics>,
    ) -> Result<Vec<GccVerdict>, CoreError> {
        let mut verdicts = Vec::with_capacity(gccs.len());
        for gcc in gccs {
            let key = VerdictKey {
                chain: self.chain_key,
                gcc: gcc.source_hash(),
                usage,
            };
            let accepted = match cache.and_then(|c| c.get(&key)) {
                Some(cached) => cached,
                None => {
                    let computed = match metrics {
                        Some(m) => self.evaluate_gcc_metered(gcc, usage, m)?,
                        None => self.evaluate_gcc(gcc, usage)?,
                    };
                    if let Some(c) = cache {
                        c.insert(key, computed);
                    }
                    computed
                }
            };
            verdicts.push(GccVerdict {
                gcc_name: gcc.name().to_string(),
                accepted,
            });
        }
        Ok(verdicts)
    }

    /// Evaluate every GCC in order without a cache.
    pub fn evaluate_gccs(&self, gccs: &[Gcc], usage: Usage) -> Result<Vec<GccVerdict>, CoreError> {
        self.evaluate_gccs_cached(gccs, usage, None)
    }
}

/// What determines a GCC verdict: the chain's content identity, the
/// GCC's content identity, and the requested usage. GCCs are pure
/// functions of these three.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// [`ValidationSession::chain_key`] of the chain.
    pub chain: Digest,
    /// [`Gcc::source_hash`] of the constraint.
    pub gcc: Digest,
    /// The requested usage.
    pub usage: Usage,
}

/// Default capacity of the trust daemon's verdict cache.
pub const DEFAULT_VERDICT_CACHE_CAPACITY: usize = 4096;

struct CacheInner {
    map: HashMap<VerdictKey, (bool, u64)>,
    /// Recency order: stamp -> key, oldest first.
    order: BTreeMap<u64, VerdictKey>,
    clock: u64,
}

/// A bounded, thread-safe LRU cache of GCC verdicts.
///
/// Shared (via `Arc`) between the validator, the in-process oracle and
/// every trust-daemon worker; reads and writes take a short
/// `parking_lot::RwLock` critical section, never blocking across an
/// evaluation.
pub struct VerdictCache {
    inner: RwLock<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    instruments: Option<CacheInstruments>,
}

/// Registry handles mirroring the cache's statistics, present when the
/// cache was built via [`VerdictCache::with_registry`].
#[derive(Clone, Debug)]
struct CacheInstruments {
    hits: nrslb_obs::Counter,
    misses: nrslb_obs::Counter,
    evictions: nrslb_obs::Counter,
    entries: nrslb_obs::Gauge,
}

impl std::fmt::Debug for VerdictCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VerdictCache({}/{} entries, {} hits, {} misses)",
            self.len(),
            self.capacity,
            self.hits(),
            self.misses()
        )
    }
}

impl VerdictCache {
    /// A cache evicting the least-recently-used verdict beyond
    /// `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> VerdictCache {
        VerdictCache {
            inner: RwLock::new(CacheInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            instruments: None,
        }
    }

    /// A cache that also mirrors its statistics into `registry` as
    /// `nrslb_verdict_cache_{hits,misses,evictions}_total` counters and
    /// an `nrslb_verdict_cache_entries` gauge.
    pub fn with_registry(capacity: usize, registry: &nrslb_obs::Registry) -> VerdictCache {
        let mut cache = VerdictCache::new(capacity);
        cache.instruments = Some(CacheInstruments {
            hits: registry.counter(
                "nrslb_verdict_cache_hits_total",
                "verdict-cache lookups answered from the cache",
            ),
            misses: registry.counter(
                "nrslb_verdict_cache_misses_total",
                "verdict-cache lookups that missed",
            ),
            evictions: registry.counter(
                "nrslb_verdict_cache_evictions_total",
                "verdicts evicted by the LRU policy",
            ),
            entries: registry.gauge("nrslb_verdict_cache_entries", "verdicts currently cached"),
        });
        cache
    }

    /// Look up a verdict, marking the entry most-recently-used.
    pub fn get(&self, key: &VerdictKey) -> Option<bool> {
        let mut inner = self.inner.write();
        inner.clock += 1;
        let clock = inner.clock;
        let CacheInner { map, order, .. } = &mut *inner;
        match map.get_mut(key) {
            Some((value, stamp)) => {
                order.remove(stamp);
                *stamp = clock;
                order.insert(clock, *key);
                let value = *value;
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(i) = &self.instruments {
                    i.hits.inc();
                }
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(i) = &self.instruments {
                    i.misses.inc();
                }
                None
            }
        }
    }

    /// Insert (or refresh) a verdict, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, key: VerdictKey, value: bool) {
        let mut inner = self.inner.write();
        inner.clock += 1;
        let clock = inner.clock;
        let CacheInner { map, order, .. } = &mut *inner;
        if let Some((stored, stamp)) = map.get_mut(&key) {
            *stored = value;
            order.remove(stamp);
            *stamp = clock;
            order.insert(clock, key);
            return;
        }
        let mut evicted = 0u64;
        while map.len() >= self.capacity {
            let Some((_, oldest)) = order.pop_first() else {
                break;
            };
            map.remove(&oldest);
            evicted += 1;
        }
        map.insert(key, (value, clock));
        order.insert(clock, key);
        let entries = map.len();
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        if let Some(i) = &self.instruments {
            if evicted > 0 {
                i.evictions.add(evicted);
            }
            i.entries.set(entries as i64);
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Verdicts evicted by the LRU policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_rootstore::GccMetadata;
    use nrslb_x509::testutil::simple_chain;

    fn chain() -> Vec<Certificate> {
        let pki = simple_chain("session.example");
        vec![pki.leaf, pki.intermediate, pki.root]
    }

    fn gcc(name: &str, src: &str) -> Gcc {
        Gcc::parse(name, Digest::ZERO, src, GccMetadata::default()).unwrap()
    }

    fn key(n: u8) -> VerdictKey {
        VerdictKey {
            chain: Digest([n; 32]),
            gcc: Digest([n.wrapping_add(1); 32]),
            usage: Usage::Tls,
        }
    }

    #[test]
    fn session_shares_one_fact_base_across_gccs() {
        let chain = chain();
        let session = ValidationSession::new(&chain);
        let gccs = [
            gcc("a", r#"valid(Chain, "TLS") :- leaf(Chain, _)."#),
            gcc("b", r#"valid(Chain, "TLS") :- leaf(Chain, C), EV(C)."#),
            gcc("c", r#"valid(Chain, U) :- chain(Chain), usage_never(U)."#),
        ];
        let before = Arc::strong_count(session.facts());
        let verdicts = session.evaluate_gccs(&gccs, Usage::Tls).unwrap();
        assert_eq!(
            verdicts.iter().map(|v| v.accepted).collect::<Vec<_>>(),
            [true, false, false]
        );
        // Nothing held onto the base: evaluation borrowed it per GCC.
        assert_eq!(Arc::strong_count(session.facts()), before);
    }

    #[test]
    fn chain_key_distinguishes_chains_with_same_leaf_count() {
        let a = ValidationSession::new(&chain());
        let pki = simple_chain("other-session.example");
        let b = ValidationSession::new(&[pki.leaf, pki.intermediate, pki.root]);
        assert_ne!(a.chain_key(), b.chain_key());
    }

    #[test]
    fn cache_round_trip_and_stats() {
        let cache = VerdictCache::new(8);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), true);
        cache.insert(key(2), false);
        assert_eq!(cache.get(&key(1)), Some(true));
        assert_eq!(cache.get(&key(2)), Some(false));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let cache = VerdictCache::new(2);
        cache.insert(key(1), true);
        cache.insert(key(2), true);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(&key(1)), Some(true));
        cache.insert(key(3), true);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(2)), None, "LRU entry evicted");
        assert_eq!(cache.get(&key(1)), Some(true));
        assert_eq!(cache.get(&key(3)), Some(true));
    }

    #[test]
    fn evictions_are_counted_and_mirrored_into_a_registry() {
        let registry = nrslb_obs::Registry::new();
        let cache = VerdictCache::with_registry(2, &registry);
        cache.insert(key(1), true);
        cache.insert(key(2), true);
        assert_eq!(cache.evictions(), 0);
        cache.insert(key(3), true);
        assert_eq!(cache.evictions(), 1, "third insert evicts the LRU entry");
        assert_eq!(cache.get(&key(3)), Some(true));
        assert_eq!(cache.get(&key(1)), None);
        let text = registry.render_text();
        assert!(text.contains("nrslb_verdict_cache_hits_total 1"), "{text}");
        assert!(
            text.contains("nrslb_verdict_cache_misses_total 1"),
            "{text}"
        );
        assert!(
            text.contains("nrslb_verdict_cache_evictions_total 1"),
            "{text}"
        );
        assert!(text.contains("nrslb_verdict_cache_entries 2"), "{text}");
    }

    #[test]
    fn cached_evaluation_skips_the_engine() {
        let chain = chain();
        let session = ValidationSession::new(&chain);
        let cache = VerdictCache::new(8);
        let gccs = [gcc("tls", r#"valid(Chain, "TLS") :- leaf(Chain, _)."#)];
        let first = session
            .evaluate_gccs_cached(&gccs, Usage::Tls, Some(&cache))
            .unwrap();
        assert!(first[0].accepted);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = session
            .evaluate_gccs_cached(&gccs, Usage::Tls, Some(&cache))
            .unwrap();
        assert_eq!(first[0], second[0]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different usage is a different key.
        session
            .evaluate_gccs_cached(&gccs, Usage::SMime, Some(&cache))
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn cache_key_separates_gccs_on_one_chain() {
        let chain = chain();
        let session = ValidationSession::new(&chain);
        let cache = VerdictCache::new(8);
        let accept = gcc("accept", r#"valid(Chain, "TLS") :- leaf(Chain, _)."#);
        let reject = gcc("reject", r#"valid(Chain, "TLS") :- leaf(Chain, C), EV(C)."#);
        let verdicts = session
            .evaluate_gccs_cached(&[accept, reject], Usage::Tls, Some(&cache))
            .unwrap();
        assert!(verdicts[0].accepted);
        assert!(!verdicts[1].accepted);
        assert_eq!(cache.len(), 2);
    }
}
