//! A reusable readiness-reactor engine for Unix-socket request/reply
//! protocols.
//!
//! PR 7 built this engine inside `nrslb-core` for the trust daemon;
//! this crate is the same loop/slab/state-machine core factored out so
//! any framed protocol can ride it — the daemon protocol
//! (`nrslb-core`'s `proto`) and the feed distribution node
//! (`nrslb-rsf`'s `FeedDistributionNode`) are the two instances. A
//! protocol plugs in through the [`Service`] trait: it delimits frames
//! out of a byte buffer, executes requests, and optionally claims a
//! request for *inline* execution on the event loop itself.
//!
//! A small fixed set of event-loop threads each own one
//! [`polling::Poller`] (the vendored epoll/kqueue-style readiness shim)
//! and a slab of non-blocking connections; the accept thread deals new
//! connections round-robin across loops. Request execution normally
//! never runs on a loop: complete frames are handed to a fixed worker
//! pool over an MPMC channel, and workers push finished responses back
//! through a per-loop completion queue plus
//! [`polling::Poller::notify`]. Because a loop thread only ever parses
//! buffers and moves bytes, one loop multiplexes thousands of
//! keep-alive connections — concurrency is no longer capped at the
//! worker count the way a thread-per-connection engine is.
//!
//! ## Inline execution
//!
//! The loop→worker handoff costs two thread wake-ups per request. For
//! requests whose execution is known to be cheap — a daemon request
//! whose whole chain and every verdict are already cached, a feed
//! re-poll with nothing new to send — that handoff is pure overhead
//! and dominates the warm path. [`Service::try_execute_inline`] fuses
//! the cost guard with the execution: in one pass the service probes
//! whatever would make the request expensive and, if everything is
//! provably cheap, finishes it on the spot — the loop writes the
//! returned reply itself, skipping the worker pool and both wake-ups,
//! and the probe's intermediate work (hash keys, cache lookups) is
//! never recomputed. A `None` (anything the service cannot prove
//! cheap) takes the worker path as before. A per-wake budget
//! (`INLINE_BURST`) bounds how long one chatty connection can hold
//! the loop before its requests are pushed to workers anyway, so
//! inline execution cannot starve the other connections on the loop.
//!
//! Connections that just served inline are additionally re-armed with
//! *level-triggered* readable interest ([`polling::Poller::modify_level`])
//! instead of the default oneshot mode: as long as their requests keep
//! hitting the inline path, no re-arm syscall is ever issued, cutting
//! the warm per-request syscall budget to wait + read + write — the
//! same as a blocking thread's read + write once the wait is amortized
//! across ready connections. The first request that must ride the
//! worker pool explicitly disarms the connection (one extra `modify`),
//! restoring the oneshot discipline that keeps at most one request in
//! flight per connection.
//!
//! ## Per-connection state machine
//!
//! ```text
//!          readable                 frame complete            worker done
//! Reading ----------> (buffer) --------------------> Executing ----------+
//!    ^      |                                                            |
//!    |      | inline hit: execute + reply on the loop, stay Reading      |
//!    |      +---------------------------------------------------------+  |
//!    |        response fully written                response spilled  |  |
//!    +<------------------------------- Writing <----------------------+--+
//!                                        ^  | partial write: stay, armed writable
//!                                        +--+
//! ```
//!
//! * **Reading** — readable interest armed; bytes accumulate in `rbuf`
//!   until [`Service::parse`] delimits a frame.
//! * **Executing** — interest *disarmed*: while a request is in flight
//!   the loop neither reads nor parses further frames from that
//!   connection. This is the backpressure policy — one request in
//!   flight per connection, pipelined bytes wait in `rbuf`, and a peer
//!   that floods frames fills its own socket buffer, not server
//!   memory.
//! * **Writing** — the response did not fit the socket buffer; the
//!   remainder lives in `wbuf` with writable interest armed, and the
//!   per-loop `nrslb_reactor_backpressure_total` counter ticks.
//!
//! Workers attempt the response write themselves (the socket is
//! non-blocking and the loop has the connection disarmed during
//! Executing, so the worker owns the only pending I/O); on the warm
//! worker path the whole request is served with a single loop wake-up
//! for the read and no loop involvement in the write.
//!
//! ## Observability
//!
//! Per-loop series, labelled `loop="N"`: `nrslb_reactor_connections`
//! (registered connections), `nrslb_reactor_ready_events` (histogram of
//! ready events per poller wake), `nrslb_reactor_backpressure_total`
//! (responses that spilled to the loop's write path), and
//! `nrslb_reactor_inline_total` (requests served inline on the loop).

#![warn(missing_docs)]

use nrslb_obs::{Counter, Gauge, Histogram, Registry};
use polling::{Event, Poller};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a loop sleeps in `wait` with nothing ready; bounds shutdown
/// latency if a notify is ever lost.
const WAIT_TIMEOUT: Duration = Duration::from_millis(500);

/// Most inline requests one poller wake may serve per connection
/// before the loop falls back to the worker pool; bounds how long a
/// pipelining peer can monopolize its event loop.
const INLINE_BURST: usize = 32;

/// One step of frame delimitation, returned by [`Service::parse`].
pub enum Frame<R> {
    /// No complete frame yet; keep buffering.
    Incomplete,
    /// A well-formed request was delimited; `consumed` bytes leave the
    /// buffer and the request executes (inline or on a worker).
    Request {
        /// The decoded request.
        request: R,
        /// Bytes the frame occupied in the buffer.
        consumed: usize,
    },
    /// A malformed-but-delimitable frame: `consumed` bytes leave the
    /// buffer, `reply` is written, and the connection keeps serving
    /// (the stream is still in sync).
    Reply {
        /// The canned response (an error reply) to write.
        reply: Vec<u8>,
        /// Bytes the bad frame occupied in the buffer.
        consumed: usize,
    },
    /// The stream can no longer be delimited: `reply` is written (it
    /// may be empty for close-without-answer protocols) and the
    /// connection closes.
    Fatal {
        /// Final bytes to write before closing; empty closes silently.
        reply: Vec<u8>,
    },
}

/// A per-connection protocol served by the reactor.
///
/// One service instance is shared by every loop and worker thread, so
/// implementations hold their execution context (caches, oracles,
/// instruments) behind `Arc`s and stay `Sync`. Malformed-frame
/// accounting belongs to the service: the engine never counts
/// requests, it only moves bytes.
pub trait Service: Send + Sync + 'static {
    /// The decoded request type carried from parse to execute.
    type Request: Send + 'static;

    /// Try to delimit one frame from the front of `buf`.
    fn parse(&self, buf: &[u8]) -> Frame<Self::Request>;

    /// Bytes a connection may buffer without completing a frame before
    /// the engine answers with [`Service::overflow_reply`] and closes.
    fn max_buffered(&self) -> usize;

    /// The reply for a connection that exceeded
    /// [`Service::max_buffered`] (written, then the connection
    /// closes). May be empty to close silently.
    fn overflow_reply(&self) -> Vec<u8>;

    /// Execute a request and encode its response. Runs on a worker
    /// thread for every request [`Service::try_execute_inline`] did not
    /// claim.
    fn execute(&self, request: &Self::Request) -> Vec<u8>;

    /// Attempt to execute `request` inline on the event loop, returning
    /// the encoded response on success. This is a *cost guard fused
    /// with the execution*: the service probes whatever would make
    /// execution expensive (cold caches, work to derive, a contended
    /// lock) and either finishes the request in one pass — reusing the
    /// probe's intermediate artifacts (hash keys, lookups) rather than
    /// recomputing them — or returns `None` having caused **no
    /// observable effect**, in which case the engine dispatches the
    /// request to the worker pool and [`Service::execute`] runs from
    /// scratch. Only claim provably-cheap requests: the loop serves no
    /// other connection while this runs. The default claims nothing.
    fn try_execute_inline(&self, _request: &Self::Request) -> Option<Vec<u8>> {
        None
    }
}

/// A worker-finished response headed back to its owning loop.
struct Completion {
    key: usize,
    gen: u64,
    /// Bytes the worker could not push into the socket buffer (empty on
    /// the fast path).
    unwritten: Vec<u8>,
    /// The worker's write hit a hard transport error; close.
    close: bool,
}

/// One execution dispatched off a loop.
struct Job<S: Service> {
    shared: Arc<LoopShared>,
    key: usize,
    gen: u64,
    stream: Arc<UnixStream>,
    request: S::Request,
    /// The connection had no pipelined bytes buffered at dispatch, so
    /// after a fully-written response the worker may re-arm readable
    /// interest itself instead of round-tripping a completion through
    /// the loop (strict request/reply traffic never wakes the loop
    /// twice per request).
    fast_rearm: bool,
}

/// The cross-thread face of one event loop: where the accept thread
/// injects connections and workers deliver completions.
struct LoopShared {
    poller: Poller,
    injected: Mutex<Vec<UnixStream>>,
    completions: Mutex<Vec<Completion>>,
}

impl LoopShared {
    fn inject(&self, stream: UnixStream) {
        self.injected.lock().expect("injected lock").push(stream);
        let _ = self.poller.notify();
    }

    fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completions lock")
            .push(completion);
        let _ = self.poller.notify();
    }
}

/// Per-loop instruments (see module docs).
struct LoopInstruments {
    connections: Gauge,
    ready_events: Histogram,
    backpressure: Counter,
    inline_served: Counter,
}

impl LoopInstruments {
    fn new(registry: &Registry, loop_id: usize) -> LoopInstruments {
        let label = loop_id.to_string();
        let labels: &[(&str, &str)] = &[("loop", &label)];
        LoopInstruments {
            connections: registry.gauge_with(
                "nrslb_reactor_connections",
                labels,
                "connections registered with this event loop",
            ),
            ready_events: registry.histogram_with(
                "nrslb_reactor_ready_events",
                labels,
                "ready events delivered per poller wake",
            ),
            backpressure: registry.counter_with(
                "nrslb_reactor_backpressure_total",
                labels,
                "responses that overflowed the socket buffer into the loop's write path",
            ),
            inline_served: registry.counter_with(
                "nrslb_reactor_inline_total",
                labels,
                "requests served inline on the event loop (cost-guard hits)",
            ),
        }
    }
}

/// A running reactor engine; [`ReactorHandle::shutdown`] tears it down.
pub struct ReactorHandle {
    accept: Option<JoinHandle<()>>,
    loops: Vec<(Arc<LoopShared>, JoinHandle<()>)>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Spawn `n_loops` event loops and `n_workers` execution workers
    /// serving `listener` with `service`. Per-loop instruments register
    /// in `registry`. `stop` is shared with the owning server; setting
    /// it (plus a wake-up connect for the accept thread) initiates
    /// shutdown.
    pub fn spawn<S: Service>(
        listener: UnixListener,
        n_loops: usize,
        n_workers: usize,
        service: Arc<S>,
        registry: &Registry,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<ReactorHandle> {
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job<S>>();
        let workers = (0..n_workers.max(1))
            .map(|_| {
                let job_rx = job_rx.clone();
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    // recv fails once every loop (the senders) is gone
                    // and the queue has drained.
                    while let Ok(job) = job_rx.recv() {
                        serve_job(job, &*service);
                    }
                })
            })
            .collect();
        drop(job_rx);

        let mut loops = Vec::with_capacity(n_loops.max(1));
        for loop_id in 0..n_loops.max(1) {
            let shared = Arc::new(LoopShared {
                poller: Poller::new()?,
                injected: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
            });
            let instruments = LoopInstruments::new(registry, loop_id);
            let thread = {
                let shared = Arc::clone(&shared);
                let service = Arc::clone(&service);
                let job_tx = job_tx.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    EventLoop {
                        shared,
                        service,
                        job_tx,
                        instruments,
                        slots: Vec::new(),
                        free: Vec::new(),
                        scratch: vec![0u8; 64 * 1024],
                    }
                    .run(&stop)
                })
            };
            loops.push((shared, thread));
        }
        drop(job_tx);

        let accept_loops: Vec<Arc<LoopShared>> = loops.iter().map(|(s, _)| Arc::clone(s)).collect();
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            let mut next = 0usize;
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                accept_loops[next].inject(stream);
                next = (next + 1) % accept_loops.len();
            }
        });

        Ok(ReactorHandle {
            accept: Some(accept),
            loops,
            workers,
        })
    }

    /// Join every thread. The caller has already set the shared stop
    /// flag and poked the listener awake.
    pub fn shutdown(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // Wake the loops so they observe the stop flag; joining them
        // drops the last job senders, which in turn drains the workers.
        for (shared, _) in &self.loops {
            let _ = shared.poller.notify();
        }
        for (_, thread) in self.loops.drain(..) {
            let _ = thread.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Execute one job and write its response directly; whatever does not
/// fit the socket buffer rides the completion back to the loop.
fn serve_job<S: Service>(job: Job<S>, service: &S) {
    let bytes = service.execute(&job.request);
    let (unwritten, close) = write_nonblocking(&job.stream, bytes, 0);
    if job.fast_rearm && !close && unwritten.is_empty() {
        // Fast path: the response is fully on the wire and no buffered
        // frames are waiting, so the loop has nothing to do until the
        // peer sends again — arm readable interest directly. The loop
        // reinterprets a readable event on an Executing connection as
        // exactly this signal. (Level-triggered interest also covers a
        // request that raced in while we were writing.)
        if job
            .shared
            .poller
            .modify(&*job.stream, Event::readable(job.key))
            .is_ok()
        {
            return;
        }
        // The loop deleted the fd under us (shutdown); fall through so
        // the slot is reclaimed rather than leaked.
    }
    job.shared.complete(Completion {
        key: job.key,
        gen: job.gen,
        unwritten,
        close,
    });
}

/// Push as much of `bytes[offset..]` as the socket accepts right now.
/// Returns the unwritten tail (empty when done) and whether a hard
/// error demands closing the connection.
fn write_nonblocking(stream: &UnixStream, bytes: Vec<u8>, mut offset: usize) -> (Vec<u8>, bool) {
    let mut stream = stream;
    while offset < bytes.len() {
        match stream.write(&bytes[offset..]) {
            Ok(0) => return (Vec::new(), true),
            Ok(n) => offset += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return (bytes[offset..].to_vec(), false)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return (Vec::new(), true),
        }
    }
    (Vec::new(), false)
}

/// Connection lifecycle (see the module-level state diagram).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    Reading,
    Executing,
    Writing,
}

struct Conn {
    stream: Arc<UnixStream>,
    state: ConnState,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// The peer's write half is closed; close once in-flight work and
    /// buffered responses drain.
    peer_closed: bool,
    /// Close as soon as `wbuf` drains (fatal protocol violation).
    close_after_write: bool,
    /// Readable interest is currently armed *level-triggered* (the
    /// inline-hot mode): deliveries do not disarm it, so Reading needs
    /// no re-arm syscall. Any transition out of plain Reading — a
    /// worker dispatch, a spill to Writing — must clear this by
    /// explicitly re-pointing the interest.
    read_level: bool,
}

struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

struct EventLoop<S: Service> {
    shared: Arc<LoopShared>,
    service: Arc<S>,
    job_tx: crossbeam::channel::Sender<Job<S>>,
    instruments: LoopInstruments,
    slots: Vec<Slot>,
    free: Vec<usize>,
    scratch: Vec<u8>,
}

impl<S: Service> EventLoop<S> {
    fn run(mut self, stop: &AtomicBool) {
        let mut events = Vec::new();
        loop {
            let _ = self.shared.poller.wait(&mut events, Some(WAIT_TIMEOUT));
            if stop.load(Ordering::SeqCst) {
                break;
            }
            if !events.is_empty() {
                self.instruments.ready_events.observe(events.len() as u64);
            }
            self.adopt_injected();
            self.drain_completions();
            for event in &events {
                self.handle_event(*event);
            }
        }
        // Drop connections; the gauge must read zero after shutdown.
        for slot in &mut self.slots {
            if slot.conn.take().is_some() {
                self.instruments.connections.sub(1);
            }
        }
    }

    fn adopt_injected(&mut self) {
        let streams: Vec<UnixStream> =
            std::mem::take(&mut *self.shared.injected.lock().expect("injected lock"));
        for stream in streams {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let key = match self.free.pop() {
                Some(key) => key,
                None => {
                    self.slots.push(Slot { gen: 0, conn: None });
                    self.slots.len() - 1
                }
            };
            let stream = Arc::new(stream);
            if self
                .shared
                .poller
                .add(&*stream, Event::readable(key))
                .is_err()
            {
                self.free.push(key);
                continue;
            }
            self.slots[key].conn = Some(Conn {
                stream,
                state: ConnState::Reading,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                peer_closed: false,
                close_after_write: false,
                read_level: false,
            });
            self.instruments.connections.add(1);
        }
    }

    fn drain_completions(&mut self) {
        let completions: Vec<Completion> =
            std::mem::take(&mut *self.shared.completions.lock().expect("completions lock"));
        for comp in completions {
            let Some(slot) = self.slots.get_mut(comp.key) else {
                continue;
            };
            // A stale completion for a slot that was closed and reused.
            if slot.gen != comp.gen {
                continue;
            }
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            debug_assert_eq!(conn.state, ConnState::Executing);
            if comp.close {
                self.close(comp.key);
                continue;
            }
            if comp.unwritten.is_empty() {
                conn.state = ConnState::Reading;
                // Pipelined frames may already be buffered; serve them
                // before going back to sleep.
                self.advance(comp.key);
            } else {
                conn.wbuf = comp.unwritten;
                conn.state = ConnState::Writing;
                self.instruments.backpressure.inc();
                self.rearm(comp.key);
            }
        }
    }

    fn handle_event(&mut self, event: Event) {
        let Some(state) = self
            .slots
            .get(event.key)
            .and_then(|s| s.conn.as_ref())
            .map(|c| c.state)
        else {
            return;
        };
        match state {
            ConnState::Reading if event.readable => self.on_readable(event.key),
            // Interest is disarmed for the whole of Executing, so a
            // readable event here can only be the worker's fast-path
            // re-arm: the response is fully written and the connection
            // is back to request/reply duty.
            ConnState::Executing if event.readable => {
                if let Some(conn) = self.slots[event.key].conn.as_mut() {
                    conn.state = ConnState::Reading;
                }
                self.on_readable(event.key);
            }
            ConnState::Writing if event.writable => self.on_writable(event.key),
            // Events for a disarmed or mismatched state are stale
            // oneshot deliveries; the state machine re-arms what it
            // actually wants.
            _ => {}
        }
    }

    fn on_readable(&mut self, key: usize) {
        let conn = match self.slots[key].conn.as_mut() {
            Some(c) => c,
            None => return,
        };
        loop {
            match (&*conn.stream).read(&mut self.scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    // A short read means the kernel buffer is drained;
                    // skip the WouldBlock confirmation syscall. (If
                    // more raced in, level-triggered readable interest
                    // re-delivers once the state machine re-arms.)
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(key);
                    return;
                }
            }
        }
        self.advance(key);
    }

    /// Drive the state machine from Reading: delimit frames out of
    /// `rbuf`, dispatch or answer them, then re-arm interest to match
    /// the resulting state.
    fn advance(&mut self, key: usize) {
        let mut inline_budget = INLINE_BURST;
        let mut served_inline = false;
        loop {
            let conn = match self.slots[key].conn.as_mut() {
                Some(c) if c.state == ConnState::Reading => c,
                _ => return,
            };
            match self.service.parse(&conn.rbuf) {
                Frame::Incomplete => {
                    if conn.peer_closed {
                        // Clean EOF between frames, or mid-frame
                        // abandonment; nothing more will arrive.
                        self.close(key);
                    } else if conn.rbuf.len() > self.service.max_buffered() {
                        let reply = self.service.overflow_reply();
                        self.send_reply(key, reply, true);
                    } else if served_inline {
                        // An inline-hot connection: arm level-triggered
                        // readable interest so its next requests are
                        // delivered with no re-arm syscall at all.
                        self.arm_level_read(key);
                    } else if !conn.read_level {
                        self.rearm(key);
                    }
                    // else: level interest is still armed; nothing to do.
                    return;
                }
                Frame::Request { request, consumed } => {
                    conn.rbuf.drain(..consumed);
                    if inline_budget > 0 {
                        if let Some(reply) = self.service.try_execute_inline(&request) {
                            // The fused guard+execute served this
                            // request without leaving the loop (no
                            // worker handoff, no extra wake-ups).
                            inline_budget -= 1;
                            served_inline = true;
                            self.instruments.inline_served.inc();
                            self.send_reply(key, reply, false);
                            // send_reply may have moved us to
                            // Writing/closed; the loop head re-checks.
                            continue;
                        }
                    }
                    // Level-armed connections must be explicitly
                    // disarmed for Executing: a level delivery during
                    // the in-flight request would be reinterpreted as
                    // the worker's fast-path re-arm and break the
                    // one-request-per-connection backpressure.
                    if conn.read_level {
                        conn.read_level = false;
                        if self
                            .shared
                            .poller
                            .modify(&*conn.stream, Event::none(key))
                            .is_err()
                        {
                            self.close(key);
                            return;
                        }
                    }
                    let gen = self.slots[key].gen;
                    let conn = self.slots[key].conn.as_mut().unwrap();
                    conn.state = ConnState::Executing;
                    let fast_rearm = conn.rbuf.is_empty() && !conn.peer_closed;
                    let job = Job {
                        shared: Arc::clone(&self.shared),
                        key,
                        gen,
                        stream: Arc::clone(&conn.stream),
                        request,
                        fast_rearm,
                    };
                    // No re-arm syscall on the oneshot path: every way
                    // into a dispatch has just consumed a oneshot
                    // delivery, so the fd is already disarmed — exactly
                    // what Executing wants.
                    if self.job_tx.send(job).is_err() {
                        // Workers are gone (shutdown); drop the conn.
                        self.close(key);
                    }
                    return;
                }
                Frame::Reply { reply, consumed } => {
                    conn.rbuf.drain(..consumed);
                    // The frame was fully consumed, so the stream is
                    // still in sync: answer and keep serving.
                    self.send_reply(key, reply, false);
                    // send_reply may have moved us to Writing/closed;
                    // the loop head re-checks state.
                }
                Frame::Fatal { reply } => {
                    self.send_reply(key, reply, true);
                    return;
                }
            }
        }
    }

    /// Write `bytes` from the loop (error replies and inline responses
    /// — worker responses are written by workers). Spills to Writing
    /// on a full socket buffer. An empty `bytes` with `close_after`
    /// closes without writing anything.
    fn send_reply(&mut self, key: usize, bytes: Vec<u8>, close_after: bool) {
        let conn = match self.slots[key].conn.as_mut() {
            Some(c) => c,
            None => return,
        };
        let (unwritten, broken) = write_nonblocking(&conn.stream, bytes, 0);
        if broken {
            self.close(key);
            return;
        }
        if unwritten.is_empty() {
            if close_after {
                self.close(key);
            }
            // else: state stays Reading; caller's loop continues.
            return;
        }
        conn.wbuf = unwritten;
        conn.state = ConnState::Writing;
        conn.close_after_write = close_after;
        self.instruments.backpressure.inc();
        self.rearm(key);
    }

    fn on_writable(&mut self, key: usize) {
        let conn = match self.slots[key].conn.as_mut() {
            Some(c) => c,
            None => return,
        };
        let wbuf = std::mem::take(&mut conn.wbuf);
        let (unwritten, broken) = write_nonblocking(&conn.stream, wbuf, 0);
        if broken {
            self.close(key);
            return;
        }
        if unwritten.is_empty() {
            if conn.close_after_write {
                self.close(key);
                return;
            }
            conn.state = ConnState::Reading;
            self.advance(key);
        } else {
            conn.wbuf = unwritten;
            self.rearm(key);
        }
    }

    /// Point the oneshot interest at what the current state needs next.
    fn rearm(&mut self, key: usize) {
        let Some(conn) = self.slots[key].conn.as_mut() else {
            return;
        };
        conn.read_level = false;
        let interest = match conn.state {
            ConnState::Reading => Event::readable(key),
            ConnState::Executing => Event::none(key),
            ConnState::Writing => Event::writable(key),
        };
        if self.shared.poller.modify(&*conn.stream, interest).is_err() {
            self.close(key);
        }
    }

    /// Arm persistent (level-triggered) readable interest for an
    /// inline-hot Reading connection; a no-op if already armed that way.
    fn arm_level_read(&mut self, key: usize) {
        let Some(conn) = self.slots[key].conn.as_mut() else {
            return;
        };
        if conn.read_level {
            return;
        }
        if self
            .shared
            .poller
            .modify_level(&*conn.stream, Event::readable(key))
            .is_err()
        {
            self.close(key);
            return;
        }
        let conn = self.slots[key].conn.as_mut().unwrap();
        conn.read_level = true;
    }

    fn close(&mut self, key: usize) {
        let Some(slot) = self.slots.get_mut(key) else {
            return;
        };
        let Some(conn) = slot.conn.take() else {
            return;
        };
        let _ = self.shared.poller.delete(&*conn.stream);
        slot.gen += 1;
        self.free.push(key);
        self.instruments.connections.sub(1);
        // The stream's fd closes when the last Arc (possibly held by an
        // in-flight worker job) drops; the bumped generation discards
        // that job's completion.
    }
}
