//! Property-based tests for the quorum wire encodings: every
//! `QuorumSignature` and `RotationEvent` round-trips byte-identically,
//! and no truncation or bit-flip ever panics or silently decodes back
//! to the original artifact. The quorum-endorsed (`RSF2-SIGNED`)
//! message frame and the witnessed (`RSF2-CKPT`) checkpoint frame get
//! the same treatment.

use nrslb_rsf::signing::MessageKind;
use nrslb_rsf::{
    Checkpoint, FeedKey, FeedTrust, QuorumAuthority, QuorumConfig, QuorumSignature, RotationEvent,
    SignedMessage, TransparencyLog,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Hash-based keypairs are expensive; one shared authority (and one
/// rotation ceremony's worth of events) feeds every strategy.
fn authority() -> &'static QuorumAuthority {
    static AUTH: OnceLock<QuorumAuthority> = OnceLock::new();
    AUTH.get_or_init(|| {
        QuorumAuthority::from_seed([0xa5; 32], QuorumConfig { k: 2, n: 4 }, 8).unwrap()
    })
}

fn rotation_event() -> &'static RotationEvent {
    static EVENT: OnceLock<RotationEvent> = OnceLock::new();
    EVENT.get_or_init(|| {
        let mut ceremony =
            QuorumAuthority::from_seed([0xa5; 32], QuorumConfig { k: 2, n: 4 }, 8).unwrap();
        ceremony.rotate(1_234_567).unwrap()
    })
}

fn quorum_feed_key() -> &'static FeedKey {
    static KEY: OnceLock<FeedKey> = OnceLock::new();
    KEY.get_or_init(|| FeedKey::new_quorum([0xa6; 32], 10, authority()).unwrap())
}

fn flip_bit(bytes: &mut [u8], pos: usize, bit: u8) {
    let byte = pos % bytes.len();
    bytes[byte] ^= 1 << (bit % 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quorum_signature_roundtrip_and_mutations(
        message in proptest::collection::vec(any::<u8>(), 0..64),
        cut_frac in 0usize..1000,
        flip_pos in any::<usize>(),
        flip_bit_n in any::<u8>(),
    ) {
        let sig = authority().sign(&message).unwrap();
        let bytes = sig.encode();
        let back = QuorumSignature::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode(), bytes.clone());
        // Every strict prefix is an error, never a panic.
        let cut = cut_frac * bytes.len() / 1000;
        prop_assert!(QuorumSignature::decode(&bytes[..cut]).is_err());
        // A bit-flip either fails to decode or decodes to a different
        // artifact — and a different artifact never verifies.
        let mut flipped = bytes.clone();
        flip_bit(&mut flipped, flip_pos, flip_bit_n);
        if let Ok(mutated) = QuorumSignature::decode(&flipped) {
            prop_assert_ne!(mutated.encode(), bytes);
            prop_assert!(authority().trust().verify(&message, &mutated).is_err());
        }
    }

    #[test]
    fn rotation_event_roundtrip_and_mutations(
        cut_frac in 0usize..1000,
        flip_pos in any::<usize>(),
        flip_bit_n in any::<u8>(),
    ) {
        let bytes = rotation_event().encode();
        let back = RotationEvent::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode(), bytes.clone());
        let cut = cut_frac * bytes.len() / 1000;
        prop_assert!(RotationEvent::decode(&bytes[..cut]).is_err());
        let mut flipped = bytes.clone();
        flip_bit(&mut flipped, flip_pos, flip_bit_n);
        if let Ok(mutated) = RotationEvent::decode(&flipped) {
            prop_assert_ne!(mutated.encode(), bytes.clone());
            // A mutated ceremony must not advance a pinned trust.
            let mut trust = authority().trust();
            if let Ok(applied) = trust.apply_rotation(&mutated) {
                // Only an epoch-field mutation can make application a
                // no-op; genuine application of a damaged event is
                // forbidden.
                prop_assert!(!applied, "tampered rotation event applied");
            }
        }
    }

    #[test]
    fn quorum_endorsed_message_roundtrip_and_mutations(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut_frac in 0usize..1000,
        flip_pos in any::<usize>(),
        flip_bit_n in any::<u8>(),
    ) {
        let trust = FeedTrust::quorum(authority().trust());
        let signed = quorum_feed_key().sign(MessageKind::Delta, &payload).unwrap();
        let bytes = signed.encode();
        // Sanity: the RSF2-SIGNED frame decodes and verifies.
        SignedMessage::decode(&bytes).unwrap().verify(&trust).unwrap();
        let cut = cut_frac * bytes.len() / 1000;
        prop_assert!(SignedMessage::decode(&bytes[..cut]).is_err());
        let mut flipped = bytes.clone();
        flip_bit(&mut flipped, flip_pos, flip_bit_n);
        if let Ok(mutated) = SignedMessage::decode(&flipped) {
            prop_assert!(mutated.verify(&trust).is_err());
        }
    }

    #[test]
    fn witnessed_checkpoint_roundtrip_and_mutations(
        payloads in proptest::collection::vec(any::<u64>(), 1..5),
        cut_frac in 0usize..1000,
        flip_pos in any::<usize>(),
        flip_bit_n in any::<u8>(),
    ) {
        let key = quorum_feed_key();
        let mut log = TransparencyLog::new();
        for p in &payloads {
            let m = key.sign(MessageKind::Delta, &p.to_le_bytes()).unwrap();
            log.append(&m);
        }
        let ckpt = log.checkpoint_witnessed(key, authority()).unwrap();
        prop_assert!(ckpt.witness.is_some(), "quorum checkpoint must be witnessed");
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode(), bytes.clone());
        let cut = cut_frac * bytes.len() / 1000;
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
        let mut flipped = bytes.clone();
        flip_bit(&mut flipped, flip_pos, flip_bit_n);
        if let Ok(mutated) = Checkpoint::decode(&flipped) {
            prop_assert_ne!(mutated.encode(), bytes);
        }
    }
}

/// Garbage that is not even a frame: wrong magic, empty input, random
/// noise — typed errors, never panics.
#[test]
fn garbage_inputs_are_typed_errors() {
    assert!(QuorumSignature::decode(&[]).is_err());
    assert!(RotationEvent::decode(&[]).is_err());
    assert!(QuorumSignature::decode(b"RSF1-ROT\x00\x00").is_err());
    assert!(RotationEvent::decode(b"RSF1-QSIG\x00\x00").is_err());
    let noise: Vec<u8> = (0..257u16)
        .map(|i| (i.wrapping_mul(83) >> 2) as u8)
        .collect();
    assert!(QuorumSignature::decode(&noise).is_err());
    assert!(RotationEvent::decode(&noise).is_err());
}
