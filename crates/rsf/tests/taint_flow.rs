//! Taint propagation through subscriber ingest: a delta contributes its
//! precise blast radius (roots, GCC source hashes, issuer SPKIs — old
//! and new state both), a snapshot contributes full taint, and both
//! flow through the same accumulator drained by `take_taint`.

use nrslb_crypto::sha256::sha256;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore};
use nrslb_rsf::signing::MessageKind;
use nrslb_rsf::{CoordinatorKey, Delta, FeedKey, FeedTrust, Snapshot, Subscriber, SyncEvent};
use nrslb_x509::testutil::simple_chain;

const GCC_SRC: &str = "valid(Chain, _) :- leaf(Chain, _).";

fn coordinator() -> CoordinatorKey {
    CoordinatorKey::from_seed([0x5a; 32], 6).expect("coordinator key")
}

fn trust() -> FeedTrust {
    FeedTrust::single(coordinator().public())
}

#[test]
fn taint_flows_precisely_for_deltas_and_fully_for_snapshots() {
    let key = FeedKey::new([0x5b; 32], 10, &coordinator()).expect("feed key");
    let mut subscriber = Subscriber::builder("derivative", trust()).build();
    assert!(
        subscriber.pending_taint().is_empty(),
        "fresh subscriber has no taint"
    );

    // --- Bootstrap snapshot: everything is (vacuously) tainted. ---
    let root_a = simple_chain("taint-a.example").root;
    let mut truth = RootStore::new("primary");
    truth.add_trusted(root_a.clone()).unwrap();
    let gcc_a = Gcc::parse(
        "a-policy",
        root_a.fingerprint(),
        GCC_SRC,
        GccMetadata::default(),
    )
    .expect("gcc");
    truth.attach_gcc(gcc_a).unwrap();

    let snap = Snapshot::capture("primary", 1, 10, &truth);
    let msg = key.sign(MessageKind::Snapshot, &snap.encode()).unwrap();
    let event = subscriber.ingest(&msg).expect("bootstrap snapshot");
    assert!(matches!(event, SyncEvent::SnapshotApplied { sequence: 1 }));
    assert!(subscriber.pending_taint().is_full());

    // Draining resets the accumulator.
    assert!(subscriber.take_taint().is_full());
    assert!(subscriber.pending_taint().is_empty());

    // --- Delta: add root B (with a GCC), distrust root A. The taint
    // must name both roots, both GCC attachments (B's new one AND A's
    // pre-existing one, read from the pre-image store), and both
    // issuer SPKIs — and nothing suggests full invalidation. ---
    let root_b = simple_chain("taint-b.example").root;
    let mut next = truth.clone();
    next.add_trusted(root_b.clone()).unwrap();
    let gcc_b = Gcc::parse(
        "b-policy",
        root_b.fingerprint(),
        GCC_SRC,
        GccMetadata::default(),
    )
    .expect("gcc");
    next.attach_gcc(gcc_b).unwrap();
    next.distrust(root_a.fingerprint(), "taint test incident");

    let delta = Delta::between(&truth, &next, 1, 2, 20);
    let msg = key.sign(MessageKind::Delta, &delta.encode()).unwrap();
    let event = subscriber.ingest(&msg).expect("delta");
    assert!(matches!(event, SyncEvent::DeltaApplied { sequence: 2 }));

    let taint = subscriber.take_taint();
    assert!(!taint.is_full(), "a delta must not escalate to full taint");
    assert!(
        taint.roots().contains(&root_b.fingerprint()),
        "upserted root tainted"
    );
    assert!(
        taint.roots().contains(&root_a.fingerprint()),
        "distrusted root tainted"
    );
    assert!(
        taint.gcc_sources().contains(&sha256(GCC_SRC.as_bytes())),
        "GCC source hashes tainted"
    );
    assert!(
        taint
            .issuer_spkis()
            .contains(&root_b.public_key().fingerprint()),
        "new root's SPKI tainted"
    );
    assert!(
        taint
            .issuer_spkis()
            .contains(&root_a.public_key().fingerprint()),
        "old record's SPKI tainted via the pre-image store"
    );
    let unrelated = simple_chain("taint-unrelated.example").root;
    assert!(
        !taint.contains(&unrelated.fingerprint()),
        "untouched identities stay clean"
    );

    // --- Replayed (already-current) messages add no taint. ---
    let replay = key.sign(MessageKind::Delta, &delta.encode()).unwrap();
    assert!(matches!(
        subscriber.ingest(&replay).expect("replay is benign"),
        SyncEvent::AlreadyCurrent { .. }
    ));
    assert!(subscriber.pending_taint().is_empty());

    // --- Snapshot fallback after having state: full taint again,
    // through the same accumulator (shared invalidation path). ---
    let snap = Snapshot::capture("primary", 5, 30, &next);
    let msg = key.sign(MessageKind::Snapshot, &snap.encode()).unwrap();
    subscriber.ingest(&msg).expect("fallback snapshot");
    assert!(subscriber.pending_taint().is_full());
    assert_eq!(subscriber.counters().snapshot_fallbacks, 1);
}
