//! The deprecated constructor shims must remain behavioural aliases of
//! the builder path: same messages applied, byte-identical stores.
//!
//! `FeedSubscriber` and `RemoteSubscriber::new` survive for older
//! callers; these tests pin their contract so a future refactor of the
//! builder cannot silently fork their behaviour before the shims are
//! finally removed.

#![allow(deprecated)]

use nrslb_crypto::sha256::sha256;
use nrslb_rootstore::RootStore;
use nrslb_rsf::{
    CoordinatorKey, FeedKey, FeedPublisher, FeedSocketServer, FeedSubscriber, FeedTrust,
    RemoteSubscriber, Snapshot, Subscriber,
};
use nrslb_x509::testutil::simple_chain;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn coordinator() -> CoordinatorKey {
    CoordinatorKey::from_seed([0x31; 32], 4).unwrap()
}

fn trust() -> FeedTrust {
    FeedTrust {
        coordinator: coordinator().public(),
    }
}

/// Canonical content bytes of a store (name/sequence/timestamp pinned).
fn canonical(store: &RootStore) -> Vec<u8> {
    Snapshot::capture("compare", 0, 0, store).encode()
}

/// An evolving publisher: initial root, then a distrust and an
/// addition across two more publishes.
fn evolving_publisher(tag: &str) -> (FeedPublisher, RootStore) {
    let key = FeedKey::new([0x32; 32], 10, &coordinator()).unwrap();
    let pki = simple_chain(&format!("{tag}.example"));
    let mut store = RootStore::new("nss");
    store.add_trusted(pki.root.clone()).unwrap();
    let mut publisher = FeedPublisher::new("nss", key, &store, 0).unwrap();
    store.distrust(sha256(b"shim incident"), "incident");
    publisher.publish(&store, 100).unwrap();
    let other = simple_chain(&format!("{tag}-other.example"));
    store.add_trusted(other.root.clone()).unwrap();
    publisher.publish(&store, 200).unwrap();
    (publisher, store)
}

#[test]
fn feed_subscriber_shim_matches_builder_byte_for_byte() {
    let (mut publisher, truth) = evolving_publisher("shim-local");

    let mut via_shim = FeedSubscriber::new("derivative", trust());
    via_shim.sync(&mut publisher).unwrap();

    let mut via_builder = Subscriber::builder("derivative", trust()).build();
    via_builder.sync(&mut publisher, 0).unwrap();

    assert_eq!(via_shim.sequence(), via_builder.sequence());
    assert_eq!(canonical(via_shim.store()), canonical(via_builder.store()));
    assert_eq!(canonical(via_shim.store()), canonical(&truth));

    // A later incremental sync stays in lockstep too.
    let mut truth = truth;
    truth.distrust(sha256(b"later incident"), "later");
    publisher.publish(&truth, 300).unwrap();
    via_shim.sync(&mut publisher).unwrap();
    via_builder.sync(&mut publisher, 300).unwrap();
    assert_eq!(canonical(via_shim.store()), canonical(via_builder.store()));
    assert_eq!(canonical(via_shim.store()), canonical(&truth));
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nrslb-shims-{tag}-{}.sock", std::process::id()))
}

#[test]
fn remote_subscriber_shim_matches_builder_connect() {
    let (publisher, truth) = evolving_publisher("shim-socket");
    let server =
        FeedSocketServer::spawn(Arc::new(Mutex::new(publisher)), socket_path("a")).unwrap();

    let mut via_shim: RemoteSubscriber =
        RemoteSubscriber::new("remote", trust(), server.socket_path());
    let mut via_builder = Subscriber::builder("remote", trust()).connect(server.socket_path());

    via_shim.sync(0).unwrap();
    via_builder.sync(0).unwrap();

    assert_eq!(via_shim.sequence(), via_builder.sequence());
    assert_eq!(canonical(via_shim.store()), canonical(via_builder.store()));
    assert_eq!(canonical(via_shim.store()), canonical(&truth));
}
