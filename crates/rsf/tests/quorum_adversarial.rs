//! Adversarial acceptance tests for the k-of-n quorum layer: a
//! checkpoint backed by fewer than `k` partial signatures is rejected,
//! a forged partial (rogue key or signer substitution) is rejected, and
//! a partial minted before a share rotation is rejected once the
//! rotation has flowed through the transparency log — all as
//! *retryable* signature failures that never quarantine the honest
//! subscriber.

use nrslb_crypto::hbs::Keypair;
use nrslb_crypto::sha256::sha256;
use nrslb_rootstore::RootStore;
use nrslb_rsf::{
    FeedKey, FeedPublisher, FeedTrust, QuorumAuthority, QuorumConfig, RsfError, Subscriber,
    SyncState,
};
use nrslb_x509::testutil::simple_chain;

const QUORUM_SEED: [u8; 32] = [0x9a; 32];
const CONFIG: QuorumConfig = QuorumConfig { k: 2, n: 3 };

fn authority() -> QuorumAuthority {
    QuorumAuthority::from_seed(QUORUM_SEED, CONFIG, 6).expect("authority")
}

/// A quorum-governed publisher over a one-root truth store, plus a
/// subscriber already synced against it.
fn synced_pair() -> (RootStore, FeedPublisher, Subscriber) {
    let authority = authority();
    let trust = FeedTrust::quorum(authority.trust());
    let key = FeedKey::new_quorum([0x9b; 32], 10, &authority).expect("feed key");
    let mut truth = RootStore::new("primary");
    truth
        .add_trusted(simple_chain("quorum-seed.example").root)
        .unwrap();
    let mut publisher =
        FeedPublisher::new_quorum("primary", key, authority, &truth, 0).expect("publisher");
    let mut subscriber = Subscriber::builder("derivative", trust).build();
    subscriber.sync(&mut publisher, 10).expect("honest sync");
    assert_eq!(subscriber.sequence(), publisher.sequence());
    (truth, publisher, subscriber)
}

fn expect_bad_signature(result: Result<impl std::fmt::Debug, RsfError>, needle: &str) {
    match result {
        Err(RsfError::BadSignature(s)) => {
            assert_eq!(s, needle, "wrong rejection: got {s:?}, want {needle:?}")
        }
        other => panic!("expected BadSignature({needle:?}), got {other:?}"),
    }
}

#[test]
fn sub_quorum_checkpoint_rejected() {
    let (mut truth, mut publisher, mut subscriber) = synced_pair();
    // Grow the feed so the forged checkpoint is not the one already
    // pinned (idle re-polls skip verification by design).
    truth.distrust(sha256(b"incident"), "incident");
    publisher.publish(&truth, 20).expect("publish");
    let messages: Vec<_> = publisher
        .fetch(subscriber.sequence())
        .into_iter()
        .cloned()
        .collect();
    let mut forged = publisher.checkpoint().expect("checkpoint");
    // The compromised minority re-witnesses the checkpoint with k-1
    // partials (signer state rebuilt from the leaked derivation).
    let minority = authority();
    let witness = minority
        .sign_with(&[0], &forged.encode())
        .expect("minority witness");
    forged.witness = Some(witness);
    expect_bad_signature(
        subscriber.poll(messages.clone(), forged, None, 20),
        "sub-quorum signature",
    );
    assert!(
        !matches!(subscriber.state(), SyncState::Quarantined { .. }),
        "sub-quorum forgery must be retryable, not a quarantine"
    );
    // The honest feed still syncs afterwards.
    subscriber.sync(&mut publisher, 30).expect("recovery sync");
    assert_eq!(subscriber.sequence(), publisher.sequence());
}

#[test]
fn unwitnessed_checkpoint_rejected_on_quorum_feed() {
    let (mut truth, mut publisher, mut subscriber) = synced_pair();
    truth.distrust(sha256(b"incident"), "incident");
    publisher.publish(&truth, 20).expect("publish");
    let messages: Vec<_> = publisher
        .fetch(subscriber.sequence())
        .into_iter()
        .cloned()
        .collect();
    let mut forged = publisher.checkpoint().expect("checkpoint");
    forged.witness = None;
    expect_bad_signature(
        subscriber.poll(messages, forged, None, 20),
        "checkpoint missing quorum witness",
    );
    assert!(!matches!(subscriber.state(), SyncState::Quarantined { .. }));
}

#[test]
fn forged_partial_rejected() {
    let authority = authority();
    let trust = authority.trust();
    let message = b"checkpoint bytes under attack";

    // Rogue-key forgery: a full-size bitmap where one partial comes
    // from a key the attacker generated.
    let mut rogue_key = Keypair::from_seed(*sha256(b"rogue").as_bytes(), 6).expect("rogue key");
    let mut forged = authority.sign_with(&[0], message).expect("partial");
    forged.bitmap |= 1 << 1;
    forged
        .partials
        .push(rogue_key.sign(message).expect("rogue partial"));
    expect_bad_signature(trust.verify(message, &forged), "invalid quorum partial");

    // Signer substitution: signer 2's honest partial presented under
    // signer 1's identity (the epoch/id binding must catch it).
    let mut swapped = authority.sign_with(&[0, 1], message).expect("quorum");
    swapped.partials[1] = authority.partial(2, message).expect("partial 2");
    expect_bad_signature(trust.verify(message, &swapped), "invalid quorum partial");

    // Structural forgeries around the bitmap.
    let mut unknown = authority.sign_with(&[0, 1], message).expect("quorum");
    unknown.bitmap |= 1 << CONFIG.n;
    expect_bad_signature(trust.verify(message, &unknown), "unknown quorum signer id");

    let mut miscounted = authority.sign_with(&[0, 1], message).expect("quorum");
    miscounted.partials.pop();
    expect_bad_signature(
        trust.verify(message, &miscounted),
        "quorum partial count mismatch",
    );
}

#[test]
fn pre_rotation_witness_rejected_after_rotation() {
    let (mut truth, mut publisher, mut subscriber) = synced_pair();
    // Capture an honestly-witnessed epoch-1 checkpoint, then rotate.
    let stale = publisher.checkpoint().expect("epoch-1 checkpoint");
    let event = publisher.rotate(100).expect("rotation").clone();
    assert_eq!(event.to_epoch, 2);
    // The rotation flows through the feed: the next sync applies it.
    subscriber.sync(&mut publisher, 110).expect("sync");
    assert_eq!(subscriber.counters().rotations_applied, 1);
    match subscriber.trust() {
        FeedTrust::Quorum(quorum) => assert_eq!(quorum.epoch, 2),
        other => panic!("expected quorum trust, got {other:?}"),
    }
    // Replaying the retired epoch's witness is a signature failure,
    // not a split view — even though the stale checkpoint also rolls
    // the log back.
    expect_bad_signature(
        subscriber.poll(Vec::new(), stale, None, 120),
        "quorum epoch mismatch",
    );
    assert!(!matches!(subscriber.state(), SyncState::Quarantined { .. }));
    // And the post-rotation feed keeps working.
    truth.distrust(sha256(b"post-rotation incident"), "incident");
    publisher.publish(&truth, 130).expect("publish");
    subscriber
        .sync(&mut publisher, 140)
        .expect("post-rotation sync");
    assert_eq!(subscriber.sequence(), publisher.sequence());
}

#[test]
fn rotation_event_is_idempotent_and_tamper_evident() {
    let authority = authority();
    let mut trust = authority.trust();
    let mut ceremony = QuorumAuthority::from_seed(QUORUM_SEED, CONFIG, 6).expect("authority");
    let event = ceremony.rotate(50).expect("rotation");

    assert!(trust.apply_rotation(&event).expect("first application"));
    assert_eq!(trust.epoch, 2);
    // Redelivery (every fetch serves the full rotation history) is
    // benign.
    assert!(!trust.apply_rotation(&event).expect("redelivery"));
    assert_eq!(trust.epoch, 2);

    // A tampered incoming signer set breaks the outgoing quorum's
    // approval.
    let fresh = authority.trust();
    let mut tampered = event.clone();
    tampered.new_signers.swap(0, 1);
    let mut victim = fresh.clone();
    assert!(victim.apply_rotation(&tampered).is_err());

    // Skipping an epoch is rejected.
    let mut skipped = event.clone();
    skipped.from_epoch = 2;
    skipped.to_epoch = 3;
    let mut victim = fresh.clone();
    victim.epoch = 2;
    assert!(victim.apply_rotation(&skipped).is_err());
}

#[test]
fn single_signer_endorsement_rejected_by_quorum_trust() {
    let (_, _, mut subscriber) = synced_pair();
    // A coordinator-endorsed (ablation arm) feed presented to a
    // quorum-pinning subscriber must fail on the endorsement scheme.
    let coordinator = nrslb_rsf::CoordinatorKey::from_seed([0x33; 32], 4).expect("coordinator key");
    let key = FeedKey::new([0x34; 32], 8, &coordinator).expect("feed key");
    let truth = RootStore::new("imposter");
    let mut imposter = FeedPublisher::new("imposter", key, &truth, 0).expect("publisher");
    let err = subscriber.sync(&mut imposter, 10).unwrap_err();
    assert!(
        matches!(err, RsfError::BadSignature(_)),
        "expected a signature rejection, got {err:?}"
    );
}
