//! Acceptance tests for the resilient sync engine (ISSUE 2): a
//! subscriber behind a faulty channel converges byte-identically; a
//! subscriber shown a rewritten feed history quarantines, never applies
//! the forged update, and keeps serving the last-good store with an
//! explicit staleness verdict.

use nrslb_crypto::sha256::sha256;
use nrslb_rootstore::RootStore;
use nrslb_rsf::signing::MessageKind;
use nrslb_rsf::{
    Clock, CoordinatorKey, Delta, FaultInjector, FaultPlan, FeedKey, FeedPublisher, FeedTrust,
    RsfError, Snapshot, Staleness, Subscriber, SyncPolicy, SyncState, TransparencyLog,
    VirtualClock,
};
use nrslb_x509::testutil::simple_chain;

fn coordinator() -> CoordinatorKey {
    CoordinatorKey::from_seed([0x71; 32], 4).expect("coordinator key")
}

fn trust() -> FeedTrust {
    FeedTrust::single(coordinator().public())
}

/// Canonical bytes of a store's *content* (name/sequence/time pinned).
fn canonical(store: &RootStore) -> Vec<u8> {
    Snapshot::capture("compare", 0, 0, store).encode()
}

#[test]
fn lossy_channel_converges_byte_identically() {
    let key = FeedKey::new([0x72; 32], 12, &coordinator()).expect("feed key");
    let mut truth = RootStore::new("primary");
    truth
        .add_trusted(simple_chain("resilience-seed.example").root)
        .unwrap();
    let mut publisher = FeedPublisher::new("primary", key, &truth, 0).expect("publisher");
    let mut subscriber = Subscriber::builder("derivative", trust())
        .policy(SyncPolicy {
            max_attempts: 10,
            base_backoff_ms: 1,
            max_backoff_ms: 32,
            ..SyncPolicy::default()
        })
        .build();
    // Each of drop/delay/duplicate/truncate/bit-flip fires on 30% of
    // frames, independently.
    let mut injector = FaultInjector::new(FaultPlan::lossy(0.3, 0x7e57));

    for round in 0..8i64 {
        let t = round * 3_600;
        truth.distrust(
            sha256(format!("resilience-incident-{round}").as_bytes()),
            format!("incident {round}"),
        );
        publisher.publish(&truth, t).expect("publish");
        // A single round may exhaust its retry budget; later polls
        // repair it, exactly like a real polling schedule.
        let _ = subscriber.sync_resilient(&mut publisher, &mut injector, t);
    }
    let mut extra = 0i64;
    while subscriber.sequence() != publisher.sequence() && extra < 8 {
        extra += 1;
        let _ = subscriber.sync_resilient(&mut publisher, &mut injector, (8 + extra) * 3_600);
    }

    assert_eq!(subscriber.sequence(), publisher.sequence());
    assert_eq!(
        canonical(&truth),
        canonical(subscriber.store()),
        "replica must be byte-identical to the truth store"
    );
    assert_eq!(subscriber.state(), SyncState::Live);
    let counters = subscriber.counters();
    assert!(counters.retries > 0, "30% faults should force retries");
    assert!(
        counters.messages_rejected > 0,
        "truncation/bit-flip faults should produce rejected frames"
    );
    assert_eq!(counters.quarantines, 0);
}

#[test]
fn rewritten_history_quarantines_and_keeps_serving_last_good_store() {
    let key = FeedKey::new([0x73; 32], 10, &coordinator()).expect("feed key");
    let mut truth = RootStore::new("primary");
    truth
        .add_trusted(simple_chain("honest-root.example").root)
        .unwrap();
    let mut publisher = FeedPublisher::new("primary", key, &truth, 0).expect("publisher");
    let mut subscriber = Subscriber::builder("derivative", trust())
        .staleness_bound_secs(3_600)
        .build();
    truth.distrust(sha256(b"honest-incident"), "honest incident");
    publisher.publish(&truth, 50).expect("publish");
    subscriber.sync(&mut publisher, 100).expect("honest sync");
    let good = canonical(subscriber.store());
    let pinned_size = subscriber.pinned_checkpoint().expect("pinned").size;

    // The publisher key is compromised: the attacker rebuilds the
    // transparency log from scratch with a different history, grows it
    // past the pinned size, and offers a forged delta plus a
    // checkpoint/"consistency proof" over the rewritten log.
    let fork_key = FeedKey::new([0x73; 32], 10, &coordinator()).expect("fork key");
    let mut forked_log = TransparencyLog::new();
    let mut evil = RootStore::new("primary");
    let evil_delta = Delta::between(&evil, &truth, 0, 1, 50);
    let forged = fork_key
        .sign(MessageKind::Delta, &evil_delta.encode())
        .expect("sign forged delta");
    for _ in 0..=pinned_size {
        forked_log.append(&forged);
    }
    let forged_next = {
        evil.distrust(sha256(b"attacker rewrite"), "attacker");
        let d = Delta::between(subscriber.store(), &evil, subscriber.sequence(), 2, 200);
        fork_key
            .sign(MessageKind::Delta, &d.encode())
            .expect("sign next forged delta")
    };
    forked_log.append(&forged_next);
    let forged_ckpt = forked_log.checkpoint(&fork_key).expect("forged checkpoint");
    let forged_proof = forked_log.prove_consistency(pinned_size, forked_log.len());

    let err = subscriber
        .poll(vec![forged_next.clone()], forged_ckpt, forged_proof, 200)
        .expect_err("rewritten history must be refused");
    assert!(
        matches!(err, RsfError::SplitView(_)),
        "expected SplitView, got {err}"
    );
    assert!(matches!(subscriber.state(), SyncState::Quarantined { .. }));
    // Nothing from the forged feed was applied.
    assert_eq!(canonical(subscriber.store()), good);

    // Once quarantined, every ingestion path is closed.
    let err = subscriber
        .ingest(&forged_next)
        .expect_err("quarantined subscriber must refuse updates");
    assert!(matches!(err, RsfError::Quarantined(_)));
    let err = subscriber
        .sync(&mut publisher, 300)
        .expect_err("quarantined subscriber must refuse to sync");
    assert!(matches!(err, RsfError::Quarantined(_)));

    // Past the staleness bound it still serves the last-good store,
    // with an explicit verdict and a counted stale serve.
    let (store, staleness) = subscriber.serve(100 + 4_000);
    assert_eq!(canonical(store), good);
    assert!(
        matches!(
            staleness,
            Staleness::Exceeded {
                age_secs: 4_000,
                bound_secs: 3_600
            }
        ),
        "expected Exceeded, got {staleness:?}"
    );
    let counters = subscriber.counters();
    assert_eq!(counters.quarantines, 1, "quarantine is counted once");
    assert_eq!(counters.stale_serves, 1);
}

#[test]
fn dead_channel_exhausts_retry_budget() {
    let key = FeedKey::new([0x74; 32], 8, &coordinator()).expect("feed key");
    let mut truth = RootStore::new("primary");
    let mut publisher = FeedPublisher::new("primary", key, &truth, 0).expect("publisher");
    truth.distrust(sha256(b"unreachable-incident"), "incident");
    publisher.publish(&truth, 0).expect("publish");
    let mut subscriber = Subscriber::builder("derivative", trust())
        .policy(SyncPolicy {
            max_attempts: 3,
            base_backoff_ms: 1,
            max_backoff_ms: 4,
            ..SyncPolicy::default()
        })
        .build();
    let mut injector = FaultInjector::new(FaultPlan {
        drop: 1.0,
        ..FaultPlan::none()
    });

    let err = subscriber
        .sync_resilient(&mut publisher, &mut injector, 0)
        .expect_err("a channel that drops everything cannot converge");
    match err {
        RsfError::Exhausted { attempts, .. } => assert_eq!(attempts, 3),
        other => panic!("expected Exhausted, got {other}"),
    }
    // Exhaustion is transient, not publisher misbehaviour: no quarantine.
    assert_eq!(subscriber.counters().quarantines, 0);
    assert_eq!(subscriber.counters().attempts, 3);
    assert_eq!(subscriber.counters().retries, 2);
}

#[test]
fn backoff_and_staleness_run_on_virtual_time() {
    let key = FeedKey::new([0x75; 32], 8, &coordinator()).expect("feed key");
    let mut truth = RootStore::new("primary");
    truth
        .add_trusted(simple_chain("virtual-time.example").root)
        .unwrap();
    let mut publisher = FeedPublisher::new("primary", key, &truth, 0).expect("publisher");
    let clock = VirtualClock::shared(1_000);
    let mut subscriber = Subscriber::builder("derivative", trust())
        .policy(SyncPolicy {
            max_attempts: 4,
            base_backoff_ms: 10_000,
            max_backoff_ms: 60_000,
            staleness_bound_secs: 3_600,
            ..SyncPolicy::default()
        })
        .clock(clock.clone())
        .build();

    // A dead channel: every retry's backoff is "slept" on the virtual
    // clock. Wall-clock sleeping here would take tens of seconds; the
    // test finishing instantly *is* the assertion that it does not.
    let mut dead = FaultInjector::new(FaultPlan {
        drop: 1.0,
        ..FaultPlan::none()
    });
    let before_ms = clock.now_millis();
    let err = subscriber
        .sync_resilient_now(&mut publisher, &mut dead)
        .expect_err("dead channel cannot converge");
    assert!(matches!(err, RsfError::Exhausted { attempts: 4, .. }));
    let slept_ms = clock.now_millis() - before_ms;
    assert!(
        slept_ms >= 3 * 10_000,
        "three retries must advance the virtual clock by their backoff, got {slept_ms}ms"
    );

    // A healthy sync at virtual-now, then staleness tracked purely by
    // advancing the clock — no real waiting on the assertion path.
    let mut clean = FaultInjector::new(FaultPlan::none());
    subscriber
        .sync_resilient_now(&mut publisher, &mut clean)
        .expect("clean channel syncs");
    assert!(matches!(
        subscriber.staleness_now(),
        Staleness::Fresh { .. }
    ));
    clock.advance_secs(3_601);
    match subscriber.staleness_now() {
        Staleness::Exceeded { bound_secs, .. } => assert_eq!(bound_secs, 3_600),
        other => panic!("expected Exceeded after advancing the clock, got {other:?}"),
    }
    assert_eq!(subscriber.state(), SyncState::Live);
}

#[test]
fn staleness_verdict_flips_exactly_one_second_past_the_bound() {
    // Regression: the bound is inclusive. A store whose age *equals*
    // the staleness bound is still Fresh; one second later it is
    // Exceeded. Driven entirely on virtual time so the boundary
    // instants are exact, assertable numbers.
    let key = FeedKey::new([0x76; 32], 8, &coordinator()).expect("feed key");
    let mut truth = RootStore::new("primary");
    truth
        .add_trusted(simple_chain("boundary.example").root)
        .unwrap();
    let mut publisher = FeedPublisher::new("primary", key, &truth, 0).expect("publisher");
    const BOUND: i64 = 3_600;
    let sync_at = 10_000i64;
    let clock = VirtualClock::shared(sync_at);
    let mut subscriber = Subscriber::builder("derivative", trust())
        .staleness_bound_secs(BOUND)
        .clock(clock.clone())
        .build();
    subscriber.sync_now(&mut publisher).expect("clean sync");

    // Exactly at the threshold instant (age == bound): still Fresh.
    clock.set_millis((sync_at + BOUND) * 1_000);
    assert_eq!(
        subscriber.staleness_now(),
        Staleness::Fresh { age_secs: BOUND },
        "age == bound must still be Fresh"
    );
    let (_, verdict) = subscriber.serve_now();
    assert_eq!(verdict, Staleness::Fresh { age_secs: BOUND });
    assert_eq!(
        subscriber.counters().stale_serves,
        0,
        "a serve exactly at the bound is not a stale serve"
    );

    // One second later: Exceeded, and the serve counts as stale.
    clock.advance_secs(1);
    assert_eq!(
        subscriber.staleness_now(),
        Staleness::Exceeded {
            age_secs: BOUND + 1,
            bound_secs: BOUND
        }
    );
    let (_, verdict) = subscriber.serve_now();
    assert_eq!(
        verdict,
        Staleness::Exceeded {
            age_secs: BOUND + 1,
            bound_secs: BOUND
        }
    );
    assert_eq!(subscriber.counters().stale_serves, 1);
}
