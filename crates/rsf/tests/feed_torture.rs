//! Distribution-node torture: 512 concurrent keep-alive subscriber
//! connections hammering one [`FeedDistributionNode`] with hostile I/O
//! — every request written in randomized partial chunks, every reply
//! drained in randomized partial chunks — while all 512 connections are
//! provably resident at once. The invariants are exact: every poll gets
//! one well-formed RSFR reply, the per-loop connection gauges account
//! for every resident connection, idle re-polls land on the inline
//! path, and every gauge returns to zero after the subscribers hang up.

use nrslb_rootstore::RootStore;
use nrslb_rsf::{CoordinatorKey, FeedDistributionNode, FeedKey, FeedPublisher};
use nrslb_x509::testutil::simple_chain;
use rand::prelude::*;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const CLIENTS: usize = 512;
const POLLS_PER_CLIENT: usize = 4;
const LOOPS: usize = 2;
const WORKERS: usize = 2;

fn socket_path() -> PathBuf {
    std::env::temp_dir().join(format!("nrslb-feed-torture-{}.sock", std::process::id()))
}

fn chunked_write(stream: &mut UnixStream, bytes: &[u8], rng: &mut StdRng) {
    let mut off = 0;
    while off < bytes.len() {
        let n = rng.gen_range(1usize..9).min(bytes.len() - off);
        stream.write_all(&bytes[off..off + n]).unwrap();
        off += n;
        if rng.gen_range(0u32..8) == 0 {
            std::thread::yield_now();
        }
    }
    stream.flush().unwrap();
}

fn chunked_read(stream: &mut UnixStream, n: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = vec![0u8; n];
    let mut have = 0;
    while have < n {
        let want = rng.gen_range(1usize..49).min(n - have);
        let got = stream.read(&mut out[have..have + want]).unwrap();
        assert!(got > 0, "node closed the connection mid-reply");
        have += got;
    }
    out
}

fn encode_request(have_sequence: u64, have_checkpoint: u64) -> Vec<u8> {
    let mut req = Vec::with_capacity(24);
    req.extend_from_slice(b"RSFQ");
    req.extend_from_slice(&16u32.to_le_bytes());
    req.extend_from_slice(&have_sequence.to_le_bytes());
    req.extend_from_slice(&have_checkpoint.to_le_bytes());
    req
}

/// Read one RSFR frame with chunked reads and sanity-check its shape.
fn read_reply(stream: &mut UnixStream, rng: &mut StdRng) -> Vec<u8> {
    let head = chunked_read(stream, 8, rng);
    assert_eq!(&head[..4], b"RSFR", "reply magic");
    let len = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
    chunked_read(stream, len, rng)
}

/// Connect with a short retry loop: 512 threads connecting at once can
/// transiently outrun the listener backlog.
fn connect(path: &PathBuf) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("connect failed past deadline: {e}"),
        }
    }
}

/// Sum a per-loop series across the node's event loops.
fn loop_sum(node: &FeedDistributionNode, name: &str, gauge: bool) -> i64 {
    (0..LOOPS)
        .map(|i| {
            let label = i.to_string();
            let labels = [("loop", label.as_str())];
            if gauge {
                node.registry().gauge_with(name, &labels, "").get()
            } else {
                node.registry().counter_with(name, &labels, "").get() as i64
            }
        })
        .sum()
}

#[test]
fn feed_node_torture_512_keep_alive_subscribers() {
    let pki = simple_chain("feed-torture.example");
    let mut store = RootStore::new("nss");
    store.add_trusted(pki.root.clone()).unwrap();
    let coordinator = CoordinatorKey::from_seed([5; 32], 4).unwrap();
    let key = FeedKey::new([6; 32], 10, &coordinator).unwrap();
    let publisher = FeedPublisher::new("nss", key, &store, 0).unwrap();
    let publisher = Arc::new(Mutex::new(publisher));

    let path = socket_path();
    let node =
        FeedDistributionNode::spawn_with(Arc::clone(&publisher), &path, LOOPS, WORKERS).unwrap();

    // Sign the checkpoint once up front so the torture's idle re-polls
    // qualify for inline service, and record where "current" is.
    let (sequence, checkpoint_size) = {
        let mut publisher = publisher.lock().unwrap();
        let checkpoint = publisher.checkpoint().unwrap();
        (publisher.sequence(), checkpoint.size)
    };

    // All clients finish their polls, then rendezvous while still
    // connected (so residency is observable), then hang up together.
    let resident = Arc::new(Barrier::new(CLIENTS + 1));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let path = path.clone();
            let resident = Arc::clone(&resident);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xfeed + c as u64);
                let mut stream = connect(&path);
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                // Bootstrap poll: the full snapshot response.
                chunked_write(&mut stream, &encode_request(0, 0), &mut rng);
                let bootstrap = read_reply(&mut stream, &mut rng);
                // Idle re-polls on the same connection: small replies.
                let idle_request = encode_request(sequence, checkpoint_size);
                let mut idle_len = None;
                for _ in 0..POLLS_PER_CLIENT {
                    chunked_write(&mut stream, &idle_request, &mut rng);
                    let reply = read_reply(&mut stream, &mut rng);
                    assert!(
                        reply.len() < bootstrap.len(),
                        "idle reply must not carry the snapshot"
                    );
                    // Idle state is constant, so replies are identical.
                    match &idle_len {
                        None => idle_len = Some(reply),
                        Some(first) => assert_eq!(first, &reply, "idle replies diverged"),
                    }
                }
                resident.wait();
                drop(stream);
            })
        })
        .collect();

    // Every connection is parked at the barrier still open: the
    // per-loop gauges must account for all of them.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let connections = loop_sum(&node, "nrslb_reactor_connections", true);
        if connections == CLIENTS as i64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gauges never accounted for all residents: {connections}/{CLIENTS}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Idle re-polls are the inline path's case: with the checkpoint
    // cached and every subscriber current, the cost guard should have
    // admitted (nearly all of) them onto the event loops.
    let inline = loop_sum(&node, "nrslb_reactor_inline_total", false);
    assert!(
        inline > 0,
        "no idle re-poll was served inline out of {}",
        CLIENTS * POLLS_PER_CLIENT
    );

    resident.wait();
    for h in handles {
        h.join().unwrap();
    }

    // Hang-ups drain: every per-loop connection gauge returns to zero.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let connections = loop_sum(&node, "nrslb_reactor_connections", true);
        if connections == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connection gauges stuck at {connections} after disconnect"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    drop(node);
    assert!(!path.exists(), "socket removed on drop");
}
