//! Feed-server parity: the reactor-backed [`FeedDistributionNode`] and
//! the deprecated thread-per-connection [`FeedSocketServer`] must be
//! observationally identical at the byte level. Two publishers built
//! from the same seeds and driven through the same mutations back the
//! two servers; the same request script — valid polls (whole and
//! dribbled in partial chunks), mid-stream garbage, oversized lengths,
//! and truncated frames — must then produce the same outcome from
//! both: the identical reply bytes, or the identical silent hang-up.

#![allow(deprecated)]

use nrslb_rootstore::RootStore;
use nrslb_rsf::{
    CoordinatorKey, FeedDistributionNode, FeedKey, FeedPublisher, FeedSocketServer, FeedTrust,
    Subscriber,
};
use nrslb_x509::testutil::simple_chain;
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nrslb-parity-{tag}-{}.sock", std::process::id()))
}

/// Two publishers with identical seeds over identical stores: every
/// signature they ever produce is deterministic, so as long as both
/// are driven through the same operations their wire artifacts are
/// byte-identical.
fn twin_publishers() -> (
    Arc<Mutex<FeedPublisher>>,
    Arc<Mutex<FeedPublisher>>,
    RootStore,
) {
    let pki = simple_chain("parity.example");
    let mut store = RootStore::new("nss");
    store.add_trusted(pki.root.clone()).unwrap();
    let mut twins = Vec::new();
    for _ in 0..2 {
        let coordinator = CoordinatorKey::from_seed([7; 32], 4).unwrap();
        let key = FeedKey::new([8; 32], 8, &coordinator).unwrap();
        let publisher = FeedPublisher::new("nss", key, &store, 0).unwrap();
        twins.push(Arc::new(Mutex::new(publisher)));
    }
    let b = twins.pop().unwrap();
    let a = twins.pop().unwrap();
    (a, b, store)
}

fn encode_request(have_sequence: u64, have_checkpoint: u64) -> Vec<u8> {
    let mut req = Vec::with_capacity(24);
    req.extend_from_slice(b"RSFQ");
    req.extend_from_slice(&16u32.to_le_bytes());
    req.extend_from_slice(&have_sequence.to_le_bytes());
    req.extend_from_slice(&have_checkpoint.to_le_bytes());
    req
}

/// What one connection observed: a complete RSFR frame, or the server
/// hanging up without answering.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Reply(Vec<u8>),
    Closed,
}

/// Read one full reply frame, or observe the close. A reset counts as
/// a close: a server that hangs up with unread bytes still in its
/// receive buffer produces RST rather than FIN, and which of the two
/// the client sees is kernel timing, not protocol behaviour.
fn read_outcome(stream: &mut UnixStream) -> Outcome {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut head = [0u8; 8];
    let mut have = 0;
    while have < head.len() {
        match stream.read(&mut head[have..]) {
            Ok(0) => return Outcome::Closed,
            Ok(n) => have += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                return Outcome::Closed
            }
            Err(e) => panic!("reply header read failed: {e}"),
        }
    }
    assert_eq!(&head[..4], b"RSFR", "reply magic");
    let len = u32::from_le_bytes(head[4..].try_into().unwrap()) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("reply body");
    let mut frame = head.to_vec();
    frame.extend_from_slice(&body);
    Outcome::Reply(frame)
}

fn send_request(
    stream: &mut UnixStream,
    bytes: &[u8],
    chunked: bool,
    truncate: bool,
) -> std::io::Result<()> {
    if chunked {
        for chunk in bytes.chunks(3) {
            stream.write_all(chunk)?;
            stream.flush()?;
            std::thread::yield_now();
        }
    } else {
        stream.write_all(bytes)?;
    }
    if truncate {
        stream.shutdown(Shutdown::Write)?;
    }
    Ok(())
}

/// One fresh-connection exchange: write `bytes` (optionally dribbled in
/// 3-byte chunks), half-close if `truncate`, and read the outcome. A
/// server that rejects early may close (or reset) while the request is
/// still being written; that is itself the "no answer" outcome.
fn exchange(path: &Path, bytes: &[u8], chunked: bool, truncate: bool) -> Outcome {
    let mut stream = UnixStream::connect(path).expect("connect");
    if send_request(&mut stream, bytes, chunked, truncate).is_err() {
        return Outcome::Closed;
    }
    read_outcome(&mut stream)
}

/// The script: every shape of traffic the servers must agree on.
/// `(label, bytes, chunked, truncate)`.
fn script() -> Vec<(&'static str, Vec<u8>, bool, bool)> {
    vec![
        ("bootstrap", encode_request(0, 0), false, false),
        ("bootstrap chunked", encode_request(0, 0), true, false),
        ("ahead of feed", encode_request(7, 0), false, false),
        ("pinned checkpoint", encode_request(0, 1), false, false),
        (
            "bad magic",
            b"XXXX\x10\x00\x00\x00aaaaaaaaaaaaaaaa".to_vec(),
            false,
            true,
        ),
        (
            "bad body length",
            b"RSFQ\x08\x00\x00\x00aaaaaaaa".to_vec(),
            false,
            true,
        ),
        (
            "oversized length",
            b"RSFQ\xff\xff\xff\xffaaaaaaaa".to_vec(),
            false,
            true,
        ),
        ("truncated header", b"RS".to_vec(), false, true),
        (
            "truncated body",
            encode_request(0, 0)[..12].to_vec(),
            false,
            true,
        ),
        (
            "garbage tail",
            b"RSFQ\x10\x00\x00\x00".to_vec(),
            false,
            true,
        ),
    ]
}

#[test]
fn thread_server_and_node_are_byte_identical() {
    let (pub_thread, pub_node, mut store) = twin_publishers();
    let server = FeedSocketServer::spawn(pub_thread, socket_path("thread")).unwrap();
    let node = FeedDistributionNode::spawn_with(pub_node, socket_path("node"), 2, 2).unwrap();

    let compare = |phase: &str| {
        let mut thread_replies = Vec::new();
        for (label, bytes, chunked, truncate) in script() {
            let a = exchange(server.socket_path(), &bytes, chunked, truncate);
            let b = exchange(node.socket_path(), &bytes, chunked, truncate);
            assert_eq!(a, b, "{phase}: outcome diverged on step `{label}`");
            if let Outcome::Reply(frame) = a {
                thread_replies.push(frame);
            }
        }
        thread_replies
    };

    // Phase 1: the fresh feed (snapshot-only history).
    let fresh_replies = compare("fresh feed");
    assert!(!fresh_replies.is_empty(), "script must elicit real replies");

    // Advance both publishers through the identical mutation.
    let fp = *store.iter().next().unwrap().0;
    store.distrust(fp, "incident");
    for publisher in [server.publisher(), node.publisher()] {
        publisher.lock().unwrap().publish(&store, 100).unwrap();
    }

    // Phase 2: post-delta history (messages, proofs over a grown log).
    let delta_replies = compare("post-delta feed");
    assert_ne!(
        fresh_replies, delta_replies,
        "the delta must actually change the wire responses"
    );

    // Keep-alive pipelining is the node's extension, but the bytes per
    // request must still match the thread server's one-shot replies.
    let mut stream = UnixStream::connect(node.socket_path()).unwrap();
    for (label, bytes, chunked, truncate) in script() {
        if truncate {
            continue; // close-provoking steps end a connection
        }
        send_request(&mut stream, &bytes, chunked, false).unwrap();
        let node_reply = read_outcome(&mut stream);
        let thread_reply = exchange(server.socket_path(), &bytes, false, false);
        assert_eq!(
            node_reply, thread_reply,
            "keep-alive reply diverged on step `{label}`"
        );
    }
}

/// The verified path agrees too: a real subscriber synced against each
/// server converges on the same store, sequence, and pinned checkpoint.
#[test]
fn subscribers_converge_identically_on_both_servers() {
    let (pub_thread, pub_node, mut store) = twin_publishers();
    let server = FeedSocketServer::spawn(pub_thread, socket_path("conv-thread")).unwrap();
    let node = FeedDistributionNode::spawn_with(pub_node, socket_path("conv-node"), 2, 2).unwrap();

    let trust = || {
        let coordinator = CoordinatorKey::from_seed([7; 32], 4).unwrap();
        FeedTrust::single(coordinator.public())
    };
    let mut on_thread = Subscriber::builder("a", trust()).connect(server.socket_path());
    let mut on_node = Subscriber::builder("b", trust()).connect(node.socket_path());

    assert!(on_thread.sync(0).unwrap().report.snapshot_applied);
    assert!(on_node.sync(0).unwrap().report.snapshot_applied);

    let fp = *store.iter().next().unwrap().0;
    store.distrust(fp, "incident");
    for publisher in [server.publisher(), node.publisher()] {
        publisher.lock().unwrap().publish(&store, 100).unwrap();
    }
    assert_eq!(on_thread.sync(10).unwrap().report.deltas_applied, 1);
    assert_eq!(on_node.sync(10).unwrap().report.deltas_applied, 1);

    assert_eq!(on_thread.sequence(), on_node.sequence());
    // Neither RootStore nor Checkpoint is PartialEq; their canonical
    // wire encodings are the comparison the feed layer itself trusts.
    let canonical =
        |s: &nrslb_rootstore::RootStore| nrslb_rsf::Snapshot::capture("cmp", 0, 0, s).encode();
    assert_eq!(canonical(on_thread.store()), canonical(on_node.store()));
    assert_eq!(
        on_thread
            .subscriber()
            .pinned_checkpoint()
            .expect("thread-side checkpoint pinned")
            .encode(),
        on_node
            .subscriber()
            .pinned_checkpoint()
            .expect("node-side checkpoint pinned")
            .encode()
    );
}
