//! Property-based tests for the feed wire encodings: every
//! `Snapshot`/`Delta`/`Checkpoint` round-trips byte-identically, and no
//! truncation or bit-flip ever panics or silently decodes back to the
//! original artifact.

use nrslb_crypto::sha256::sha256;
use nrslb_rootstore::RootStore;
use nrslb_rsf::signing::MessageKind;
use nrslb_rsf::{
    Checkpoint, CoordinatorKey, Delta, FeedKey, FeedTrust, SignedMessage, Snapshot, TransparencyLog,
};
use nrslb_x509::testutil::simple_chain;
use nrslb_x509::Certificate;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Real certificates are expensive to mint; build a small pool once and
/// let the strategies pick subsets.
fn cert_pool() -> &'static Vec<Certificate> {
    static POOL: OnceLock<Vec<Certificate>> = OnceLock::new();
    POOL.get_or_init(|| {
        (0..3)
            .map(|i| simple_chain(&format!("prop-wire-{i}.example")).root)
            .collect()
    })
}

fn feed_key() -> &'static FeedKey {
    static KEY: OnceLock<FeedKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let coordinator = CoordinatorKey::from_seed([0x51; 32], 6).unwrap();
        FeedKey::new([0x52; 32], 10, &coordinator).unwrap()
    })
}

#[derive(Debug, Clone)]
struct StoreSpec {
    trusted: Vec<bool>,   // which pool certs to trust
    distrusted: Vec<u64>, // synthetic incident fingerprints
}

fn store_spec() -> impl Strategy<Value = StoreSpec> {
    (
        proptest::collection::vec(any::<bool>(), 3..4),
        proptest::collection::vec(any::<u64>(), 0..4),
    )
        .prop_map(|(trusted, distrusted)| StoreSpec {
            trusted,
            distrusted,
        })
}

fn build_store(spec: &StoreSpec) -> RootStore {
    let mut store = RootStore::new("prop");
    for (i, yes) in spec.trusted.iter().enumerate() {
        if *yes {
            store.add_trusted(cert_pool()[i].clone()).unwrap();
        }
    }
    for d in &spec.distrusted {
        store.distrust(sha256(d.to_le_bytes()), format!("incident {d}"));
    }
    store
}

fn flip_bit(bytes: &mut [u8], pos: usize, bit: u8) {
    let byte = pos % bytes.len();
    bytes[byte] ^= 1 << (bit % 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_roundtrip_and_mutations(
        spec in store_spec(),
        sequence in any::<u64>(),
        published_at in any::<i64>(),
        cut_frac in 0usize..1000,
        flip_pos in any::<usize>(),
        flip_bit_n in any::<u8>(),
    ) {
        let store = build_store(&spec);
        let snap = Snapshot::capture("prop-feed", sequence, published_at, &store);
        let bytes = snap.encode();
        // Canonical round trip.
        let back = Snapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode(), bytes.clone());
        // Every strict prefix is an error, never a panic.
        let cut = cut_frac * bytes.len() / 1000;
        prop_assert!(Snapshot::decode(&bytes[..cut]).is_err());
        // A bit-flip either fails to decode or decodes to a *different*
        // artifact (no silent success).
        let mut flipped = bytes.clone();
        flip_bit(&mut flipped, flip_pos, flip_bit_n);
        if let Ok(mutated) = Snapshot::decode(&flipped) {
            prop_assert_ne!(mutated.encode(), bytes);
        }
    }

    #[test]
    fn delta_roundtrip_and_mutations(
        before in store_spec(),
        after in store_spec(),
        from in 0u64..1_000_000,
        published_at in any::<i64>(),
        cut_frac in 0usize..1000,
        flip_pos in any::<usize>(),
        flip_bit_n in any::<u8>(),
    ) {
        let a = build_store(&before);
        let b = build_store(&after);
        let delta = Delta::between(&a, &b, from, from + 1, published_at);
        let bytes = delta.encode();
        let back = Delta::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode(), bytes.clone());
        let cut = cut_frac * bytes.len() / 1000;
        prop_assert!(Delta::decode(&bytes[..cut]).is_err());
        let mut flipped = bytes.clone();
        flip_bit(&mut flipped, flip_pos, flip_bit_n);
        if let Ok(mutated) = Delta::decode(&flipped) {
            prop_assert_ne!(mutated.encode(), bytes);
        }
    }

    #[test]
    fn checkpoint_roundtrip_and_mutations(
        payloads in proptest::collection::vec(any::<u64>(), 1..5),
        cut_frac in 0usize..1000,
        flip_pos in any::<usize>(),
        flip_bit_n in any::<u8>(),
    ) {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        for p in &payloads {
            let m = key.sign(MessageKind::Delta, &p.to_le_bytes()).unwrap();
            log.append(&m);
        }
        let ckpt = log.checkpoint(key).unwrap();
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode(), bytes.clone());
        let cut = cut_frac * bytes.len() / 1000;
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
        let mut flipped = bytes.clone();
        flip_bit(&mut flipped, flip_pos, flip_bit_n);
        if let Ok(mutated) = Checkpoint::decode(&flipped) {
            prop_assert_ne!(mutated.encode(), bytes);
        }
    }

    #[test]
    fn mutated_signed_message_never_verifies(
        spec in store_spec(),
        cut_frac in 0usize..1000,
        flip_pos in any::<usize>(),
        flip_bit_n in any::<u8>(),
    ) {
        let key = feed_key();
        let trust = FeedTrust::single(CoordinatorKey::from_seed([0x51; 32], 6).unwrap().public());
        let store = build_store(&spec);
        let snap = Snapshot::capture("prop-feed", 1, 0, &store);
        let signed = key.sign(MessageKind::Snapshot, &snap.encode()).unwrap();
        let bytes = signed.encode();
        // Sanity: the unmutated message decodes and verifies.
        SignedMessage::decode(&bytes).unwrap().verify(&trust).unwrap();
        // Truncations never decode.
        let cut = cut_frac * bytes.len() / 1000;
        prop_assert!(SignedMessage::decode(&bytes[..cut]).is_err());
        // Bit-flips either fail to decode or fail to verify — a
        // damaged frame can never be accepted.
        let mut flipped = bytes.clone();
        flip_bit(&mut flipped, flip_pos, flip_bit_n);
        if let Ok(mutated) = SignedMessage::decode(&flipped) {
            prop_assert!(mutated.verify(&trust).is_err());
        }
    }
}
