//! Feed content: snapshots of a root store and deltas between them.

use crate::wire::{Reader, Writer};
use crate::RsfError;
use nrslb_crypto::sha256::Digest;
use nrslb_rootstore::{Gcc, GccMetadata, RootStore, TrustRecord};
use nrslb_x509::Certificate;
use std::collections::BTreeMap;

/// NSS-style systematic constraints carried per root.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SystematicConstraints {
    /// Last leaf notBefore accepted for TLS.
    pub tls_distrust_after: Option<i64>,
    /// Last leaf notBefore accepted for S/MIME.
    pub smime_distrust_after: Option<i64>,
    /// May the root anchor EV certificates?
    pub ev_allowed: bool,
}

impl SystematicConstraints {
    fn of(record: &TrustRecord) -> SystematicConstraints {
        SystematicConstraints {
            tls_distrust_after: record.tls_distrust_after,
            smime_distrust_after: record.smime_distrust_after,
            ev_allowed: record.ev_allowed,
        }
    }

    fn encode(&self, w: &mut Writer) {
        w.put_opt_i64(self.tls_distrust_after);
        w.put_opt_i64(self.smime_distrust_after);
        w.put_u8(u8::from(self.ev_allowed));
    }

    fn decode(r: &mut Reader<'_>) -> Result<SystematicConstraints, RsfError> {
        Ok(SystematicConstraints {
            tls_distrust_after: r.get_opt_i64()?,
            smime_distrust_after: r.get_opt_i64()?,
            ev_allowed: r.get_u8()? != 0,
        })
    }
}

/// A GCC as it travels in a feed: source text plus metadata. Parsing and
/// checking happen on receipt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GccEntry {
    /// Display name.
    pub name: String,
    /// Datalog source.
    pub source: String,
    /// Justification summary.
    pub justification: String,
    /// Public-discussion link.
    pub discussion_url: String,
    /// Authoring timestamp.
    pub created_at: i64,
}

impl GccEntry {
    /// Capture a stored GCC.
    pub fn of(gcc: &Gcc) -> GccEntry {
        GccEntry {
            name: gcc.name().to_string(),
            source: gcc.source().to_string(),
            justification: gcc.metadata().justification.clone(),
            discussion_url: gcc.metadata().discussion_url.clone(),
            created_at: gcc.metadata().created_at,
        }
    }

    /// Parse and check into a [`Gcc`] targeted at `target`.
    pub fn to_gcc(&self, target: Digest) -> Result<Gcc, RsfError> {
        Ok(Gcc::parse(
            &self.name,
            target,
            &self.source,
            GccMetadata {
                justification: self.justification.clone(),
                discussion_url: self.discussion_url.clone(),
                created_at: self.created_at,
            },
        )?)
    }

    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_str(&self.source);
        w.put_str(&self.justification);
        w.put_str(&self.discussion_url);
        w.put_i64(self.created_at);
    }

    fn decode(r: &mut Reader<'_>) -> Result<GccEntry, RsfError> {
        Ok(GccEntry {
            name: r.field("gcc name").get_str()?.to_string(),
            source: r.field("gcc source").get_str()?.to_string(),
            justification: r.field("gcc justification").get_str()?.to_string(),
            discussion_url: r.field("gcc discussion url").get_str()?.to_string(),
            created_at: r.field("gcc created-at").get_i64()?,
        })
    }
}

/// One trusted root in a snapshot: certificate, systematic constraints
/// and attached GCCs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootEntry {
    /// The root certificate (DER travels on the wire).
    pub cert: Certificate,
    /// Systematic constraints.
    pub constraints: SystematicConstraints,
    /// Attached GCCs, sorted by source hash for canonical encoding.
    pub gccs: Vec<GccEntry>,
}

impl RootEntry {
    /// Capture a store record.
    pub fn of(record: &TrustRecord) -> RootEntry {
        let mut gccs: Vec<GccEntry> = record.gccs.iter().map(GccEntry::of).collect();
        gccs.sort_by(|a, b| a.source.cmp(&b.source));
        RootEntry {
            cert: record.cert.clone(),
            constraints: SystematicConstraints::of(record),
            gccs,
        }
    }

    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.cert.to_der());
        self.constraints.encode(w);
        w.put_u32(self.gccs.len() as u32);
        for gcc in &self.gccs {
            gcc.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<RootEntry, RsfError> {
        let cert = Certificate::from_der(r.field("root certificate").get_bytes()?)?;
        let constraints = SystematicConstraints::decode(r.field("systematic constraints"))?;
        let n = r.field("gcc count").get_u32()?;
        if n > 1024 {
            return Err(r.error("too many GCCs"));
        }
        let mut gccs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            gccs.push(GccEntry::decode(r)?);
        }
        Ok(RootEntry {
            cert,
            constraints,
            gccs,
        })
    }

    /// Install this entry into a store (idempotent).
    pub fn install(&self, store: &mut RootStore) -> Result<(), RsfError> {
        store.add_trusted_overriding(self.cert.clone())?;
        let fp = self.cert.fingerprint();
        {
            let rec = store.record_mut(&fp).expect("just added");
            rec.tls_distrust_after = self.constraints.tls_distrust_after;
            rec.smime_distrust_after = self.constraints.smime_distrust_after;
            rec.ev_allowed = self.constraints.ev_allowed;
            rec.gccs.clear();
        }
        for entry in &self.gccs {
            let gcc = entry.to_gcc(fp)?;
            store.attach_gcc(gcc).expect("root present");
        }
        Ok(())
    }

    /// Deprecated alias for [`RootEntry::install`].
    #[deprecated(
        since = "0.2.0",
        note = "ingestion goes through `sync::Subscriber::ingest`; for direct \
                application use `RootEntry::install`"
    )]
    pub fn apply_to(&self, store: &mut RootStore) -> Result<(), RsfError> {
        self.install(store)
    }
}

/// A complete capture of a root store's state at a point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The feed's name (e.g. `"nss"`).
    pub feed: String,
    /// Monotonic sequence number within the feed.
    pub sequence: u64,
    /// Publication time (Unix seconds).
    pub published_at: i64,
    /// Trusted roots, sorted by fingerprint.
    pub trusted: Vec<RootEntry>,
    /// Explicitly distrusted fingerprints with justifications, sorted.
    pub distrusted: Vec<(Digest, String)>,
    /// Free-form annotations (links to discussions etc.).
    pub annotations: Vec<String>,
}

impl Snapshot {
    /// Capture `store` as a snapshot.
    pub fn capture(feed: &str, sequence: u64, published_at: i64, store: &RootStore) -> Snapshot {
        let mut trusted: Vec<RootEntry> = store.iter().map(|(_, rec)| RootEntry::of(rec)).collect();
        trusted.sort_by_key(|e| e.cert.fingerprint());
        let mut distrusted: Vec<(Digest, String)> = store
            .iter_distrusted()
            .map(|(d, j)| (*d, j.to_string()))
            .collect();
        distrusted.sort_by_key(|(d, _)| *d);
        Snapshot {
            feed: feed.to_string(),
            sequence,
            published_at,
            trusted,
            distrusted,
            annotations: Vec::new(),
        }
    }

    /// Materialize the snapshot as a fresh store named `store_name`.
    pub fn materialize(&self, store_name: &str) -> Result<RootStore, RsfError> {
        let mut store = RootStore::new(store_name);
        for (fp, justification) in &self.distrusted {
            store.distrust(*fp, justification.clone());
        }
        for entry in &self.trusted {
            entry.install(&mut store)?;
        }
        Ok(store)
    }

    /// Deprecated alias for [`Snapshot::materialize`].
    #[deprecated(
        since = "0.2.0",
        note = "ingestion goes through `sync::Subscriber::ingest`; for direct \
                materialization use `Snapshot::materialize`"
    )]
    pub fn to_store(&self, store_name: &str) -> Result<RootStore, RsfError> {
        self.materialize(store_name)
    }

    /// Canonical encoding (what gets signed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("RSF1-SNAP");
        w.put_str(&self.feed);
        w.put_u64(self.sequence);
        w.put_i64(self.published_at);
        w.put_u32(self.trusted.len() as u32);
        for entry in &self.trusted {
            entry.encode(&mut w);
        }
        w.put_u32(self.distrusted.len() as u32);
        for (fp, justification) in &self.distrusted {
            w.put_bytes(fp.as_bytes());
            w.put_str(justification);
        }
        w.put_u32(self.annotations.len() as u32);
        for a in &self.annotations {
            w.put_str(a);
        }
        w.finish()
    }

    /// Decode a canonical snapshot.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, RsfError> {
        let mut r = Reader::for_artifact(bytes, "snapshot");
        if r.field("magic").get_str()? != "RSF1-SNAP" {
            return Err(r.error("bad snapshot magic"));
        }
        let feed = r.field("feed name").get_str()?.to_string();
        let sequence = r.field("sequence").get_u64()?;
        let published_at = r.field("published-at").get_i64()?;
        let n = r.field("trusted count").get_u32()?;
        if n > 100_000 {
            return Err(r.error("too many roots"));
        }
        let mut trusted = Vec::with_capacity(n as usize);
        for _ in 0..n {
            trusted.push(RootEntry::decode(r.field("trusted entry"))?);
        }
        let n = r.field("distrusted count").get_u32()?;
        if n > 100_000 {
            return Err(r.error("too many distrusted roots"));
        }
        let mut distrusted = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let fp = digest_from(&mut r, "distrusted fingerprint")?;
            distrusted.push((fp, r.field("distrust justification").get_str()?.to_string()));
        }
        let n = r.field("annotation count").get_u32()?;
        if n > 100_000 {
            return Err(r.error("too many annotations"));
        }
        let mut annotations = Vec::with_capacity(n as usize);
        for _ in 0..n {
            annotations.push(r.field("annotation").get_str()?.to_string());
        }
        r.expect_end()?;
        Ok(Snapshot {
            feed,
            sequence,
            published_at,
            trusted,
            distrusted,
            annotations,
        })
    }
}

fn digest_from(r: &mut Reader<'_>, field: &'static str) -> Result<Digest, RsfError> {
    let bytes = r.field(field).get_bytes()?;
    let arr: [u8; 32] = bytes.try_into().map_err(|_| r.error("bad digest length"))?;
    Ok(Digest(arr))
}

/// The difference between two snapshots: what a derivative must apply to
/// move from `from_sequence` to `to_sequence`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    /// Sequence this delta applies on top of.
    pub from_sequence: u64,
    /// Sequence after applying.
    pub to_sequence: u64,
    /// Publication time.
    pub published_at: i64,
    /// Roots added (or whose record changed — re-sent whole).
    pub upserted: Vec<RootEntry>,
    /// Roots removed *without* distrust (become Unknown).
    pub removed: Vec<Digest>,
    /// Roots explicitly distrusted, with justification.
    pub distrusted: Vec<(Digest, String)>,
}

impl Delta {
    /// Compute the delta between two stores (old → new).
    pub fn between(
        old: &RootStore,
        new: &RootStore,
        from_sequence: u64,
        to_sequence: u64,
        published_at: i64,
    ) -> Delta {
        let old_map: BTreeMap<Digest, RootEntry> = old
            .iter()
            .map(|(fp, rec)| (*fp, RootEntry::of(rec)))
            .collect();
        let new_map: BTreeMap<Digest, RootEntry> = new
            .iter()
            .map(|(fp, rec)| (*fp, RootEntry::of(rec)))
            .collect();
        let old_distrusted: BTreeMap<Digest, String> = old
            .iter_distrusted()
            .map(|(d, j)| (*d, j.to_string()))
            .collect();

        let mut upserted = Vec::new();
        for (fp, entry) in &new_map {
            if old_map.get(fp) != Some(entry) {
                upserted.push(entry.clone());
            }
        }
        let mut removed = Vec::new();
        let mut distrusted: Vec<(Digest, String)> = Vec::new();
        for (fp, justification) in new.iter_distrusted() {
            if !old_distrusted.contains_key(fp) {
                distrusted.push((*fp, justification.to_string()));
            }
        }
        for fp in old_map.keys() {
            if !new_map.contains_key(fp) && !distrusted.iter().any(|(d, _)| d == fp) {
                removed.push(*fp);
            }
        }
        Delta {
            from_sequence,
            to_sequence,
            published_at,
            upserted,
            removed,
            distrusted,
        }
    }

    /// Is there anything in this delta?
    pub fn is_empty(&self) -> bool {
        self.upserted.is_empty() && self.removed.is_empty() && self.distrusted.is_empty()
    }

    /// Apply to a store in place.
    pub fn apply(&self, store: &mut RootStore) -> Result<(), RsfError> {
        for fp in &self.removed {
            store.remove(fp);
        }
        for (fp, justification) in &self.distrusted {
            store.distrust(*fp, justification.clone());
        }
        for entry in &self.upserted {
            entry.install(store)?;
        }
        Ok(())
    }

    /// Deprecated alias for [`Delta::apply`].
    #[deprecated(
        since = "0.2.0",
        note = "ingestion goes through `sync::Subscriber::ingest`; for direct \
                application use `Delta::apply`"
    )]
    pub fn apply_to(&self, store: &mut RootStore) -> Result<(), RsfError> {
        self.apply(store)
    }

    /// Canonical encoding (what gets signed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("RSF1-DELTA");
        w.put_u64(self.from_sequence);
        w.put_u64(self.to_sequence);
        w.put_i64(self.published_at);
        w.put_u32(self.upserted.len() as u32);
        for entry in &self.upserted {
            entry.encode(&mut w);
        }
        w.put_u32(self.removed.len() as u32);
        for fp in &self.removed {
            w.put_bytes(fp.as_bytes());
        }
        w.put_u32(self.distrusted.len() as u32);
        for (fp, justification) in &self.distrusted {
            w.put_bytes(fp.as_bytes());
            w.put_str(justification);
        }
        w.finish()
    }

    /// Decode a canonical delta.
    pub fn decode(bytes: &[u8]) -> Result<Delta, RsfError> {
        let mut r = Reader::for_artifact(bytes, "delta");
        if r.field("magic").get_str()? != "RSF1-DELTA" {
            return Err(r.error("bad delta magic"));
        }
        let from_sequence = r.field("from-sequence").get_u64()?;
        let to_sequence = r.field("to-sequence").get_u64()?;
        let published_at = r.field("published-at").get_i64()?;
        let n = r.field("upsert count").get_u32()?;
        if n > 100_000 {
            return Err(r.error("too many upserts"));
        }
        let mut upserted = Vec::with_capacity(n as usize);
        for _ in 0..n {
            upserted.push(RootEntry::decode(r.field("upserted entry"))?);
        }
        let n = r.field("removal count").get_u32()?;
        if n > 100_000 {
            return Err(r.error("too many removals"));
        }
        let mut removed = Vec::with_capacity(n as usize);
        for _ in 0..n {
            removed.push(digest_from(&mut r, "removed fingerprint")?);
        }
        let n = r.field("distrust count").get_u32()?;
        if n > 100_000 {
            return Err(r.error("too many distrusts"));
        }
        let mut distrusted = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let fp = digest_from(&mut r, "distrusted fingerprint")?;
            distrusted.push((fp, r.field("distrust justification").get_str()?.to_string()));
        }
        r.expect_end()?;
        Ok(Delta {
            from_sequence,
            to_sequence,
            published_at,
            upserted,
            removed,
            distrusted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_rootstore::GccMetadata;
    use nrslb_x509::testutil::simple_chain;

    fn store_with_policy(tag: &str) -> RootStore {
        let pki = simple_chain(tag);
        let mut store = RootStore::new("primary");
        store.add_trusted(pki.root.clone()).unwrap();
        let fp = pki.root.fingerprint();
        {
            let rec = store.record_mut(&fp).unwrap();
            rec.tls_distrust_after = Some(1_669_784_400);
            rec.ev_allowed = false;
        }
        let gcc = Gcc::parse(
            "policy",
            fp,
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata {
                justification: "test".into(),
                discussion_url: "https://bugzilla.example/1".into(),
                created_at: 1_600_000_000,
            },
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
        store.distrust(Digest([0xaa; 32]), "compromised");
        store
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let store = store_with_policy("snap.example");
        let snap = Snapshot::capture("nss", 7, 1_700_000_000, &store);
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);

        // Materializing reproduces the policy.
        let rebuilt = snap.materialize("derivative").unwrap();
        assert_eq!(rebuilt.len(), store.len());
        let fp = store.iter().next().unwrap().0;
        let rec = rebuilt.record(fp).unwrap();
        assert_eq!(rec.tls_distrust_after, Some(1_669_784_400));
        assert!(!rec.ev_allowed);
        assert_eq!(rec.gccs.len(), 1);
        assert_eq!(rec.gccs[0].name(), "policy");
        assert_eq!(
            rebuilt.status(&Digest([0xaa; 32])),
            nrslb_rootstore::TrustStatus::Distrusted
        );
    }

    #[test]
    fn snapshot_encoding_is_deterministic() {
        let store = store_with_policy("determ.example");
        let a = Snapshot::capture("nss", 1, 42, &store).encode();
        let b = Snapshot::capture("nss", 1, 42, &store.clone()).encode();
        assert_eq!(a, b);
    }

    #[test]
    fn delta_between_stores() {
        let old = store_with_policy("delta.example");
        let mut new = old.clone();
        // Change: distrust the existing root, add a new one.
        let old_fp = *old.iter().next().unwrap().0;
        new.distrust(old_fp, "incident response");
        let pki2 = simple_chain("delta2.example");
        new.add_trusted(pki2.root.clone()).unwrap();

        let delta = Delta::between(&old, &new, 1, 2, 100);
        assert_eq!(delta.upserted.len(), 1);
        assert_eq!(delta.distrusted.len(), 1);
        assert_eq!(delta.distrusted[0].0, old_fp);
        assert!(delta.removed.is_empty());

        // Applying the delta to the old store yields the new state.
        let mut applied = old.clone();
        delta.apply(&mut applied).unwrap();
        assert_eq!(
            applied.status(&old_fp),
            nrslb_rootstore::TrustStatus::Distrusted
        );
        assert_eq!(
            applied.status(&pki2.root.fingerprint()),
            nrslb_rootstore::TrustStatus::Trusted
        );
    }

    #[test]
    fn delta_detects_constraint_changes() {
        let old = store_with_policy("deltacon.example");
        let mut new = old.clone();
        let fp = *old.iter().next().unwrap().0;
        new.record_mut(&fp).unwrap().smime_distrust_after = Some(123);
        let delta = Delta::between(&old, &new, 1, 2, 100);
        assert_eq!(delta.upserted.len(), 1); // record re-sent
        let mut applied = old.clone();
        delta.apply(&mut applied).unwrap();
        assert_eq!(applied.record(&fp).unwrap().smime_distrust_after, Some(123));
    }

    #[test]
    fn empty_delta() {
        let store = store_with_policy("empty.example");
        let delta = Delta::between(&store, &store, 1, 2, 0);
        assert!(delta.is_empty());
        let bytes = delta.encode();
        assert_eq!(Delta::decode(&bytes).unwrap(), delta);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Snapshot::decode(b"nonsense").is_err());
        assert!(Delta::decode(b"").is_err());
        let snap = Snapshot::capture("x", 0, 0, &RootStore::new("s"));
        let mut bytes = snap.encode();
        bytes.push(0);
        assert!(Snapshot::decode(&bytes).is_err()); // trailing
    }

    #[test]
    fn feed_gcc_with_bad_program_rejected_on_receipt() {
        let pki = simple_chain("badgcc.example");
        let entry = RootEntry {
            cert: pki.root.clone(),
            constraints: SystematicConstraints {
                ev_allowed: true,
                ..Default::default()
            },
            gccs: vec![GccEntry {
                name: "evil".into(),
                source: "valid(C, U) :- leaf(C, X), \\+mystery(Y).".into(), // unsafe
                justification: String::new(),
                discussion_url: String::new(),
                created_at: 0,
            }],
        };
        let mut store = RootStore::new("victim");
        assert!(matches!(entry.install(&mut store), Err(RsfError::Gcc(_))));
    }
}

#[cfg(test)]
mod canonical_tests {
    use super::*;
    use nrslb_rootstore::{Gcc, GccMetadata};
    use nrslb_x509::testutil::simple_chain;

    /// Signing requires canonical bytes: stores with identical content
    /// reached through different operation orders must encode to
    /// identical snapshots.
    #[test]
    fn snapshot_encoding_is_order_independent() {
        let a = simple_chain("canon-a.example");
        let b = simple_chain("canon-b.example");
        let gcc1 = Gcc::parse(
            "g1",
            a.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();
        let gcc2 = Gcc::parse(
            "g2",
            a.root.fingerprint(),
            r#"valid(Chain, "S/MIME") :- leaf(Chain, _)."#,
            GccMetadata::default(),
        )
        .unwrap();

        // Store 1: a then b; gcc1 then gcc2.
        let mut s1 = RootStore::new("nss");
        s1.add_trusted(a.root.clone()).unwrap();
        s1.add_trusted(b.root.clone()).unwrap();
        s1.attach_gcc(gcc1.clone()).unwrap();
        s1.attach_gcc(gcc2.clone()).unwrap();
        s1.distrust(Digest([1; 32]), "x");
        s1.distrust(Digest([2; 32]), "y");

        // Store 2: reversed orders everywhere.
        let mut s2 = RootStore::new("nss");
        s2.distrust(Digest([2; 32]), "y");
        s2.distrust(Digest([1; 32]), "x");
        s2.add_trusted(b.root.clone()).unwrap();
        s2.add_trusted(a.root.clone()).unwrap();
        s2.attach_gcc(gcc2).unwrap();
        s2.attach_gcc(gcc1).unwrap();

        let snap1 = Snapshot::capture("nss", 1, 0, &s1);
        let snap2 = Snapshot::capture("nss", 1, 0, &s2);
        assert_eq!(snap1.encode(), snap2.encode());
    }

    /// A snapshot materialized into a store and re-captured encodes to
    /// the same bytes (capture/apply are inverses on canonical content).
    #[test]
    fn capture_apply_capture_is_stable() {
        let pki = simple_chain("canon-c.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(pki.root.clone()).unwrap();
        store
            .record_mut(&pki.root.fingerprint())
            .unwrap()
            .ev_allowed = false;
        store
            .attach_gcc(
                Gcc::parse(
                    "g",
                    pki.root.fingerprint(),
                    "valid(Chain, _) :- leaf(Chain, _).",
                    GccMetadata {
                        justification: "j".into(),
                        discussion_url: "u".into(),
                        created_at: 7,
                    },
                )
                .unwrap(),
            )
            .unwrap();
        let snap = Snapshot::capture("nss", 3, 9, &store);
        let rebuilt = snap.materialize("other-name").unwrap();
        let snap2 = Snapshot::capture("nss", 3, 9, &rebuilt);
        assert_eq!(snap.encode(), snap2.encode());
    }
}
