//! # `nrslb-rsf` — Root-Store Feeds
//!
//! The paper's distribution mechanism (§4): a Root-Store Feed is "a
//! sequence of root-store snapshots where, between snapshots, both
//! certificates and GCCs may be added or removed", published by primary
//! root-store operators and polled by derivative stores. This crate
//! implements the full pipeline:
//!
//! * [`wire`] — a deterministic, length-prefixed binary encoding; signed
//!   artifacts must be canonical bytes (JSON is not), see DESIGN.md §3.
//! * [`feed`] — [`feed::Snapshot`] and [`feed::Delta`]: captures of a
//!   [`RootStore`](nrslb_rootstore::RootStore)'s state (trusted roots with
//!   systematic constraints and GCCs, plus the explicitly-distrusted set)
//!   and the differences between two states, with decision justifications.
//! * [`signing`] — feed updates are signed with a dedicated feed key that
//!   is itself endorsed by a coordinating body (the paper suggests ICANN),
//!   so subscribers verify a two-link chain: coordinator → feed key →
//!   message.
//! * [`merge`] — merging a primary feed with a derivative's own feed,
//!   flagging conflicts such as "in the primary's distrusted set but the
//!   derivative's trusted set" (the paper's Amazon Linux example).
//! * [`transport`] — a sans-IO publisher/subscriber pair with injectable
//!   latency and failure, used by `nrslb-sim` for the staleness
//!   experiments (E5).
//! * [`translog`] — the paper's "immutable logs" future-work item: an
//!   append-only Merkle log over feed messages with signed checkpoints,
//!   so subscribers detect history rewrites and split views.

#![warn(missing_docs)]

pub mod clock;
pub mod feed;
pub mod merge;
pub mod quorum;
pub mod signing;
pub mod socket;
pub mod sync;
pub mod taint;
pub mod translog;
pub mod transport;
pub mod wire;

pub use clock::{Clock, VirtualClock, WallClock};
pub use feed::{Delta, GccEntry, RootEntry, Snapshot, SystematicConstraints};
pub use merge::{merge_stores, Conflict, MergeReport};
pub use quorum::{QuorumAuthority, QuorumConfig, QuorumSignature, QuorumTrust, RotationEvent};
pub use signing::{CoordinatorKey, Endorsement, FeedKey, FeedTrust, SignedMessage};
#[allow(deprecated)]
pub use socket::FeedSocketServer;
pub use socket::{FeedDistributionNode, RemoteSubscriber};
pub use sync::{
    FeedUpdate, ResilientReport, Staleness, Subscriber, SubscriberBuilder, SyncCounters, SyncEvent,
    SyncInstruments, SyncPolicy, SyncState,
};
pub use taint::TaintSet;
pub use translog::{Checkpoint, TransparencyLog};
pub use transport::{FaultInjector, FaultPlan, FeedPublisher, SyncReport};

use std::fmt;

/// Errors across the feed pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsfError {
    /// A wire-format failure with no artifact context (socket framing,
    /// key-parameter errors and other non-decode plumbing).
    Wire(&'static str),
    /// A decode failure with full context: which artifact was being
    /// decoded, which field, and at what byte offset (see
    /// [`wire::Reader`]).
    Decode {
        /// The artifact being decoded (`"snapshot"`, `"delta"`,
        /// `"checkpoint"`, `"signed-message"`, ...).
        artifact: &'static str,
        /// The field the reader was positioned at (`""` if unlabelled).
        field: &'static str,
        /// Byte offset into the input where the failure occurred.
        offset: usize,
        /// What went wrong (`"truncated"`, `"field too large"`, ...).
        reason: &'static str,
    },
    /// A signature or endorsement failed to verify.
    BadSignature(&'static str),
    /// Split-view / history-rewrite evidence: the publisher presented a
    /// *correctly signed* checkpoint that is inconsistent with the
    /// subscriber's pinned history (rollback, fork at the same size, or
    /// a consistency proof that does not verify). Unlike a transient
    /// [`RsfError::BadSignature`], this is proof of publisher
    /// misbehaviour and quarantines the feed.
    SplitView(&'static str),
    /// The feed is quarantined (prior split-view evidence); the
    /// subscriber refuses to apply updates and keeps serving its
    /// last-good store.
    Quarantined(&'static str),
    /// A message arrived out of order (sequence gap or replay).
    Sequence {
        /// The expected next sequence number.
        expected: u64,
        /// The sequence number that arrived.
        got: u64,
    },
    /// A resilient sync gave up after exhausting its retry budget.
    Exhausted {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<RsfError>,
    },
    /// A certificate inside the feed failed to parse.
    X509(nrslb_x509::X509Error),
    /// A GCC inside the feed failed its checks.
    Gcc(nrslb_datalog::DatalogError),
    /// Applying a feed message to a store failed.
    Store(nrslb_rootstore::StoreError),
}

impl fmt::Display for RsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsfError::Wire(what) => write!(f, "malformed feed message: {what}"),
            RsfError::Decode {
                artifact,
                field,
                offset,
                reason,
            } => {
                write!(f, "malformed {artifact}: {reason}")?;
                if !field.is_empty() {
                    write!(f, " in field `{field}`")?;
                }
                write!(f, " at byte {offset}")
            }
            RsfError::BadSignature(what) => write!(f, "feed signature failure: {what}"),
            RsfError::SplitView(what) => {
                write!(f, "split-view evidence from publisher: {what}")
            }
            RsfError::Quarantined(why) => write!(f, "feed quarantined: {why}"),
            RsfError::Sequence { expected, got } => {
                write!(f, "feed sequence error: expected {expected}, got {got}")
            }
            RsfError::Exhausted { attempts, last } => {
                write!(f, "sync gave up after {attempts} attempts: {last}")
            }
            RsfError::X509(e) => write!(f, "certificate in feed: {e}"),
            RsfError::Gcc(e) => write!(f, "GCC in feed: {e}"),
            RsfError::Store(e) => write!(f, "applying feed: {e}"),
        }
    }
}

impl std::error::Error for RsfError {}

impl From<nrslb_x509::X509Error> for RsfError {
    fn from(e: nrslb_x509::X509Error) -> Self {
        RsfError::X509(e)
    }
}

impl From<nrslb_datalog::DatalogError> for RsfError {
    fn from(e: nrslb_datalog::DatalogError) -> Self {
        RsfError::Gcc(e)
    }
}

impl From<nrslb_rootstore::StoreError> for RsfError {
    fn from(e: nrslb_rootstore::StoreError) -> Self {
        RsfError::Store(e)
    }
}
