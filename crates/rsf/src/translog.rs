//! An append-only transparency log over feed messages.
//!
//! The paper leaves "the potential use of immutable logs" for RSF
//! security as future work (§4); this module implements the natural
//! design: every signed feed message is appended to a Merkle log; the
//! publisher signs *checkpoints* (size, root), and subscribers verify a
//! consistency proof between their previous checkpoint and the new one
//! on every poll. A publisher that rewrites or forks its history —
//! serving different views to different subscribers — cannot produce a
//! valid consistency proof, so equivocation is detected at the next
//! poll rather than never.

use crate::signing::{FeedKey, SignedMessage};
use crate::wire::{Reader, Writer};
use crate::RsfError;
use nrslb_crypto::hbs::{self, PublicKey, Signature};
use nrslb_crypto::merkle::{verify_consistency, ConsistencyProof, MerkleTree};
use nrslb_crypto::sha256::Digest;

const CHECKPOINT_TAG: &[u8] = b"nrslb-rsf-checkpoint-v1:";

fn checkpoint_bytes(size: u64, root: &Digest) -> Vec<u8> {
    let mut out = CHECKPOINT_TAG.to_vec();
    out.extend_from_slice(&size.to_be_bytes());
    out.extend_from_slice(root.as_bytes());
    out
}

/// A signed commitment to the log's first `size` messages.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Number of committed feed messages.
    pub size: u64,
    /// Merkle root over their encodings.
    pub root: Digest,
    /// Feed-key signature over `(size, root)`.
    pub signature: Signature,
}

impl Checkpoint {
    /// Verify the signature under the feed's public key.
    pub fn verify(&self, feed_key: &PublicKey) -> Result<(), RsfError> {
        hbs::verify(
            feed_key,
            &checkpoint_bytes(self.size, &self.root),
            &self.signature,
        )
        .map_err(|_| RsfError::BadSignature("checkpoint signature"))
    }

    /// Serialize (for storage or transports).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("RSF1-CKPT");
        w.put_u64(self.size);
        w.put_bytes(self.root.as_bytes());
        w.put_bytes(&self.signature.to_bytes());
        w.finish()
    }

    /// Parse a serialized checkpoint.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, RsfError> {
        let mut r = Reader::for_artifact(bytes, "checkpoint");
        if r.field("magic").get_str()? != "RSF1-CKPT" {
            return Err(r.error("bad checkpoint magic"));
        }
        let size = r.field("size").get_u64()?;
        let root_bytes: [u8; 32] = r
            .field("root")
            .get_bytes()?
            .try_into()
            .map_err(|_| r.error("bad checkpoint root"))?;
        let signature = Signature::from_bytes(r.field("signature").get_bytes()?)
            .map_err(|_| r.error("bad checkpoint signature"))?;
        r.expect_end()?;
        Ok(Checkpoint {
            size,
            root: Digest(root_bytes),
            signature,
        })
    }
}

/// The publisher-side log.
#[derive(Default)]
pub struct TransparencyLog {
    tree: MerkleTree,
}

impl TransparencyLog {
    /// An empty log.
    pub fn new() -> TransparencyLog {
        TransparencyLog::default()
    }

    /// Number of logged messages.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Append a published message.
    pub fn append(&mut self, message: &SignedMessage) -> u64 {
        self.tree.push(&message.encode())
    }

    /// Sign the current head with the feed key. The root is computed on
    /// the parallel Merkle path (bit-identical to the sequential one);
    /// publish-time checkpoints hash the whole log, which for a busy
    /// feed is the dominant publishing cost.
    pub fn checkpoint(&self, key: &FeedKey) -> Result<Checkpoint, RsfError> {
        let size = self.tree.len();
        let root = self.tree.root_parallel();
        let signature = key.sign_raw(&checkpoint_bytes(size, &root))?;
        Ok(Checkpoint {
            size,
            root,
            signature,
        })
    }

    /// Consistency proof between two checkpoint sizes.
    pub fn prove_consistency(&self, old: u64, new: u64) -> Option<ConsistencyProof> {
        self.tree.prove_consistency(old, new)
    }
}

/// Subscriber-side verification: the new checkpoint extends the old one.
///
/// `old` of `None` means this is the subscriber's first poll; only the
/// signature is checked and the checkpoint is pinned.
///
/// Failures split into two classes: [`RsfError::BadSignature`] (the
/// checkpoint is not even validly signed — possibly transport
/// corruption, worth a retry) and [`RsfError::SplitView`] (the
/// checkpoint is *correctly signed* but inconsistent with the pinned
/// history — rollback, fork at the same size, or an unprovable
/// extension). Split-view evidence is proof of publisher misbehaviour
/// and should quarantine the feed, which is exactly what
/// [`crate::sync::Subscriber`] does.
pub fn verify_extension(
    old: Option<&Checkpoint>,
    new: &Checkpoint,
    proof: Option<&ConsistencyProof>,
    feed_key: &PublicKey,
) -> Result<(), RsfError> {
    new.verify(feed_key)?;
    let Some(old) = old else { return Ok(()) };
    if new.size < old.size {
        return Err(RsfError::SplitView("checkpoint rollback"));
    }
    if new.size == old.size {
        return if new.root == old.root {
            Ok(())
        } else {
            Err(RsfError::SplitView("checkpoint fork at same size"))
        };
    }
    if old.size == 0 {
        return Ok(()); // nothing to be consistent with
    }
    let proof = proof.ok_or(RsfError::SplitView("missing consistency proof"))?;
    if proof.old_size != old.size || proof.new_size != new.size {
        return Err(RsfError::SplitView("consistency proof size mismatch"));
    }
    verify_consistency(proof, &old.root, &new.root)
        .map_err(|_| RsfError::SplitView("feed history rewritten"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signing::{CoordinatorKey, MessageKind};

    fn feed_key() -> FeedKey {
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        FeedKey::new([2; 32], 8, &coordinator).unwrap()
    }

    fn msg(key: &FeedKey, payload: &[u8]) -> SignedMessage {
        key.sign(MessageKind::Delta, payload).unwrap()
    }

    #[test]
    fn honest_history_verifies() {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        log.append(&msg(&key, b"m2"));
        let ckpt1 = log.checkpoint(&key).unwrap();
        verify_extension(None, &ckpt1, None, &key.public()).unwrap();

        log.append(&msg(&key, b"m3"));
        let ckpt2 = log.checkpoint(&key).unwrap();
        let proof = log.prove_consistency(ckpt1.size, ckpt2.size).unwrap();
        verify_extension(Some(&ckpt1), &ckpt2, Some(&proof), &key.public()).unwrap();
    }

    #[test]
    fn rewritten_history_detected() {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        log.append(&msg(&key, b"m2"));
        let ckpt1 = log.checkpoint(&key).unwrap();

        // The publisher "rewrites" history: a fresh log with different
        // contents, grown past the old size.
        let mut forked = TransparencyLog::new();
        forked.append(&msg(&key, b"evil1"));
        forked.append(&msg(&key, b"evil2"));
        forked.append(&msg(&key, b"evil3"));
        let ckpt2 = forked.checkpoint(&key).unwrap();
        let proof = forked.prove_consistency(ckpt1.size, ckpt2.size).unwrap();
        let err = verify_extension(Some(&ckpt1), &ckpt2, Some(&proof), &key.public());
        assert!(matches!(
            err,
            Err(RsfError::SplitView("feed history rewritten"))
        ));
    }

    #[test]
    fn rollback_detected() {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        log.append(&msg(&key, b"m2"));
        let ckpt_big = log.checkpoint(&key).unwrap();
        let mut small = TransparencyLog::new();
        small.append(&msg(&key, b"m1"));
        let ckpt_small = small.checkpoint(&key).unwrap();
        let err = verify_extension(Some(&ckpt_big), &ckpt_small, None, &key.public());
        assert!(matches!(
            err,
            Err(RsfError::SplitView("checkpoint rollback"))
        ));
    }

    #[test]
    fn fork_at_same_size_detected() {
        let key = feed_key();
        let mut a = TransparencyLog::new();
        a.append(&msg(&key, b"m1"));
        let mut b = TransparencyLog::new();
        b.append(&msg(&key, b"other"));
        let ca = a.checkpoint(&key).unwrap();
        let cb = b.checkpoint(&key).unwrap();
        let err = verify_extension(Some(&ca), &cb, None, &key.public());
        assert!(matches!(
            err,
            Err(RsfError::SplitView("checkpoint fork at same size"))
        ));
    }

    #[test]
    fn checkpoint_encoding_roundtrip() {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        let ckpt = log.checkpoint(&key).unwrap();
        let back = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(back.size, ckpt.size);
        assert_eq!(back.root, ckpt.root);
        back.verify(&key.public()).unwrap();
        assert!(Checkpoint::decode(b"garbage").is_err());
    }

    #[test]
    fn forged_checkpoint_rejected() {
        let key = feed_key();
        let other = feed_key(); // same seeds -> same key; use different
        let coordinator = CoordinatorKey::from_seed([9; 32], 4).unwrap();
        let rogue = FeedKey::new([10; 32], 4, &coordinator).unwrap();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        let ckpt = log.checkpoint(&rogue).unwrap();
        assert!(ckpt.verify(&key.public()).is_err());
        let _ = other;
    }
}
