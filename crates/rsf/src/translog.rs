//! An append-only transparency log over feed messages.
//!
//! The paper leaves "the potential use of immutable logs" for RSF
//! security as future work (§4); this module implements the natural
//! design: every signed feed message is appended to a Merkle log; the
//! publisher signs *checkpoints* (size, root), and subscribers verify a
//! consistency proof between their previous checkpoint and the new one
//! on every poll. A publisher that rewrites or forks its history —
//! serving different views to different subscribers — cannot produce a
//! valid consistency proof, so equivocation is detected at the next
//! poll rather than never.

use crate::quorum::{QuorumAuthority, QuorumSignature, RotationEvent};
use crate::signing::{FeedKey, FeedTrust, SignedMessage};
use crate::wire::{Reader, Writer};
use crate::RsfError;
use nrslb_crypto::hbs::{self, PublicKey, Signature};
use nrslb_crypto::merkle::{verify_consistency, ConsistencyProof, MerkleTree};
use nrslb_crypto::sha256::Digest;

const CHECKPOINT_TAG: &[u8] = b"nrslb-rsf-checkpoint-v1:";

fn checkpoint_bytes(size: u64, root: &Digest) -> Vec<u8> {
    let mut out = CHECKPOINT_TAG.to_vec();
    out.extend_from_slice(&size.to_be_bytes());
    out.extend_from_slice(root.as_bytes());
    out
}

/// A signed commitment to the log's first `size` messages.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Number of committed feed messages.
    pub size: u64,
    /// Merkle root over their encodings.
    pub root: Digest,
    /// Feed-key signature over `(size, root)`.
    pub signature: Signature,
    /// Optional quorum co-signature ("witness") over the same bytes.
    /// Quorum-governed feeds require it: a checkpoint carrying fewer
    /// than `k` valid partials — or none — is rejected outright, so a
    /// compromised feed key alone cannot commit a forged history.
    pub witness: Option<QuorumSignature>,
}

impl Checkpoint {
    /// Verify the feed-key signature only (the single-signer ablation
    /// arm; quorum deployments go through
    /// [`Checkpoint::verify_with_trust`]).
    pub fn verify(&self, feed_key: &PublicKey) -> Result<(), RsfError> {
        hbs::verify(
            feed_key,
            &checkpoint_bytes(self.size, &self.root),
            &self.signature,
        )
        .map_err(|_| RsfError::BadSignature("checkpoint signature"))
    }

    /// Verify under the pinned coordinating body: the feed-key
    /// signature always, plus — for quorum trust — a present and valid
    /// k-of-n witness at the current epoch.
    pub fn verify_with_trust(
        &self,
        feed_key: &PublicKey,
        trust: &FeedTrust,
    ) -> Result<(), RsfError> {
        self.verify(feed_key)?;
        match trust {
            FeedTrust::Single { .. } => Ok(()),
            FeedTrust::Quorum(quorum) => {
                let witness = self
                    .witness
                    .as_ref()
                    .ok_or(RsfError::BadSignature("checkpoint missing quorum witness"))?;
                quorum
                    .verify(&checkpoint_bytes(self.size, &self.root), witness)
                    .map_err(|e| match e {
                        RsfError::BadSignature(w) => RsfError::BadSignature(w),
                        other => other,
                    })
            }
        }
    }

    /// Serialize (for storage or transports). Unwitnessed checkpoints
    /// keep the original `RSF1-CKPT` frame byte-for-byte; witnessed
    /// ones use `RSF2-CKPT`.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.witness {
            None => {
                w.put_str("RSF1-CKPT");
                w.put_u64(self.size);
                w.put_bytes(self.root.as_bytes());
                w.put_bytes(&self.signature.to_bytes());
            }
            Some(witness) => {
                w.put_str("RSF2-CKPT");
                w.put_u64(self.size);
                w.put_bytes(self.root.as_bytes());
                w.put_bytes(&self.signature.to_bytes());
                w.put_bytes(&witness.encode());
            }
        }
        w.finish()
    }

    /// Parse a serialized checkpoint.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, RsfError> {
        let mut r = Reader::for_artifact(bytes, "checkpoint");
        let witnessed = match r.field("magic").get_str()? {
            "RSF1-CKPT" => false,
            "RSF2-CKPT" => true,
            _ => return Err(r.error("bad checkpoint magic")),
        };
        let size = r.field("size").get_u64()?;
        let root_bytes: [u8; 32] = r
            .field("root")
            .get_bytes()?
            .try_into()
            .map_err(|_| r.error("bad checkpoint root"))?;
        let signature = Signature::from_bytes(r.field("signature").get_bytes()?)
            .map_err(|_| r.error("bad checkpoint signature"))?;
        let witness = if witnessed {
            Some(QuorumSignature::decode(r.field("witness").get_bytes()?)?)
        } else {
            None
        };
        r.expect_end()?;
        Ok(Checkpoint {
            size,
            root: Digest(root_bytes),
            signature,
            witness,
        })
    }
}

/// The publisher-side log.
#[derive(Default)]
pub struct TransparencyLog {
    tree: MerkleTree,
}

impl TransparencyLog {
    /// An empty log.
    pub fn new() -> TransparencyLog {
        TransparencyLog::default()
    }

    /// Number of logged messages.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Append a published message.
    pub fn append(&mut self, message: &SignedMessage) -> u64 {
        self.tree.push(&message.encode())
    }

    /// Append a share-rotation event, making the ceremony auditable
    /// like any other feed mutation: the event's canonical encoding
    /// becomes a Merkle leaf, so it is covered by every later
    /// checkpoint and by history-consistency proofs.
    pub fn append_rotation(&mut self, event: &RotationEvent) -> u64 {
        self.tree.push(&event.encode())
    }

    /// Sign the current head with the feed key. The root is computed on
    /// the parallel Merkle path (bit-identical to the sequential one);
    /// publish-time checkpoints hash the whole log, which for a busy
    /// feed is the dominant publishing cost.
    pub fn checkpoint(&self, key: &FeedKey) -> Result<Checkpoint, RsfError> {
        let size = self.tree.len();
        let root = self.tree.root_parallel();
        let signature = key.sign_raw(&checkpoint_bytes(size, &root))?;
        Ok(Checkpoint {
            size,
            root,
            signature,
            witness: None,
        })
    }

    /// Sign the current head with the feed key *and* have the quorum
    /// witness it. Quorum subscribers reject unwitnessed (or
    /// sub-quorum-witnessed) checkpoints.
    pub fn checkpoint_witnessed(
        &self,
        key: &FeedKey,
        authority: &QuorumAuthority,
    ) -> Result<Checkpoint, RsfError> {
        let mut ckpt = self.checkpoint(key)?;
        let witness = authority.sign(&checkpoint_bytes(ckpt.size, &ckpt.root))?;
        ckpt.witness = Some(witness);
        Ok(ckpt)
    }

    /// Consistency proof between two checkpoint sizes.
    pub fn prove_consistency(&self, old: u64, new: u64) -> Option<ConsistencyProof> {
        self.tree.prove_consistency(old, new)
    }
}

/// Subscriber-side verification: the new checkpoint extends the old one.
///
/// `old` of `None` means this is the subscriber's first poll; only the
/// signature is checked and the checkpoint is pinned.
///
/// Failures split into two classes: [`RsfError::BadSignature`] (the
/// checkpoint is not even validly signed — possibly transport
/// corruption, worth a retry) and [`RsfError::SplitView`] (the
/// checkpoint is *correctly signed* but inconsistent with the pinned
/// history — rollback, fork at the same size, or an unprovable
/// extension). Split-view evidence is proof of publisher misbehaviour
/// and should quarantine the feed, which is exactly what
/// [`crate::sync::Subscriber`] does.
pub fn verify_extension(
    old: Option<&Checkpoint>,
    new: &Checkpoint,
    proof: Option<&ConsistencyProof>,
    feed_key: &PublicKey,
) -> Result<(), RsfError> {
    new.verify(feed_key)?;
    verify_history(old, new, proof)
}

/// Trust-aware variant of [`verify_extension`]: under quorum trust the
/// new checkpoint must also carry a valid k-of-n witness at the current
/// epoch before any history reasoning happens.
pub fn verify_extension_trusted(
    old: Option<&Checkpoint>,
    new: &Checkpoint,
    proof: Option<&ConsistencyProof>,
    feed_key: &PublicKey,
    trust: &FeedTrust,
) -> Result<(), RsfError> {
    new.verify_with_trust(feed_key, trust)?;
    verify_history(old, new, proof)
}

fn verify_history(
    old: Option<&Checkpoint>,
    new: &Checkpoint,
    proof: Option<&ConsistencyProof>,
) -> Result<(), RsfError> {
    let Some(old) = old else { return Ok(()) };
    if new.size < old.size {
        return Err(RsfError::SplitView("checkpoint rollback"));
    }
    if new.size == old.size {
        return if new.root == old.root {
            Ok(())
        } else {
            Err(RsfError::SplitView("checkpoint fork at same size"))
        };
    }
    if old.size == 0 {
        return Ok(()); // nothing to be consistent with
    }
    let proof = proof.ok_or(RsfError::SplitView("missing consistency proof"))?;
    if proof.old_size != old.size || proof.new_size != new.size {
        return Err(RsfError::SplitView("consistency proof size mismatch"));
    }
    verify_consistency(proof, &old.root, &new.root)
        .map_err(|_| RsfError::SplitView("feed history rewritten"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signing::{CoordinatorKey, MessageKind};

    fn feed_key() -> FeedKey {
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        FeedKey::new([2; 32], 8, &coordinator).unwrap()
    }

    fn msg(key: &FeedKey, payload: &[u8]) -> SignedMessage {
        key.sign(MessageKind::Delta, payload).unwrap()
    }

    #[test]
    fn honest_history_verifies() {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        log.append(&msg(&key, b"m2"));
        let ckpt1 = log.checkpoint(&key).unwrap();
        verify_extension(None, &ckpt1, None, &key.public()).unwrap();

        log.append(&msg(&key, b"m3"));
        let ckpt2 = log.checkpoint(&key).unwrap();
        let proof = log.prove_consistency(ckpt1.size, ckpt2.size).unwrap();
        verify_extension(Some(&ckpt1), &ckpt2, Some(&proof), &key.public()).unwrap();
    }

    #[test]
    fn rewritten_history_detected() {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        log.append(&msg(&key, b"m2"));
        let ckpt1 = log.checkpoint(&key).unwrap();

        // The publisher "rewrites" history: a fresh log with different
        // contents, grown past the old size.
        let mut forked = TransparencyLog::new();
        forked.append(&msg(&key, b"evil1"));
        forked.append(&msg(&key, b"evil2"));
        forked.append(&msg(&key, b"evil3"));
        let ckpt2 = forked.checkpoint(&key).unwrap();
        let proof = forked.prove_consistency(ckpt1.size, ckpt2.size).unwrap();
        let err = verify_extension(Some(&ckpt1), &ckpt2, Some(&proof), &key.public());
        assert!(matches!(
            err,
            Err(RsfError::SplitView("feed history rewritten"))
        ));
    }

    #[test]
    fn rollback_detected() {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        log.append(&msg(&key, b"m2"));
        let ckpt_big = log.checkpoint(&key).unwrap();
        let mut small = TransparencyLog::new();
        small.append(&msg(&key, b"m1"));
        let ckpt_small = small.checkpoint(&key).unwrap();
        let err = verify_extension(Some(&ckpt_big), &ckpt_small, None, &key.public());
        assert!(matches!(
            err,
            Err(RsfError::SplitView("checkpoint rollback"))
        ));
    }

    #[test]
    fn fork_at_same_size_detected() {
        let key = feed_key();
        let mut a = TransparencyLog::new();
        a.append(&msg(&key, b"m1"));
        let mut b = TransparencyLog::new();
        b.append(&msg(&key, b"other"));
        let ca = a.checkpoint(&key).unwrap();
        let cb = b.checkpoint(&key).unwrap();
        let err = verify_extension(Some(&ca), &cb, None, &key.public());
        assert!(matches!(
            err,
            Err(RsfError::SplitView("checkpoint fork at same size"))
        ));
    }

    #[test]
    fn checkpoint_encoding_roundtrip() {
        let key = feed_key();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        let ckpt = log.checkpoint(&key).unwrap();
        let back = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(back.size, ckpt.size);
        assert_eq!(back.root, ckpt.root);
        back.verify(&key.public()).unwrap();
        assert!(Checkpoint::decode(b"garbage").is_err());
    }

    #[test]
    fn forged_checkpoint_rejected() {
        let key = feed_key();
        let other = feed_key(); // same seeds -> same key; use different
        let coordinator = CoordinatorKey::from_seed([9; 32], 4).unwrap();
        let rogue = FeedKey::new([10; 32], 4, &coordinator).unwrap();
        let mut log = TransparencyLog::new();
        log.append(&msg(&key, b"m1"));
        let ckpt = log.checkpoint(&rogue).unwrap();
        assert!(ckpt.verify(&key.public()).is_err());
        let _ = other;
    }
}
