//! k-of-n threshold signing for the coordinating body.
//!
//! The paper endorses feed keys through "a coordinating body like
//! ICANN" (§4). A single signing key makes that body a single point of
//! compromise: whoever exfiltrates it forges the feed for every
//! derivative store. This module replaces the lone
//! [`CoordinatorKey`](crate::signing::CoordinatorKey) with a quorum:
//!
//! * The body's **master secret** is Shamir-split
//!   ([`nrslb_crypto::shamir`]) into `n` shares with threshold `k`;
//!   each member holds one share ([`QuorumAuthority::share`]).
//! * Per-epoch **signer keys** are derived from the master secret, one
//!   hash-based keypair per member. Subscribers pin the signer set and
//!   the threshold ([`QuorumTrust`]).
//! * A [`QuorumSignature`] is a signer-id bitmap plus one partial
//!   signature per set bit; verification demands at least `k` valid
//!   partials from *distinct, pinned* signers at the *current* epoch —
//!   `k-1` colluding members cannot produce one.
//! * **Share rotation** is a real ceremony: `k` shares recover the
//!   master, the next epoch's secret and signer keys are derived, and
//!   the outgoing quorum signs a [`RotationEvent`] that is appended to
//!   the transparency log like any other feed mutation. After a
//!   rotation is applied, partial signatures minted under the retired
//!   epoch are rejected (the epoch is bound into every signed byte).
//!
//! The single-signer path is kept as a byte-identical ablation arm
//! (see DESIGN.md §5f); new deployments should pin a quorum.

use crate::wire::{Reader, Writer};
use crate::RsfError;
use nrslb_crypto::hbs::{self, Keypair, PublicKey, Signature};
use nrslb_crypto::hmac::prf;
use nrslb_crypto::shamir::{self, Share};
use std::sync::Mutex;

/// Domain-separation prefix for quorum partial signatures. The epoch
/// and signer id are bound in, so a partial can be replayed neither
/// across epochs nor across bitmap positions.
const QUORUM_TAG: &[u8] = b"nrslb-rsf-quorum-v1:";
/// Domain-separation prefix for rotation events.
const ROTATE_TAG: &[u8] = b"nrslb-rsf-rotate-v1:";

/// Largest supported quorum (the signer-id bitmap is a `u32`).
pub const MAX_SIGNERS: u8 = 32;

/// What one partial signature actually signs.
fn partial_bytes(epoch: u32, id: u8, message: &[u8]) -> Vec<u8> {
    let mut out = QUORUM_TAG.to_vec();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.push(id);
    out.extend_from_slice(message);
    out
}

/// The canonical bytes the outgoing quorum signs to approve a rotation.
fn rotation_bytes(
    from_epoch: u32,
    to_epoch: u32,
    published_at: i64,
    new_signers: &[PublicKey],
) -> Vec<u8> {
    let mut out = ROTATE_TAG.to_vec();
    out.extend_from_slice(&from_epoch.to_le_bytes());
    out.extend_from_slice(&to_epoch.to_le_bytes());
    out.extend_from_slice(&published_at.to_le_bytes());
    out.push(new_signers.len() as u8);
    for pk in new_signers {
        out.extend_from_slice(&pk.to_bytes());
    }
    out
}

/// Quorum shape: `k` of `n` members must co-sign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuorumConfig {
    /// Threshold: minimum distinct valid partial signatures.
    pub k: u8,
    /// Member count.
    pub n: u8,
}

impl QuorumConfig {
    /// Validate `1 <= k <= n <= 32`.
    pub fn validate(&self) -> Result<(), RsfError> {
        if self.k == 0 || self.k > self.n || self.n > MAX_SIGNERS {
            return Err(RsfError::Wire("bad quorum parameters"));
        }
        Ok(())
    }
}

/// A threshold signature: which members signed (bitmap, bit `i` =
/// member `i`) and their partial signatures in ascending-id order.
#[derive(Clone, Debug)]
pub struct QuorumSignature {
    /// The signer-set epoch the partials were minted under.
    pub epoch: u32,
    /// Bit `i` set ⇔ member `i` contributed a partial.
    pub bitmap: u32,
    /// One partial per set bit, ascending by member id.
    pub partials: Vec<Signature>,
}

impl QuorumSignature {
    /// How many members claim to have signed.
    pub fn signer_count(&self) -> u32 {
        self.bitmap.count_ones()
    }

    /// Serialize (wire format `RSF1-QSIG`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("RSF1-QSIG");
        w.put_u32(self.epoch);
        w.put_u32(self.bitmap);
        w.put_u32(self.partials.len() as u32);
        for p in &self.partials {
            w.put_bytes(&p.to_bytes());
        }
        w.finish()
    }

    /// Append to an existing writer (for embedding in larger frames).
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        w.put_bytes(&self.encode());
    }

    /// Parse from an embedded field of a larger frame.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<QuorumSignature, RsfError> {
        QuorumSignature::decode(r.get_bytes()?)
    }

    /// Parse a serialized quorum signature.
    pub fn decode(bytes: &[u8]) -> Result<QuorumSignature, RsfError> {
        let mut r = Reader::for_artifact(bytes, "quorum-signature");
        if r.field("magic").get_str()? != "RSF1-QSIG" {
            return Err(r.error("bad quorum-signature magic"));
        }
        let epoch = r.field("epoch").get_u32()?;
        let bitmap = r.field("bitmap").get_u32()?;
        let count = r.field("partial count").get_u32()?;
        if count > MAX_SIGNERS as u32 {
            return Err(r.error("oversized partial count"));
        }
        let mut partials = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let sig = Signature::from_bytes(r.field("partial").get_bytes()?)
                .map_err(|_| r.error("bad partial signature"))?;
            partials.push(sig);
        }
        r.expect_end()?;
        Ok(QuorumSignature {
            epoch,
            bitmap,
            partials,
        })
    }
}

/// What a subscriber pins for a quorum-governed feed: the threshold,
/// the epoch, and the current signer set. Advanced in place by
/// [`QuorumTrust::apply_rotation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuorumTrust {
    /// Quorum shape.
    pub config: QuorumConfig,
    /// Current signer-set epoch (starts at 1).
    pub epoch: u32,
    /// The `n` pinned member public keys, by id.
    pub signers: Vec<PublicKey>,
}

impl QuorumTrust {
    /// Verify a quorum signature over `message`: correct epoch, at
    /// least `k` partials, every claimed signer pinned and distinct,
    /// every partial valid. Anything less is rejected.
    pub fn verify(&self, message: &[u8], sig: &QuorumSignature) -> Result<(), RsfError> {
        if sig.epoch != self.epoch {
            return Err(RsfError::BadSignature("quorum epoch mismatch"));
        }
        let n = self.config.n as u32;
        if n < 32 && sig.bitmap >> n != 0 {
            return Err(RsfError::BadSignature("unknown quorum signer id"));
        }
        let claimed = sig.signer_count();
        if claimed < self.config.k as u32 {
            return Err(RsfError::BadSignature("sub-quorum signature"));
        }
        if sig.partials.len() as u32 != claimed {
            return Err(RsfError::BadSignature("quorum partial count mismatch"));
        }
        let mut partial = sig.partials.iter();
        for id in 0..self.config.n {
            if sig.bitmap & (1 << id) == 0 {
                continue;
            }
            let p = partial.next().expect("count checked above");
            hbs::verify(
                &self.signers[id as usize],
                &partial_bytes(self.epoch, id, message),
                p,
            )
            .map_err(|_| RsfError::BadSignature("invalid quorum partial"))?;
        }
        Ok(())
    }

    /// Apply a rotation event: verify the outgoing quorum approved it,
    /// then advance to the new signer set. Idempotent for events at or
    /// below the current epoch (`Ok(false)`); an epoch gap is an error.
    pub fn apply_rotation(&mut self, event: &RotationEvent) -> Result<bool, RsfError> {
        if event.to_epoch <= self.epoch {
            return Ok(false); // already applied (benign redelivery)
        }
        event.verify(self)?;
        self.epoch = event.to_epoch;
        self.signers = event.new_signers.clone();
        Ok(true)
    }
}

/// A share-rotation ceremony's public record: the outgoing epoch's
/// quorum approves the incoming signer set. Appended to the
/// transparency log so rotations are auditable like any feed mutation.
#[derive(Clone, Debug)]
pub struct RotationEvent {
    /// The retiring epoch.
    pub from_epoch: u32,
    /// The incoming epoch (`from_epoch + 1`).
    pub to_epoch: u32,
    /// When the ceremony was published (unix-like seconds).
    pub published_at: i64,
    /// The incoming signer set, by id.
    pub new_signers: Vec<PublicKey>,
    /// The *outgoing* quorum's approval over the canonical rotation
    /// bytes — a sub-quorum minority cannot rotate keys out from under
    /// honest members.
    pub approval: QuorumSignature,
}

impl RotationEvent {
    /// Verify the approval under the (pre-rotation) pinned trust.
    pub fn verify(&self, old_trust: &QuorumTrust) -> Result<(), RsfError> {
        if self.from_epoch != old_trust.epoch {
            return Err(RsfError::BadSignature("rotation from wrong epoch"));
        }
        if self.to_epoch != self.from_epoch + 1 {
            return Err(RsfError::BadSignature("rotation epoch gap"));
        }
        if self.new_signers.len() != old_trust.config.n as usize {
            return Err(RsfError::BadSignature("rotation signer count"));
        }
        old_trust.verify(
            &rotation_bytes(
                self.from_epoch,
                self.to_epoch,
                self.published_at,
                &self.new_signers,
            ),
            &self.approval,
        )
    }

    /// Serialize (wire format `RSF1-ROT`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("RSF1-ROT");
        w.put_u32(self.from_epoch);
        w.put_u32(self.to_epoch);
        w.put_i64(self.published_at);
        w.put_u32(self.new_signers.len() as u32);
        for pk in &self.new_signers {
            w.put_bytes(&pk.to_bytes());
        }
        self.approval.encode_into(&mut w);
        w.finish()
    }

    /// Parse a serialized rotation event.
    pub fn decode(bytes: &[u8]) -> Result<RotationEvent, RsfError> {
        let mut r = Reader::for_artifact(bytes, "rotation-event");
        if r.field("magic").get_str()? != "RSF1-ROT" {
            return Err(r.error("bad rotation magic"));
        }
        let from_epoch = r.field("from epoch").get_u32()?;
        let to_epoch = r.field("to epoch").get_u32()?;
        let published_at = r.field("published at").get_i64()?;
        let count = r.field("signer count").get_u32()?;
        if count > MAX_SIGNERS as u32 {
            return Err(r.error("oversized signer count"));
        }
        let mut new_signers = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let pk = PublicKey::from_bytes(r.field("signer key").get_bytes()?)
                .map_err(|_| r.error("bad signer key"))?;
            new_signers.push(pk);
        }
        let approval = QuorumSignature::decode_from(r.field("approval"))?;
        r.expect_end()?;
        Ok(RotationEvent {
            from_epoch,
            to_epoch,
            published_at,
            new_signers,
            approval,
        })
    }
}

/// The whole coordinating body, simulated in one place: the master
/// secret, its Shamir shares, and the derived per-member signer keys.
///
/// Real deployments would distribute [`QuorumAuthority::share`]s to
/// `n` organizations and run ceremonies over them; here the authority
/// is the stand-in that the publisher, the simulator and the tests
/// drive. The derivation chain is deterministic from `(seed, config,
/// height)`, which is exactly what lets the ecosystem simulation model
/// a compromised minority: an attacker holding `k-1` shares and the
/// matching signer keys, but *not* the quorum.
pub struct QuorumAuthority {
    config: QuorumConfig,
    epoch: u32,
    height: u8,
    shares: Vec<Share>,
    signers: Vec<Mutex<Keypair>>,
    publics: Vec<PublicKey>,
}

impl QuorumAuthority {
    /// Deterministic authority at epoch 1 from a master seed.
    pub fn from_seed(
        seed: [u8; 32],
        config: QuorumConfig,
        height: u8,
    ) -> Result<QuorumAuthority, RsfError> {
        QuorumAuthority::at_epoch(seed, config, height, 1)
    }

    /// Rebuild the authority from at least `k` member shares (the
    /// recovery ceremony). Fails with the shamir layer's typed errors
    /// (too few, duplicate, corrupt) mapped onto [`RsfError::Wire`].
    pub fn from_shares(
        shares: &[Share],
        config: QuorumConfig,
        height: u8,
        epoch: u32,
    ) -> Result<QuorumAuthority, RsfError> {
        config.validate()?;
        let master: [u8; 32] = shamir::recover(shares, config.k)
            .map_err(shamir_err)?
            .try_into()
            .map_err(|_| RsfError::Wire("master secret must be 32 bytes"))?;
        QuorumAuthority::at_epoch(master, config, height, epoch)
    }

    fn at_epoch(
        master: [u8; 32],
        config: QuorumConfig,
        height: u8,
        epoch: u32,
    ) -> Result<QuorumAuthority, RsfError> {
        config.validate()?;
        // Deterministic coefficient stream for the split, so the same
        // (seed, epoch) ceremony always issues the same shares.
        let mut counter = 0u32;
        let fill = |buf: &mut [u8]| {
            let mut off = 0;
            while off < buf.len() {
                let block = prf(
                    &master,
                    &[
                        b"quorum-coeffs",
                        &epoch.to_le_bytes(),
                        &counter.to_le_bytes(),
                    ],
                );
                let take = (buf.len() - off).min(32);
                buf[off..off + take].copy_from_slice(&block.as_bytes()[..take]);
                off += take;
                counter += 1;
            }
        };
        let shares = shamir::split(&master, config.k, config.n, fill).map_err(shamir_err)?;
        let mut signers = Vec::with_capacity(config.n as usize);
        let mut publics = Vec::with_capacity(config.n as usize);
        for id in 0..config.n {
            let seed: [u8; 32] =
                *prf(&master, &[b"quorum-signer", &epoch.to_le_bytes(), &[id]]).as_bytes();
            let keypair =
                Keypair::from_seed(seed, height).map_err(|_| RsfError::Wire("bad key params"))?;
            publics.push(keypair.public());
            signers.push(Mutex::new(keypair));
        }
        Ok(QuorumAuthority {
            config,
            epoch,
            height,
            shares,
            signers,
            publics,
        })
    }

    /// The quorum shape.
    pub fn config(&self) -> QuorumConfig {
        self.config
    }

    /// The current signer-set epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Member `id`'s Shamir share of the master secret (share
    /// issuance: what each of the `n` organizations would hold).
    pub fn share(&self, id: u8) -> Option<Share> {
        self.shares.get(id as usize).cloned()
    }

    /// Member `id`'s public key at the current epoch.
    pub fn signer_public(&self, id: u8) -> Option<PublicKey> {
        self.publics.get(id as usize).copied()
    }

    /// What subscribers pin.
    pub fn trust(&self) -> QuorumTrust {
        QuorumTrust {
            config: self.config,
            epoch: self.epoch,
            signers: self.publics.clone(),
        }
    }

    /// One member's raw partial signature over `message` (exposed so
    /// the adversarial tests and the compromised-minority simulation
    /// can assemble arbitrary — including malformed — quorum
    /// signatures).
    pub fn partial(&self, id: u8, message: &[u8]) -> Result<Signature, RsfError> {
        let keypair = self
            .signers
            .get(id as usize)
            .ok_or(RsfError::Wire("unknown signer id"))?;
        keypair
            .lock()
            .unwrap()
            .sign(&partial_bytes(self.epoch, id, message))
            .map_err(|_| RsfError::BadSignature("quorum signer exhausted"))
    }

    /// Assemble a quorum signature from exactly the given member ids
    /// (ascending order enforced here; no threshold check — the
    /// *verifier* enforces `k`, which is what the adversarial suite
    /// leans on).
    pub fn sign_with(&self, ids: &[u8], message: &[u8]) -> Result<QuorumSignature, RsfError> {
        let mut bitmap = 0u32;
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut partials = Vec::with_capacity(sorted.len());
        for id in sorted {
            if id >= self.config.n {
                return Err(RsfError::Wire("unknown signer id"));
            }
            bitmap |= 1 << id;
            partials.push(self.partial(id, message)?);
        }
        Ok(QuorumSignature {
            epoch: self.epoch,
            bitmap,
            partials,
        })
    }

    /// A full honest signature: the first `k` members co-sign.
    pub fn sign(&self, message: &[u8]) -> Result<QuorumSignature, RsfError> {
        let ids: Vec<u8> = (0..self.config.k).collect();
        self.sign_with(&ids, message)
    }

    /// Run a rotation ceremony: recover the master from `k` shares
    /// (the real Shamir path, not a cached copy), derive the next
    /// epoch's secret and signer set, and have the *outgoing* quorum
    /// approve the event. The authority advances; the returned event
    /// is what flows through the feed and its transparency log.
    pub fn rotate(&mut self, published_at: i64) -> Result<RotationEvent, RsfError> {
        // Ceremony step 1: k members present their shares.
        let ceremony: Vec<Share> = self.shares[..self.config.k as usize].to_vec();
        let recovered: [u8; 32] = shamir::recover(&ceremony, self.config.k)
            .map_err(shamir_err)?
            .try_into()
            .expect("master is 32 bytes");
        // Step 2: derive the next epoch's master and signer set.
        let to_epoch = self.epoch + 1;
        let next_master: [u8; 32] =
            *prf(&recovered, &[b"quorum-rotate", &to_epoch.to_le_bytes()]).as_bytes();
        let next = QuorumAuthority::at_epoch(next_master, self.config, self.height, to_epoch)?;
        // Step 3: the outgoing quorum approves the incoming set.
        let approval = self.sign(&rotation_bytes(
            self.epoch,
            to_epoch,
            published_at,
            &next.publics,
        ))?;
        let event = RotationEvent {
            from_epoch: self.epoch,
            to_epoch,
            published_at,
            new_signers: next.publics.clone(),
            approval,
        };
        *self = next;
        Ok(event)
    }
}

fn shamir_err(e: shamir::ShamirError) -> RsfError {
    use shamir::ShamirError::*;
    RsfError::Wire(match e {
        BadParameters { .. } => "bad quorum parameters",
        TooFewShares { .. } => "threshold not met",
        DuplicateShare(_) => "duplicate share",
        CorruptShare(_) => "corrupt share",
        LengthMismatch => "share length mismatch",
        BadIndex => "bad share index",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn authority() -> QuorumAuthority {
        QuorumAuthority::from_seed([7; 32], QuorumConfig { k: 3, n: 5 }, 6).unwrap()
    }

    #[test]
    fn honest_quorum_verifies() {
        let auth = authority();
        let trust = auth.trust();
        let sig = auth.sign(b"endorse this").unwrap();
        trust.verify(b"endorse this", &sig).unwrap();
        // A different message fails.
        assert!(trust.verify(b"endorse that", &sig).is_err());
    }

    #[test]
    fn sub_quorum_rejected() {
        let auth = authority();
        let trust = auth.trust();
        let sig = auth.sign_with(&[0, 1], b"m").unwrap();
        assert!(matches!(
            trust.verify(b"m", &sig),
            Err(RsfError::BadSignature("sub-quorum signature"))
        ));
    }

    #[test]
    fn share_recovery_roundtrip() {
        let auth = authority();
        let shares = vec![
            auth.share(4).unwrap(),
            auth.share(0).unwrap(),
            auth.share(2).unwrap(),
        ];
        let rebuilt =
            QuorumAuthority::from_shares(&shares, auth.config(), 6, auth.epoch()).unwrap();
        assert_eq!(rebuilt.trust(), auth.trust());
        // k-1 shares cannot rebuild.
        let err = QuorumAuthority::from_shares(&shares[..2], auth.config(), 6, auth.epoch());
        assert!(matches!(err, Err(RsfError::Wire("threshold not met"))));
    }

    #[test]
    fn rotation_advances_trust_and_retires_old_partials() {
        let mut auth = authority();
        let mut trust = auth.trust();
        let stale = auth.sign(b"m").unwrap();
        let event = auth.rotate(1000).unwrap();
        assert!(trust.apply_rotation(&event).unwrap());
        assert_eq!(trust, auth.trust());
        // Old-epoch signature no longer verifies.
        assert!(matches!(
            trust.verify(b"m", &stale),
            Err(RsfError::BadSignature("quorum epoch mismatch"))
        ));
        // Fresh signature does.
        let fresh = auth.sign(b"m").unwrap();
        trust.verify(b"m", &fresh).unwrap();
        // Re-applying the same event is a benign no-op.
        assert!(!trust.apply_rotation(&event).unwrap());
    }

    #[test]
    fn wire_roundtrips() {
        let mut auth = authority();
        let sig = auth.sign(b"m").unwrap();
        let back = QuorumSignature::decode(&sig.encode()).unwrap();
        assert_eq!(back.encode(), sig.encode());
        let event = auth.rotate(42).unwrap();
        let back = RotationEvent::decode(&event.encode()).unwrap();
        assert_eq!(back.encode(), event.encode());
        assert!(QuorumSignature::decode(b"garbage").is_err());
        assert!(RotationEvent::decode(b"garbage").is_err());
    }
}
