//! Sans-IO feed distribution: a publisher holding a signed message log
//! and subscribers that poll it.
//!
//! Following the smoltcp school of protocol design, this layer is pure
//! state-machine logic — *when* a subscriber polls (hourly, as the paper
//! proposes for systemd RSF clients; monthly, like a laggy derivative) is
//! the caller's decision, which is exactly the knob the staleness
//! experiment (E5) turns.

use crate::feed::{Delta, Snapshot};
use crate::signing::{FeedKey, FeedTrust, MessageKind, SignedMessage};
use crate::translog::{verify_extension, Checkpoint, TransparencyLog};
use crate::RsfError;
use nrslb_crypto::hbs::PublicKey;
use nrslb_crypto::merkle::ConsistencyProof;
use nrslb_rootstore::RootStore;

/// A primary operator's feed: the current store state plus a log of
/// signed messages subscribers can fetch.
pub struct FeedPublisher {
    name: String,
    key: FeedKey,
    /// State as of the latest published message.
    published_store: RootStore,
    sequence: u64,
    /// Signed deltas, indexed by `to_sequence` (log[i].to = base + i + 1).
    deltas: Vec<SignedMessage>,
    /// The most recent full snapshot (always available for bootstrap).
    snapshot: SignedMessage,
    snapshot_sequence: u64,
    /// Transparency log over every published message (§4 "immutable
    /// logs"); checkpoints are cached so polling does not consume
    /// one-time signatures.
    translog: TransparencyLog,
    cached_checkpoint: Option<Checkpoint>,
}

impl FeedPublisher {
    /// Create a feed publishing `initial` as snapshot sequence 1.
    pub fn new(
        name: &str,
        key: FeedKey,
        initial: &RootStore,
        now: i64,
    ) -> Result<FeedPublisher, RsfError> {
        let snap = Snapshot::capture(name, 1, now, initial);
        let signed = key.sign(MessageKind::Snapshot, &snap.encode())?;
        let mut translog = TransparencyLog::new();
        translog.append(&signed);
        Ok(FeedPublisher {
            name: name.to_string(),
            key,
            published_store: initial.clone(),
            sequence: 1,
            deltas: Vec::new(),
            snapshot: signed,
            snapshot_sequence: 1,
            translog,
            cached_checkpoint: None,
        })
    }

    /// The feed's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current sequence number.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Publish the difference between the published state and `new`.
    /// No-op (returns `false`) when nothing changed.
    pub fn publish(&mut self, new: &RootStore, now: i64) -> Result<bool, RsfError> {
        let delta = Delta::between(
            &self.published_store,
            new,
            self.sequence,
            self.sequence + 1,
            now,
        );
        if delta.is_empty() {
            return Ok(false);
        }
        let signed = self.key.sign(MessageKind::Delta, &delta.encode())?;
        self.translog.append(&signed);
        self.deltas.push(signed);
        self.sequence += 1;
        self.published_store = new.clone();
        Ok(true)
    }

    /// Publish a fresh full snapshot at the current sequence (bootstrap
    /// aid; also lets the publisher prune old deltas).
    pub fn publish_snapshot(&mut self, now: i64) -> Result<(), RsfError> {
        let snap = Snapshot::capture(&self.name, self.sequence, now, &self.published_store);
        self.snapshot = self.key.sign(MessageKind::Snapshot, &snap.encode())?;
        self.translog.append(&self.snapshot);
        self.snapshot_sequence = self.sequence;
        Ok(())
    }

    /// The current transparency-log checkpoint (signed once per log
    /// growth and cached, so polls do not consume one-time signatures).
    pub fn checkpoint(&mut self) -> Result<Checkpoint, RsfError> {
        let current = self.translog.len();
        if self
            .cached_checkpoint
            .as_ref()
            .is_none_or(|c| c.size != current)
        {
            self.cached_checkpoint = Some(self.translog.checkpoint(&self.key)?);
        }
        Ok(self.cached_checkpoint.clone().expect("just cached"))
    }

    /// Consistency proof extending a subscriber's pinned checkpoint.
    pub fn prove_extension(&self, old_size: u64) -> Option<ConsistencyProof> {
        self.translog
            .prove_consistency(old_size, self.translog.len())
    }

    /// Drop deltas at or below the latest snapshot's sequence.
    pub fn prune(&mut self) {
        let base = self.snapshot_sequence;
        self.deltas.retain(|m| {
            let delta = Delta::decode(&m.payload).expect("own log is well-formed");
            delta.to_sequence > base
        });
    }

    /// What a subscriber at `have_sequence` should fetch: either the
    /// deltas that bring it current, or (after a gap/bootstrap) the
    /// latest snapshot plus subsequent deltas.
    pub fn fetch(&self, have_sequence: u64) -> Vec<&SignedMessage> {
        if have_sequence == self.sequence {
            return Vec::new();
        }
        // Deltas strictly after `have_sequence`, if the log reaches back.
        let wanted: Vec<&SignedMessage> = self
            .deltas
            .iter()
            .filter(|m| {
                let d = Delta::decode(&m.payload).expect("own log is well-formed");
                d.to_sequence > have_sequence
            })
            .collect();
        let contiguous = wanted.first().map(|m| {
            let d = Delta::decode(&m.payload).expect("own log");
            d.from_sequence <= have_sequence
        });
        if have_sequence > 0 && contiguous == Some(true) {
            wanted
        } else {
            // Bootstrap or gap: snapshot, then deltas after it.
            let mut out = vec![&self.snapshot];
            out.extend(self.deltas.iter().filter(|m| {
                let d = Delta::decode(&m.payload).expect("own log");
                d.from_sequence >= self.snapshot_sequence
            }));
            out
        }
    }
}

/// Result of one subscriber poll.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Deltas applied.
    pub deltas_applied: usize,
    /// Whether a full snapshot was applied first.
    pub snapshot_applied: bool,
    /// Sequence after syncing.
    pub sequence: u64,
    /// Bytes transferred (payloads + signatures), for the delta-vs-
    /// snapshot bandwidth ablation.
    pub bytes_transferred: usize,
}

/// A derivative store (or browser) subscribed to a feed.
pub struct FeedSubscriber {
    name: String,
    trust: FeedTrust,
    store: RootStore,
    sequence: u64,
    /// Pinned transparency-log checkpoint + the feed key it verified
    /// under (set after the first successful sync).
    pinned: Option<(Checkpoint, PublicKey)>,
}

impl FeedSubscriber {
    /// A fresh subscriber that has never synced.
    pub fn new(name: &str, trust: FeedTrust) -> FeedSubscriber {
        FeedSubscriber {
            name: name.to_string(),
            trust,
            store: RootStore::new(name),
            sequence: 0,
            pinned: None,
        }
    }

    /// The pinned transparency-log checkpoint, if any sync completed.
    pub fn pinned_checkpoint(&self) -> Option<&Checkpoint> {
        self.pinned.as_ref().map(|(c, _)| c)
    }

    /// The subscriber's current store (what its TLS clients use).
    pub fn store(&self) -> &RootStore {
        &self.store
    }

    /// The last applied sequence (0 = never synced).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Poll the publisher: fetch, verify and apply pending messages.
    ///
    /// Verification failures abort the sync *before* any state change —
    /// a compromised transport cannot poison the store.
    pub fn sync(&mut self, publisher: &mut FeedPublisher) -> Result<SyncReport, RsfError> {
        let checkpoint = publisher.checkpoint()?;
        let proof = self
            .pinned
            .as_ref()
            .and_then(|(old, _)| publisher.prove_extension(old.size));
        let messages: Vec<SignedMessage> = publisher
            .fetch(self.sequence)
            .into_iter()
            .cloned()
            .collect();
        self.apply_remote(messages, checkpoint, proof)
    }

    /// Verify and apply transported feed artifacts (the shared core of
    /// [`FeedSubscriber::sync`] and the socket transport's
    /// [`crate::socket::RemoteSubscriber`]). Verification failures abort
    /// *before* any state change.
    pub fn apply_remote(
        &mut self,
        messages: Vec<SignedMessage>,
        checkpoint: Checkpoint,
        proof: Option<nrslb_crypto::merkle::ConsistencyProof>,
    ) -> Result<SyncReport, RsfError> {
        // Transparency-log step first: a publisher that rewrote history
        // is rejected before any message is applied.
        if let Some((old, key)) = &self.pinned {
            verify_extension(Some(old), &checkpoint, proof.as_ref(), key)?;
        }
        let mut report = SyncReport {
            sequence: self.sequence,
            ..Default::default()
        };
        // Verify everything (coordinator endorsement + message
        // signatures) before any state change.
        for message in &messages {
            message.verify(&self.trust)?;
        }
        // The feed key is pinned from the first *verified* message; the
        // checkpoint must verify under it.
        let feed_key = match (&self.pinned, messages.first()) {
            (Some((_, key)), _) => *key,
            (None, Some(first)) => first.feed_key,
            (None, None) => return Err(RsfError::BadSignature("empty first sync")),
        };
        verify_extension(None, &checkpoint, None, &feed_key)?;
        for message in messages {
            report.bytes_transferred += message.encode().len();
            match message.kind {
                MessageKind::Snapshot => {
                    let snap = Snapshot::decode(&message.payload)?;
                    self.store = snap.to_store(&self.name)?;
                    self.sequence = snap.sequence;
                    report.snapshot_applied = true;
                }
                MessageKind::Delta => {
                    let delta = Delta::decode(&message.payload)?;
                    if delta.from_sequence != self.sequence {
                        if delta.to_sequence <= self.sequence {
                            continue; // already have it
                        }
                        return Err(RsfError::Sequence {
                            expected: self.sequence,
                            got: delta.from_sequence,
                        });
                    }
                    delta.apply_to(&mut self.store)?;
                    self.sequence = delta.to_sequence;
                    report.deltas_applied += 1;
                }
            }
        }
        report.sequence = self.sequence;
        self.pinned = Some((checkpoint, feed_key));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signing::CoordinatorKey;
    use nrslb_rootstore::TrustStatus;
    use nrslb_x509::testutil::simple_chain;

    fn setup(initial: &RootStore) -> (FeedPublisher, FeedSubscriber) {
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        let key = FeedKey::new([2; 32], 8, &coordinator).unwrap();
        let trust = FeedTrust {
            coordinator: coordinator.public(),
        };
        let publisher = FeedPublisher::new("nss", key, initial, 0).unwrap();
        let subscriber = FeedSubscriber::new("debian", trust);
        (publisher, subscriber)
    }

    #[test]
    fn bootstrap_sync_applies_snapshot() {
        let a = simple_chain("feed-a.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);

        let report = subscriber.sync(&mut publisher).unwrap();
        assert!(report.snapshot_applied);
        assert_eq!(report.sequence, 1);
        assert_eq!(
            subscriber.store().status(&a.root.fingerprint()),
            TrustStatus::Trusted
        );
        // A second poll is a no-op.
        let report = subscriber.sync(&mut publisher).unwrap();
        assert_eq!(report.deltas_applied, 0);
        assert!(!report.snapshot_applied);
    }

    #[test]
    fn incremental_deltas() {
        let a = simple_chain("feed-b.example");
        let b = simple_chain("feed-c.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);
        subscriber.sync(&mut publisher).unwrap();

        // Change 1: add a root.
        store.add_trusted(b.root.clone()).unwrap();
        assert!(publisher.publish(&store, 10).unwrap());
        // Change 2: distrust the first.
        store.distrust(a.root.fingerprint(), "incident");
        assert!(publisher.publish(&store, 20).unwrap());
        // No change: nothing published.
        assert!(!publisher.publish(&store, 30).unwrap());

        let report = subscriber.sync(&mut publisher).unwrap();
        assert_eq!(report.deltas_applied, 2);
        assert!(!report.snapshot_applied);
        assert_eq!(report.sequence, 3);
        assert_eq!(
            subscriber.store().status(&a.root.fingerprint()),
            TrustStatus::Distrusted
        );
        assert_eq!(
            subscriber.store().status(&b.root.fingerprint()),
            TrustStatus::Trusted
        );
    }

    #[test]
    fn gcc_distribution_via_feed() {
        use nrslb_rootstore::{Gcc, GccMetadata};
        let a = simple_chain("feed-gcc.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);
        subscriber.sync(&mut publisher).unwrap();

        let gcc = Gcc::parse(
            "partial-distrust",
            a.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata {
                justification: "limit to TLS".into(),
                ..Default::default()
            },
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
        publisher.publish(&store, 50).unwrap();

        subscriber.sync(&mut publisher).unwrap();
        let gccs = subscriber.store().gccs_for(&a.root.fingerprint());
        assert_eq!(gccs.len(), 1);
        assert_eq!(gccs[0].name(), "partial-distrust");
        assert_eq!(gccs[0].metadata().justification, "limit to TLS");
    }

    #[test]
    fn pruned_log_falls_back_to_snapshot() {
        let a = simple_chain("feed-prune.example");
        let b = simple_chain("feed-prune2.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);

        store.add_trusted(b.root.clone()).unwrap();
        publisher.publish(&store, 10).unwrap();
        publisher.publish_snapshot(15).unwrap();
        publisher.prune();
        store.distrust(a.root.fingerprint(), "x");
        publisher.publish(&store, 20).unwrap();

        // Subscriber at 0 must bootstrap from the snapshot then apply the
        // newer delta.
        let report = subscriber.sync(&mut publisher).unwrap();
        assert!(report.snapshot_applied);
        assert_eq!(report.deltas_applied, 1);
        assert_eq!(report.sequence, 3);
        assert_eq!(
            subscriber.store().status(&a.root.fingerprint()),
            TrustStatus::Distrusted
        );
    }

    #[test]
    fn forged_message_rejected_without_state_change() {
        let a = simple_chain("feed-forge.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, _) = setup(&store);

        // Subscriber trusting a different coordinator.
        let other_coord = CoordinatorKey::from_seed([7; 32], 4).unwrap();
        let mut victim = FeedSubscriber::new(
            "victim",
            FeedTrust {
                coordinator: other_coord.public(),
            },
        );
        let err = victim.sync(&mut publisher);
        assert!(matches!(err, Err(RsfError::BadSignature(_))));
        assert_eq!(victim.sequence(), 0);
        assert!(victim.store().is_empty());
    }

    #[test]
    fn bandwidth_reported() {
        let a = simple_chain("feed-bw.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);
        let report = subscriber.sync(&mut publisher).unwrap();
        assert!(report.bytes_transferred > 1000); // snapshot with one root + sigs
    }
}
