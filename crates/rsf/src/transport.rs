//! Sans-IO feed distribution: a publisher holding a signed message log
//! and subscribers that poll it.
//!
//! Following the smoltcp school of protocol design, this layer is pure
//! state-machine logic — *when* a subscriber polls (hourly, as the paper
//! proposes for systemd RSF clients; monthly, like a laggy derivative) is
//! the caller's decision, which is exactly the knob the staleness
//! experiment (E5) turns.

use crate::feed::{Delta, Snapshot};
use crate::quorum::{QuorumAuthority, RotationEvent};
use crate::signing::{FeedKey, MessageKind, SignedMessage};
use crate::translog::{Checkpoint, TransparencyLog};
use crate::RsfError;
use nrslb_crypto::merkle::ConsistencyProof;
use nrslb_rootstore::RootStore;
use rand::prelude::*;

/// A primary operator's feed: the current store state plus a log of
/// signed messages subscribers can fetch.
pub struct FeedPublisher {
    name: String,
    key: FeedKey,
    /// State as of the latest published message.
    published_store: RootStore,
    sequence: u64,
    /// Signed deltas, indexed by `to_sequence` (log[i].to = base + i + 1).
    deltas: Vec<SignedMessage>,
    /// The most recent full snapshot (always available for bootstrap).
    snapshot: SignedMessage,
    snapshot_sequence: u64,
    /// Transparency log over every published message (§4 "immutable
    /// logs"); checkpoints are cached so polling does not consume
    /// one-time signatures.
    translog: TransparencyLog,
    cached_checkpoint: Option<Checkpoint>,
    /// The k-of-n coordinating body, when this feed is quorum-governed
    /// (`None` = single-signer ablation arm).
    authority: Option<QuorumAuthority>,
    /// Every rotation ceremony this feed has run, oldest first.
    /// Retained forever and served on every fetch — subscribers apply
    /// them idempotently, so redelivery is free.
    rotations: Vec<RotationEvent>,
}

impl FeedPublisher {
    /// Create a feed publishing `initial` as snapshot sequence 1.
    pub fn new(
        name: &str,
        key: FeedKey,
        initial: &RootStore,
        now: i64,
    ) -> Result<FeedPublisher, RsfError> {
        FeedPublisher::build(name, key, None, initial, now)
    }

    /// Create a quorum-governed feed: the feed key must already carry a
    /// quorum endorsement (see [`FeedKey::new_quorum`]) and every
    /// checkpoint is witnessed by `authority`.
    pub fn new_quorum(
        name: &str,
        key: FeedKey,
        authority: QuorumAuthority,
        initial: &RootStore,
        now: i64,
    ) -> Result<FeedPublisher, RsfError> {
        FeedPublisher::build(name, key, Some(authority), initial, now)
    }

    fn build(
        name: &str,
        key: FeedKey,
        authority: Option<QuorumAuthority>,
        initial: &RootStore,
        now: i64,
    ) -> Result<FeedPublisher, RsfError> {
        let snap = Snapshot::capture(name, 1, now, initial);
        let signed = key.sign(MessageKind::Snapshot, &snap.encode())?;
        let mut translog = TransparencyLog::new();
        translog.append(&signed);
        Ok(FeedPublisher {
            name: name.to_string(),
            key,
            published_store: initial.clone(),
            sequence: 1,
            deltas: Vec::new(),
            snapshot: signed,
            snapshot_sequence: 1,
            translog,
            cached_checkpoint: None,
            authority,
            rotations: Vec::new(),
        })
    }

    /// The feed's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current sequence number.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Publish the difference between the published state and `new`.
    /// No-op (returns `false`) when nothing changed.
    pub fn publish(&mut self, new: &RootStore, now: i64) -> Result<bool, RsfError> {
        let delta = Delta::between(
            &self.published_store,
            new,
            self.sequence,
            self.sequence + 1,
            now,
        );
        if delta.is_empty() {
            return Ok(false);
        }
        let signed = self.key.sign(MessageKind::Delta, &delta.encode())?;
        self.translog.append(&signed);
        self.deltas.push(signed);
        self.sequence += 1;
        self.published_store = new.clone();
        Ok(true)
    }

    /// Publish a fresh full snapshot at the current sequence (bootstrap
    /// aid; also lets the publisher prune old deltas).
    pub fn publish_snapshot(&mut self, now: i64) -> Result<(), RsfError> {
        let snap = Snapshot::capture(&self.name, self.sequence, now, &self.published_store);
        self.snapshot = self.key.sign(MessageKind::Snapshot, &snap.encode())?;
        self.translog.append(&self.snapshot);
        self.snapshot_sequence = self.sequence;
        Ok(())
    }

    /// The current transparency-log checkpoint (signed once per log
    /// growth and cached, so polls do not consume one-time signatures —
    /// neither the feed key's nor the quorum signers').
    pub fn checkpoint(&mut self) -> Result<Checkpoint, RsfError> {
        Ok(self.checkpoint_ref()?.clone())
    }

    /// Whether [`FeedPublisher::checkpoint`] would serve from its
    /// cache — i.e. the transparency log has not grown since the last
    /// signed checkpoint. The distribution node's inline guard uses
    /// this to keep checkpoint signing (one-time hash-based
    /// signatures, milliseconds of work) off the event loop.
    pub fn checkpoint_is_cached(&self) -> bool {
        self.cached_checkpoint
            .as_ref()
            .is_some_and(|c| c.size == self.translog.len())
    }

    /// Borrowed view of the (refreshed-if-stale) cached checkpoint, so
    /// the warm sync path can compare content without cloning the
    /// artifact — a quorum witness carries `k` hash-based signatures
    /// and is multi-KB, which dominates an idle poll if copied.
    pub(crate) fn checkpoint_ref(&mut self) -> Result<&Checkpoint, RsfError> {
        let current = self.translog.len();
        if self
            .cached_checkpoint
            .as_ref()
            .is_none_or(|c| c.size != current)
        {
            self.cached_checkpoint = Some(match &self.authority {
                Some(authority) => self.translog.checkpoint_witnessed(&self.key, authority)?,
                None => self.translog.checkpoint(&self.key)?,
            });
        }
        Ok(self.cached_checkpoint.as_ref().expect("just cached"))
    }

    /// Every rotation ceremony this feed has run, oldest first.
    pub fn rotations(&self) -> &[RotationEvent] {
        &self.rotations
    }

    /// Run a share-rotation ceremony on a quorum-governed feed:
    /// recover the master from `k` shares, derive the next epoch's
    /// signer set, record the outgoing quorum's approval in the
    /// transparency log, re-endorse the feed key at the new epoch, and
    /// re-baseline with a fresh snapshot so every message served from
    /// here on carries a new-epoch endorsement (laggards hit the
    /// ordinary snapshot-fallback path). The feed sequence does not
    /// advance — rotation changes who vouches, not what is vouched for.
    pub fn rotate(&mut self, now: i64) -> Result<&RotationEvent, RsfError> {
        let authority = self
            .authority
            .as_mut()
            .ok_or(RsfError::Wire("single-signer feed cannot rotate"))?;
        let event = authority.rotate(now)?;
        self.translog.append_rotation(&event);
        self.rotations.push(event);
        let authority = self.authority.as_ref().expect("still quorum-governed");
        self.key.re_endorse(authority)?;
        self.publish_snapshot(now)?;
        self.prune();
        Ok(self.rotations.last().expect("just pushed"))
    }

    /// Consistency proof extending a subscriber's pinned checkpoint.
    pub fn prove_extension(&self, old_size: u64) -> Option<ConsistencyProof> {
        self.translog
            .prove_consistency(old_size, self.translog.len())
    }

    /// Drop deltas at or below the latest snapshot's sequence.
    pub fn prune(&mut self) {
        let base = self.snapshot_sequence;
        self.deltas.retain(|m| {
            let delta = Delta::decode(&m.payload).expect("own log is well-formed");
            delta.to_sequence > base
        });
    }

    /// What a subscriber at `have_sequence` should fetch: either the
    /// deltas that bring it current, or (after a gap/bootstrap) the
    /// latest snapshot plus subsequent deltas.
    pub fn fetch(&self, have_sequence: u64) -> Vec<&SignedMessage> {
        if have_sequence == self.sequence {
            return Vec::new();
        }
        // Deltas strictly after `have_sequence`, if the log reaches back.
        let wanted: Vec<&SignedMessage> = self
            .deltas
            .iter()
            .filter(|m| {
                let d = Delta::decode(&m.payload).expect("own log is well-formed");
                d.to_sequence > have_sequence
            })
            .collect();
        let contiguous = wanted.first().map(|m| {
            let d = Delta::decode(&m.payload).expect("own log");
            d.from_sequence <= have_sequence
        });
        if have_sequence > 0 && contiguous == Some(true) {
            wanted
        } else {
            // Bootstrap or gap: snapshot, then deltas after it.
            let mut out = vec![&self.snapshot];
            out.extend(self.deltas.iter().filter(|m| {
                let d = Delta::decode(&m.payload).expect("own log");
                d.from_sequence >= self.snapshot_sequence
            }));
            out
        }
    }
}

/// Result of one subscriber poll.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Deltas applied.
    pub deltas_applied: usize,
    /// Whether a full snapshot was applied first.
    pub snapshot_applied: bool,
    /// Sequence after syncing.
    pub sequence: u64,
    /// Bytes transferred (payloads + signatures), for the delta-vs-
    /// snapshot bandwidth ablation.
    pub bytes_transferred: usize,
}

/// Per-frame fault probabilities for a simulated lossy channel.
///
/// Each probability is applied independently per frame in
/// [`FaultInjector::transmit`]; all draws come from a deterministic
/// seeded generator, so a `(plan, seed)` pair replays exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delayed to the *next* transmit call.
    pub delay: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a delivered frame is truncated at a random point.
    pub truncate: f64,
    /// Probability a delivered frame has one random bit flipped.
    pub bit_flip: f64,
    /// Seed for the injector's deterministic generator.
    pub seed: u64,
}

impl FaultPlan {
    /// A perfectly clean channel.
    pub fn none() -> FaultPlan {
        FaultPlan {
            drop: 0.0,
            delay: 0.0,
            duplicate: 0.0,
            truncate: 0.0,
            bit_flip: 0.0,
            seed: 0,
        }
    }

    /// A uniformly lossy channel: every fault mode at probability
    /// `rate` (the "30% of messages are damaged somehow" scenario).
    pub fn lossy(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            drop: rate,
            delay: rate,
            duplicate: rate,
            truncate: rate,
            bit_flip: rate,
            seed,
        }
    }
}

/// Applies a [`FaultPlan`] to frames in flight. Delayed frames are
/// buffered and delivered (ahead of new traffic, i.e. reordered) on
/// the next [`FaultInjector::transmit`] call.
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    delayed: Vec<Vec<u8>>,
}

impl FaultInjector {
    /// An injector executing `plan` with its embedded seed.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            delayed: Vec::new(),
        }
    }

    /// The plan this injector executes (its `seed` is what a bench
    /// must record for an exact replay).
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Frames delayed out of past transmits and not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.delayed.len()
    }

    fn damage(&mut self, frame: &mut Vec<u8>) {
        if !frame.is_empty() && self.rng.gen_bool(self.plan.truncate) {
            let cut = self.rng.gen_range(0..frame.len());
            frame.truncate(cut);
        }
        if !frame.is_empty() && self.rng.gen_bool(self.plan.bit_flip) {
            let byte = self.rng.gen_range(0..frame.len());
            let bit = self.rng.gen_range(0u8..8);
            frame[byte] ^= 1 << bit;
        }
    }

    /// Push `frames` through the faulty channel, returning what the
    /// receiver actually sees (in order: previously delayed traffic,
    /// then the survivors of this batch).
    pub fn transmit(&mut self, frames: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = std::mem::take(&mut self.delayed);
        for frame in frames {
            if self.rng.gen_bool(self.plan.drop) {
                continue;
            }
            let duplicate = self.rng.gen_bool(self.plan.duplicate);
            let delay = self.rng.gen_bool(self.plan.delay);
            let mut delivered = frame.clone();
            self.damage(&mut delivered);
            if delay {
                self.delayed.push(delivered);
            } else {
                out.push(delivered);
            }
            if duplicate {
                let mut copy = frame;
                self.damage(&mut copy);
                out.push(copy);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signing::{CoordinatorKey, FeedTrust};
    use crate::sync::Subscriber;
    use nrslb_rootstore::TrustStatus;
    use nrslb_x509::testutil::simple_chain;

    fn setup(initial: &RootStore) -> (FeedPublisher, Subscriber) {
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        let key = FeedKey::new([2; 32], 8, &coordinator).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        let publisher = FeedPublisher::new("nss", key, initial, 0).unwrap();
        let subscriber = Subscriber::builder("debian", trust).build();
        (publisher, subscriber)
    }

    #[test]
    fn bootstrap_sync_applies_snapshot() {
        let a = simple_chain("feed-a.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);

        let report = subscriber.sync(&mut publisher, 0).unwrap();
        assert!(report.snapshot_applied);
        assert_eq!(report.sequence, 1);
        assert_eq!(
            subscriber.store().status(&a.root.fingerprint()),
            TrustStatus::Trusted
        );
        // A second poll is a no-op.
        let report = subscriber.sync(&mut publisher, 0).unwrap();
        assert_eq!(report.deltas_applied, 0);
        assert!(!report.snapshot_applied);
    }

    #[test]
    fn incremental_deltas() {
        let a = simple_chain("feed-b.example");
        let b = simple_chain("feed-c.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);
        subscriber.sync(&mut publisher, 0).unwrap();

        // Change 1: add a root.
        store.add_trusted(b.root.clone()).unwrap();
        assert!(publisher.publish(&store, 10).unwrap());
        // Change 2: distrust the first.
        store.distrust(a.root.fingerprint(), "incident");
        assert!(publisher.publish(&store, 20).unwrap());
        // No change: nothing published.
        assert!(!publisher.publish(&store, 30).unwrap());

        let report = subscriber.sync(&mut publisher, 0).unwrap();
        assert_eq!(report.deltas_applied, 2);
        assert!(!report.snapshot_applied);
        assert_eq!(report.sequence, 3);
        assert_eq!(
            subscriber.store().status(&a.root.fingerprint()),
            TrustStatus::Distrusted
        );
        assert_eq!(
            subscriber.store().status(&b.root.fingerprint()),
            TrustStatus::Trusted
        );
    }

    #[test]
    fn gcc_distribution_via_feed() {
        use nrslb_rootstore::{Gcc, GccMetadata};
        let a = simple_chain("feed-gcc.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);
        subscriber.sync(&mut publisher, 0).unwrap();

        let gcc = Gcc::parse(
            "partial-distrust",
            a.root.fingerprint(),
            r#"valid(Chain, "TLS") :- leaf(Chain, _)."#,
            GccMetadata {
                justification: "limit to TLS".into(),
                ..Default::default()
            },
        )
        .unwrap();
        store.attach_gcc(gcc).unwrap();
        publisher.publish(&store, 50).unwrap();

        subscriber.sync(&mut publisher, 0).unwrap();
        let gccs = subscriber.store().gccs_for(&a.root.fingerprint());
        assert_eq!(gccs.len(), 1);
        assert_eq!(gccs[0].name(), "partial-distrust");
        assert_eq!(gccs[0].metadata().justification, "limit to TLS");
    }

    #[test]
    fn pruned_log_falls_back_to_snapshot() {
        let a = simple_chain("feed-prune.example");
        let b = simple_chain("feed-prune2.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);

        store.add_trusted(b.root.clone()).unwrap();
        publisher.publish(&store, 10).unwrap();
        publisher.publish_snapshot(15).unwrap();
        publisher.prune();
        store.distrust(a.root.fingerprint(), "x");
        publisher.publish(&store, 20).unwrap();

        // Subscriber at 0 must bootstrap from the snapshot then apply the
        // newer delta.
        let report = subscriber.sync(&mut publisher, 0).unwrap();
        assert!(report.snapshot_applied);
        assert_eq!(report.deltas_applied, 1);
        assert_eq!(report.sequence, 3);
        assert_eq!(
            subscriber.store().status(&a.root.fingerprint()),
            TrustStatus::Distrusted
        );
    }

    #[test]
    fn forged_message_rejected_without_state_change() {
        let a = simple_chain("feed-forge.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, _) = setup(&store);

        // Subscriber trusting a different coordinator.
        let other_coord = CoordinatorKey::from_seed([7; 32], 4).unwrap();
        let mut victim =
            Subscriber::builder("victim", FeedTrust::single(other_coord.public())).build();
        let err = victim.sync(&mut publisher, 0);
        assert!(matches!(err, Err(RsfError::BadSignature(_))));
        assert_eq!(victim.sequence(), 0);
        assert!(victim.store().is_empty());
    }

    #[test]
    fn bandwidth_reported() {
        let a = simple_chain("feed-bw.example");
        let mut store = RootStore::new("nss");
        store.add_trusted(a.root.clone()).unwrap();
        let (mut publisher, mut subscriber) = setup(&store);
        let report = subscriber.sync(&mut publisher, 0).unwrap();
        assert!(report.bytes_transferred > 1000); // snapshot with one root + sigs
    }
}
