//! Feed signing: "RSF updates \[should\] be signed with a separate key that
//! should itself be signed by a coordinating body like ICANN" (§4).
//!
//! Two-link verification chain: subscribers pin the **coordinating
//! body** ([`FeedTrust`]); each message carries the feed's public key,
//! the body's *endorsement* of that key, and the feed's signature over
//! the payload.
//!
//! The coordinating body comes in two shapes:
//!
//! * [`FeedTrust::Single`] — one [`CoordinatorKey`]. This is the
//!   original scheme, kept as a byte-identical ablation arm
//!   (`RSF1-SIGNED` frames); it is **deprecated in favour of the
//!   quorum** because one leaked key forges the feed for every
//!   derivative store (DESIGN.md §5f).
//! * [`FeedTrust::Quorum`] — a k-of-n signer set
//!   ([`crate::quorum::QuorumTrust`]); endorsements are
//!   [`QuorumSignature`]s and frames are tagged `RSF2-SIGNED`.

use crate::quorum::{QuorumAuthority, QuorumSignature, QuorumTrust, RotationEvent};
use crate::wire::{Reader, Writer};
use crate::RsfError;
use nrslb_crypto::hbs::{self, Keypair, PublicKey, Signature};
use std::sync::Mutex;

/// Domain-separation prefixes so an endorsement can never be confused
/// with a message signature.
const ENDORSE_TAG: &[u8] = b"nrslb-rsf-endorse-v1:";
const MESSAGE_TAG: &[u8] = b"nrslb-rsf-message-v1:";

pub(crate) fn endorse_bytes(feed_key: &PublicKey) -> Vec<u8> {
    let mut out = ENDORSE_TAG.to_vec();
    out.extend_from_slice(&feed_key.to_bytes());
    out
}

fn message_bytes(kind: MessageKind, payload: &[u8]) -> Vec<u8> {
    let mut out = MESSAGE_TAG.to_vec();
    out.push(kind as u8);
    out.extend_from_slice(payload);
    out
}

/// The coordinating body's signing key (the ICANN stand-in).
pub struct CoordinatorKey {
    keypair: Mutex<Keypair>,
    public: PublicKey,
}

impl CoordinatorKey {
    /// Deterministic coordinator key from a seed.
    pub fn from_seed(seed: [u8; 32], height: u8) -> Result<CoordinatorKey, RsfError> {
        let keypair =
            Keypair::from_seed(seed, height).map_err(|_| RsfError::Wire("bad key params"))?;
        let public = keypair.public();
        Ok(CoordinatorKey {
            keypair: Mutex::new(keypair),
            public,
        })
    }

    /// The coordinator's public key; subscribers pin this.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Endorse a feed key.
    pub fn endorse(&self, feed_key: &PublicKey) -> Result<Signature, RsfError> {
        self.keypair
            .lock()
            .unwrap()
            .sign(&endorse_bytes(feed_key))
            .map_err(|_| RsfError::BadSignature("coordinator key exhausted"))
    }
}

/// A coordinating body's endorsement of a feed key — either the legacy
/// single signature or a k-of-n quorum signature.
#[derive(Clone, Debug)]
pub enum Endorsement {
    /// One [`CoordinatorKey`] signature (deprecated ablation arm;
    /// byte-identical `RSF1-SIGNED` frames).
    Single(Signature),
    /// A k-of-n quorum signature (`RSF2-SIGNED` frames).
    Quorum(QuorumSignature),
}

/// A feed operator's signing key plus its coordinating-body endorsement.
pub struct FeedKey {
    keypair: Mutex<Keypair>,
    public: PublicKey,
    endorsement: Mutex<Endorsement>,
}

impl FeedKey {
    /// Create a feed key and have `coordinator` endorse it
    /// (single-signer ablation arm).
    pub fn new(
        seed: [u8; 32],
        height: u8,
        coordinator: &CoordinatorKey,
    ) -> Result<FeedKey, RsfError> {
        let keypair =
            Keypair::from_seed(seed, height).map_err(|_| RsfError::Wire("bad key params"))?;
        let public = keypair.public();
        let endorsement = coordinator.endorse(&public)?;
        Ok(FeedKey {
            keypair: Mutex::new(keypair),
            public,
            endorsement: Mutex::new(Endorsement::Single(endorsement)),
        })
    }

    /// Create a feed key endorsed by a k-of-n quorum.
    pub fn new_quorum(
        seed: [u8; 32],
        height: u8,
        authority: &QuorumAuthority,
    ) -> Result<FeedKey, RsfError> {
        let keypair =
            Keypair::from_seed(seed, height).map_err(|_| RsfError::Wire("bad key params"))?;
        let public = keypair.public();
        let endorsement = authority.sign(&endorse_bytes(&public))?;
        Ok(FeedKey {
            keypair: Mutex::new(keypair),
            public,
            endorsement: Mutex::new(Endorsement::Quorum(endorsement)),
        })
    }

    /// Refresh the endorsement after a quorum rotation: messages signed
    /// from here on carry a new-epoch endorsement.
    pub fn re_endorse(&self, authority: &QuorumAuthority) -> Result<(), RsfError> {
        let endorsement = authority.sign(&endorse_bytes(&self.public))?;
        *self.endorsement.lock().unwrap() = Endorsement::Quorum(endorsement);
        Ok(())
    }

    /// The feed's public key.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Sign raw bytes with the feed key (used by the transparency log's
    /// checkpoints, which carry their own domain separation).
    pub fn sign_raw(&self, message: &[u8]) -> Result<Signature, RsfError> {
        self.keypair
            .lock()
            .unwrap()
            .sign(message)
            .map_err(|_| RsfError::BadSignature("feed key exhausted"))
    }

    /// Sign a feed message.
    pub fn sign(&self, kind: MessageKind, payload: &[u8]) -> Result<SignedMessage, RsfError> {
        let signature = self
            .keypair
            .lock()
            .unwrap()
            .sign(&message_bytes(kind, payload))
            .map_err(|_| RsfError::BadSignature("feed key exhausted"))?;
        Ok(SignedMessage {
            kind,
            payload: payload.to_vec(),
            feed_key: self.public,
            endorsement: self.endorsement.lock().unwrap().clone(),
            signature,
        })
    }
}

/// What a subscriber pins: the coordinating body behind the feed.
#[derive(Clone, Debug)]
pub enum FeedTrust {
    /// Legacy single-coordinator trust (deprecated ablation arm).
    Single {
        /// Trusted coordinator public key.
        coordinator: PublicKey,
    },
    /// k-of-n quorum trust; advanced in place by
    /// [`FeedTrust::apply_rotation`].
    Quorum(QuorumTrust),
}

impl FeedTrust {
    /// Pin a single coordinator key (ablation arm).
    pub fn single(coordinator: PublicKey) -> FeedTrust {
        FeedTrust::Single { coordinator }
    }

    /// Pin a k-of-n quorum.
    pub fn quorum(trust: QuorumTrust) -> FeedTrust {
        FeedTrust::Quorum(trust)
    }

    /// Verify an endorsement of `feed_key` under this trust. A
    /// single-signer endorsement presented to a quorum subscriber (or
    /// vice versa) is a scheme mismatch and rejected outright.
    pub fn verify_endorsement(
        &self,
        feed_key: &PublicKey,
        endorsement: &Endorsement,
    ) -> Result<(), RsfError> {
        match (self, endorsement) {
            (FeedTrust::Single { coordinator }, Endorsement::Single(sig)) => {
                hbs::verify(coordinator, &endorse_bytes(feed_key), sig)
                    .map_err(|_| RsfError::BadSignature("feed key endorsement"))
            }
            (FeedTrust::Quorum(quorum), Endorsement::Quorum(sig)) => quorum
                .verify(&endorse_bytes(feed_key), sig)
                .map_err(|_| RsfError::BadSignature("feed key endorsement")),
            _ => Err(RsfError::BadSignature("endorsement scheme mismatch")),
        }
    }

    /// Apply a quorum rotation event (no-op error for the single-signer
    /// arm, which has no rotation story — one more reason it is the
    /// deprecated arm). Returns whether the trust actually advanced.
    pub fn apply_rotation(&mut self, event: &RotationEvent) -> Result<bool, RsfError> {
        match self {
            FeedTrust::Single { .. } => Err(RsfError::BadSignature(
                "rotation event for single-signer feed",
            )),
            FeedTrust::Quorum(quorum) => quorum.apply_rotation(event),
        }
    }
}

/// The kind of payload inside a signed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageKind {
    /// A full [`crate::feed::Snapshot`].
    Snapshot = 1,
    /// A [`crate::feed::Delta`].
    Delta = 2,
}

impl MessageKind {
    fn from_u8(b: u8) -> Option<MessageKind> {
        match b {
            1 => Some(MessageKind::Snapshot),
            2 => Some(MessageKind::Delta),
            _ => None,
        }
    }
}

/// A signed feed message: payload + feed key + endorsement + signature.
#[derive(Clone, Debug)]
pub struct SignedMessage {
    /// Payload kind.
    pub kind: MessageKind,
    /// Canonical payload bytes ([`crate::feed::Snapshot::encode`] or
    /// [`crate::feed::Delta::encode`]).
    pub payload: Vec<u8>,
    /// The feed's public key.
    pub feed_key: PublicKey,
    /// The coordinating body's endorsement of `feed_key`.
    pub endorsement: Endorsement,
    /// Feed signature over the payload.
    pub signature: Signature,
}

impl SignedMessage {
    /// Verify the two-link chain under the pinned coordinating body.
    pub fn verify(&self, trust: &FeedTrust) -> Result<(), RsfError> {
        trust.verify_endorsement(&self.feed_key, &self.endorsement)?;
        hbs::verify(
            &self.feed_key,
            &message_bytes(self.kind, &self.payload),
            &self.signature,
        )
        .map_err(|_| RsfError::BadSignature("message signature"))?;
        Ok(())
    }

    /// Serialize the whole signed message (transport format).
    ///
    /// Single-signer messages keep the original `RSF1-SIGNED` frame
    /// byte-for-byte (the ablation arm must stay wire-compatible);
    /// quorum-endorsed messages use `RSF2-SIGNED`.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.endorsement {
            Endorsement::Single(sig) => {
                w.put_str("RSF1-SIGNED");
                w.put_u8(self.kind as u8);
                w.put_bytes(&self.payload);
                w.put_bytes(&self.feed_key.to_bytes());
                w.put_bytes(&sig.to_bytes());
            }
            Endorsement::Quorum(sig) => {
                w.put_str("RSF2-SIGNED");
                w.put_u8(self.kind as u8);
                w.put_bytes(&self.payload);
                w.put_bytes(&self.feed_key.to_bytes());
                w.put_bytes(&sig.encode());
            }
        }
        w.put_bytes(&self.signature.to_bytes());
        w.finish()
    }

    /// Parse a signed message (verification is separate).
    pub fn decode(bytes: &[u8]) -> Result<SignedMessage, RsfError> {
        let mut r = Reader::for_artifact(bytes, "signed-message");
        let magic = r.field("magic").get_str()?;
        let quorum = match magic {
            "RSF1-SIGNED" => false,
            "RSF2-SIGNED" => true,
            _ => return Err(r.error("bad signed-message magic")),
        };
        let kind = MessageKind::from_u8(r.field("kind").get_u8()?)
            .ok_or_else(|| r.error("bad message kind"))?;
        let payload = r.field("payload").get_bytes()?.to_vec();
        let feed_key = PublicKey::from_bytes(r.field("feed key").get_bytes()?)
            .map_err(|_| r.error("bad feed key"))?;
        let endorsement = if quorum {
            Endorsement::Quorum(QuorumSignature::decode(
                r.field("endorsement").get_bytes()?,
            )?)
        } else {
            Endorsement::Single(
                Signature::from_bytes(r.field("endorsement").get_bytes()?)
                    .map_err(|_| r.error("bad endorsement"))?,
            )
        };
        let signature = Signature::from_bytes(r.field("signature").get_bytes()?)
            .map_err(|_| r.error("bad signature"))?;
        r.expect_end()?;
        Ok(SignedMessage {
            kind,
            payload,
            feed_key,
            endorsement,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CoordinatorKey, FeedKey, FeedTrust) {
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        let feed = FeedKey::new([2; 32], 6, &coordinator).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        (coordinator, feed, trust)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (_c, feed, trust) = setup();
        let msg = feed.sign(MessageKind::Snapshot, b"payload").unwrap();
        msg.verify(&trust).unwrap();
        let decoded = SignedMessage::decode(&msg.encode()).unwrap();
        decoded.verify(&trust).unwrap();
        assert_eq!(decoded.payload, b"payload");
        assert_eq!(decoded.kind, MessageKind::Snapshot);
    }

    #[test]
    fn tampered_payload_rejected() {
        let (_c, feed, trust) = setup();
        let mut msg = feed.sign(MessageKind::Delta, b"original").unwrap();
        msg.payload = b"tampered".to_vec();
        assert!(matches!(
            msg.verify(&trust),
            Err(RsfError::BadSignature("message signature"))
        ));
    }

    #[test]
    fn kind_confusion_rejected() {
        // A snapshot signature must not validate as a delta (domain sep).
        let (_c, feed, trust) = setup();
        let mut msg = feed.sign(MessageKind::Snapshot, b"payload").unwrap();
        msg.kind = MessageKind::Delta;
        assert!(msg.verify(&trust).is_err());
    }

    #[test]
    fn unendorsed_feed_key_rejected() {
        let (_c, _feed, trust) = setup();
        // A rogue feed with a *different* coordinator.
        let rogue_coord = CoordinatorKey::from_seed([9; 32], 4).unwrap();
        let rogue_feed = FeedKey::new([10; 32], 4, &rogue_coord).unwrap();
        let msg = rogue_feed.sign(MessageKind::Snapshot, b"evil").unwrap();
        assert!(matches!(
            msg.verify(&trust),
            Err(RsfError::BadSignature("feed key endorsement"))
        ));
    }

    #[test]
    fn endorsement_swap_rejected() {
        // Signature by feed B, endorsement of feed A: must fail.
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        let feed_a = FeedKey::new([2; 32], 4, &coordinator).unwrap();
        let feed_b = FeedKey::new([3; 32], 4, &coordinator).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        let msg_a = feed_a.sign(MessageKind::Snapshot, b"x").unwrap();
        let msg_b = feed_b.sign(MessageKind::Snapshot, b"x").unwrap();
        let mut frankenstein = msg_b.clone();
        frankenstein.endorsement = msg_a.endorsement.clone();
        frankenstein.feed_key = msg_a.feed_key;
        // Now the endorsement verifies (it's A's) but the message
        // signature is B's -> fails under A's key.
        assert!(frankenstein.verify(&trust).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SignedMessage::decode(b"").is_err());
        assert!(SignedMessage::decode(b"RSFX").is_err());
        let (_c, feed, _t) = setup();
        let mut bytes = feed.sign(MessageKind::Snapshot, b"p").unwrap().encode();
        bytes.truncate(bytes.len() - 3);
        assert!(SignedMessage::decode(&bytes).is_err());
    }
}
