//! Feed signing: "RSF updates \[should\] be signed with a separate key that
//! should itself be signed by a coordinating body like ICANN" (§4).
//!
//! Two-link verification chain: subscribers pin the **coordinator's**
//! public key ([`FeedTrust`]); each message carries the feed's public key,
//! the coordinator's *endorsement* of that key, and the feed's signature
//! over the payload.

use crate::wire::{Reader, Writer};
use crate::RsfError;
use nrslb_crypto::hbs::{self, Keypair, PublicKey, Signature};
use std::sync::Mutex;

/// Domain-separation prefixes so an endorsement can never be confused
/// with a message signature.
const ENDORSE_TAG: &[u8] = b"nrslb-rsf-endorse-v1:";
const MESSAGE_TAG: &[u8] = b"nrslb-rsf-message-v1:";

fn endorse_bytes(feed_key: &PublicKey) -> Vec<u8> {
    let mut out = ENDORSE_TAG.to_vec();
    out.extend_from_slice(&feed_key.to_bytes());
    out
}

fn message_bytes(kind: MessageKind, payload: &[u8]) -> Vec<u8> {
    let mut out = MESSAGE_TAG.to_vec();
    out.push(kind as u8);
    out.extend_from_slice(payload);
    out
}

/// The coordinating body's signing key (the ICANN stand-in).
pub struct CoordinatorKey {
    keypair: Mutex<Keypair>,
    public: PublicKey,
}

impl CoordinatorKey {
    /// Deterministic coordinator key from a seed.
    pub fn from_seed(seed: [u8; 32], height: u8) -> Result<CoordinatorKey, RsfError> {
        let keypair =
            Keypair::from_seed(seed, height).map_err(|_| RsfError::Wire("bad key params"))?;
        let public = keypair.public();
        Ok(CoordinatorKey {
            keypair: Mutex::new(keypair),
            public,
        })
    }

    /// The coordinator's public key; subscribers pin this.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Endorse a feed key.
    pub fn endorse(&self, feed_key: &PublicKey) -> Result<Signature, RsfError> {
        self.keypair
            .lock()
            .unwrap()
            .sign(&endorse_bytes(feed_key))
            .map_err(|_| RsfError::BadSignature("coordinator key exhausted"))
    }
}

/// A feed operator's signing key plus its coordinator endorsement.
pub struct FeedKey {
    keypair: Mutex<Keypair>,
    public: PublicKey,
    endorsement: Signature,
}

impl FeedKey {
    /// Create a feed key and have `coordinator` endorse it.
    pub fn new(
        seed: [u8; 32],
        height: u8,
        coordinator: &CoordinatorKey,
    ) -> Result<FeedKey, RsfError> {
        let keypair =
            Keypair::from_seed(seed, height).map_err(|_| RsfError::Wire("bad key params"))?;
        let public = keypair.public();
        let endorsement = coordinator.endorse(&public)?;
        Ok(FeedKey {
            keypair: Mutex::new(keypair),
            public,
            endorsement,
        })
    }

    /// The feed's public key.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Sign raw bytes with the feed key (used by the transparency log's
    /// checkpoints, which carry their own domain separation).
    pub fn sign_raw(&self, message: &[u8]) -> Result<Signature, RsfError> {
        self.keypair
            .lock()
            .unwrap()
            .sign(message)
            .map_err(|_| RsfError::BadSignature("feed key exhausted"))
    }

    /// Sign a feed message.
    pub fn sign(&self, kind: MessageKind, payload: &[u8]) -> Result<SignedMessage, RsfError> {
        let signature = self
            .keypair
            .lock()
            .unwrap()
            .sign(&message_bytes(kind, payload))
            .map_err(|_| RsfError::BadSignature("feed key exhausted"))?;
        Ok(SignedMessage {
            kind,
            payload: payload.to_vec(),
            feed_key: self.public,
            endorsement: self.endorsement.clone(),
            signature,
        })
    }
}

/// What a subscriber pins: the coordinator's public key.
#[derive(Clone, Copy, Debug)]
pub struct FeedTrust {
    /// Trusted coordinator public key.
    pub coordinator: PublicKey,
}

/// The kind of payload inside a signed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageKind {
    /// A full [`crate::feed::Snapshot`].
    Snapshot = 1,
    /// A [`crate::feed::Delta`].
    Delta = 2,
}

impl MessageKind {
    fn from_u8(b: u8) -> Option<MessageKind> {
        match b {
            1 => Some(MessageKind::Snapshot),
            2 => Some(MessageKind::Delta),
            _ => None,
        }
    }
}

/// A signed feed message: payload + feed key + endorsement + signature.
#[derive(Clone, Debug)]
pub struct SignedMessage {
    /// Payload kind.
    pub kind: MessageKind,
    /// Canonical payload bytes ([`crate::feed::Snapshot::encode`] or
    /// [`crate::feed::Delta::encode`]).
    pub payload: Vec<u8>,
    /// The feed's public key.
    pub feed_key: PublicKey,
    /// Coordinator's endorsement of `feed_key`.
    pub endorsement: Signature,
    /// Feed signature over the payload.
    pub signature: Signature,
}

impl SignedMessage {
    /// Verify the two-link chain under the pinned coordinator key.
    pub fn verify(&self, trust: &FeedTrust) -> Result<(), RsfError> {
        hbs::verify(
            &trust.coordinator,
            &endorse_bytes(&self.feed_key),
            &self.endorsement,
        )
        .map_err(|_| RsfError::BadSignature("feed key endorsement"))?;
        hbs::verify(
            &self.feed_key,
            &message_bytes(self.kind, &self.payload),
            &self.signature,
        )
        .map_err(|_| RsfError::BadSignature("message signature"))?;
        Ok(())
    }

    /// Serialize the whole signed message (transport format).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("RSF1-SIGNED");
        w.put_u8(self.kind as u8);
        w.put_bytes(&self.payload);
        w.put_bytes(&self.feed_key.to_bytes());
        w.put_bytes(&self.endorsement.to_bytes());
        w.put_bytes(&self.signature.to_bytes());
        w.finish()
    }

    /// Parse a signed message (verification is separate).
    pub fn decode(bytes: &[u8]) -> Result<SignedMessage, RsfError> {
        let mut r = Reader::for_artifact(bytes, "signed-message");
        if r.field("magic").get_str()? != "RSF1-SIGNED" {
            return Err(r.error("bad signed-message magic"));
        }
        let kind = MessageKind::from_u8(r.field("kind").get_u8()?)
            .ok_or_else(|| r.error("bad message kind"))?;
        let payload = r.field("payload").get_bytes()?.to_vec();
        let feed_key = PublicKey::from_bytes(r.field("feed key").get_bytes()?)
            .map_err(|_| r.error("bad feed key"))?;
        let endorsement = Signature::from_bytes(r.field("endorsement").get_bytes()?)
            .map_err(|_| r.error("bad endorsement"))?;
        let signature = Signature::from_bytes(r.field("signature").get_bytes()?)
            .map_err(|_| r.error("bad signature"))?;
        r.expect_end()?;
        Ok(SignedMessage {
            kind,
            payload,
            feed_key,
            endorsement,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CoordinatorKey, FeedKey, FeedTrust) {
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        let feed = FeedKey::new([2; 32], 6, &coordinator).unwrap();
        let trust = FeedTrust {
            coordinator: coordinator.public(),
        };
        (coordinator, feed, trust)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (_c, feed, trust) = setup();
        let msg = feed.sign(MessageKind::Snapshot, b"payload").unwrap();
        msg.verify(&trust).unwrap();
        let decoded = SignedMessage::decode(&msg.encode()).unwrap();
        decoded.verify(&trust).unwrap();
        assert_eq!(decoded.payload, b"payload");
        assert_eq!(decoded.kind, MessageKind::Snapshot);
    }

    #[test]
    fn tampered_payload_rejected() {
        let (_c, feed, trust) = setup();
        let mut msg = feed.sign(MessageKind::Delta, b"original").unwrap();
        msg.payload = b"tampered".to_vec();
        assert!(matches!(
            msg.verify(&trust),
            Err(RsfError::BadSignature("message signature"))
        ));
    }

    #[test]
    fn kind_confusion_rejected() {
        // A snapshot signature must not validate as a delta (domain sep).
        let (_c, feed, trust) = setup();
        let mut msg = feed.sign(MessageKind::Snapshot, b"payload").unwrap();
        msg.kind = MessageKind::Delta;
        assert!(msg.verify(&trust).is_err());
    }

    #[test]
    fn unendorsed_feed_key_rejected() {
        let (_c, _feed, trust) = setup();
        // A rogue feed with a *different* coordinator.
        let rogue_coord = CoordinatorKey::from_seed([9; 32], 4).unwrap();
        let rogue_feed = FeedKey::new([10; 32], 4, &rogue_coord).unwrap();
        let msg = rogue_feed.sign(MessageKind::Snapshot, b"evil").unwrap();
        assert!(matches!(
            msg.verify(&trust),
            Err(RsfError::BadSignature("feed key endorsement"))
        ));
    }

    #[test]
    fn endorsement_swap_rejected() {
        // Signature by feed B, endorsement of feed A: must fail.
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        let feed_a = FeedKey::new([2; 32], 4, &coordinator).unwrap();
        let feed_b = FeedKey::new([3; 32], 4, &coordinator).unwrap();
        let trust = FeedTrust {
            coordinator: coordinator.public(),
        };
        let msg_a = feed_a.sign(MessageKind::Snapshot, b"x").unwrap();
        let msg_b = feed_b.sign(MessageKind::Snapshot, b"x").unwrap();
        let mut frankenstein = msg_b.clone();
        frankenstein.endorsement = msg_a.endorsement.clone();
        frankenstein.feed_key = msg_a.feed_key;
        // Now the endorsement verifies (it's A's) but the message
        // signature is B's -> fails under A's key.
        assert!(frankenstein.verify(&trust).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SignedMessage::decode(b"").is_err());
        assert!(SignedMessage::decode(b"RSFX").is_err());
        let (_c, feed, _t) = setup();
        let mut bytes = feed.sign(MessageKind::Snapshot, b"p").unwrap().encode();
        bytes.truncate(bytes.len() - 3);
        assert!(SignedMessage::decode(&bytes).is_err());
    }
}
