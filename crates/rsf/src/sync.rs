//! The resilient subscriber sync engine.
//!
//! `transport` gives a clean-channel state machine; real derivative
//! stores sit behind lossy links, stale publishers and — in the worst
//! case — feeds that rewrite their own history. This module wraps the
//! same verification core in a fault-tolerant engine:
//!
//! * a [`SyncPolicy`] bounds each attempt (timeout, retry budget,
//!   exponential backoff with deterministic jitter, staleness bound);
//! * a state-machine [`Subscriber`] resumes catch-up from its last
//!   applied sequence via `Delta`s, falls back to a full `Snapshot`
//!   only when the delta window is gone, verifies a transparency-log
//!   checkpoint + consistency proof on every reconnect, and
//!   **quarantines** the feed on split-view evidence instead of
//!   applying it;
//! * once quarantined — or once the staleness bound is exceeded — the
//!   subscriber keeps serving its last-good `RootStore`, with an
//!   explicit [`Staleness`] verdict attached ([`Subscriber::serve`]);
//! * plain [`SyncCounters`] record attempts, retries, fallbacks,
//!   quarantines and stale serves for the daemon and benches to scrape.
//!
//! The three historical ingestion paths (`Snapshot::decode`+`apply_to`,
//! `Delta::decode`+`apply_to`, raw `SignedMessage::verify`) collapse
//! into one entry point: [`Subscriber::ingest`], which verifies,
//! decodes ([`FeedUpdate`]) and applies a message in one step and
//! reports what happened as a [`SyncEvent`].

use crate::clock::{Clock, WallClock};
use crate::feed::{Delta, Snapshot};
use crate::quorum::RotationEvent;
use crate::signing::{FeedTrust, MessageKind, SignedMessage};
use crate::taint::TaintSet;
use crate::translog::{verify_extension_trusted, Checkpoint};
use crate::transport::{FaultInjector, FeedPublisher, SyncReport};
use crate::RsfError;
use nrslb_crypto::hbs::PublicKey;
use nrslb_crypto::merkle::ConsistencyProof;
use nrslb_obs::{Counter, Gauge, Registry};
use nrslb_rootstore::RootStore;
use rand::prelude::*;
use std::sync::Arc;

/// Retry/backoff/staleness knobs for a [`Subscriber`].
///
/// All timing is caller-driven (the engine is sans-IO); the policy is
/// the single place transports read their budgets from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncPolicy {
    /// Per-attempt I/O budget in milliseconds (socket transports use it
    /// for read/write timeouts; the sans-IO core carries it through).
    pub attempt_timeout_ms: u64,
    /// First retry delay; attempt `n` waits `base * 2^n`, capped below.
    pub base_backoff_ms: u64,
    /// Upper bound on a single backoff delay.
    pub max_backoff_ms: u64,
    /// Give up (with [`RsfError::Exhausted`]) after this many attempts.
    pub max_attempts: u32,
    /// Past this many seconds since the last successful sync, served
    /// stores carry a [`Staleness::Exceeded`] verdict.
    pub staleness_bound_secs: i64,
    /// Seed for the deterministic backoff jitter (same seed ⇒ same
    /// delays, so simulations and tests reproduce exactly).
    pub jitter_seed: u64,
}

impl Default for SyncPolicy {
    fn default() -> SyncPolicy {
        SyncPolicy {
            attempt_timeout_ms: 2_000,
            base_backoff_ms: 100,
            max_backoff_ms: 30_000,
            max_attempts: 5,
            staleness_bound_secs: 86_400,
            jitter_seed: 0x5eed,
        }
    }
}

/// Plain counters a daemon or bench can scrape ([`Subscriber::counters`]).
///
/// Since the observability layer landed this is a *snapshot* type: the
/// live values are `nrslb-obs` registry counters
/// ([`Subscriber::instruments`]), and [`Subscriber::counters`] is the
/// compatibility shim that reads them back into this plain struct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncCounters {
    /// Sync attempts started (each [`Subscriber::poll`] is one).
    pub attempts: u64,
    /// Attempts that failed and were retried by the resilient loop.
    pub retries: u64,
    /// Messages verified and applied (snapshots + deltas).
    pub messages_ingested: u64,
    /// Messages rejected (bad signature, undecodable, replayed).
    pub messages_rejected: u64,
    /// Full-snapshot applications after the delta window was gone.
    pub snapshot_fallbacks: u64,
    /// Split-view quarantines entered.
    pub quarantines: u64,
    /// Serves performed while past the staleness bound.
    pub stale_serves: u64,
    /// Quorum share-rotation events verified and applied.
    pub rotations_applied: u64,
}

/// Registry-backed instruments for one subscriber: the live metric
/// handles behind [`SyncCounters`], labelled with the subscriber's
/// store name so a daemon serving several feeds gets distinct series.
#[derive(Clone, Debug)]
pub struct SyncInstruments {
    /// Sync attempts started ([`SyncCounters::attempts`]).
    pub attempts: Counter,
    /// Retry decisions ([`SyncCounters::retries`]).
    pub retries: Counter,
    /// Messages verified and applied ([`SyncCounters::messages_ingested`]).
    pub messages_ingested: Counter,
    /// Messages rejected ([`SyncCounters::messages_rejected`]).
    pub messages_rejected: Counter,
    /// Full-snapshot fallbacks ([`SyncCounters::snapshot_fallbacks`]).
    pub snapshot_fallbacks: Counter,
    /// Quarantines entered ([`SyncCounters::quarantines`]).
    pub quarantines: Counter,
    /// Serves past the staleness bound ([`SyncCounters::stale_serves`]).
    pub stale_serves: Counter,
    /// Rotation events applied ([`SyncCounters::rotations_applied`]).
    pub rotations_applied: Counter,
    /// Lifecycle state as a gauge: 0 bootstrapping, 1 live, 2 quarantined.
    pub state: Gauge,
    /// Unix seconds of the last successful sync (-1 = never synced).
    pub last_synced_timestamp_secs: Gauge,
    /// Seconds since the last successful sync, refreshed on every
    /// staleness check (-1 = never synced).
    pub staleness_age_secs: Gauge,
}

impl SyncInstruments {
    /// Create (or re-attach to) the subscriber's metric series in
    /// `registry`, labelled `subscriber=name`.
    pub fn new(registry: &Registry, name: &str) -> SyncInstruments {
        let labels: &[(&str, &str)] = &[("subscriber", name)];
        let counter = |metric: &str, help: &str| registry.counter_with(metric, labels, help);
        let instruments = SyncInstruments {
            attempts: counter("nrslb_rsf_sync_attempts_total", "sync attempts started"),
            retries: counter(
                "nrslb_rsf_sync_retries_total",
                "failed attempts retried by the resilient loop",
            ),
            messages_ingested: counter(
                "nrslb_rsf_messages_ingested_total",
                "feed messages verified and applied",
            ),
            messages_rejected: counter(
                "nrslb_rsf_messages_rejected_total",
                "feed messages rejected (bad signature, undecodable, replayed)",
            ),
            snapshot_fallbacks: counter(
                "nrslb_rsf_snapshot_fallbacks_total",
                "full-snapshot applications after the delta window was gone",
            ),
            quarantines: counter(
                "nrslb_rsf_quarantines_total",
                "split-view quarantines entered",
            ),
            stale_serves: counter(
                "nrslb_rsf_stale_serves_total",
                "serves performed past the staleness bound",
            ),
            rotations_applied: counter(
                "nrslb_rsf_rotations_applied_total",
                "quorum share-rotation events verified and applied",
            ),
            state: registry.gauge_with(
                "nrslb_rsf_subscriber_state",
                labels,
                "subscriber lifecycle: 0 bootstrapping, 1 live, 2 quarantined",
            ),
            last_synced_timestamp_secs: registry.gauge_with(
                "nrslb_rsf_last_synced_timestamp_secs",
                labels,
                "unix seconds of the last successful sync (-1 never)",
            ),
            staleness_age_secs: registry.gauge_with(
                "nrslb_rsf_staleness_age_secs",
                labels,
                "seconds since the last successful sync at the latest check (-1 never)",
            ),
        };
        instruments.last_synced_timestamp_secs.set(-1);
        instruments.staleness_age_secs.set(-1);
        instruments
    }

    /// Read the counters back into the plain [`SyncCounters`] shape.
    pub fn snapshot(&self) -> SyncCounters {
        SyncCounters {
            attempts: self.attempts.get(),
            retries: self.retries.get(),
            messages_ingested: self.messages_ingested.get(),
            messages_rejected: self.messages_rejected.get(),
            snapshot_fallbacks: self.snapshot_fallbacks.get(),
            quarantines: self.quarantines.get(),
            stale_serves: self.stale_serves.get(),
            rotations_applied: self.rotations_applied.get(),
        }
    }
}

/// Where a [`Subscriber`] is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncState {
    /// Never completed a sync; the store is empty.
    Bootstrapping,
    /// At least one sync succeeded; the store tracks the feed.
    Live,
    /// Split-view / history-rewrite evidence was observed; no further
    /// updates are applied and the last-good store is served as-is.
    Quarantined {
        /// What evidence triggered the quarantine.
        reason: &'static str,
    },
}

impl SyncState {
    /// The state encoded for the `nrslb_rsf_subscriber_state` gauge.
    fn gauge_value(&self) -> i64 {
        match self {
            SyncState::Bootstrapping => 0,
            SyncState::Live => 1,
            SyncState::Quarantined { .. } => 2,
        }
    }
}

/// Freshness verdict attached to a served store ([`Subscriber::serve`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Staleness {
    /// No sync has ever succeeded; the store is empty.
    NeverSynced,
    /// Inside the policy's staleness bound.
    Fresh {
        /// Seconds since the last successful sync.
        age_secs: i64,
    },
    /// Past the policy's staleness bound: the store is still served
    /// (availability over freshness) but callers are told.
    Exceeded {
        /// Seconds since the last successful sync.
        age_secs: i64,
        /// The policy bound that was exceeded.
        bound_secs: i64,
    },
}

impl Staleness {
    /// True when the staleness bound is exceeded (or never synced).
    pub fn is_exceeded(&self) -> bool {
        !matches!(self, Staleness::Fresh { .. })
    }
}

/// A decoded feed payload: the one shape every ingestion path funnels
/// through. Sealed (`#[non_exhaustive]`) so new message kinds don't
/// break downstream matches.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum FeedUpdate {
    /// A full root-store snapshot.
    Snapshot(Snapshot),
    /// An incremental delta between two sequences.
    Delta(Delta),
}

impl FeedUpdate {
    /// Decode the payload of a signed message into its typed form.
    /// Does **not** verify signatures — [`Subscriber::ingest`] does.
    pub fn decode(message: &SignedMessage) -> Result<FeedUpdate, RsfError> {
        match message.kind {
            MessageKind::Snapshot => Ok(FeedUpdate::Snapshot(Snapshot::decode(&message.payload)?)),
            MessageKind::Delta => Ok(FeedUpdate::Delta(Delta::decode(&message.payload)?)),
        }
    }

    /// The sequence this update brings a subscriber to.
    pub fn sequence(&self) -> u64 {
        match self {
            FeedUpdate::Snapshot(s) => s.sequence,
            FeedUpdate::Delta(d) => d.to_sequence,
        }
    }

    /// When the update was published.
    pub fn published_at(&self) -> i64 {
        match self {
            FeedUpdate::Snapshot(s) => s.published_at,
            FeedUpdate::Delta(d) => d.published_at,
        }
    }
}

/// What [`Subscriber::ingest`] did with a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncEvent {
    /// A full snapshot replaced the store.
    SnapshotApplied {
        /// Sequence after application.
        sequence: u64,
    },
    /// An incremental delta was applied.
    DeltaApplied {
        /// Sequence after application.
        sequence: u64,
    },
    /// The message was a duplicate of already-applied state (benign —
    /// lossy transports re-deliver).
    AlreadyCurrent {
        /// The subscriber's unchanged sequence.
        sequence: u64,
    },
}

/// Outcome of a [`Subscriber::sync_resilient`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResilientReport {
    /// Aggregate of what was applied across all attempts.
    pub report: SyncReport,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Total backoff the policy would have slept, in milliseconds
    /// (sans-IO: the caller decides whether to actually sleep).
    pub backoff_ms_total: u64,
}

/// Builder for [`Subscriber`] (and, via [`connect`], the socket-backed
/// `RemoteSubscriber`) — new knobs get a defaulted setter here instead
/// of breaking every positional caller again.
///
/// [`connect`]: SubscriberBuilder::connect
#[derive(Clone, Debug)]
pub struct SubscriberBuilder {
    name: String,
    trust: FeedTrust,
    policy: SyncPolicy,
    clock: Arc<dyn Clock>,
    registry: Option<Arc<Registry>>,
}

impl SubscriberBuilder {
    /// Start a builder with the two essentials: the subscriber's store
    /// name and the pinned coordinator trust.
    pub fn new(name: &str, trust: FeedTrust) -> SubscriberBuilder {
        SubscriberBuilder {
            name: name.to_string(),
            trust,
            policy: SyncPolicy::default(),
            clock: Arc::new(WallClock),
            registry: None,
        }
    }

    /// Replace the whole sync policy.
    pub fn policy(mut self, policy: SyncPolicy) -> SubscriberBuilder {
        self.policy = policy;
        self
    }

    /// Override just the staleness bound (seconds).
    pub fn staleness_bound_secs(mut self, bound: i64) -> SubscriberBuilder {
        self.policy.staleness_bound_secs = bound;
        self
    }

    /// Override just the retry budget.
    pub fn max_attempts(mut self, attempts: u32) -> SubscriberBuilder {
        self.policy.max_attempts = attempts;
        self
    }

    /// Inject a clock. Defaults to [`WallClock`]; tests and the
    /// deterministic simulator pass a
    /// [`VirtualClock`](crate::clock::VirtualClock) so staleness checks
    /// and backoff sleeping run on virtual time.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> SubscriberBuilder {
        self.clock = clock;
        self
    }

    /// Report sync metrics into a shared observability registry (e.g.
    /// the trust daemon's), labelled with this subscriber's name.
    /// Without one, the subscriber keeps a private registry so
    /// [`Subscriber::counters`] always works.
    pub fn registry(mut self, registry: Arc<Registry>) -> SubscriberBuilder {
        self.registry = Some(registry);
        self
    }

    /// Finish: a fresh subscriber that has never synced.
    pub fn build(self) -> Subscriber {
        let rng = StdRng::seed_from_u64(self.policy.jitter_seed);
        let registry = self
            .registry
            .unwrap_or_else(|| Arc::new(Registry::with_clock(Arc::clone(&self.clock))));
        let instruments = SyncInstruments::new(&registry, &self.name);
        Subscriber {
            store: RootStore::new(&self.name),
            name: self.name,
            trust: self.trust,
            sequence: 0,
            pinned: None,
            policy: self.policy,
            state: SyncState::Bootstrapping,
            instruments,
            registry,
            last_synced_at: None,
            pending_taint: TaintSet::empty(),
            rng,
            clock: self.clock,
        }
    }
}

/// A fault-tolerant feed subscriber: the unified ingestion state
/// machine behind every transport.
pub struct Subscriber {
    name: String,
    trust: FeedTrust,
    store: RootStore,
    sequence: u64,
    /// Pinned transparency-log checkpoint + the feed key it verified
    /// under (set after the first successful poll).
    pinned: Option<(Checkpoint, PublicKey)>,
    policy: SyncPolicy,
    state: SyncState,
    instruments: SyncInstruments,
    registry: Arc<Registry>,
    last_synced_at: Option<i64>,
    /// Taint accumulated by applied updates since the last
    /// [`Subscriber::take_taint`] — what downstream verdict caches must
    /// invalidate before trusting this subscriber's store again.
    pending_taint: TaintSet,
    rng: StdRng,
    clock: Arc<dyn Clock>,
}

impl Subscriber {
    /// Start building a subscriber ([`SubscriberBuilder`]).
    pub fn builder(name: &str, trust: FeedTrust) -> SubscriberBuilder {
        SubscriberBuilder::new(name, trust)
    }

    /// The subscriber's store name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pinned coordinating-body trust (advanced in place as
    /// rotation events are applied).
    pub fn trust(&self) -> &FeedTrust {
        &self.trust
    }

    /// The current (last-good) store. Prefer [`Subscriber::serve`],
    /// which also reports freshness.
    pub fn store(&self) -> &RootStore {
        &self.store
    }

    /// The last applied sequence (0 = never synced).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Taint accumulated by updates applied since the last
    /// [`Subscriber::take_taint`] (deltas contribute their precise
    /// blast radius, snapshot fallbacks full taint). Empty when every
    /// applied update has been accounted for.
    pub fn pending_taint(&self) -> &TaintSet {
        &self.pending_taint
    }

    /// Drain the accumulated taint, handing it to the verdict-cache
    /// invalidation step. Subsequent updates start a fresh set.
    pub fn take_taint(&mut self) -> TaintSet {
        std::mem::take(&mut self.pending_taint)
    }

    /// Lifecycle state.
    pub fn state(&self) -> SyncState {
        self.state
    }

    /// Scrapeable counters — the compatibility shim over the registry
    /// handles: a point-in-time snapshot of [`Subscriber::instruments`].
    pub fn counters(&self) -> SyncCounters {
        self.instruments.snapshot()
    }

    /// The live registry-backed metric handles.
    pub fn instruments(&self) -> &SyncInstruments {
        &self.instruments
    }

    /// The observability registry this subscriber reports into (shared
    /// if the builder was given one, private otherwise).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The active policy.
    pub fn policy(&self) -> &SyncPolicy {
        &self.policy
    }

    /// The pinned transparency-log checkpoint, if any poll completed.
    pub fn pinned_checkpoint(&self) -> Option<&Checkpoint> {
        self.pinned.as_ref().map(|(c, _)| c)
    }

    /// The injected clock (wall time unless the builder overrode it).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// [`Subscriber::staleness`] at the injected clock's current time.
    pub fn staleness_now(&self) -> Staleness {
        self.staleness(self.clock.now_secs())
    }

    /// [`Subscriber::serve`] at the injected clock's current time.
    pub fn serve_now(&mut self) -> (&RootStore, Staleness) {
        let now = self.clock.now_secs();
        self.serve(now)
    }

    /// [`Subscriber::sync`] at the injected clock's current time.
    pub fn sync_now(&mut self, publisher: &mut FeedPublisher) -> Result<SyncReport, RsfError> {
        let now = self.clock.now_secs();
        self.sync(publisher, now)
    }

    /// [`Subscriber::sync_resilient`] driven by the injected clock:
    /// `now` is read from the clock and every backoff delay is *slept*
    /// on it (a [`VirtualClock`](crate::clock::VirtualClock) advances
    /// instantly instead of blocking), so retries consume simulated
    /// time exactly like a real polling loop consumes wall time.
    pub fn sync_resilient_now(
        &mut self,
        publisher: &mut FeedPublisher,
        injector: &mut FaultInjector,
    ) -> Result<ResilientReport, RsfError> {
        let now = self.clock.now_secs();
        self.sync_resilient_with(publisher, injector, now, true)
    }

    /// Freshness at `now` (unix seconds), without counting a serve.
    /// Refreshes the `staleness_age_secs` gauge as a side effect.
    pub fn staleness(&self, now: i64) -> Staleness {
        match self.last_synced_at {
            None => Staleness::NeverSynced,
            Some(at) => {
                let age_secs = now.saturating_sub(at);
                self.instruments.staleness_age_secs.set(age_secs);
                if age_secs > self.policy.staleness_bound_secs {
                    Staleness::Exceeded {
                        age_secs,
                        bound_secs: self.policy.staleness_bound_secs,
                    }
                } else {
                    Staleness::Fresh { age_secs }
                }
            }
        }
    }

    /// Serve the last-good store with an explicit freshness verdict.
    ///
    /// Availability over freshness: a quarantined or stale subscriber
    /// still answers — the verdict (and the `stale_serves` counter)
    /// tell the caller it is doing so on old data.
    pub fn serve(&mut self, now: i64) -> (&RootStore, Staleness) {
        let staleness = self.staleness(now);
        if staleness.is_exceeded() {
            self.instruments.stale_serves.inc();
        }
        (&self.store, staleness)
    }

    /// Verify that `checkpoint` extends the pinned history, updating
    /// the quarantine state on split-view evidence.
    ///
    /// [`RsfError::BadSignature`] is transient (retryable transport
    /// damage); [`RsfError::SplitView`] is publisher misbehaviour and
    /// quarantines the feed permanently.
    pub fn verify_checkpoint(
        &mut self,
        checkpoint: &Checkpoint,
        proof: Option<&ConsistencyProof>,
    ) -> Result<(), RsfError> {
        let Some((pinned, key)) = self.pinned.clone() else {
            return Err(RsfError::BadSignature("no pinned feed key"));
        };
        let trust = self.trust.clone();
        self.check_extension(Some(&pinned), checkpoint, proof, &key, &trust)
    }

    fn check_extension(
        &mut self,
        old: Option<&Checkpoint>,
        new: &Checkpoint,
        proof: Option<&ConsistencyProof>,
        key: &PublicKey,
        trust: &FeedTrust,
    ) -> Result<(), RsfError> {
        match verify_extension_trusted(old, new, proof, key, trust) {
            Err(RsfError::SplitView(reason)) => {
                self.quarantine(reason);
                Err(RsfError::SplitView(reason))
            }
            other => other,
        }
    }

    /// Count a retry decision made by an outer transport loop (the
    /// socket transport keeps its retry loop outside the sans-IO core).
    pub(crate) fn note_retry(&mut self) {
        self.instruments.retries.inc();
    }

    fn quarantine(&mut self, reason: &'static str) {
        if !matches!(self.state, SyncState::Quarantined { .. }) {
            self.instruments.quarantines.inc();
            self.state = SyncState::Quarantined { reason };
            self.instruments.state.set(self.state.gauge_value());
        }
    }

    fn quarantined_err(&self) -> Option<RsfError> {
        match self.state {
            SyncState::Quarantined { reason } => Some(RsfError::Quarantined(reason)),
            _ => None,
        }
    }

    /// Verify and apply one signed message: the single ingestion entry
    /// point replacing `Snapshot::decode`+`apply_to`,
    /// `Delta::decode`+`apply_to` and raw `SignedMessage::verify`.
    ///
    /// Duplicates are benign ([`SyncEvent::AlreadyCurrent`]); replays
    /// to an *older* snapshot and sequence gaps are errors; nothing is
    /// applied while quarantined.
    pub fn ingest(&mut self, message: &SignedMessage) -> Result<SyncEvent, RsfError> {
        if let Some(err) = self.quarantined_err() {
            return Err(err);
        }
        if let Err(e) = message.verify(&self.trust) {
            self.instruments.messages_rejected.inc();
            return Err(e);
        }
        if let Some((_, key)) = &self.pinned {
            if message.feed_key != *key {
                self.instruments.messages_rejected.inc();
                return Err(RsfError::BadSignature("feed key changed mid-stream"));
            }
        }
        let update = match FeedUpdate::decode(message) {
            Ok(u) => u,
            Err(e) => {
                self.instruments.messages_rejected.inc();
                return Err(e);
            }
        };
        self.apply_update(update)
    }

    /// Apply an already-verified update (shared by [`Subscriber::ingest`]
    /// and [`Subscriber::poll`], which batch-verifies first).
    fn apply_update(&mut self, update: FeedUpdate) -> Result<SyncEvent, RsfError> {
        match update {
            FeedUpdate::Snapshot(snap) => {
                if snap.sequence < self.sequence {
                    self.instruments.messages_rejected.inc();
                    return Err(RsfError::Sequence {
                        expected: self.sequence,
                        got: snap.sequence,
                    });
                }
                if snap.sequence == self.sequence {
                    return Ok(SyncEvent::AlreadyCurrent {
                        sequence: self.sequence,
                    });
                }
                // Catching up via a full snapshot after having state
                // means the delta window was gone: a fallback.
                if self.sequence > 0 {
                    self.instruments.snapshot_fallbacks.inc();
                }
                self.store = snap.materialize(&self.name)?;
                // A snapshot replaces the whole store: full taint,
                // flowing through the same invalidation path a precise
                // delta uses.
                self.pending_taint.merge(&TaintSet::full());
                self.sequence = snap.sequence;
                self.instruments.messages_ingested.inc();
                Ok(SyncEvent::SnapshotApplied {
                    sequence: self.sequence,
                })
            }
            FeedUpdate::Delta(delta) => {
                if delta.to_sequence <= self.sequence {
                    return Ok(SyncEvent::AlreadyCurrent {
                        sequence: self.sequence,
                    });
                }
                if delta.from_sequence != self.sequence {
                    return Err(RsfError::Sequence {
                        expected: self.sequence,
                        got: delta.from_sequence,
                    });
                }
                // Taint is computed against the pre-image store so the
                // replaced entries' old GCCs and keys are captured.
                let taint = TaintSet::of_delta(&delta, &self.store);
                delta.apply(&mut self.store)?;
                self.pending_taint.merge(&taint);
                self.sequence = delta.to_sequence;
                self.instruments.messages_ingested.inc();
                Ok(SyncEvent::DeltaApplied {
                    sequence: self.sequence,
                })
            }
        }
    }

    /// One sync attempt over transported artifacts: verify the
    /// checkpoint against pinned history, verify every message
    /// signature, then apply in order.
    ///
    /// Signature verification happens for the whole batch *before* any
    /// state change — a compromised transport cannot poison the store.
    /// A sequence gap mid-batch aborts the remaining messages but keeps
    /// the progress already applied (the next attempt refetches from
    /// the advanced sequence, so retries converge).
    pub fn poll(
        &mut self,
        messages: Vec<SignedMessage>,
        checkpoint: Checkpoint,
        proof: Option<ConsistencyProof>,
        now: i64,
    ) -> Result<SyncReport, RsfError> {
        self.poll_full(messages, Vec::new(), checkpoint, proof, now)
    }

    /// [`Subscriber::poll`] plus quorum share-rotation events.
    ///
    /// Rotations are validated first against a *speculative* copy of
    /// the pinned trust (each event must be approved by the epoch it
    /// retires; redeliveries of already-applied epochs are benign), so
    /// the messages and checkpoint of this poll verify at the
    /// post-rotation epoch. Nothing — not the trust, not the store — is
    /// committed unless the whole poll verifies.
    pub fn poll_full(
        &mut self,
        messages: Vec<SignedMessage>,
        rotations: Vec<RotationEvent>,
        checkpoint: Checkpoint,
        proof: Option<ConsistencyProof>,
        now: i64,
    ) -> Result<SyncReport, RsfError> {
        self.instruments.attempts.inc();
        if let Some(err) = self.quarantined_err() {
            return Err(err);
        }
        // Advance a speculative trust through the rotation chain.
        let mut trust = self.trust.clone();
        let mut rotations_applied = 0u64;
        for event in &rotations {
            match trust.apply_rotation(event) {
                Ok(true) => rotations_applied += 1,
                Ok(false) => {} // redelivery of an already-applied epoch
                Err(e) => {
                    self.instruments.messages_rejected.inc();
                    return Err(e);
                }
            }
        }
        // Verify everything (coordinating-body endorsement + message
        // signatures) before any state change.
        for message in &messages {
            if let Err(e) = message.verify(&trust) {
                self.instruments.messages_rejected.inc();
                return Err(e);
            }
        }
        // The feed key is pinned from the first *verified* message; the
        // checkpoint must verify under it.
        let feed_key = match (&self.pinned, messages.first()) {
            (Some((_, key)), _) => *key,
            (None, Some(first)) => first.feed_key,
            (None, None) => return Err(RsfError::BadSignature("empty first sync")),
        };
        // Warm-path shortcut: a checkpoint whose content matches the
        // pinned one was already verified when it was pinned — idle
        // re-polls skip the signature and witness work entirely (this
        // is what keeps quorum verification off the warm path, E20).
        let already_pinned = rotations_applied == 0
            && self
                .pinned
                .as_ref()
                .is_some_and(|(c, _)| c.size == checkpoint.size && c.root == checkpoint.root);
        if !already_pinned {
            // Transparency-log step next: a publisher that rewrote
            // history is quarantined before any message is applied.
            // (The pinned checkpoint is only cloned on this cold path;
            // its quorum witness makes the copy multi-KB.)
            let pinned = self.pinned.clone();
            self.check_extension(
                pinned.as_ref().map(|(c, _)| c),
                &checkpoint,
                proof.as_ref(),
                &feed_key,
                &trust,
            )?;
        }
        let mut report = SyncReport {
            sequence: self.sequence,
            ..Default::default()
        };
        for message in &messages {
            report.bytes_transferred += message.encode().len();
            let update = FeedUpdate::decode(message)?;
            match self.apply_update(update)? {
                SyncEvent::SnapshotApplied { .. } => report.snapshot_applied = true,
                SyncEvent::DeltaApplied { .. } => report.deltas_applied += 1,
                SyncEvent::AlreadyCurrent { .. } => {}
            }
        }
        report.sequence = self.sequence;
        self.trust = trust;
        self.instruments.rotations_applied.add(rotations_applied);
        if !already_pinned {
            self.pinned = Some((checkpoint, feed_key));
        }
        self.last_synced_at = Some(now);
        self.state = SyncState::Live;
        self.instruments.state.set(self.state.gauge_value());
        self.instruments.last_synced_timestamp_secs.set(now);
        Ok(report)
    }

    /// The idle fast path: the publisher's checkpoint content is the
    /// pinned one and no rotation is pending, so this poll would change
    /// nothing — refresh the liveness bookkeeping without cloning any
    /// artifact (the quorum witness alone is multi-KB).
    fn poll_warm(&mut self, now: i64) -> Result<SyncReport, RsfError> {
        self.instruments.attempts.inc();
        if let Some(err) = self.quarantined_err() {
            return Err(err);
        }
        self.last_synced_at = Some(now);
        self.state = SyncState::Live;
        self.instruments.state.set(self.state.gauge_value());
        self.instruments.last_synced_timestamp_secs.set(now);
        Ok(SyncReport {
            sequence: self.sequence,
            ..Default::default()
        })
    }

    /// Poll a publisher over a clean in-process channel.
    pub fn sync(
        &mut self,
        publisher: &mut FeedPublisher,
        now: i64,
    ) -> Result<SyncReport, RsfError> {
        if self.pinned.is_some() && self.sequence == publisher.sequence() {
            // Nothing new to fetch. Rotation events are appended in
            // epoch order, so comparing the last one against the
            // pinned epoch tells us whether any ceremony is pending.
            let rotations_pending = match (&self.trust, publisher.rotations().last()) {
                (FeedTrust::Quorum(quorum), Some(last)) => last.to_epoch > quorum.epoch,
                _ => false,
            };
            let warm = !rotations_pending && {
                let checkpoint = publisher.checkpoint_ref()?;
                self.pinned
                    .as_ref()
                    .is_some_and(|(c, _)| c.size == checkpoint.size && c.root == checkpoint.root)
            };
            if warm {
                return self.poll_warm(now);
            }
            let checkpoint = publisher.checkpoint()?;
            let proof = self
                .pinned
                .as_ref()
                .and_then(|(old, _)| publisher.prove_extension(old.size));
            let rotations = publisher.rotations().to_vec();
            return self.poll_full(Vec::new(), rotations, checkpoint, proof, now);
        }
        let rotations = publisher.rotations().to_vec();
        let checkpoint = publisher.checkpoint()?;
        let proof = self
            .pinned
            .as_ref()
            .and_then(|(old, _)| publisher.prove_extension(old.size));
        let messages: Vec<SignedMessage> = publisher
            .fetch(self.sequence)
            .into_iter()
            .cloned()
            .collect();
        self.poll_full(messages, rotations, checkpoint, proof, now)
    }

    /// The backoff delay before retry number `attempt` (0-based), in
    /// milliseconds: exponential with deterministic jitter drawn from
    /// the policy's seeded generator (uniform in `[exp/2, exp]`).
    pub fn backoff_ms(&mut self, attempt: u32) -> u64 {
        let exp = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.policy.max_backoff_ms);
        if exp == 0 {
            return 0;
        }
        self.rng.gen_range(exp / 2..exp + 1)
    }

    /// Sync through a faulty channel, retrying with backoff until the
    /// subscriber has converged to the publisher's sequence or the
    /// policy's retry budget is exhausted.
    ///
    /// Frames the [`FaultInjector`] corrupted beyond decoding are
    /// counted as rejected and skipped; dropped frames surface as a
    /// sequence shortfall that the next attempt repairs. Split-view
    /// evidence aborts immediately (no retry un-quarantines a feed).
    pub fn sync_resilient(
        &mut self,
        publisher: &mut FeedPublisher,
        injector: &mut FaultInjector,
        now: i64,
    ) -> Result<ResilientReport, RsfError> {
        self.sync_resilient_with(publisher, injector, now, false)
    }

    fn sync_resilient_with(
        &mut self,
        publisher: &mut FeedPublisher,
        injector: &mut FaultInjector,
        now: i64,
        sleep_on_clock: bool,
    ) -> Result<ResilientReport, RsfError> {
        let mut total = SyncReport {
            sequence: self.sequence,
            ..Default::default()
        };
        let mut backoff_ms_total = 0u64;
        let mut attempts = 0u32;
        let mut last_err = RsfError::Wire("no attempts made");
        while attempts < self.policy.max_attempts {
            let attempt = attempts;
            attempts += 1;
            let checkpoint = publisher.checkpoint()?;
            let proof = self
                .pinned
                .as_ref()
                .and_then(|(old, _)| publisher.prove_extension(old.size));
            let frames: Vec<Vec<u8>> = publisher
                .fetch(self.sequence)
                .into_iter()
                .map(|m| m.encode())
                .collect();
            let mut messages = Vec::new();
            for frame in injector.transmit(frames) {
                match SignedMessage::decode(&frame) {
                    Ok(m) => messages.push(m),
                    Err(_) => self.instruments.messages_rejected.inc(),
                }
            }
            // Clock-driven runs stamp each attempt at the (possibly
            // advanced-by-backoff) current instant.
            let attempt_now = if sleep_on_clock {
                self.clock.now_secs()
            } else {
                now
            };
            // Rotation events travel outside the fault injector: they
            // are self-authenticating and idempotent, so redelivering
            // the full retained chain every attempt is safe.
            let rotations = publisher.rotations().to_vec();
            let outcome = if messages.is_empty() && self.pinned.is_none() {
                // Everything dropped before the first pin: retry.
                self.instruments.attempts.inc();
                Err(RsfError::BadSignature("empty first sync"))
            } else {
                self.poll_full(messages, rotations, checkpoint, proof, attempt_now)
            };
            match outcome {
                Ok(report) => {
                    total.deltas_applied += report.deltas_applied;
                    total.snapshot_applied |= report.snapshot_applied;
                    total.bytes_transferred += report.bytes_transferred;
                    total.sequence = report.sequence;
                    if self.sequence == publisher.sequence() {
                        return Ok(ResilientReport {
                            report: total,
                            attempts,
                            backoff_ms_total,
                        });
                    }
                    last_err = RsfError::Sequence {
                        expected: publisher.sequence(),
                        got: self.sequence,
                    };
                }
                Err(e @ (RsfError::SplitView(_) | RsfError::Quarantined(_))) => return Err(e),
                Err(e) => last_err = e,
            }
            if attempts < self.policy.max_attempts {
                self.instruments.retries.inc();
                let delay = self.backoff_ms(attempt);
                backoff_ms_total += delay;
                if sleep_on_clock {
                    self.clock.sleep_ms(delay);
                }
            }
        }
        Err(RsfError::Exhausted {
            attempts,
            last: Box::new(last_err),
        })
    }
}
