//! RSF merging (§4): derivative stores sometimes *augment* their primary
//! (Amazon Linux re-added 16 roots NSS had removed). Merging the primary
//! feed with the derivative's own feed must flag the dangerous case —
//! a root in the primary's **distrusted** set but the derivative's
//! **trusted** set — instead of silently picking one.

use nrslb_crypto::sha256::Digest;
use nrslb_rootstore::{RootStore, TrustStatus};

/// A conflict discovered during a merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Conflict {
    /// The primary explicitly distrusts this root but the derivative
    /// trusts it — the paper's headline merge hazard.
    PrimaryDistrustsDerivativeTrusts {
        /// The contested root.
        fingerprint: Digest,
        /// The primary's distrust justification.
        justification: String,
    },
}

/// How to resolve conflicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Security-first: the primary's distrust wins; conflicted roots stay
    /// distrusted in the merged store.
    #[default]
    PrimaryWins,
    /// Availability-first: the derivative's trust wins (what Amazon Linux
    /// de facto did); conflicted roots stay trusted.
    DerivativeWins,
}

/// The merge result: the merged store plus everything an operator should
/// look at.
#[derive(Clone, Debug)]
pub struct MergeReport {
    /// The merged store.
    pub merged: RootStore,
    /// Conflicts found (regardless of policy, so operators always see
    /// them — the paper: "the attempted merge flags an issue").
    pub conflicts: Vec<Conflict>,
    /// Roots the derivative added that the primary never mentioned
    /// (benign augmentation, e.g. enterprise roots).
    pub augmented: Vec<Digest>,
}

/// Merge `primary` and `derivative` into a new store named `name`.
pub fn merge_stores(
    name: &str,
    primary: &RootStore,
    derivative: &RootStore,
    policy: MergePolicy,
) -> MergeReport {
    let mut merged = RootStore::new(name);
    let mut conflicts = Vec::new();
    let mut augmented = Vec::new();

    // Primary distrust marks go in first.
    for (fp, justification) in primary.iter_distrusted() {
        merged.distrust(*fp, justification);
    }
    // Primary trusted set.
    for (_, rec) in primary.iter() {
        merged
            .add_trusted(rec.cert.clone())
            .expect("primary roots are CAs and not self-conflicting");
        let fp = rec.cert.fingerprint();
        let m = merged.record_mut(&fp).expect("just added");
        m.tls_distrust_after = rec.tls_distrust_after;
        m.smime_distrust_after = rec.smime_distrust_after;
        m.ev_allowed = rec.ev_allowed;
        m.gccs = rec.gccs.clone();
    }
    // Derivative additions.
    for (fp, rec) in derivative.iter() {
        match primary.status(fp) {
            TrustStatus::Trusted => {} // already merged from primary
            TrustStatus::Unknown => {
                if merged.status(fp) != TrustStatus::Trusted {
                    merged
                        .add_trusted(rec.cert.clone())
                        .expect("derivative roots are CAs");
                    augmented.push(*fp);
                }
            }
            TrustStatus::Distrusted => {
                let justification = primary
                    .iter_distrusted()
                    .find(|(d, _)| *d == fp)
                    .map(|(_, j)| j.to_string())
                    .unwrap_or_default();
                conflicts.push(Conflict::PrimaryDistrustsDerivativeTrusts {
                    fingerprint: *fp,
                    justification,
                });
                if policy == MergePolicy::DerivativeWins {
                    merged
                        .add_trusted_overriding(rec.cert.clone())
                        .expect("derivative roots are CAs");
                }
            }
        }
    }
    // Derivative distrust marks for roots the primary doesn't trust.
    for (fp, justification) in derivative.iter_distrusted() {
        if primary.status(fp) == TrustStatus::Unknown {
            merged.distrust(*fp, justification);
        }
    }

    MergeReport {
        merged,
        conflicts,
        augmented,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrslb_x509::testutil::simple_chain;

    #[test]
    fn clean_merge_with_augmentation() {
        let a = simple_chain("merge-a.example");
        let b = simple_chain("merge-b.example");
        let mut primary = RootStore::new("nss");
        primary.add_trusted(a.root.clone()).unwrap();
        let mut derivative = RootStore::new("amazon");
        derivative.add_trusted(a.root.clone()).unwrap();
        derivative.add_trusted(b.root.clone()).unwrap(); // augmentation

        let report = merge_stores("merged", &primary, &derivative, MergePolicy::PrimaryWins);
        assert!(report.conflicts.is_empty());
        assert_eq!(report.augmented, vec![b.root.fingerprint()]);
        assert_eq!(report.merged.len(), 2);
    }

    #[test]
    fn distrust_conflict_flagged_primary_wins() {
        let a = simple_chain("merge-c.example");
        let mut primary = RootStore::new("nss");
        primary.distrust(a.root.fingerprint(), "compromised 2024");
        let mut derivative = RootStore::new("amazon");
        derivative.add_trusted(a.root.clone()).unwrap();

        let report = merge_stores("merged", &primary, &derivative, MergePolicy::PrimaryWins);
        assert_eq!(report.conflicts.len(), 1);
        let Conflict::PrimaryDistrustsDerivativeTrusts {
            fingerprint,
            justification,
        } = &report.conflicts[0];
        assert_eq!(*fingerprint, a.root.fingerprint());
        assert_eq!(justification, "compromised 2024");
        assert_eq!(
            report.merged.status(&a.root.fingerprint()),
            TrustStatus::Distrusted
        );
    }

    #[test]
    fn distrust_conflict_derivative_wins_still_flagged() {
        let a = simple_chain("merge-d.example");
        let mut primary = RootStore::new("nss");
        primary.distrust(a.root.fingerprint(), "x");
        let mut derivative = RootStore::new("amazon");
        derivative.add_trusted(a.root.clone()).unwrap();

        let report = merge_stores("merged", &primary, &derivative, MergePolicy::DerivativeWins);
        assert_eq!(report.conflicts.len(), 1); // flagged either way
        assert_eq!(
            report.merged.status(&a.root.fingerprint()),
            TrustStatus::Trusted
        );
    }

    #[test]
    fn primary_policy_survives_merge() {
        let a = simple_chain("merge-e.example");
        let mut primary = RootStore::new("nss");
        primary.add_trusted(a.root.clone()).unwrap();
        primary
            .record_mut(&a.root.fingerprint())
            .unwrap()
            .tls_distrust_after = Some(999);
        let derivative = RootStore::new("amazon");
        let report = merge_stores("merged", &primary, &derivative, MergePolicy::PrimaryWins);
        assert_eq!(
            report
                .merged
                .record(&a.root.fingerprint())
                .unwrap()
                .tls_distrust_after,
            Some(999)
        );
    }

    #[test]
    fn derivative_distrust_of_unknown_root_propagates() {
        let a = simple_chain("merge-f.example");
        let primary = RootStore::new("nss");
        let mut derivative = RootStore::new("debian");
        derivative.distrust(a.root.fingerprint(), "local policy");
        let report = merge_stores("merged", &primary, &derivative, MergePolicy::PrimaryWins);
        assert_eq!(
            report.merged.status(&a.root.fingerprint()),
            TrustStatus::Distrusted
        );
    }
}
