//! Injectable time for the sync engine — re-exported from
//! [`nrslb_obs::clock`], where the types now live.
//!
//! The sans-IO core already takes `now` as a parameter everywhere, but
//! two things still touched real time: the socket transport slept its
//! backoff with `std::thread::sleep`, and callers had no standard way
//! to *produce* `now` without reading the wall clock. A [`Clock`] closes
//! both gaps: production code uses [`WallClock`]; tests and the
//! deterministic simulator inject a [`VirtualClock`] whose `sleep_ms`
//! advances virtual time instantly, so resilience suites run in
//! microseconds and reproduce exactly from a seed.
//!
//! The observability layer's spans time themselves on the same trait,
//! so the definitions moved down into the dependency-free `nrslb-obs`
//! crate; these re-exports keep `nrslb_rsf::clock::*` (and the crate
//! root re-exports) source-compatible.

pub use nrslb_obs::clock::{Clock, VirtualClock, WallClock};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reexported_clock_is_the_obs_clock() {
        // One VirtualClock drives both an rsf-typed and an obs-typed
        // trait object: the trait is literally the same.
        let clock = VirtualClock::shared(50);
        let as_rsf: Arc<dyn Clock> = clock.clone();
        let as_obs: Arc<dyn nrslb_obs::Clock> = clock.clone();
        clock.advance_secs(5);
        assert_eq!(as_rsf.now_secs(), 55);
        assert_eq!(as_obs.now_secs(), 55);
    }
}
