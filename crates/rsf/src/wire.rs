//! A deterministic, length-prefixed binary encoding for feed artifacts.
//!
//! Feed messages are signed, so their byte encoding must be canonical:
//! same logical content ⇒ same bytes. The encoding is little-endian with
//! `u32` length prefixes on all variable-size fields; composite types
//! define a fixed field order and sort their collections (by fingerprint)
//! before encoding.

use crate::RsfError;

/// An append-only byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finish, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `i64`.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append an `Option<i64>` as a presence byte + value.
    pub fn put_opt_i64(&mut self, v: Option<i64>) -> &mut Self {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_i64(x)
            }
            None => self.put_u8(0),
        }
    }
}

/// A bounds-checked reader over a byte slice.
///
/// Decode failures carry context: the *artifact* being decoded (set
/// with [`Reader::for_artifact`]), the *field* the reader was
/// positioned at (set with [`Reader::field`], sticky until the next
/// call) and the byte *offset* of the failure — surfaced as
/// [`RsfError::Decode`] so a malformed feed message names exactly
/// where it broke instead of a bare `"truncated"`.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    artifact: &'static str,
    field: &'static str,
}

/// Upper bound on any single length field (defense against hostile
/// feeds allocating unbounded memory).
pub const MAX_FIELD: u32 = 64 * 1024 * 1024;

impl<'a> Reader<'a> {
    /// Read from `data` (no artifact context; errors report
    /// `"message"`).
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader::for_artifact(data, "message")
    }

    /// Read from `data`, labelling decode errors with the artifact
    /// being decoded (`"snapshot"`, `"delta"`, ...).
    pub fn for_artifact(data: &'a [u8], artifact: &'static str) -> Reader<'a> {
        Reader {
            data,
            pos: 0,
            artifact,
            field: "",
        }
    }

    /// Label the field about to be read; the label sticks until the
    /// next `field` call and appears in any subsequent decode error.
    pub fn field(&mut self, name: &'static str) -> &mut Self {
        self.field = name;
        self
    }

    /// A decode error at the current position, with full context
    /// (artifact, current field label, byte offset).
    pub fn error(&self, reason: &'static str) -> RsfError {
        RsfError::Decode {
            artifact: self.artifact,
            field: self.field,
            offset: self.pos,
            reason,
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Error unless the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), RsfError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.error("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RsfError> {
        if self.remaining() < n {
            return Err(self.error("truncated"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, RsfError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, RsfError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, RsfError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, RsfError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], RsfError> {
        let len = self.get_u32()?;
        if len > MAX_FIELD {
            return Err(self.error("field too large"));
        }
        self.take(len as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, RsfError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| self.error("invalid utf-8"))
    }

    /// Read an `Option<i64>`.
    pub fn get_opt_i64(&mut self) -> Result<Option<i64>, RsfError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_i64()?)),
            _ => Err(self.error("bad option tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u32(0xdead_beef)
            .put_u64(u64::MAX)
            .put_i64(-42)
            .put_bytes(b"hello")
            .put_str("wörld")
            .put_opt_i64(Some(5))
            .put_opt_i64(None);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "wörld");
        assert_eq!(r.get_opt_i64().unwrap(), Some(5));
        assert_eq!(r.get_opt_i64().unwrap(), None);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.put_bytes(b"data");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_bytes().is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1).put_u8(2);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
        r.get_u8().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn oversized_field_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FIELD + 1).to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_bytes(),
            Err(RsfError::Decode {
                reason: "field too large",
                ..
            })
        ));
    }

    #[test]
    fn decode_errors_carry_context() {
        let mut w = Writer::new();
        w.put_u64(7).put_bytes(b"abc");
        let bytes = w.finish();
        // Truncate inside the byte field.
        let mut r = Reader::for_artifact(&bytes[..bytes.len() - 2], "snapshot");
        r.field("sequence").get_u64().unwrap();
        let err = r.field("payload").get_bytes().unwrap_err();
        assert_eq!(
            err,
            RsfError::Decode {
                artifact: "snapshot",
                field: "payload",
                offset: 12,
                reason: "truncated",
            }
        );
        let shown = err.to_string();
        assert!(shown.contains("snapshot"), "{shown}");
        assert!(shown.contains("payload"), "{shown}");
        assert!(shown.contains("byte 12"), "{shown}");
    }

    #[test]
    fn bad_option_tag() {
        let mut r = Reader::new(&[2]);
        assert!(r.get_opt_i64().is_err());
    }
}
