//! Feed distribution over a real transport: a Unix-domain-socket feed
//! server and a matching remote subscriber.
//!
//! The sans-IO [`crate::transport`] layer stays the source of truth;
//! this module is the thin framing that carries its artifacts across a
//! socket, standing in for the HTTPS endpoint the paper proposes
//! ("RSFs can be distributed using conventional protocols", §4). The
//! protocol is a single request/response per connection:
//!
//! ```text
//! request  := "RSFQ" u64 have_sequence u64 have_checkpoint_size
//! response := "RSFR"
//!             u32 n_messages (u32 len, bytes signed-message)*
//!             u32 len, bytes checkpoint
//!             u8 has_proof [u64 old u64 new u32 n (32-byte digest)*]
//!             u32 n_rotations (u32 len, bytes rotation-event)*
//! ```
//!
//! Everything security-relevant (signatures, endorsements, sequence
//! continuity, checkpoint consistency) is verified by the subscriber —
//! the socket is untrusted, exactly like the HTTPS CDN would be.

use crate::quorum::RotationEvent;
use crate::signing::SignedMessage;
use crate::sync::{ResilientReport, Staleness, Subscriber, SubscriberBuilder, SyncCounters};
use crate::translog::Checkpoint;
use crate::transport::{FeedPublisher, SyncReport};
use crate::wire::{Reader, Writer};
use crate::RsfError;
use nrslb_crypto::merkle::ConsistencyProof;
use nrslb_crypto::sha256::Digest;
use std::io::{Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

fn io_err(e: std::io::Error) -> RsfError {
    let _ = e;
    RsfError::Wire("socket i/o failure")
}

fn read_frame(stream: &mut UnixStream, magic: &[u8; 4]) -> Result<Vec<u8>, RsfError> {
    let mut head = [0u8; 8];
    stream.read_exact(&mut head).map_err(io_err)?;
    if &head[..4] != magic {
        return Err(RsfError::Wire("bad frame magic"));
    }
    let len = u32::from_le_bytes(head[4..].try_into().unwrap());
    if len > 256 * 1024 * 1024 {
        return Err(RsfError::Wire("frame too large"));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).map_err(io_err)?;
    Ok(body)
}

fn write_frame(stream: &mut UnixStream, magic: &[u8; 4], body: &[u8]) -> Result<(), RsfError> {
    stream.write_all(magic).map_err(io_err)?;
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    stream.write_all(body).map_err(io_err)?;
    stream.flush().map_err(io_err)
}

fn encode_proof(w: &mut Writer, proof: &ConsistencyProof) {
    w.put_u64(proof.old_size);
    w.put_u64(proof.new_size);
    w.put_u32(proof.path.len() as u32);
    for d in &proof.path {
        w.put_bytes(d.as_bytes());
    }
}

fn decode_proof(r: &mut Reader<'_>) -> Result<ConsistencyProof, RsfError> {
    let old_size = r.get_u64()?;
    let new_size = r.get_u64()?;
    let n = r.get_u32()?;
    if n > 1024 {
        return Err(RsfError::Wire("oversized proof"));
    }
    let mut path = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let arr: [u8; 32] = r
            .get_bytes()?
            .try_into()
            .map_err(|_| RsfError::Wire("bad proof digest"))?;
        path.push(Digest(arr));
    }
    Ok(ConsistencyProof {
        old_size,
        new_size,
        path,
    })
}

/// A feed server bound to a Unix socket, sharing a publisher that the
/// operator keeps updating through the mutex.
pub struct FeedSocketServer {
    path: PathBuf,
    publisher: Arc<Mutex<FeedPublisher>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl FeedSocketServer {
    /// Bind and serve.
    pub fn spawn(
        publisher: Arc<Mutex<FeedPublisher>>,
        socket_path: impl AsRef<Path>,
    ) -> std::io::Result<FeedSocketServer> {
        let path = socket_path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let publisher2 = publisher.clone();
        let thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let publisher = publisher2.clone();
                std::thread::spawn(move || {
                    let _ = serve_once(&mut stream, &publisher);
                });
            }
        });
        Ok(FeedSocketServer {
            path,
            publisher,
            stop,
            thread: Some(thread),
        })
    }

    /// The socket path.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// The shared publisher handle (for publishing updates).
    pub fn publisher(&self) -> Arc<Mutex<FeedPublisher>> {
        self.publisher.clone()
    }
}

impl Drop for FeedSocketServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&self.path);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn serve_once(stream: &mut UnixStream, publisher: &Mutex<FeedPublisher>) -> Result<(), RsfError> {
    let body = read_frame(stream, b"RSFQ")?;
    let mut r = Reader::new(&body);
    let have_sequence = r.get_u64()?;
    let have_checkpoint = r.get_u64()?;
    r.expect_end()?;

    let mut publisher = publisher.lock().expect("publisher mutex");
    let checkpoint = publisher.checkpoint()?;
    let proof = if have_checkpoint > 0 {
        publisher.prove_extension(have_checkpoint)
    } else {
        None
    };
    let messages: Vec<Vec<u8>> = publisher
        .fetch(have_sequence)
        .into_iter()
        .map(|m| m.encode())
        .collect();
    let rotations: Vec<Vec<u8>> = publisher.rotations().iter().map(|e| e.encode()).collect();
    drop(publisher);

    let mut w = Writer::new();
    w.put_u32(messages.len() as u32);
    for m in &messages {
        w.put_bytes(m);
    }
    w.put_bytes(&checkpoint.encode());
    match proof {
        Some(p) => {
            w.put_u8(1);
            encode_proof(&mut w, &p);
        }
        None => {
            w.put_u8(0);
        }
    }
    w.put_u32(rotations.len() as u32);
    for ev in &rotations {
        w.put_bytes(ev);
    }
    write_frame(stream, b"RSFR", &w.finish())
}

impl SubscriberBuilder {
    /// Finish as a socket-backed subscriber polling the feed served at
    /// `socket` — the remote counterpart of
    /// [`SubscriberBuilder::build`].
    pub fn connect(self, socket: impl AsRef<Path>) -> RemoteSubscriber {
        RemoteSubscriber {
            inner: self.build(),
            socket: socket.as_ref().to_path_buf(),
        }
    }
}

/// A subscriber that polls a [`FeedSocketServer`] over the socket.
///
/// Wraps the sans-IO [`Subscriber`]'s *state* but performs its own
/// verification of the transported artifacts, since it cannot hold a
/// reference to the remote publisher. The engine's [`crate::sync::SyncPolicy`]
/// governs the socket too: `attempt_timeout_ms` becomes the stream's
/// read/write timeout and [`RemoteSubscriber::sync`] retries transient
/// failures with the policy's (real, slept) backoff.
pub struct RemoteSubscriber {
    inner: Subscriber,
    socket: PathBuf,
}

impl RemoteSubscriber {
    /// The local store replica.
    pub fn store(&self) -> &nrslb_rootstore::RootStore {
        self.inner.store()
    }

    /// Last applied sequence.
    pub fn sequence(&self) -> u64 {
        self.inner.sequence()
    }

    /// The wrapped sync engine (state, staleness, quarantine).
    pub fn subscriber(&self) -> &Subscriber {
        &self.inner
    }

    /// Scrapeable sync counters.
    pub fn counters(&self) -> SyncCounters {
        self.inner.counters()
    }

    /// Serve the last-good store with a freshness verdict.
    pub fn serve(&mut self, now: i64) -> (&nrslb_rootstore::RootStore, Staleness) {
        self.inner.serve(now)
    }

    /// Poll the server once (no retries).
    pub fn sync_once(&mut self, now: i64) -> Result<SyncReport, RsfError> {
        let timeout = std::time::Duration::from_millis(self.inner.policy().attempt_timeout_ms);
        let mut stream = UnixStream::connect(&self.socket).map_err(io_err)?;
        stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
        let mut req = Writer::new();
        req.put_u64(self.inner.sequence());
        req.put_u64(self.inner.pinned_checkpoint().map(|c| c.size).unwrap_or(0));
        write_frame(&mut stream, b"RSFQ", &req.finish())?;

        let body = read_frame(&mut stream, b"RSFR")?;
        let mut r = Reader::for_artifact(&body, "feed response");
        let n = r.field("message count").get_u32()?;
        if n > 100_000 {
            return Err(r.error("too many messages"));
        }
        let mut messages = Vec::with_capacity(n as usize);
        for _ in 0..n {
            messages.push(SignedMessage::decode(r.field("message").get_bytes()?)?);
        }
        let checkpoint = Checkpoint::decode(r.field("checkpoint").get_bytes()?)?;
        let proof = match r.field("proof tag").get_u8()? {
            0 => None,
            1 => Some(decode_proof(&mut r)?),
            _ => return Err(r.error("bad proof tag")),
        };
        let n_rotations = r.field("rotation count").get_u32()?;
        if n_rotations > 10_000 {
            return Err(r.error("too many rotations"));
        }
        let mut rotations = Vec::with_capacity(n_rotations as usize);
        for _ in 0..n_rotations {
            rotations.push(RotationEvent::decode(r.field("rotation").get_bytes()?)?);
        }
        r.expect_end()?;
        self.inner
            .poll_full(messages, rotations, checkpoint, proof, now)
    }

    /// Poll the server once at the injected clock's current time.
    pub fn sync_once_now(&mut self) -> Result<SyncReport, RsfError> {
        let now = self.inner.clock().now_secs();
        self.sync_once(now)
    }

    /// [`RemoteSubscriber::sync`] at the injected clock's current time.
    pub fn sync_now(&mut self) -> Result<ResilientReport, RsfError> {
        let now = self.inner.clock().now_secs();
        self.sync(now)
    }

    /// Poll the server, retrying transient failures (connection
    /// refused, timeouts, damaged frames) with the policy's
    /// exponential backoff — slept on the subscriber's injected clock,
    /// so tests with a [`crate::clock::VirtualClock`] retry instantly
    /// while production wall clocks really wait. Split-view evidence
    /// aborts immediately.
    pub fn sync(&mut self, now: i64) -> Result<ResilientReport, RsfError> {
        let max_attempts = self.inner.policy().max_attempts;
        let mut backoff_ms_total = 0u64;
        let mut attempts = 0u32;
        let mut last_err = RsfError::Wire("no attempts made");
        while attempts < max_attempts {
            let attempt = attempts;
            attempts += 1;
            match self.sync_once(now) {
                Ok(report) => {
                    return Ok(ResilientReport {
                        report,
                        attempts,
                        backoff_ms_total,
                    })
                }
                Err(e @ (RsfError::SplitView(_) | RsfError::Quarantined(_))) => return Err(e),
                Err(e) => last_err = e,
            }
            if attempts < max_attempts {
                self.inner.note_retry();
                let backoff = self.inner.backoff_ms(attempt);
                backoff_ms_total += backoff;
                let clock = Arc::clone(self.inner.clock());
                clock.sleep_ms(backoff);
            }
        }
        Err(RsfError::Exhausted {
            attempts,
            last: Box::new(last_err),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::signing::{CoordinatorKey, FeedKey, FeedTrust};
    use nrslb_rootstore::{RootStore, TrustStatus};
    use nrslb_x509::testutil::simple_chain;

    fn socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nrslb-rsf-{tag}-{}.sock", std::process::id()))
    }

    fn setup(tag: &str) -> (FeedSocketServer, RemoteSubscriber, RootStore) {
        let coordinator = CoordinatorKey::from_seed([1; 32], 4).unwrap();
        let key = FeedKey::new([2; 32], 8, &coordinator).unwrap();
        let trust = FeedTrust::single(coordinator.public());
        let pki = simple_chain(&format!("sock-{tag}.example"));
        let mut store = RootStore::new("nss");
        store.add_trusted(pki.root.clone()).unwrap();
        let publisher = FeedPublisher::new("nss", key, &store, 0).unwrap();
        let server =
            FeedSocketServer::spawn(Arc::new(Mutex::new(publisher)), socket_path(tag)).unwrap();
        let subscriber = Subscriber::builder("remote", trust).connect(server.socket_path());
        (server, subscriber, store)
    }

    #[test]
    fn remote_bootstrap_and_incremental_sync() {
        let (server, mut subscriber, mut store) = setup("inc");
        let report = subscriber.sync(0).unwrap();
        assert!(report.report.snapshot_applied);
        assert_eq!(subscriber.store().len(), 1);

        // Publish a distrust; remote pickup on next poll.
        let fp = *store.iter().next().unwrap().0;
        store.distrust(fp, "incident");
        server
            .publisher()
            .lock()
            .unwrap()
            .publish(&store, 100)
            .unwrap();
        let report = subscriber.sync(10).unwrap();
        assert_eq!(report.report.deltas_applied, 1);
        assert_eq!(subscriber.store().status(&fp), TrustStatus::Distrusted);

        // Idle poll: nothing to apply, checkpoint still verifies.
        let report = subscriber.sync(20).unwrap();
        assert_eq!(report.report.deltas_applied, 0);
        assert!(!report.report.snapshot_applied);
    }

    #[test]
    fn wrong_coordinator_rejected_over_socket() {
        let (server, _subscriber, _store) = setup("forge");
        let other = CoordinatorKey::from_seed([9; 32], 4).unwrap();
        // A virtual clock turns the retry backoff into instant,
        // deterministic time-advancement: no real sleeping in the test.
        let clock = crate::clock::VirtualClock::shared(0);
        let mut victim = Subscriber::builder("victim", FeedTrust::single(other.public()))
            .policy(crate::sync::SyncPolicy {
                base_backoff_ms: 1_000,
                max_backoff_ms: 2_000,
                max_attempts: 3,
                ..Default::default()
            })
            .clock(clock.clone())
            .connect(server.socket_path());
        let err = victim.sync_now();
        assert!(matches!(err, Err(RsfError::Exhausted { .. })));
        assert!(victim.store().is_empty());
        assert!(
            clock.now_millis() >= 1_000,
            "backoff must have been slept on the virtual clock"
        );
    }

    #[test]
    fn server_socket_cleanup_on_drop() {
        let (server, _s, _st) = setup("cleanup");
        let path = server.socket_path().to_path_buf();
        assert!(path.exists());
        drop(server);
        assert!(!path.exists());
    }
}
